#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== mtlb-analysis (workspace invariant lints)"
# Deny-by-default static analysis: address-domain typestate, cycle
# funnel, panic freedom, counter symmetry, shootdown completeness,
# determinism, counter overflow. Violations must be fixed or justified
# in analysis-allowlist.toml; stale entries also fail. The pass is
# budgeted: a full-tree run must stay under 5 seconds wall clock.
ANALYSIS_T0="$(date +%s%N)"
cargo run -q -p mtlb-analysis
ANALYSIS_T1="$(date +%s%N)"
ANALYSIS_MS=$(( (ANALYSIS_T1 - ANALYSIS_T0) / 1000000 ))
echo "   analysis pass: ${ANALYSIS_MS} ms"
if [ "$ANALYSIS_MS" -ge 5000 ]; then
  echo "mtlb-analysis exceeded its 5 s wall-clock budget (${ANALYSIS_MS} ms)" >&2
  exit 1
fi

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== cargo doc (deny warnings)"
# Vendored third-party stand-ins (vendor/*) are excluded: only this
# repo's own documentation is held to the no-warnings bar.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet \
  --exclude proptest --exclude criterion --exclude rand

echo "== determinism double-run (stdout + JSON reports byte-identical)"
DET_DIR="$(mktemp -d)"
trap 'rm -rf "$DET_DIR"' EXIT
./target/release/repro fig3 --test-scale --json-dir "$DET_DIR/json1" \
  > "$DET_DIR/stdout1" 2>/dev/null
./target/release/repro fig3 --test-scale --json-dir "$DET_DIR/json2" \
  > "$DET_DIR/stdout2" 2>/dev/null
# The stdout captures name different json paths; compare them with the
# directory prefixes normalised away.
sed "s|$DET_DIR/json1|JSON_DIR|" "$DET_DIR/stdout1" > "$DET_DIR/stdout1.norm"
sed "s|$DET_DIR/json2|JSON_DIR|" "$DET_DIR/stdout2" > "$DET_DIR/stdout2.norm"
diff "$DET_DIR/stdout1.norm" "$DET_DIR/stdout2.norm"
diff -r "$DET_DIR/json1" "$DET_DIR/json2"
# The analyzer's report is part of the determinism contract too: same
# tree, byte-identical diagnostics — in text and in the machine-readable
# JSON (schema-versioned, stable ordering) that tooling consumes.
cargo run -q -p mtlb-analysis > "$DET_DIR/analysis1"
cargo run -q -p mtlb-analysis > "$DET_DIR/analysis2"
diff "$DET_DIR/analysis1" "$DET_DIR/analysis2"
cargo run -q -p mtlb-analysis -- --format json > "$DET_DIR/analysis1.json"
cargo run -q -p mtlb-analysis -- --format json > "$DET_DIR/analysis2.json"
diff "$DET_DIR/analysis1.json" "$DET_DIR/analysis2.json"

echo "== multi-core determinism (--cores 1 == legacy; fig6 jobs-invariant)"
# A 1-core machine must be bit-identical to the machine before cores
# existed, and the fig6 co-scheduling tables must not depend on how
# many job threads computed them.
./target/release/repro fig3 --test-scale > "$DET_DIR/fig3_legacy" 2>/dev/null
./target/release/repro fig3 --test-scale --cores 1 > "$DET_DIR/fig3_cores1" 2>/dev/null
diff "$DET_DIR/fig3_legacy" "$DET_DIR/fig3_cores1"
./target/release/repro fig6 --test-scale --cores 4 --jobs 1 > "$DET_DIR/fig6_j1" 2>/dev/null
./target/release/repro fig6 --test-scale --cores 4 --jobs 4 > "$DET_DIR/fig6_j4" 2>/dev/null
diff "$DET_DIR/fig6_j1" "$DET_DIR/fig6_j4"

echo "== fig5 scheme shoot-out determinism (stdout + JSON jobs-invariant)"
# The rival-scheme comparison replays one recorded stream per workload
# through every front end; neither the table nor the per-cell JSON
# reports may depend on how many job threads computed them.
./target/release/repro fig5 --test-scale --jobs 1 --json-dir "$DET_DIR/fig5_json1" \
  > "$DET_DIR/fig5_j1" 2>/dev/null
./target/release/repro fig5 --test-scale --jobs 4 --json-dir "$DET_DIR/fig5_json2" \
  > "$DET_DIR/fig5_j4" 2>/dev/null
sed "s|$DET_DIR/fig5_json1|JSON_DIR|" "$DET_DIR/fig5_j1" > "$DET_DIR/fig5_j1.norm"
sed "s|$DET_DIR/fig5_json2|JSON_DIR|" "$DET_DIR/fig5_j4" > "$DET_DIR/fig5_j4.norm"
diff "$DET_DIR/fig5_j1.norm" "$DET_DIR/fig5_j4.norm"
diff -r "$DET_DIR/fig5_json1" "$DET_DIR/fig5_json2"

echo "== trace record/replay determinism (live == recorded == replayed)"
# Three test-scale fig3 runs: fully live (--no-replay), recording
# (in-memory cache + traces persisted to disk), and replaying from the
# persisted traces. All three stdouts must be byte-identical — the
# trace record/replay layer is required to be invisible in simulated
# results.
./target/release/repro fig3 --test-scale --no-replay \
  > "$DET_DIR/rr_live" 2>/dev/null
./target/release/repro fig3 --test-scale --record-traces "$DET_DIR/traces" \
  > "$DET_DIR/rr_record_raw" 2>/dev/null
./target/release/repro fig3 --test-scale --replay-traces "$DET_DIR/traces" \
  > "$DET_DIR/rr_replay" 2>/dev/null
# The recording run appends [trace written ...] notices; strip them
# before comparing.
grep -v '^\[trace written' "$DET_DIR/rr_record_raw" > "$DET_DIR/rr_record"
diff "$DET_DIR/rr_live" "$DET_DIR/rr_record"
diff "$DET_DIR/rr_live" "$DET_DIR/rr_replay"

echo "== replay-default vs --no-replay (stdout + JSON identical)"
# Sweeps replay by default (record once per (workload, scale), replay
# every other config through the batched engine). The default must be
# indistinguishable from forcing every run live.
./target/release/repro fig3 --test-scale --json-dir "$DET_DIR/replay_json" \
  > "$DET_DIR/replay_default_raw" 2>/dev/null
./target/release/repro fig3 --test-scale --no-replay --json-dir "$DET_DIR/live_json" \
  > "$DET_DIR/live_forced_raw" 2>/dev/null
sed "s|$DET_DIR/replay_json|JSON_DIR|" "$DET_DIR/replay_default_raw" > "$DET_DIR/replay_default"
sed "s|$DET_DIR/live_json|JSON_DIR|" "$DET_DIR/live_forced_raw" > "$DET_DIR/live_forced"
diff "$DET_DIR/replay_default" "$DET_DIR/live_forced"
diff -r "$DET_DIR/replay_json" "$DET_DIR/live_json"

echo "== paper-scale cycle-fidelity gate (BENCH_pr6 vs BENCH_pr10)"
# BENCH_pr6.json predates the fig5/fig6 experiments, so wall totals are
# structurally incomparable; --cycles-only keeps the teeth where they
# belong: any simulated-cycle drift or dropped label on a matching job
# is a hard failure.
./target/release/bench_compare BENCH_pr6.json BENCH_pr10.json --cycles-only

echo "== bench_compare self-gate (test-scale wall-clock sanity)"
# Two back-to-back test-scale runs through the bench-report pipeline,
# diffed by the regression gate. The loose thresholds (200%, 1 ms floor)
# only catch pathological slowdowns — test-scale timings are noisy on a
# shared host — but they exercise the exact OLD/NEW comparison path the
# paper-scale BENCH_baseline.json vs BENCH_pr5.json check uses.
./target/release/repro fig3 --test-scale --bench-report \
  --bench-out "$DET_DIR/bench1.json" >/dev/null 2>&1
./target/release/repro fig3 --test-scale --bench-report \
  --bench-out "$DET_DIR/bench2.json" >/dev/null 2>&1
./target/release/bench_compare "$DET_DIR/bench1.json" "$DET_DIR/bench2.json" \
  --max-regress 200 --min-wall-ns 1000000

echo "ci.sh: all green"
