//! The checked-in allowlist (`analysis-allowlist.toml`) and its
//! hand-written TOML-subset parser.
//!
//! Grammar (a strict subset of TOML — enough for a flat entry list and
//! nothing more):
//!
//! ```toml
//! [[allow]]
//! lint = "panic-freedom"
//! path = "crates/os/src/kernel.rs"
//! contains = "shadow space exhausted"
//! reason = "All-shadow mode is a bounded experiment configuration."
//! ```
//!
//! Comment lines start with `#`. Every entry needs all four keys. An
//! entry suppresses a diagnostic when the lint and repo-relative path
//! match and the violation's source line (or the line after it, for
//! rustfmt-split calls) contains the `contains` text. Entries that
//! suppress nothing are **stale** and fail the run — satellite (b).

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Lint name the entry applies to.
    pub lint: String,
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// Substring that must appear on the violation line (or the next).
    pub contains: String,
    /// Why this violation is acceptable — required, never empty.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for diagnostics.
    pub line: u32,
}

fn unquote(raw: &str, line_no: usize) -> Result<String, String> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("allowlist line {line_no}: value must be a double-quoted string"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => {
                    return Err(format!(
                        "allowlist line {line_no}: unsupported escape \\{}",
                        other.map_or(String::new(), |c| c.to_string())
                    ))
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Parses the allowlist text. Returns entries or a description of the
/// first syntax problem.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut current: Option<Entry> = None;

    let finish = |e: Option<Entry>, entries: &mut Vec<Entry>| -> Result<(), String> {
        if let Some(e) = e {
            for (field, value) in [
                ("lint", &e.lint),
                ("path", &e.path),
                ("contains", &e.contains),
                ("reason", &e.reason),
            ] {
                if value.is_empty() {
                    return Err(format!(
                        "allowlist entry at line {}: missing or empty `{field}`",
                        e.line
                    ));
                }
            }
            entries.push(e);
        }
        Ok(())
    };

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(current.take(), &mut entries)?;
            current = Some(Entry {
                lint: String::new(),
                path: String::new(),
                contains: String::new(),
                reason: String::new(),
                line: line_no as u32,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "allowlist line {line_no}: expected `[[allow]]` or `key = \"value\"`, got `{line}`"
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "allowlist line {line_no}: key outside an [[allow]] entry"
            ));
        };
        let value = unquote(value, line_no)?;
        match key.trim() {
            "lint" => entry.lint = value,
            "path" => entry.path = value,
            "contains" => entry.contains = value,
            "reason" => entry.reason = value,
            other => {
                return Err(format!("allowlist line {line_no}: unknown key `{other}`"));
            }
        }
    }
    finish(current, &mut entries)?;
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments_and_escapes() {
        let text = "# header comment\n\n[[allow]]\nlint = \"panic-freedom\"\npath = \"crates/os/src/kernel.rs\"\ncontains = \"say \\\"hi\\\"\"\nreason = \"documented contract\"\n\n[[allow]]\nlint = \"counter-symmetry\"\npath = \"crates/mmc/src/stream.rs\"\ncontains = \"StreamStats\"\nreason = \"not part of RunReport\"\n";
        let entries = parse(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].contains, "say \"hi\"");
        assert_eq!(entries[1].lint, "counter-symmetry");
        assert_eq!(entries[1].line, 9);
    }

    #[test]
    fn rejects_incomplete_entries() {
        let text = "[[allow]]\nlint = \"panic-freedom\"\npath = \"x.rs\"\ncontains = \"y\"\n";
        let err = parse(text).expect_err("missing reason");
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys_and_stray_lines() {
        assert!(parse("[[allow]]\nseverity = \"high\"\n").is_err());
        assert!(parse("lint = \"x\"\n").is_err());
        assert!(parse("[[allow]]\nnot a kv line\n").is_err());
        assert!(parse("[[allow]]\nlint = unquoted\n").is_err());
    }

    #[test]
    fn empty_file_is_valid() {
        assert_eq!(parse("# nothing allowed\n").expect("ok"), vec![]);
    }
}
