//! A name-based intra-workspace call graph over [`crate::items`].
//!
//! Edges connect a function to the *names* it calls; names are not
//! resolved against types (the analyzer never type-checks), so two
//! functions sharing a name merge into one node. That coarseness is
//! deliberate: the graph exists to answer one conservative question —
//! "can control flow starting in `f` reach a function with property
//! P?" — and merging same-named nodes only ever widens reachability,
//! never hides it, for properties that *grant* permission (like "this
//! path queues a shootdown" the shootdown-completeness lint checks).
//! Properties that *deny* must not be propagated through this graph.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::FnItem;
use crate::lexer::Token;

/// The call graph of one file set: per-function direct callees, by
/// function name (same-named functions merge).
#[derive(Debug, Default)]
pub struct CallGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the graph from function items and their source tokens.
    /// `per_file` pairs each file's token stream with the items
    /// recovered from it.
    #[must_use]
    pub fn build(per_file: &[(&[Token], &[FnItem])]) -> Self {
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (tokens, fns) in per_file {
            for f in *fns {
                let callees = crate::items::calls_in(tokens, f.body);
                edges
                    .entry(f.name.clone())
                    .or_default()
                    .extend(callees.into_iter().filter(|c| c != &f.name));
            }
        }
        CallGraph { edges }
    }

    /// Direct callees of `name` (empty for unknown functions).
    pub fn callees(&self, name: &str) -> impl Iterator<Item = &str> {
        self.edges
            .get(name)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// Whether any function reachable from `from` (including `from`
    /// itself) satisfies `pred`. Reachability follows call edges
    /// transitively; cycles are handled by the visited set. Only edges
    /// to *defined* functions are followed, but `pred` is also asked
    /// about every called name, so leaf predicates like "calls
    /// `queue_shootdown`" work whether or not the target is in the
    /// scanned file set.
    pub fn reaches(&self, from: &str, mut pred: impl FnMut(&str) -> bool) -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(name) = stack.pop() {
            if !seen.insert(name) {
                continue;
            }
            if pred(name) {
                return true;
            }
            if let Some(callees) = self.edges.get(name) {
                stack.extend(callees.iter().map(String::as_str));
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::functions;
    use crate::lexer::lex;

    fn graph_of(src: &str) -> CallGraph {
        let toks = lex(src);
        let fns = functions(&toks);
        CallGraph::build(&[(&toks, &fns)])
    }

    #[test]
    fn direct_and_transitive_reachability() {
        let src = "impl K {\n    pub fn a(&mut self) { self.b(); }\n    fn b(&mut self) { self.c(); }\n    fn c(&mut self) { self.queue_shootdown(r); }\n    fn lonely(&self) {}\n}\n";
        let g = graph_of(src);
        assert!(g.reaches("a", |n| n == "queue_shootdown"));
        assert!(g.reaches("c", |n| n == "queue_shootdown"));
        assert!(!g.reaches("lonely", |n| n == "queue_shootdown"));
    }

    #[test]
    fn cycles_terminate() {
        let src = "fn x() { y(); }\nfn y() { x(); }\n";
        let g = graph_of(src);
        assert!(!g.reaches("x", |n| n == "absent"));
        assert!(g.reaches("x", |n| n == "y"));
    }
}
