//! The analysis driver: loads the workspace sources, runs every lint,
//! applies the allowlist, and renders the outcome as text or
//! schema-versioned JSON.
//!
//! The driver is a library function (rather than living in `main`) so
//! the integration tests can point it at seeded-violation fixture
//! workspaces under `tests/fixtures/` and assert on the exact outcome.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::lexer;
use crate::lints::{self, Diagnostic};
use crate::{allowlist, items};

/// JSON schema version emitted by [`render_json`]. Bump on any change
/// to field names or structure; additive changes also bump it so
/// consumers can gate.
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// Every lint, in the fixed order summaries and JSON use.
pub const LINTS: [&str; 7] = [
    "addr-domain",
    "counter-overflow",
    "counter-symmetry",
    "cycle-funnel",
    "determinism",
    "panic-freedom",
    "shootdown-completeness",
];

/// Crates whose `src/` trees are held to panic-freedom and scanned for
/// stats structs.
pub const CORE_CRATES: [&str; 9] = [
    "types", "mem", "cache", "tlb", "mmc", "os", "schemes", "sim", "trace",
];

/// Crates whose `src/` trees are address-carrying: they move virtual,
/// shadow and real addresses between domains. The cache crate is
/// deliberately excluded — its index/tag splitting is bit extraction on
/// bus addresses, not domain-crossing arithmetic.
pub const ADDR_CRATES: [&str; 4] = ["mmc", "os", "tlb", "mem"];

/// Crates feeding reports/stdout, held to the determinism lint: the
/// core crates plus the bench harness and the workload generators.
pub const REPORT_CRATES: [&str; 11] = [
    "types",
    "mem",
    "cache",
    "tlb",
    "mmc",
    "os",
    "schemes",
    "sim",
    "trace",
    "bench",
    "workloads",
];

/// The machine's deferred `u64` accumulators that live outside any
/// `…Stats` struct but feed the same reports (fast-forward batching
/// and bus-contention counting).
const EXTRA_COUNTERS: [&str; 3] = ["ff_accesses", "ff_instructions", "contention_events"];

struct SourceFile {
    /// Repo-relative path with forward slashes.
    rel: String,
    /// Raw source lines (for allowlist `contains` matching).
    lines: Vec<String>,
    tokens: Vec<lexer::Token>,
    test_spans: Vec<(u32, u32)>,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn load_file(root: &Path, abs: &Path) -> Option<SourceFile> {
    let src = std::fs::read_to_string(abs).ok()?;
    let rel = abs
        .strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/");
    let tokens = lexer::lex(&src);
    let test_spans = lexer::test_spans(&tokens);
    Some(SourceFile {
        rel,
        lines: src.lines().map(str::to_owned).collect(),
        tokens,
        test_spans,
    })
}

/// The text an allowlist entry's `contains` is matched against: the
/// violation line plus the following line, so calls split across lines
/// by rustfmt (message on the continuation line) still match.
fn match_window(file: &SourceFile, line: u32) -> String {
    let i = line.saturating_sub(1) as usize;
    let mut window = file.lines.get(i).cloned().unwrap_or_default();
    if let Some(next) = file.lines.get(i + 1) {
        window.push('\n');
        window.push_str(next);
    }
    window
}

/// A stale allowlist entry with its repair hint.
#[derive(Clone, Debug)]
pub struct StaleEntry {
    /// The entry that matched nothing.
    pub entry: allowlist::Entry,
    /// Where to look: the nearest still-matching line, the nearest
    /// open violation of the same lint, or "delete it".
    pub hint: String,
}

/// Per-lint slice of the outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct LintSummary {
    /// Open (unsuppressed) violations.
    pub open: usize,
    /// Violations suppressed by allowlist entries.
    pub suppressed: usize,
    /// Allowlist entries naming this lint.
    pub entries: usize,
}

/// The complete result of one analysis run, ready to render.
#[derive(Debug)]
pub struct Outcome {
    /// Number of files scanned.
    pub files: usize,
    /// Open violations, sorted by (path, line, col, lint).
    pub open: Vec<Diagnostic>,
    /// Total suppressed violations.
    pub suppressed: usize,
    /// Total allowlist entries.
    pub allowlist_entries: usize,
    /// Stale entries with hints, in file order.
    pub stale: Vec<StaleEntry>,
    /// Display name of the allowlist file (for stale-entry reports).
    pub allowlist_name: String,
    /// Per-lint counts, in [`LINTS`] order.
    pub per_lint: Vec<(&'static str, LintSummary)>,
}

impl Outcome {
    /// Whether the run is clean: nothing open, nothing stale.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.open.is_empty() && self.stale.is_empty()
    }
}

fn in_crates(rel: &str, set: &[&str]) -> bool {
    set.iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

/// Runs every lint over the workspace at `root` and applies the
/// allowlist at `allowlist_path`.
///
/// # Errors
///
/// Returns a message when no sources are found, the allowlist cannot
/// be read or parsed, or `crates/sim/src/machine.rs` (the audit anchor)
/// is missing.
pub fn analyze(root: &Path, allowlist_path: &Path) -> Result<Outcome, String> {
    // Load every file once, keyed by repo-relative path.
    let mut files: BTreeMap<String, SourceFile> = BTreeMap::new();
    for krate in REPORT_CRATES {
        let mut paths = Vec::new();
        collect_rs_files(&root.join("crates").join(krate).join("src"), &mut paths);
        for p in &paths {
            if let Some(f) = load_file(root, p) {
                files.insert(f.rel.clone(), f);
            }
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no sources found under {} — wrong --root?",
            root.display()
        ));
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut stats_structs = Vec::new();
    let mut counter_fields: BTreeSet<String> =
        EXTRA_COUNTERS.iter().map(|s| (*s).to_string()).collect();

    // Pass 1: collect the item layer that later lints consume.
    for file in files.values() {
        if in_crates(&file.rel, &CORE_CRATES) {
            lints::find_stats_structs(&file.rel, &file.tokens, &mut stats_structs);
            for s in items::stats_fields(&file.tokens) {
                counter_fields.extend(s.u64_fields);
            }
        }
    }

    // The os crate's functions and call graph, for shootdown-completeness.
    let os_files: Vec<&SourceFile> = files
        .values()
        .filter(|f| in_crates(&f.rel, &["os"]))
        .collect();
    let os_items: Vec<(&SourceFile, Vec<items::FnItem>)> = os_files
        .iter()
        .map(|f| (*f, items::functions(&f.tokens)))
        .collect();
    let graph = CallGraph::build(
        &os_items
            .iter()
            .map(|(f, fns)| (&f.tokens[..], &fns[..]))
            .collect::<Vec<_>>(),
    );
    let kernel_fns: Vec<lints::KernelFn> = os_items
        .iter()
        .flat_map(|(f, fns)| {
            fns.iter()
                .filter(|i| !lexer::in_spans(&f.test_spans, i.line))
                .map(|i| {
                    let (mutation, shoots) = lints::shootdown_sinks(&f.tokens, i.body);
                    lints::KernelFn {
                        path: f.rel.clone(),
                        name: i.name.clone(),
                        owner: i.owner.clone(),
                        is_pub: i.is_pub,
                        line: i.line,
                        col: i.col,
                        mutation,
                        shoots,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();

    // Pass 2: per-file token lints.
    for file in files.values() {
        if in_crates(&file.rel, &ADDR_CRATES) || file.rel == "crates/sim/src/machine.rs" {
            lints::addr_domain(&file.rel, &file.tokens, &file.test_spans, &mut diags);
        }
        if file.rel.starts_with("crates/sim/src/") || file.rel.starts_with("crates/trace/src/") {
            let charge = lexer::fn_span(&file.tokens, "charge");
            let replay: Vec<(u32, u32)> = [
                "memo_access",
                "stream",
                "execute_inner",
                "commit_span_agg",
                "loop_fast_forward",
                "replay_scalar_span",
            ]
            .iter()
            .filter_map(|f| lexer::fn_span(&file.tokens, f))
            .collect();
            lints::cycle_funnel(
                &file.rel,
                &file.tokens,
                &file.test_spans,
                charge,
                &replay,
                &mut diags,
            );
        }
        if in_crates(&file.rel, &CORE_CRATES) {
            lints::panic_freedom(&file.rel, &file.tokens, &file.test_spans, &mut diags);
        }
        lints::determinism(&file.rel, &file.tokens, &file.test_spans, &mut diags);
        if in_crates(&file.rel, &CORE_CRATES) || in_crates(&file.rel, &["bench"]) {
            let charge = if file.rel == "crates/sim/src/machine.rs" {
                lexer::fn_span(&file.tokens, "charge")
            } else {
                None
            };
            lints::counter_overflow(
                &file.rel,
                &file.tokens,
                &file.test_spans,
                charge,
                &counter_fields,
                &mut diags,
            );
        }
    }

    // Pass 3: whole-workspace lints.
    lints::shootdown_completeness(&kernel_fns, &graph, &mut diags);
    let machine = files
        .get("crates/sim/src/machine.rs")
        .ok_or("crates/sim/src/machine.rs not found")?;
    let audit_span = lexer::fn_span(&machine.tokens, "audit")
        .ok_or("fn audit not found in crates/sim/src/machine.rs")?;
    let audited = lints::exhaustive_destructures(&machine.tokens, audit_span);
    stats_structs.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    lints::counter_symmetry(&stats_structs, &audited, &mut diags);
    let drain_span = lexer::fn_span(&machine.tokens, "service_shootdowns");
    lints::shootdown_drain(&machine.rel, &machine.tokens, drain_span, &mut diags);

    // Apply the allowlist.
    let allow_text = std::fs::read_to_string(allowlist_path)
        .map_err(|e| format!("cannot read {}: {e}", allowlist_path.display()))?;
    let entries = allowlist::parse(&allow_text)?;
    let mut matched = vec![0usize; entries.len()];
    let mut open: Vec<Diagnostic> = Vec::new();
    let mut per_lint: BTreeMap<&'static str, LintSummary> = BTreeMap::new();
    for d in &diags {
        let window = files.get(&d.path).map(|f| match_window(f, d.line));
        let mut suppressed = false;
        for (i, e) in entries.iter().enumerate() {
            if e.lint == d.lint
                && e.path == d.path
                && window.as_deref().is_some_and(|w| w.contains(&e.contains))
            {
                matched[i] += 1;
                suppressed = true;
            }
        }
        let slot = per_lint.entry(d.lint).or_default();
        if suppressed {
            slot.suppressed += 1;
        } else {
            slot.open += 1;
            open.push(d.clone());
        }
    }
    open.sort_by(|a, b| (&a.path, a.line, a.col, a.lint).cmp(&(&b.path, b.line, b.col, b.lint)));

    let mut stale = Vec::new();
    for (e, n) in entries.iter().zip(&matched) {
        if *n > 0 {
            continue;
        }
        // Repair hint: the nearest line still containing the text, else
        // the nearest diagnostic of the same lint in the same file.
        let hint = if let Some(line) = files.get(&e.path).and_then(|f| {
            f.lines
                .iter()
                .position(|l| l.contains(&e.contains))
                .map(|i| i + 1)
        }) {
            format!(
                "hint: `{}` still matches {}:{line}, but no {} violation is reported there — \
                 the violation was fixed; delete the entry",
                e.contains, e.path, e.lint
            )
        } else if let Some(d) = diags
            .iter()
            .filter(|d| d.lint == e.lint && d.path == e.path)
            .min_by_key(|d| d.line)
        {
            format!(
                "hint: nearest {} violation in {} is line {} (`{}`) — retarget `contains` at it",
                e.lint,
                e.path,
                d.line,
                files
                    .get(&d.path)
                    .and_then(|f| f.lines.get(d.line.saturating_sub(1) as usize))
                    .map_or("", |l| l.trim())
            )
        } else {
            format!(
                "hint: no {} violations remain in {} — delete the entry",
                e.lint, e.path
            )
        };
        stale.push(StaleEntry {
            entry: e.clone(),
            hint,
        });
    }

    for e in &entries {
        if let Some(lint) = LINTS.iter().find(|l| **l == e.lint) {
            per_lint.entry(lint).or_default().entries += 1;
        }
    }

    Ok(Outcome {
        files: files.len(),
        open,
        suppressed: matched.iter().sum(),
        allowlist_entries: entries.len(),
        stale,
        allowlist_name: allowlist_path.file_name().map_or_else(
            || allowlist_path.display().to_string(),
            |n| n.to_string_lossy().into_owned(),
        ),
        per_lint: LINTS
            .iter()
            .map(|l| (*l, per_lint.get(l).copied().unwrap_or_default()))
            .collect(),
    })
}

/// Renders the outcome in the classic `path:line:col: [lint] msg` text
/// form, with stale-entry hints and the per-lint summary.
#[must_use]
pub fn render_text(o: &Outcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in &o.open {
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}",
            d.path, d.line, d.col, d.lint, d.msg
        );
    }
    for s in &o.stale {
        let e = &s.entry;
        let _ = writeln!(
            out,
            "{}:{}: stale [[allow]] entry ({} / {} / \"{}\") \
             matches no violation — remove it",
            o.allowlist_name, e.line, e.lint, e.path, e.contains
        );
        let _ = writeln!(out, "  {}", s.hint);
    }
    let _ = writeln!(
        out,
        "mtlb-analysis: {} files, {} violations, {} suppressed by {} allowlist entries, {} stale",
        o.files,
        o.open.len(),
        o.suppressed,
        o.allowlist_entries,
        o.stale.len()
    );
    for (lint, s) in &o.per_lint {
        let _ = writeln!(
            out,
            "  {lint}: {} open, {} suppressed, {} allowlist entries",
            s.open, s.suppressed, s.entries
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the outcome as schema-versioned JSON with stable ordering:
/// violations sorted as in text mode, per-lint summaries in [`LINTS`]
/// order, and no map types anywhere — back-to-back runs over the same
/// tree are byte-identical.
#[must_use]
pub fn render_json(o: &Outcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": {JSON_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"violations\": [");
    for (i, d) in o.open.iter().enumerate() {
        let comma = if i + 1 < o.open.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"msg\": \"{}\"}}{comma}",
            json_escape(d.lint),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.msg)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"stale_allowlist\": [");
    for (i, s) in o.stale.iter().enumerate() {
        let comma = if i + 1 < o.stale.len() { "," } else { "" };
        let e = &s.entry;
        let _ = writeln!(
            out,
            "    {{\"allowlist_line\": {}, \"lint\": \"{}\", \"path\": \"{}\", \
             \"contains\": \"{}\", \"hint\": \"{}\"}}{comma}",
            e.line,
            json_escape(&e.lint),
            json_escape(&e.path),
            json_escape(&e.contains),
            json_escape(&s.hint)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"files\": {},", o.files);
    let _ = writeln!(out, "    \"violations\": {},", o.open.len());
    let _ = writeln!(out, "    \"suppressed\": {},", o.suppressed);
    let _ = writeln!(out, "    \"allowlist_entries\": {},", o.allowlist_entries);
    let _ = writeln!(out, "    \"stale\": {},", o.stale.len());
    let _ = writeln!(out, "    \"per_lint\": [");
    for (i, (lint, s)) in o.per_lint.iter().enumerate() {
        let comma = if i + 1 < o.per_lint.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"lint\": \"{lint}\", \"open\": {}, \"suppressed\": {}, \
             \"allowlist_entries\": {}}}{comma}",
            s.open, s.suppressed, s.entries
        );
    }
    let _ = writeln!(out, "    ]");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}
