//! The item layer: a lightweight structural view over the token stream.
//!
//! [`crate::lexer`] gives the lints flat tokens; this module recovers
//! just enough *structure* for the call-graph lints — `impl` blocks,
//! the functions they own (with visibility and body extents), and the
//! `u64` counter fields of `pub struct …Stats` definitions — without
//! becoming a parser. Everything here is recovered from token
//! adjacency and brace matching, which is exact for rustfmt-formatted
//! sources and dependency-free by construction.

use crate::lexer::{TokKind, Token};

/// One function item recovered from a file's token stream.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` block (`impl Kernel` and
    /// `impl Trait for Kernel` both yield `Kernel`); `None` for free
    /// functions.
    pub owner: Option<String>,
    /// Whether the function is `pub` (including `pub(crate)` and
    /// friends — any visibility wider than private).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Column of the function name.
    pub col: u32,
    /// Inclusive token-index range of the body (the `{ … }` block).
    pub body: (usize, usize),
    /// Inclusive 1-based line span of the body.
    pub span: (u32, u32),
}

/// Index of the matching close delimiter for the opener at `open`.
/// Counts only the same delimiter pair, which is sound in token streams
/// produced by the lexer (strings and comments are already opaque).
fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// The self-type name of an `impl` header starting at `impl_idx`
/// (pointing at the `impl` token), plus the token index of the body's
/// opening brace. `impl<T> Foo<T> { … }` yields `Foo`;
/// `impl fmt::Display for Foo { … }` yields `Foo` (the last
/// angle-depth-0 path segment before the brace, after `for` if
/// present).
fn impl_self_type(tokens: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut after_for = false;
    let mut name: Option<String> = None;
    let mut j = impl_idx + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle <= 0 => {
                return name.map(|n| (n, j));
            }
            "for" if angle <= 0 => {
                after_for = true;
                name = None;
            }
            "where" if angle <= 0 => {
                // The self type is complete; keep whatever we have.
                let n = name?;
                let brace = (j..tokens.len()).find(|&k| tokens[k].text == "{")?;
                return Some((n, brace));
            }
            _ => {
                if angle <= 0 && t.kind == TokKind::Ident && (name.is_none() || !after_for) {
                    // Track the last path segment seen; `for` resets it so
                    // the trait name never wins.
                    if name.is_none()
                        || tokens.get(j.wrapping_sub(1)).map(|p| p.text.as_str()) == Some("::")
                    {
                        name = Some(t.text.clone());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Recovers every function item in a file, with `impl`-block owners.
#[must_use]
pub fn functions(tokens: &[Token]) -> Vec<FnItem> {
    // First pass: impl blocks as (self_type, body token range).
    let mut impls: Vec<(String, usize, usize)> = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].text == "impl" {
            if let Some((name, open)) = impl_self_type(tokens, i) {
                if let Some(close) = match_brace(tokens, open) {
                    impls.push((name, open, close));
                }
            }
        }
    }

    // Second pass: `fn` items, owner = innermost enclosing impl block.
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].text != "fn" || tokens[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name_tok = &tokens[i + 1];
        // Visibility: scan back over qualifiers (`const`, `async`,
        // `unsafe`) and the `(…)` of `pub(crate)` to `pub`.
        let is_pub = {
            let mut k = i;
            while k >= 1 && matches!(tokens[k - 1].text.as_str(), "const" | "async" | "unsafe") {
                k -= 1;
            }
            if k >= 1 && tokens[k - 1].text == ")" {
                while k >= 1 && tokens[k - 1].text != "(" {
                    k -= 1;
                }
                k = k.saturating_sub(1);
            }
            k >= 1 && tokens[k - 1].text == "pub"
        };
        // Body: first `{` after the signature (return types cannot
        // contain a bare brace), then brace matching.
        let Some(open) =
            (i + 2..tokens.len()).find(|&k| matches!(tokens[k].text.as_str(), "{" | ";"))
        else {
            i += 1;
            continue;
        };
        if tokens[open].text == ";" {
            // Trait method declaration without a body.
            i = open + 1;
            continue;
        }
        let Some(close) = match_brace(tokens, open) else {
            i += 1;
            continue;
        };
        let owner = impls
            .iter()
            .filter(|(_, o, c)| *o < i && i < *c)
            .min_by_key(|(_, o, c)| c - o)
            .map(|(n, _, _)| n.clone());
        out.push(FnItem {
            name: name_tok.text.clone(),
            owner,
            is_pub,
            line: tokens[i].line,
            col: name_tok.col,
            body: (open, close),
            span: (tokens[open].line, tokens[close].line),
        });
        i += 2;
    }
    out
}

/// A `pub struct …Stats` definition with its `u64` counter fields.
#[derive(Clone, Debug)]
pub struct StatsFields {
    /// Struct name (ends in `Stats`).
    pub name: String,
    /// Field names declared with type `u64`.
    pub u64_fields: Vec<String>,
}

/// Collects the `u64` fields of every `pub struct <X>Stats` in a file —
/// the counters the counter-overflow lint protects. Fields of other
/// types (notably `Cycles`, whose arithmetic is already checked) are
/// excluded.
#[must_use]
pub fn stats_fields(tokens: &[Token]) -> Vec<StatsFields> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !(tokens[i].text == "pub"
            && tokens.get(i + 1).is_some_and(|t| t.text == "struct")
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.text.ends_with("Stats") && t.text != "Stats"))
        {
            continue;
        }
        let name = tokens[i + 2].text.clone();
        let Some(open) = (i + 3..tokens.len()).find(|&k| tokens[k].text == "{") else {
            continue;
        };
        let Some(close) = match_brace(tokens, open) else {
            continue;
        };
        let mut fields = Vec::new();
        let mut depth = 0usize;
        let mut j = open;
        while j <= close {
            match tokens[j].text.as_str() {
                "{" => depth += 1,
                "}" => depth = depth.saturating_sub(1),
                ":" if depth == 1 => {
                    // `field : u64` at struct-body depth.
                    let field = tokens.get(j.wrapping_sub(1));
                    let ty = tokens.get(j + 1);
                    if let (Some(f), Some(t)) = (field, ty) {
                        if f.kind == TokKind::Ident
                            && t.text == "u64"
                            && tokens.get(j + 2).is_some_and(|n| n.text != "::")
                        {
                            fields.push(f.text.clone());
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        out.push(StatsFields {
            name,
            u64_fields: fields,
        });
    }
    out
}

/// Names called from the token range `body` (method calls `.name(` and
/// free/assoc calls `name(` / `::name(`), for the call graph. Macro
/// invocations (`name!`) are excluded.
#[must_use]
pub fn calls_in(tokens: &[Token], body: (usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    let (a, b) = body;
    for i in a..=b.min(tokens.len().saturating_sub(1)) {
        if tokens[i].kind != TokKind::Ident {
            continue;
        }
        if tokens.get(i + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        // `fn name(` is a nested definition, not a call.
        if i >= 1 && tokens[i - 1].text == "fn" {
            continue;
        }
        out.push(tokens[i].text.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn functions_recover_owner_visibility_and_span() {
        let src = "impl Kernel {\n    pub fn service(&mut self) {\n        self.helper();\n    }\n    fn helper(&mut self) {}\n}\n\npub fn free() {}\n";
        let fns = functions(&lex(src));
        assert_eq!(fns.len(), 3);
        assert_eq!(
            (fns[0].name.as_str(), fns[0].owner.as_deref(), fns[0].is_pub),
            ("service", Some("Kernel"), true)
        );
        assert_eq!(fns[0].span, (2, 4));
        assert_eq!(
            (fns[1].name.as_str(), fns[1].owner.as_deref(), fns[1].is_pub),
            ("helper", Some("Kernel"), false)
        );
        assert_eq!(
            (fns[2].name.as_str(), fns[2].owner.as_deref()),
            ("free", None)
        );
    }

    #[test]
    fn trait_impls_attribute_to_the_self_type() {
        let src = "impl fmt::Display for Kernel {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n        write!(f, \"k\")\n    }\n}\nimpl<T: Clone> Wrapper<T> {\n    pub(crate) fn get(&self) -> T { self.0.clone() }\n}\n";
        let fns = functions(&lex(src));
        assert_eq!(fns[0].owner.as_deref(), Some("Kernel"));
        assert_eq!(fns[1].owner.as_deref(), Some("Wrapper"));
        assert!(fns[1].is_pub, "pub(crate) counts as pub");
    }

    #[test]
    fn stats_fields_keep_u64_and_drop_cycles() {
        let src = "pub struct KernelStats {\n    pub remaps: u64,\n    pub shootdowns: u64,\n    pub service_cycles: Cycles,\n}\npub struct Plain { pub x: u64 }\n";
        let s = stats_fields(&lex(src));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "KernelStats");
        assert_eq!(s[0].u64_fields, ["remaps", "shootdowns"]);
    }

    #[test]
    fn calls_in_sees_methods_and_free_calls_not_macros() {
        let src = "fn f(&mut self) {\n    self.queue_shootdown(req);\n    helper(1);\n    Vec::with_capacity(4);\n    assert!(ok);\n}\n";
        let toks = lex(src);
        let fns = functions(&toks);
        let calls = calls_in(&toks, fns[0].body);
        assert!(calls.contains(&"queue_shootdown".to_string()));
        assert!(calls.contains(&"helper".to_string()));
        assert!(calls.contains(&"with_capacity".to_string()));
        assert!(!calls.contains(&"assert".to_string()));
    }
}
