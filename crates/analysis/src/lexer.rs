//! A minimal Rust lexer: just enough to token-scan this workspace's own
//! sources without being fooled by comments, strings, raw strings, char
//! literals or lifetimes.
//!
//! The lexer is deliberately *not* a parser. The lints in
//! [`crate::lints`] work on flat token sequences plus a few derived
//! spans (`#[cfg(test)]` items, named `fn` bodies), which is enough to
//! express the workspace invariants while keeping the analyzer
//! dependency-free.

/// What kind of token was scanned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including suffixes, e.g. `0x80u32`).
    Num,
    /// Operator or delimiter, possibly multi-character (`<<`, `+=`, `::`).
    Punct,
    /// String literal (plain, byte or raw), scanned as one token.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`) — distinct from a char literal.
    Lifetime,
}

/// One scanned token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token text. For `Str` tokens only the opening delimiter is kept
    /// (contents are irrelevant to every lint and would bloat memory).
    pub text: String,
    /// Kind of token.
    pub kind: TokKind,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

/// Multi-character operators, longest first so maximal munch works.
const OPS: [&str; 23] = [
    "<<=", ">>=", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// True when the characters at `pos + ahead` begin a raw-string body
    /// (`#* "`), as after the `r` of `r#"…"#`.
    fn raw_string_follows(&self, mut ahead: usize) -> bool {
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    /// Consumes a raw string starting at the hashes/quote (the `r`/`br`
    /// prefix is already consumed).
    fn eat_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => return,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Consumes a plain string body (opening quote already consumed).
    fn eat_string(&mut self) {
        loop {
            match self.bump() {
                None | Some('"') => return,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenises `src`, skipping comments (line and nested block) and
/// whitespace. String/char bodies are consumed but not retained.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut s = Scanner {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = s.peek(0) {
        let (line, col) = (s.line, s.col);
        if c.is_whitespace() {
            s.bump();
            continue;
        }
        // Comments.
        if c == '/' && s.peek(1) == Some('/') {
            while let Some(c) = s.peek(0) {
                if c == '\n' {
                    break;
                }
                s.bump();
            }
            continue;
        }
        if c == '/' && s.peek(1) == Some('*') {
            s.bump();
            s.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (s.peek(0), s.peek(1)) {
                    (Some('/'), Some('*')) => {
                        s.bump();
                        s.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        s.bump();
                        s.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        s.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        // Raw / byte string prefixes; must be checked before identifiers.
        if c == 'r' && s.raw_string_follows(1) {
            s.bump(); // r
            s.eat_raw_string();
            out.push(Token {
                text: "r\"".into(),
                kind: TokKind::Str,
                line,
                col,
            });
            continue;
        }
        if c == 'b' && s.peek(1) == Some('r') && s.raw_string_follows(2) {
            s.bump(); // b
            s.bump(); // r
            s.eat_raw_string();
            out.push(Token {
                text: "br\"".into(),
                kind: TokKind::Str,
                line,
                col,
            });
            continue;
        }
        if c == 'b' && s.peek(1) == Some('"') {
            s.bump(); // b
            s.bump(); // quote
            s.eat_string();
            out.push(Token {
                text: "b\"".into(),
                kind: TokKind::Str,
                line,
                col,
            });
            continue;
        }
        if c == '"' {
            s.bump();
            s.eat_string();
            out.push(Token {
                text: "\"".into(),
                kind: TokKind::Str,
                line,
                col,
            });
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            let next = s.peek(1);
            let lifetime = match next {
                Some(n) if is_ident_start(n) => {
                    // 'a  → lifetime unless a closing quote follows the
                    // ident run ('a' is a char literal).
                    let mut ahead = 2;
                    while s.peek(ahead).is_some_and(is_ident_continue) {
                        ahead += 1;
                    }
                    s.peek(ahead) != Some('\'')
                }
                _ => false,
            };
            if lifetime {
                s.bump();
                let mut text = String::from("'");
                while s.peek(0).is_some_and(is_ident_continue) {
                    text.push(s.bump().unwrap_or('_'));
                }
                out.push(Token {
                    text,
                    kind: TokKind::Lifetime,
                    line,
                    col,
                });
            } else {
                s.bump(); // opening quote
                match s.bump() {
                    Some('\\') => match s.bump() {
                        // \u{…}: consume to the brace, then the quote.
                        Some('u') => {
                            while let Some(c) = s.bump() {
                                if c == '}' {
                                    break;
                                }
                            }
                            s.bump(); // closing quote
                        }
                        // \x41: two hex digits, then the quote.
                        Some('x') => {
                            s.bump();
                            s.bump();
                            s.bump(); // closing quote
                        }
                        // Simple escape (\n, \', \\): body consumed above.
                        _ => {
                            s.bump(); // closing quote
                        }
                    },
                    _ => {
                        s.bump(); // closing quote
                    }
                }
                out.push(Token {
                    text: "'".into(),
                    kind: TokKind::Char,
                    line,
                    col,
                });
            }
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut text = String::new();
            while s.peek(0).is_some_and(is_ident_continue) {
                text.push(s.bump().unwrap_or('_'));
            }
            out.push(Token {
                text,
                kind: TokKind::Ident,
                line,
                col,
            });
            continue;
        }
        // Numbers (suffixes ride along; `1..2` keeps the dots separate).
        if c.is_ascii_digit() {
            let mut text = String::new();
            while s.peek(0).is_some_and(is_ident_continue) {
                text.push(s.bump().unwrap_or('0'));
            }
            if s.peek(0) == Some('.') && s.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                text.push(s.bump().unwrap_or('.'));
                while s.peek(0).is_some_and(is_ident_continue) {
                    text.push(s.bump().unwrap_or('0'));
                }
            }
            out.push(Token {
                text,
                kind: TokKind::Num,
                line,
                col,
            });
            continue;
        }
        // Operators, longest match first.
        let mut matched = None;
        for op in OPS {
            if op.chars().enumerate().all(|(i, oc)| s.peek(i) == Some(oc)) {
                matched = Some(op);
                break;
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.len() {
                s.bump();
            }
            out.push(Token {
                text: op.into(),
                kind: TokKind::Punct,
                line,
                col,
            });
        } else {
            s.bump();
            out.push(Token {
                text: c.to_string(),
                kind: TokKind::Punct,
                line,
                col,
            });
        }
    }
    out
}

/// Inclusive 1-based line ranges of items annotated `#[cfg(test)]`
/// (typically the `mod tests` block). Lints skip violations inside
/// these spans: test code may panic and do raw arithmetic freely.
#[must_use]
pub fn test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let attr = tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].text == "test"
            && tokens[i + 5].text == ")"
            && tokens[i + 6].text == "]";
        if !attr {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Find the end of the annotated item: the matching close brace of
        // its first `{`, or a `;` for brace-less items.
        let mut j = i + 7;
        let mut end_line = start_line;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                ";" => {
                    end_line = tokens[j].line;
                    break;
                }
                "{" => {
                    let mut depth = 0usize;
                    while j < tokens.len() {
                        match tokens[j].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    end_line = tokens.get(j).map_or(start_line, |t| t.line);
                    break;
                }
                _ => j += 1,
            }
        }
        spans.push((start_line, end_line));
        i = j + 1;
    }
    spans
}

/// The inclusive line span of the body of `fn name`, if present.
#[must_use]
pub fn fn_span(tokens: &[Token], name: &str) -> Option<(u32, u32)> {
    let mut i = 0;
    while i + 1 < tokens.len() {
        if tokens[i].text == "fn" && tokens[i + 1].text == name {
            let mut j = i + 2;
            while j < tokens.len() && tokens[j].text != "{" {
                j += 1;
            }
            let start = tokens.get(j)?.line;
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((start, tokens[j].line));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// True when `line` falls inside any of `spans` (inclusive).
#[must_use]
pub fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        let src = "a // line .unwrap()\nb /* outer /* inner */ still */ c";
        assert_eq!(texts(src), ["a", "b", "c"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "panic!(\"boom\") // not code"; x"#);
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Str));
        assert!(toks.iter().all(|t| t.text != "panic"));
        assert_eq!(toks.last().map(|t| t.text.as_str()), Some("x"));
    }

    #[test]
    fn raw_strings_with_hashes_are_single_tokens() {
        let src = "let s = r#\"has \"quotes\" and .unwrap()\"#; done";
        let toks = lex(src);
        assert!(toks.iter().all(|t| t.text != "unwrap"));
        assert_eq!(toks.last().map(|t| t.text.as_str()), Some("done"));
        // Byte-string and plain-raw variants too.
        assert!(lex("br#\"x\"# y").iter().any(|t| t.text == "y"));
        assert!(lex("r\"x\" y").iter().any(|t| t.text == "y"));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn multichar_operators_lex_as_one_token() {
        assert_eq!(
            texts("a += b << c >>= d .. e"),
            ["a", "+=", "b", "<<", "c", ">>=", "d", "..", "e"]
        );
        assert_eq!(
            texts("x::y -> z => w"),
            ["x", "::", "y", "->", "z", "=>", "w"]
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_span_covers_the_mod_block() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {\n        x.unwrap();\n    }\n}\nfn after() {}\n";
        let toks = lex(src);
        let spans = test_spans(&toks);
        assert_eq!(spans, vec![(3, 8)]);
        assert!(in_spans(&spans, 6));
        assert!(!in_spans(&spans, 1));
        assert!(!in_spans(&spans, 9));
    }

    #[test]
    fn cfg_test_span_handles_braceless_items() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans, vec![(1, 2)]);
    }

    #[test]
    fn fn_span_finds_the_body() {
        let src = "impl M {\n    fn charge(&mut self) {\n        self.x += 1;\n    }\n    fn other(&self) {}\n}\n";
        let toks = lex(src);
        assert_eq!(fn_span(&toks, "charge"), Some((2, 4)));
        assert_eq!(fn_span(&toks, "missing"), None);
    }

    #[test]
    fn numbers_keep_suffixes_and_underscores() {
        let toks = lex("0x8000_0000u64 1.5 12usize");
        assert!(toks.iter().all(|t| t.kind == TokKind::Num));
        assert_eq!(toks.len(), 3);
    }
}
