//! `mtlb-analysis` — the workspace invariant linter, as a library.
//!
//! Lexes the simulator's own Rust sources (dependency-free, offline)
//! and enforces seven invariants deny-by-default, with violations
//! either fixed or justified in the checked-in
//! `analysis-allowlist.toml`:
//!
//! * **addr-domain** — no arithmetic or casts on bare integers in
//!   address-carrying code; the `ShadowAddr`/`RealAddr` typestate keeps
//!   shadow vs real confusion a type error, so code must stay in the
//!   typed domain.
//! * **counter-overflow** — unchecked `+=` on `u64` counters (fields of
//!   `pub struct …Stats`, plus the machine's deferred accumulators)
//!   must be `saturating_add`/`checked_add` outside `Machine::charge`.
//! * **counter-symmetry** — every `pub struct …Stats` is exhaustively
//!   destructured by `Machine::audit` (or allowlisted with a reason).
//! * **cycle-funnel** — cycle counters are mutated only inside
//!   `Machine::charge`, keeping the debug auditor's reconciliation
//!   sound.
//! * **determinism** — report-feeding crates use no
//!   `std::collections::HashMap`/`HashSet`, read no wall clock
//!   (`Instant`/`SystemTime`), and never iterate a `FastMap` through
//!   hash-ordered adapters; the bench wall-clock perimeter is the sole
//!   allowlisted exception.
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!`-family calls in
//!   core simulator crates outside `#[cfg(test)]` regions.
//! * **shootdown-completeness** — every pub `Kernel` method that writes
//!   mapping state reaches `queue_shootdown` through the call graph, or
//!   carries an allowlist entry (the paper's §2.5 pageout exemption).
//!
//! The structural machinery lives in [`items`] (functions, impl-block
//! owners, stats-struct fields) and [`callgraph`] (name-based
//! intra-workspace call edges); [`engine`] drives the whole pass and
//! renders text or schema-versioned JSON.

pub mod allowlist;
pub mod callgraph;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod lints;
