//! The workspace invariant lints.
//!
//! All lints run over the token stream of [`crate::lexer`] and report
//! [`Diagnostic`]s with 1-based `file:line:col` positions. Violations
//! inside `#[cfg(test)]` spans are never reported — test code may
//! panic and do raw arithmetic freely. The three call-graph-aware
//! lints (shootdown-completeness, determinism, counter-overflow)
//! additionally consume the item layer of [`crate::items`] and the
//! name-based graph of [`crate::callgraph`].

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::lexer::{in_spans, Token};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint name (`addr-domain`, `counter-overflow`, `counter-symmetry`,
    /// `cycle-funnel`, `determinism`, `panic-freedom`,
    /// `shootdown-completeness`).
    pub lint: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub msg: String,
}

/// Binary arithmetic operators that move an integer out of the address
/// domain. Comparisons are deliberately excluded (ordering addresses is
/// fine); so are the compound-assignment forms (they cannot follow a
/// method call).
const ARITH_AFTER: [&str; 9] = ["+", "-", "*", "/", "%", "<<", ">>", "&", "^"];

/// Operators flagged *inside* newtype constructor parentheses. `&`, `|`
/// and `^` are permitted there (mask composition of already-computed
/// fields); shifts and add/sub/mul/div are how offset bugs happen.
const ARITH_INSIDE: [&str; 7] = ["+", "-", "*", "/", "%", "<<", ">>"];

/// The typed address/page-number constructors whose arguments must be
/// pre-computed values, not inline arithmetic.
const NEWTYPES: [&str; 6] = ["VirtAddr", "PhysAddr", "ShadowAddr", "Vpn", "Ppn", "Spn"];

/// Address-domain lint: flags arithmetic on bare integers freshly
/// unwrapped from an address or page-number newtype, and arithmetic
/// written inline inside a newtype constructor call. Both patterns are
/// where shadow/real confusion hides; the typed helpers
/// (`offset`, `offset_from`, `align_down_to`, `ShadowAddr::bus`, …)
/// keep the domain visible to the type checker.
pub fn addr_domain(path: &str, tokens: &[Token], skip: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        // `.get()` / `.index()` immediately followed by arithmetic or a
        // cast: the raw integer escapes the newtype and is computed on.
        if (tokens[i].text == "get" || tokens[i].text == "index")
            && i >= 1
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
            && tokens.get(i + 2).is_some_and(|t| t.text == ")")
        {
            if let Some(next) = tokens.get(i + 3) {
                let flagged = ARITH_AFTER.contains(&next.text.as_str()) || next.text == "as";
                if flagged && !in_spans(skip, tokens[i].line) {
                    out.push(Diagnostic {
                        lint: "addr-domain",
                        path: path.into(),
                        line: tokens[i].line,
                        col: tokens[i].col,
                        msg: format!(
                            "arithmetic/cast on the bare integer from `.{}()`; \
                             use the typed helpers (offset, offset_from, align_down_to) \
                             or let-bind with a justifying comment",
                            tokens[i].text
                        ),
                    });
                }
            }
        }
        // Inline arithmetic inside `VirtAddr::new(…)` and friends: the
        // computation happens in no domain at all.
        if NEWTYPES.contains(&tokens[i].text.as_str())
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
            && tokens.get(i + 2).is_some_and(|t| t.text == "new")
            && tokens.get(i + 3).is_some_and(|t| t.text == "(")
        {
            let mut depth = 0usize;
            let mut j = i + 3;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    op if depth >= 1 && ARITH_INSIDE.contains(&op) => {
                        // Only binary position: `*x` (deref) and `-1`
                        // (negation) follow a delimiter or operator,
                        // never a value.
                        let binary = j >= 1
                            && (matches!(tokens[j - 1].kind, crate::lexer::TokKind::Ident)
                                || matches!(tokens[j - 1].kind, crate::lexer::TokKind::Num)
                                || tokens[j - 1].text == ")"
                                || tokens[j - 1].text == "]");
                        if binary && !in_spans(skip, tokens[j].line) {
                            out.push(Diagnostic {
                                lint: "addr-domain",
                                path: path.into(),
                                line: tokens[j].line,
                                col: tokens[j].col,
                                msg: format!(
                                    "raw `{}` arithmetic inside `{}::new(…)`; compute in \
                                     the typed domain and convert at the boundary",
                                    op, tokens[i].text
                                ),
                            });
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// Cycle-funnel lint: every mutation of a `buckets.<field>` cycle
/// counter must go through `Machine::charge` — the one place that pairs
/// the charge with its trace event, so the debug auditor can reconcile
/// buckets against component counters.
///
/// The fast-forward engine adds a second funnel concern: replaying
/// component hit counters via `.note_fast_hits(…)` skips the real
/// lookup path, so any call site outside the sanctioned batch-charge
/// entry points (`replay_spans`: the page-resident engines
/// `memo_access`/`stream`/`execute_inner` plus the trace-replay
/// engines `commit_span_agg`/`loop_fast_forward`/`replay_scalar_span`)
/// would let simulated statistics drift from the slow path silently.
/// The perimeter covers `crates/sim/src/` and `crates/trace/src/` —
/// the batch replayer interprets recorded ops against the same
/// machine, so a rogue counter write there is just as corrupting.
pub fn cycle_funnel(
    path: &str,
    tokens: &[Token],
    skip: &[(u32, u32)],
    charge_span: Option<(u32, u32)>,
    replay_spans: &[(u32, u32)],
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..tokens.len() {
        if tokens[i].text == "buckets"
            && tokens.get(i + 1).is_some_and(|t| t.text == ".")
            && tokens
                .get(i + 3)
                .is_some_and(|t| matches!(t.text.as_str(), "+=" | "-=" | "="))
        {
            let line = tokens[i].line;
            let in_charge = charge_span.is_some_and(|(a, b)| line >= a && line <= b);
            if !in_charge && !in_spans(skip, line) {
                out.push(Diagnostic {
                    lint: "cycle-funnel",
                    path: path.into(),
                    line,
                    col: tokens[i].col,
                    msg: format!(
                        "cycle counter `buckets.{}` mutated outside the `Machine::charge` funnel",
                        tokens[i + 2].text
                    ),
                });
            }
        }
        // `.note_fast_hits(` — a method *call* (the `fn note_fast_hits`
        // definitions in the component crates are preceded by `fn`, not
        // `.`, and never match).
        if tokens[i].text == "note_fast_hits"
            && i >= 1
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|t| t.text == "(")
        {
            let line = tokens[i].line;
            if !in_spans(replay_spans, line) && !in_spans(skip, line) {
                out.push(Diagnostic {
                    lint: "cycle-funnel",
                    path: path.into(),
                    line,
                    col: tokens[i].col,
                    msg: "fast-hit counter replay `.note_fast_hits(…)` outside the \
                          sanctioned batch-charge entry points \
                          (`memo_access`/`stream`/`execute_inner`/`commit_span_agg`/\
                          `loop_fast_forward`/`replay_scalar_span`)"
                        .into(),
                });
            }
        }
    }
}

/// Panic-freedom lint: `unwrap`/`expect`/`panic!`-family calls in core
/// simulator code must either become typed `Fault` returns or carry a
/// justified allowlist entry. Asserts are allowed (they state
/// invariants, not control flow); `unwrap_or`, `unwrap_or_else` and
/// `unwrap_or_default` never match (identifier-exact comparison).
pub fn panic_freedom(path: &str, tokens: &[Token], skip: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if in_spans(skip, t.line) {
            continue;
        }
        let method_call =
            i >= 1 && tokens[i - 1].text == "." && tokens.get(i + 1).is_some_and(|n| n.text == "(");
        let bang_macro = tokens.get(i + 1).is_some_and(|n| n.text == "!");
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => method_call,
            "panic" | "unreachable" | "todo" | "unimplemented" => bang_macro,
            _ => false,
        };
        if hit {
            let what = if method_call {
                format!(".{}()", t.text)
            } else {
                format!("{}!", t.text)
            };
            out.push(Diagnostic {
                lint: "panic-freedom",
                path: path.into(),
                line: t.line,
                col: t.col,
                msg: format!(
                    "`{what}` in core simulator code; return a typed Fault or add a \
                     justified allowlist entry"
                ),
            });
        }
    }
}

/// A `pub struct …Stats` found while scanning the workspace.
#[derive(Clone, Debug)]
pub struct StatsStruct {
    /// Struct name (ends in `Stats`).
    pub name: String,
    /// Repo-relative defining file.
    pub path: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Column of the name.
    pub col: u32,
}

/// Finds every `pub struct <X>Stats` definition in a file.
pub fn find_stats_structs(path: &str, tokens: &[Token], out: &mut Vec<StatsStruct>) {
    for i in 0..tokens.len() {
        if tokens[i].text == "pub"
            && tokens.get(i + 1).is_some_and(|t| t.text == "struct")
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.text.ends_with("Stats") && t.text != "Stats")
        {
            out.push(StatsStruct {
                name: tokens[i + 2].text.clone(),
                path: path.into(),
                line: tokens[i + 2].line,
                col: tokens[i + 2].col,
            });
        }
    }
}

/// Names of structs destructured **exhaustively** (no `..` rest pattern)
/// inside the given line span — used on the body of `Machine::audit`.
#[must_use]
pub fn exhaustive_destructures(tokens: &[Token], span: (u32, u32)) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.line < span.0 || t.line > span.1 {
            continue;
        }
        if t.kind == crate::lexer::TokKind::Ident
            && t.text.chars().next().is_some_and(char::is_uppercase)
            && tokens.get(i + 1).is_some_and(|n| n.text == "{")
        {
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_rest = false;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ".." | "..=" => has_rest = true,
                    _ => {}
                }
                j += 1;
            }
            if !has_rest {
                names.push(t.text.clone());
            }
        }
    }
    names
}

/// Counter-symmetry lint: every `pub struct …Stats` in the core crates
/// must be reconciled by the debug cycle auditor — destructured without
/// `..` inside `Machine::audit` so that adding a counter field without
/// deciding its audit story becomes a compile error — or carry an
/// allowlist entry explaining why it stays outside the audit.
pub fn counter_symmetry(structs: &[StatsStruct], audited: &[String], out: &mut Vec<Diagnostic>) {
    for s in structs {
        if !audited.iter().any(|a| a == &s.name) {
            out.push(Diagnostic {
                lint: "counter-symmetry",
                path: s.path.clone(),
                line: s.line,
                col: s.col,
                msg: format!(
                    "stats struct `{}` is not exhaustively destructured in `Machine::audit`; \
                     reconcile it there or allowlist it with a reason",
                    s.name
                ),
            });
        }
    }
}

// --------------------------------------------------------------------
// Shootdown-completeness (call-graph-aware)
// --------------------------------------------------------------------

/// One function of the os crate, annotated with its shootdown-relevant
/// sinks — input to [`shootdown_completeness`].
#[derive(Clone, Debug)]
pub struct KernelFn {
    /// Repo-relative defining file.
    pub path: String,
    /// Function name.
    pub name: String,
    /// Self type of the enclosing impl block, if any.
    pub owner: Option<String>,
    /// Whether the function is `pub`.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Column of the function name.
    pub col: u32,
    /// First direct mapping-state mutation sink in the body, as a
    /// human-readable label (`hpt.insert`, `set_mapping`, …).
    pub mutation: Option<String>,
    /// Whether the body directly queues or pushes a shootdown.
    pub shoots: bool,
}

/// Token patterns that count as *writing mapping state*: HPT bucket
/// writes, MMC shadow-table writes, address-space PTE/superpage-table
/// writes, and the kernel's shadow-region reverse map.
const MUTATION_METHODS: [&str; 6] = [
    "set_mapping",
    "map_page",
    "remap_page",
    "unmap_page",
    "add_superpage",
    "remove_superpage",
];

/// Receivers whose `.insert(…)`/`.remove(…)` calls are mapping-state
/// writes (other receivers — `Vec`, pools, counters — are not).
const MUTATION_RECEIVERS: [&str; 2] = ["hpt", "shadow_regions"];

/// Scans a function body for the shootdown lint's sinks: the first
/// direct mapping-state mutation (if any) and whether the body queues
/// a shootdown (`queue_shootdown(…)` call or a direct
/// `pending_shootdowns.push(…)`).
#[must_use]
pub fn shootdown_sinks(tokens: &[Token], body: (usize, usize)) -> (Option<String>, bool) {
    let mut mutation: Option<String> = None;
    let mut shoots = false;
    let end = body.1.min(tokens.len().saturating_sub(1));
    for i in body.0..=end {
        let t = &tokens[i];
        let method_call =
            i >= 1 && tokens[i - 1].text == "." && tokens.get(i + 1).is_some_and(|n| n.text == "(");
        if !method_call {
            continue;
        }
        match t.text.as_str() {
            "insert" | "remove"
                if i >= 2
                    && MUTATION_RECEIVERS.contains(&tokens[i - 2].text.as_str())
                    && mutation.is_none() =>
            {
                mutation = Some(format!("{}.{}", tokens[i - 2].text, t.text));
            }
            m if MUTATION_METHODS.contains(&m) && mutation.is_none() => {
                mutation = Some(m.to_string());
            }
            "push" if i >= 2 && tokens[i - 2].text == "pending_shootdowns" => shoots = true,
            "queue_shootdown" => shoots = true,
            _ => {}
        }
    }
    (mutation, shoots)
}

/// Shootdown-completeness lint: every **pub** method of `impl Kernel`
/// that writes mapping state — directly or through any helper it can
/// reach in the call graph — must also reach a shootdown queue site
/// (`queue_shootdown` / `pending_shootdowns.push`) or carry an
/// allowlist entry. The per-base-page pageout path (§2.5) deliberately
/// shoots nothing — the superpage TLB entry stays valid across
/// pageout — which is why the *entry points* carry the obligation, not
/// the leaf helpers.
pub fn shootdown_completeness(fns: &[KernelFn], graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let mutated_by: std::collections::BTreeMap<&str, &str> = fns
        .iter()
        .filter_map(|f| f.mutation.as_deref().map(|m| (f.name.as_str(), m)))
        .collect();
    let shooters: BTreeSet<&str> = fns
        .iter()
        .filter(|f| f.shoots)
        .map(|f| f.name.as_str())
        .collect();
    for f in fns {
        if f.owner.as_deref() != Some("Kernel") || !f.is_pub {
            continue;
        }
        // Which reachable function mutates, and through what sink?
        let mut witness: Option<(String, String)> = None;
        graph.reaches(&f.name, |n| {
            if let Some(sink) = mutated_by.get(n) {
                witness = Some((n.to_string(), (*sink).to_string()));
                true
            } else {
                false
            }
        });
        let Some((via, sink)) = witness else {
            continue;
        };
        let shoots = graph.reaches(&f.name, |n| n == "queue_shootdown" || shooters.contains(n));
        if shoots {
            continue;
        }
        let how = if via == f.name {
            format!("`{sink}`")
        } else {
            format!("`{sink}` via `{via}`")
        };
        out.push(Diagnostic {
            lint: "shootdown-completeness",
            path: f.path.clone(),
            line: f.line,
            col: f.col,
            msg: format!(
                "kernel method `{}` writes mapping state ({how}) but reaches no \
                 `queue_shootdown` on any path; queue a shootdown or allowlist it \
                 with the §2.5 justification",
                f.name
            ),
        });
    }
}

/// The invalidation calls `Machine::service_shootdowns` must make while
/// draining the queue: the remote front ends are purged through the
/// `TranslationScheme` trait (all-or-range, matching the two
/// `ShootdownRequest` variants) and the remote micro-ITLBs are purged
/// directly.
const DRAIN_SINKS: [&str; 3] = ["purge_all", "purge_range", "purge"];

/// Drain-side shootdown completeness: the queue side is covered by
/// [`shootdown_completeness`], but a queued request only protects
/// coherence if the machine's drain actually invalidates every remote
/// translation front end. `service_shootdowns` must call each of the
/// drain sinks (`purge_all`, `purge_range`, `purge`) through a method
/// call — the purge path of the
/// `TranslationScheme` trait, so rival schemes are invalidated exactly
/// like the paper's TLB.
pub fn shootdown_drain(
    path: &str,
    tokens: &[Token],
    span: Option<(u32, u32)>,
    out: &mut Vec<Diagnostic>,
) {
    let Some((a, b)) = span else {
        out.push(Diagnostic {
            lint: "shootdown-completeness",
            path: path.into(),
            line: 1,
            col: 1,
            msg: "`fn service_shootdowns` not found; the machine has no shootdown \
                  drain to deliver queued requests to remote cores"
                .into(),
        });
        return;
    };
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.line < a || t.line > b {
            continue;
        }
        let method_call =
            i >= 1 && tokens[i - 1].text == "." && tokens.get(i + 1).is_some_and(|n| n.text == "(");
        if method_call {
            if let Some(sink) = DRAIN_SINKS.iter().find(|s| **s == t.text) {
                seen.insert(sink);
            }
        }
    }
    for sink in DRAIN_SINKS {
        if !seen.contains(sink) {
            out.push(Diagnostic {
                lint: "shootdown-completeness",
                path: path.into(),
                line: a,
                col: 1,
                msg: format!(
                    "`service_shootdowns` never calls `.{sink}(…)`; the drain must \
                     invalidate every remote front end through the TranslationScheme \
                     purge path (and the µITLB)"
                ),
            });
        }
    }
}

// --------------------------------------------------------------------
// Determinism
// --------------------------------------------------------------------

/// Iteration adapters whose order is the hasher's, not the data's.
const ITER_ADAPTERS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
];

/// Determinism lint: report-feeding crates must not use
/// `std::collections::HashMap`/`HashSet` (hasher-ordered iteration and
/// `Debug` output are nondeterministic across runs), must not read the
/// wall clock (`Instant::now`/`SystemTime::now` — the bench wall-clock
/// perimeter is the sole allowlisted exception), and must not iterate a
/// `FastMap` through hash-ordered adapters (lookup is fine; traversal
/// must go through a sorted/ordered copy).
pub fn determinism(path: &str, tokens: &[Token], skip: &[(u32, u32)], out: &mut Vec<Diagnostic>) {
    // Names declared with type `FastMap` in this file (struct fields,
    // lets, parameters): `name : [&] [mut] FastMap`.
    let mut fastmaps: BTreeSet<&str> = BTreeSet::new();
    for i in 0..tokens.len() {
        if tokens[i].text != "FastMap" {
            continue;
        }
        let mut j = i;
        while j >= 1 && matches!(tokens[j - 1].text.as_str(), "&" | "mut") {
            j -= 1;
        }
        if j >= 2 && tokens[j - 1].text == ":" {
            fastmaps.insert(tokens[j - 2].text.as_str());
        }
    }

    for i in 0..tokens.len() {
        let t = &tokens[i];
        if in_spans(skip, t.line) {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => out.push(Diagnostic {
                lint: "determinism",
                path: path.into(),
                line: t.line,
                col: t.col,
                msg: format!(
                    "`{}` in a report-feeding crate: hash order is nondeterministic; \
                     use `BTreeMap`/`BTreeSet`, or `FastMap` with ordered traversal",
                    t.text
                ),
            }),
            "Instant" | "SystemTime"
                if tokens.get(i + 1).is_some_and(|n| n.text == "::")
                    && tokens.get(i + 2).is_some_and(|n| n.text == "now") =>
            {
                out.push(Diagnostic {
                    lint: "determinism",
                    path: path.into(),
                    line: t.line,
                    col: t.col,
                    msg: format!(
                        "wall-clock read `{}::now()` in a report-feeding crate; only the \
                         bench wall-clock perimeter may read host time (allowlisted)",
                        t.text
                    ),
                });
            }
            a if ITER_ADAPTERS.contains(&a)
                && i >= 2
                && tokens[i - 1].text == "."
                && fastmaps.contains(tokens[i - 2].text.as_str())
                && tokens.get(i + 1).is_some_and(|n| n.text == "(") =>
            {
                out.push(Diagnostic {
                    lint: "determinism",
                    path: path.into(),
                    line: t.line,
                    col: t.col,
                    msg: format!(
                        "hash-ordered traversal `{}.{}()` of a FastMap; collect into a \
                         sorted structure before iterating",
                        tokens[i - 2].text,
                        a
                    ),
                });
            }
            _ => {}
        }
    }
}

// --------------------------------------------------------------------
// Counter-overflow
// --------------------------------------------------------------------

/// Counter-overflow lint: unchecked `+=` (or `x = x + …` self-addition)
/// on a `u64` counter — a field of a `pub struct …Stats` or one of the
/// machine's deferred accumulators — must be `saturating_add`/
/// `checked_add`. `Cycles`-typed counters are exempt (their arithmetic
/// already panics on overflow), as is the `Machine::charge` funnel,
/// whose bucket writes the cycle-funnel lint already confines.
pub fn counter_overflow(
    path: &str,
    tokens: &[Token],
    skip: &[(u32, u32)],
    charge_span: Option<(u32, u32)>,
    fields: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let exempt = |line: u32| {
        in_spans(skip, line) || charge_span.is_some_and(|(a, b)| line >= a && line <= b)
    };
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !(t.kind == crate::lexer::TokKind::Ident
            && fields.contains(&t.text)
            && i >= 1
            && tokens[i - 1].text == ".")
        {
            continue;
        }
        if exempt(t.line) {
            continue;
        }
        let next = tokens.get(i + 1).map(|n| n.text.as_str());
        let flagged = match next {
            Some("+=") => true,
            Some("=") => {
                // `x.f = … x.f + …` self-addition before the `;`.
                let mut j = i + 2;
                let mut found = false;
                while j < tokens.len() && tokens[j].text != ";" {
                    if tokens[j].text == t.text && tokens.get(j + 1).is_some_and(|n| n.text == "+")
                    {
                        found = true;
                        break;
                    }
                    j += 1;
                }
                found
            }
            _ => false,
        };
        if flagged {
            out.push(Diagnostic {
                lint: "counter-overflow",
                path: path.into(),
                line: t.line,
                col: t.col,
                msg: format!(
                    "unchecked accumulation on counter `{0}`; write \
                     `{0} = {0}.saturating_add(…)` (or `checked_add`) so a wrapped \
                     counter cannot fabricate results",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{fn_span, lex, test_spans};

    fn run_addr(src: &str) -> Vec<Diagnostic> {
        let toks = lex(src);
        let spans = test_spans(&toks);
        let mut out = Vec::new();
        addr_domain("fixture.rs", &toks, &spans, &mut out);
        out
    }

    fn run_panic(src: &str) -> Vec<Diagnostic> {
        let toks = lex(src);
        let spans = test_spans(&toks);
        let mut out = Vec::new();
        panic_freedom("fixture.rs", &toks, &spans, &mut out);
        out
    }

    #[test]
    fn addr_domain_flags_arith_after_get() {
        let d = run_addr("let x = pa.get() + 4096;");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].lint), (1, "addr-domain"));
        assert_eq!(run_addr("let x = vpn.index() << PAGE_SHIFT;").len(), 1);
        assert_eq!(run_addr("let x = vpn.index() as u32;").len(), 1);
    }

    #[test]
    fn addr_domain_allows_comparisons_and_bindings() {
        assert!(run_addr("if a.get() < b.get() { f(); }").is_empty());
        assert!(run_addr("let raw = pa.get();").is_empty());
        assert!(run_addr("assert_eq!(pa.get(), 7);").is_empty());
    }

    #[test]
    fn addr_domain_flags_arith_inside_constructors() {
        let d = run_addr("let v = Vpn::new(base + i);");
        assert_eq!(d.len(), 1);
        assert!(d[0].msg.contains("Vpn::new"));
        assert_eq!(
            run_addr("let a = PhysAddr::new(pfn << PAGE_SHIFT);").len(),
            1
        );
        assert!(run_addr("let a = PhysAddr::new(RAW_BASE);").is_empty());
        // Other constructors with arithmetic args are out of scope.
        assert!(run_addr("let r = Foo::new(a + b);").is_empty());
    }

    #[test]
    fn addr_domain_skips_test_regions() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let x = pa.get() + 1; }\n}\n";
        assert!(run_addr(src).is_empty());
    }

    #[test]
    fn cycle_funnel_only_allows_charge() {
        let src = "impl M {\n    fn charge(&mut self) {\n        self.buckets.user += c;\n    }\n    fn rogue(&mut self) {\n        self.buckets.kernel += c;\n    }\n}\n";
        let toks = lex(src);
        let span = fn_span(&toks, "charge");
        let mut out = Vec::new();
        cycle_funnel("fixture.rs", &toks, &[], span, &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 6);
        assert!(out[0].msg.contains("buckets.kernel"));
    }

    #[test]
    fn cycle_funnel_flags_fast_hit_replay_outside_the_engine() {
        let src = "impl M {\n    fn memo_access(&mut self) {\n        self.tlb.note_fast_hits(s, 1);\n    }\n    fn stream(&mut self) {\n        self.cache.note_fast_hits(va, pa, k, w);\n    }\n    fn rogue(&mut self) {\n        self.tlb.note_fast_hits(s, n);\n    }\n    fn note_fast_hits(&mut self, n: u64) {\n        self.hits += n;\n    }\n}\n";
        let toks = lex(src);
        let replay: Vec<(u32, u32)> = ["memo_access", "stream"]
            .iter()
            .filter_map(|f| fn_span(&toks, f))
            .collect();
        let mut out = Vec::new();
        cycle_funnel("fixture.rs", &toks, &[], None, &replay, &mut out);
        // Only the call in `rogue` fires: the sanctioned spans cover the
        // engine call sites and the `fn` definition is not a method call.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 9);
        assert!(out[0].msg.contains("note_fast_hits"));
    }

    #[test]
    fn panic_freedom_flags_the_panic_family_only() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    if a == 0 { panic!(\"zero\"); }\n    match a { 1 => unreachable!(), _ => todo!() }\n}\n";
        let d = run_panic(src);
        assert_eq!(d.len(), 5);
        assert_eq!(
            d.iter().map(|x| x.line).collect::<Vec<_>>(),
            vec![2, 3, 4, 5, 5]
        );
    }

    #[test]
    fn panic_freedom_ignores_fallbacks_asserts_and_tests() {
        assert!(run_panic("let a = x.unwrap_or(0);").is_empty());
        assert!(run_panic("let a = x.unwrap_or_else(|| 0);").is_empty());
        assert!(run_panic("let a = x.unwrap_or_default();").is_empty());
        assert!(run_panic("assert!(ok, \"bad\");").is_empty());
        assert!(run_panic("debug_assert_eq!(a, b);").is_empty());
        assert!(run_panic("#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n").is_empty());
        // Strings and comments never trip the lint.
        assert!(run_panic("// calls .unwrap() in prose\nlet s = \".unwrap()\";").is_empty());
    }

    #[test]
    fn counter_symmetry_requires_exhaustive_destructure() {
        let def_src = "pub struct FooStats { pub a: u64 }\npub struct BarStats { pub b: u64 }\n";
        let def_toks = lex(def_src);
        let mut structs = Vec::new();
        find_stats_structs("stats.rs", &def_toks, &mut structs);
        assert_eq!(structs.len(), 2);

        let audit_src = "impl M {\n    fn audit(&self) {\n        let FooStats { a } = s;\n        let BarStats { b, .. } = t;\n    }\n}\n";
        let audit_toks = lex(audit_src);
        let span = fn_span(&audit_toks, "audit").expect("audit span");
        let audited = exhaustive_destructures(&audit_toks, span);
        assert_eq!(audited, vec!["FooStats".to_string()]);

        let mut out = Vec::new();
        counter_symmetry(&structs, &audited, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("BarStats"));
    }

    fn kernel_fns(src: &str) -> (Vec<KernelFn>, CallGraph) {
        let toks = lex(src);
        let fns = crate::items::functions(&toks);
        let graph = CallGraph::build(&[(&toks[..], &fns[..])]);
        let kfns = fns
            .iter()
            .map(|f| {
                let (mutation, shoots) = shootdown_sinks(&toks, f.body);
                KernelFn {
                    path: "crates/os/src/kernel.rs".into(),
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    is_pub: f.is_pub,
                    line: f.line,
                    col: f.col,
                    mutation,
                    shoots,
                }
            })
            .collect();
        (kfns, graph)
    }

    #[test]
    fn shootdown_flags_mutation_without_queue() {
        let src = "impl Kernel {\n    pub fn bad(&mut self) {\n        self.hpt.insert(pte, &mut tm);\n    }\n}\n";
        let (kfns, graph) = kernel_fns(src);
        let mut out = Vec::new();
        shootdown_completeness(&kfns, &graph, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "shootdown-completeness");
        assert!(out[0].msg.contains("`bad`"));
        assert!(out[0].msg.contains("hpt.insert"));
    }

    #[test]
    fn shootdown_accepts_indirect_queue_through_a_helper() {
        // The call-graph case: the pub entry point mutates via one
        // helper and queues the shootdown via another — two levels deep
        // on the queue side. Both obligations resolve transitively.
        let src = "impl Kernel {\n    pub fn remap(&mut self, va: VirtAddr) {\n        self.create_superpage(va);\n    }\n    fn create_superpage(&mut self, va: VirtAddr) {\n        self.hpt.insert(pte, &mut tm);\n        self.invalidate(va);\n    }\n    fn invalidate(&mut self, va: VirtAddr) {\n        self.queue_shootdown(ShootdownRequest::All);\n    }\n    fn queue_shootdown(&mut self, req: ShootdownRequest) {\n        self.pending_shootdowns.push(req);\n    }\n}\n";
        let (kfns, graph) = kernel_fns(src);
        let mut out = Vec::new();
        shootdown_completeness(&kfns, &graph, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn shootdown_obligation_sits_on_pub_entry_points_only() {
        // A private §2.5 helper that pages out without shooting down is
        // fine; the pub caller that *also* never shoots is flagged, and
        // the message names the helper as the witness.
        let src = "impl Kernel {\n    pub fn fault_in(&mut self) {\n        self.swap_in_page(0);\n    }\n    fn swap_in_page(&mut self, index: u64) {\n        ctx.mmc.set_mapping(index, pte, mem);\n    }\n}\nimpl Other {\n    pub fn not_kernel(&mut self) {\n        self.hpt.insert(pte, &mut tm);\n    }\n}\n";
        let (kfns, graph) = kernel_fns(src);
        let mut out = Vec::new();
        shootdown_completeness(&kfns, &graph, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("`set_mapping` via `swap_in_page`"));
    }

    #[test]
    fn shootdown_drain_accepts_a_complete_drain() {
        let src = "impl M {\n    fn service_shootdowns(&mut self) {\n        for core in cores {\n            match req {\n                R::All => core.tlb.purge_all(),\n                R::Range { vpn, pages } => core.tlb.purge_range(vpn, pages),\n            };\n            core.itlb.purge();\n        }\n    }\n}\n";
        let toks = lex(src);
        let span = fn_span(&toks, "service_shootdowns");
        let mut out = Vec::new();
        shootdown_drain("fixture.rs", &toks, span, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn shootdown_drain_flags_missing_purge_paths() {
        // Range requests silently dropped: purge_range never called.
        let src = "impl M {\n    fn service_shootdowns(&mut self) {\n        core.tlb.purge_all();\n        core.itlb.purge();\n    }\n}\n";
        let toks = lex(src);
        let span = fn_span(&toks, "service_shootdowns");
        let mut out = Vec::new();
        shootdown_drain("fixture.rs", &toks, span, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "shootdown-completeness");
        assert!(out[0].msg.contains("purge_range"));
        // A definition (`fn purge_all`) is not a call and does not count.
        let src = "impl M {\n    fn service_shootdowns(&mut self) {\n        fn purge_all() {}\n    }\n}\n";
        let toks = lex(src);
        let span = fn_span(&toks, "service_shootdowns");
        let mut out = Vec::new();
        shootdown_drain("fixture.rs", &toks, span, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn shootdown_drain_flags_a_missing_drain_entirely() {
        let toks = lex("impl M {\n    fn other(&mut self) {}\n}\n");
        let span = fn_span(&toks, "service_shootdowns");
        let mut out = Vec::new();
        shootdown_drain("fixture.rs", &toks, span, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("not found"));
    }

    #[test]
    fn determinism_flags_hash_collections_clocks_and_fastmap_iteration() {
        let src = "use std::collections::HashMap;\nfn report(index: FastMap<K, V>) {\n    let start = Instant::now();\n    for (k, v) in index.iter() {\n        emit(k, v);\n    }\n    let hit = index.get(&key);\n}\n";
        let toks = lex(src);
        let mut out = Vec::new();
        determinism("fixture.rs", &toks, &[], &mut out);
        let lints: Vec<_> = out.iter().map(|d| (d.line, d.msg.as_str())).collect();
        assert_eq!(out.len(), 3, "{lints:?}");
        assert!(out[0].msg.contains("HashMap"));
        assert!(out[1].msg.contains("Instant::now"));
        assert!(out[2].msg.contains("index.iter()"));
        // Lookup through .get() is fine; test spans are skipped.
        let test_src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let toks = lex(test_src);
        let spans = test_spans(&toks);
        let mut out = Vec::new();
        determinism("fixture.rs", &toks, &spans, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn counter_overflow_flags_unchecked_accumulation() {
        let fields: BTreeSet<String> = ["remaps", "shootdowns"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let src = "impl K {\n    fn f(&mut self) {\n        self.stats.remaps += 1;\n        self.stats.shootdowns = self.stats.shootdowns + n;\n        self.stats.remaps = self.stats.remaps.saturating_add(1);\n        self.other += 1;\n    }\n}\n";
        let toks = lex(src);
        let mut out = Vec::new();
        counter_overflow("fixture.rs", &toks, &[], None, &fields, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!((out[0].line, out[1].line), (3, 4));
        // Inside the charge funnel the same write is exempt.
        let mut out = Vec::new();
        counter_overflow("fixture.rs", &toks, &[], Some((1, 8)), &fields, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn fixture_with_seeded_violations_reports_every_kind() {
        // A composite fixture: one violation of each token lint.
        let src = "fn f(pa: PhysAddr) {\n    let x = pa.get() * 2;\n    let v = Ppn::new(x + 1);\n    let y = maybe.unwrap();\n}\n";
        let toks = lex(src);
        let spans = test_spans(&toks);
        let mut out = Vec::new();
        addr_domain("fixture.rs", &toks, &spans, &mut out);
        panic_freedom("fixture.rs", &toks, &spans, &mut out);
        let lints: Vec<_> = out.iter().map(|d| d.lint).collect();
        assert_eq!(lints, ["addr-domain", "addr-domain", "panic-freedom"]);
    }
}
