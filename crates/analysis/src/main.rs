//! `mtlb-analysis` — the workspace invariant linter.
//!
//! Lexes the simulator's own Rust sources (dependency-free, offline)
//! and enforces four invariants deny-by-default, with violations either
//! fixed or justified in the checked-in `analysis-allowlist.toml`:
//!
//! * **addr-domain** — no arithmetic or casts on bare integers in
//!   address-carrying code; the `ShadowAddr`/`RealAddr` typestate keeps
//!   shadow vs real confusion a type error, so code must stay in the
//!   typed domain.
//! * **cycle-funnel** — cycle counters are mutated only inside
//!   `Machine::charge`, keeping the debug auditor's reconciliation
//!   sound.
//! * **panic-freedom** — no `unwrap`/`expect`/`panic!`-family calls in
//!   core simulator crates outside `#[cfg(test)]` regions.
//! * **counter-symmetry** — every `pub struct …Stats` is exhaustively
//!   destructured by `Machine::audit` (or allowlisted with a reason).
//!
//! Exit codes: `0` clean, `1` violations or stale allowlist entries,
//! `2` usage or configuration errors.

mod allowlist;
mod lexer;
mod lints;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lints::Diagnostic;

/// Crates whose `src/` trees are held to panic-freedom and scanned for
/// stats structs.
const CORE_CRATES: [&str; 8] = ["types", "mem", "cache", "tlb", "mmc", "os", "sim", "trace"];

/// Crates whose `src/` trees are address-carrying: they move virtual,
/// shadow and real addresses between domains. The cache crate is
/// deliberately excluded — its index/tag splitting is bit extraction on
/// bus addresses, not domain-crossing arithmetic.
const ADDR_CRATES: [&str; 4] = ["mmc", "os", "tlb", "mem"];

struct SourceFile {
    /// Repo-relative path with forward slashes.
    rel: String,
    /// Raw source lines (for allowlist `contains` matching).
    lines: Vec<String>,
    tokens: Vec<lexer::Token>,
    test_spans: Vec<(u32, u32)>,
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn load_file(root: &Path, abs: &Path) -> Option<SourceFile> {
    let src = std::fs::read_to_string(abs).ok()?;
    let rel = abs
        .strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/");
    let tokens = lexer::lex(&src);
    let test_spans = lexer::test_spans(&tokens);
    Some(SourceFile {
        rel,
        lines: src.lines().map(str::to_owned).collect(),
        tokens,
        test_spans,
    })
}

/// The text an allowlist entry's `contains` is matched against: the
/// violation line plus the following line, so calls split across lines
/// by rustfmt (message on the continuation line) still match.
fn match_window(file: &SourceFile, line: u32) -> String {
    let i = line.saturating_sub(1) as usize;
    let mut window = file.lines.get(i).cloned().unwrap_or_default();
    if let Some(next) = file.lines.get(i + 1) {
        window.push('\n');
        window.push_str(next);
    }
    window
}

fn run(root: &Path, allowlist_path: &Path) -> Result<ExitCode, String> {
    // Load every file once, keyed by repo-relative path.
    let mut files: BTreeMap<String, SourceFile> = BTreeMap::new();
    for krate in CORE_CRATES {
        let mut paths = Vec::new();
        collect_rs_files(&root.join("crates").join(krate).join("src"), &mut paths);
        for p in &paths {
            if let Some(f) = load_file(root, p) {
                files.insert(f.rel.clone(), f);
            }
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no sources found under {} — wrong --root?",
            root.display()
        ));
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut stats_structs = Vec::new();
    for file in files.values() {
        let in_crate = |set: &[&str]| {
            set.iter()
                .any(|c| file.rel.starts_with(&format!("crates/{c}/src/")))
        };
        if in_crate(&ADDR_CRATES) || file.rel == "crates/sim/src/machine.rs" {
            lints::addr_domain(&file.rel, &file.tokens, &file.test_spans, &mut diags);
        }
        if file.rel.starts_with("crates/sim/src/") {
            let charge = lexer::fn_span(&file.tokens, "charge");
            let replay: Vec<(u32, u32)> = ["memo_access", "stream", "execute_inner"]
                .iter()
                .filter_map(|f| lexer::fn_span(&file.tokens, f))
                .collect();
            lints::cycle_funnel(
                &file.rel,
                &file.tokens,
                &file.test_spans,
                charge,
                &replay,
                &mut diags,
            );
        }
        lints::panic_freedom(&file.rel, &file.tokens, &file.test_spans, &mut diags);
        lints::find_stats_structs(&file.rel, &file.tokens, &mut stats_structs);
    }

    // Counter-symmetry: reconcile against Machine::audit in machine.rs.
    let machine = files
        .get("crates/sim/src/machine.rs")
        .ok_or("crates/sim/src/machine.rs not found")?;
    let audit_span = lexer::fn_span(&machine.tokens, "audit")
        .ok_or("fn audit not found in crates/sim/src/machine.rs")?;
    let audited = lints::exhaustive_destructures(&machine.tokens, audit_span);
    stats_structs.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    lints::counter_symmetry(&stats_structs, &audited, &mut diags);

    // Apply the allowlist.
    let allow_text = std::fs::read_to_string(allowlist_path)
        .map_err(|e| format!("cannot read {}: {e}", allowlist_path.display()))?;
    let entries = allowlist::parse(&allow_text)?;
    let mut matched = vec![0usize; entries.len()];
    let mut open: Vec<&Diagnostic> = Vec::new();
    for d in &diags {
        let window = files.get(&d.path).map(|f| match_window(f, d.line));
        let mut suppressed = false;
        for (i, e) in entries.iter().enumerate() {
            if e.lint == d.lint
                && e.path == d.path
                && window.as_deref().is_some_and(|w| w.contains(&e.contains))
            {
                matched[i] += 1;
                suppressed = true;
            }
        }
        if !suppressed {
            open.push(d);
        }
    }
    open.sort_by_key(|d| (d.path.clone(), d.line, d.col, d.lint));

    for d in &open {
        println!("{}:{}:{}: [{}] {}", d.path, d.line, d.col, d.lint, d.msg);
    }
    let mut stale = 0usize;
    for (e, n) in entries.iter().zip(&matched) {
        if *n == 0 {
            stale += 1;
            println!(
                "analysis-allowlist.toml:{}: stale [[allow]] entry ({} / {} / \"{}\") \
                 matches no violation — remove it",
                e.line, e.lint, e.path, e.contains
            );
        }
    }

    let suppressed: usize = matched.iter().sum();
    println!(
        "mtlb-analysis: {} files, {} violations, {} suppressed by {} allowlist entries, {} stale",
        files.len(),
        open.len(),
        suppressed,
        entries.len(),
        stale
    );
    if open.is_empty() && stale == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    // Defaults put the analyzer at <workspace>/crates/analysis, so the
    // workspace root is two levels up from the manifest.
    let default_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf);

    let mut root = default_root;
    let mut allowlist_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allowlist" => allowlist_override = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "mtlb-analysis [--root <workspace>] [--allowlist <toml>]\n\
                     Lints the workspace sources for simulator invariants."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mtlb-analysis: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root else {
        eprintln!("mtlb-analysis: --root requires a path");
        return ExitCode::from(2);
    };
    let allowlist_path = allowlist_override.unwrap_or_else(|| root.join("analysis-allowlist.toml"));
    match run(&root, &allowlist_path) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("mtlb-analysis: {msg}");
            ExitCode::from(2)
        }
    }
}
