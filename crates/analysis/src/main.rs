//! `mtlb-analysis` — the workspace invariant linter (CLI).
//!
//! Thin wrapper over [`mtlb_analysis::engine`]: parses `--root`,
//! `--allowlist` and `--format`, runs the analysis, prints the outcome
//! (text or schema-versioned JSON), and maps it to an exit code.
//!
//! Exit codes: `0` clean, `1` violations or stale allowlist entries,
//! `2` usage or configuration errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mtlb_analysis::engine;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    // Defaults put the analyzer at <workspace>/crates/analysis, so the
    // workspace root is two levels up from the manifest.
    let default_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf);

    let mut root = default_root;
    let mut allowlist_override: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allowlist" => allowlist_override = args.next().map(PathBuf::from),
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "mtlb-analysis: --format takes `text` or `json`, got `{}`",
                        other.unwrap_or("")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "mtlb-analysis [--root <workspace>] [--allowlist <toml>] \
                     [--format text|json]\n\
                     Lints the workspace sources for simulator invariants."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mtlb-analysis: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root else {
        eprintln!("mtlb-analysis: --root requires a path");
        return ExitCode::from(2);
    };
    let allowlist_path = allowlist_override.unwrap_or_else(|| root.join("analysis-allowlist.toml"));
    match engine::analyze(&root, &allowlist_path) {
        Ok(outcome) => {
            let rendered = match format {
                Format::Text => engine::render_text(&outcome),
                Format::Json => engine::render_json(&outcome),
            };
            print!("{rendered}");
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("mtlb-analysis: {msg}");
            ExitCode::from(2)
        }
    }
}
