//! Integration tests: run the full engine over the seeded-violation
//! fixture workspaces under `tests/fixtures/` and assert the exact
//! outcome — each lint fires on its positive case, stays quiet on the
//! clean case, and suppresses the allowlisted case; stale allowlist
//! entries fail the run with a usable hint; JSON output is stable.

use std::path::PathBuf;

use mtlb_analysis::engine;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str, allowlist: &str) -> engine::Outcome {
    let root = fixture(name);
    engine::analyze(&root, &root.join(allowlist)).expect("fixture analyzes")
}

fn lint_summary(o: &engine::Outcome, lint: &str) -> engine::LintSummary {
    o.per_lint
        .iter()
        .find(|(l, _)| *l == lint)
        .map(|(_, s)| *s)
        .expect("lint present in summary")
}

#[test]
fn shootdown_fixture_flags_leak_and_suppresses_exemption() {
    let o = analyze("shootdown", "allowlist.toml");
    let s = lint_summary(&o, "shootdown-completeness");
    assert_eq!((s.open, s.suppressed, s.entries), (1, 1, 1));
    assert_eq!(o.open.len(), 1, "only the seeded violation: {:?}", o.open);
    let d = &o.open[0];
    assert_eq!(d.lint, "shootdown-completeness");
    assert!(
        d.msg.contains("`leak_mapping`"),
        "names the method: {}",
        d.msg
    );
    assert!(
        d.msg.contains("via `write_map`"),
        "names the mutation witness helper: {}",
        d.msg
    );
    // `good_remap` reaches queue_shootdown two helpers deep and must
    // not be reported; the exemption is suppressed, not open.
    assert!(o.stale.is_empty());
    assert!(!o.is_clean());
}

#[test]
fn stale_allowlist_entry_fails_with_a_repair_hint() {
    let o = analyze("shootdown", "stale-allowlist.toml");
    assert_eq!(o.stale.len(), 1, "the good_remap entry is stale");
    let s = &o.stale[0];
    assert_eq!(s.entry.contains, "pub fn good_remap(");
    assert!(
        s.hint.contains("still matches") && s.hint.contains("delete the entry"),
        "hint points at the still-matching line: {}",
        s.hint
    );
    assert!(!o.is_clean(), "stale entries fail the run");
}

#[test]
fn determinism_fixture_flags_hashmap_and_fastmap_iteration() {
    let o = analyze("determinism", "allowlist.toml");
    let s = lint_summary(&o, "determinism");
    assert_eq!((s.open, s.suppressed, s.entries), (2, 1, 1));
    assert_eq!(o.open.len(), 2);
    assert!(o.open[0].msg.contains("`HashMap`"), "{}", o.open[0].msg);
    assert!(
        o.open[1].msg.contains("by_name.values()"),
        "hash-ordered FastMap traversal is named: {}",
        o.open[1].msg
    );
    // Lookups (`get`) and BTreeMap traversal stay clean; the wall-clock
    // read is suppressed by the allowlist.
    assert!(o.stale.is_empty());
}

#[test]
fn overflow_fixture_flags_unchecked_add_and_accepts_saturating() {
    let o = analyze("overflow", "allowlist.toml");
    let s = lint_summary(&o, "counter-overflow");
    assert_eq!((s.open, s.suppressed, s.entries), (1, 1, 1));
    assert_eq!(o.open.len(), 1, "saturating_add stays clean: {:?}", o.open);
    let d = &o.open[0];
    assert!(d.msg.contains("`hits`"), "names the counter: {}", d.msg);
    // The destructure in the stub audit keeps counter-symmetry quiet.
    assert_eq!(lint_summary(&o, "counter-symmetry").open, 0);
}

#[test]
fn json_rendering_is_stable_and_schema_versioned() {
    let a = engine::render_json(&analyze("shootdown", "allowlist.toml"));
    let b = engine::render_json(&analyze("shootdown", "allowlist.toml"));
    assert_eq!(a, b, "back-to-back runs render byte-identically");
    assert!(a.contains(&format!(
        "\"schema_version\": {}",
        engine::JSON_SCHEMA_VERSION
    )));
    assert!(a.contains("\"lint\": \"shootdown-completeness\""));
}
