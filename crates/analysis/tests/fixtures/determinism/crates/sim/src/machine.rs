//! Minimal machine stub: gives the engine its `Machine::audit` anchor.

pub struct Machine;

impl Machine {
    fn audit(&self) {}
}
