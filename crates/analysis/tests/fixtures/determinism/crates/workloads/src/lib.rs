//! Seeded determinism cases: a HashMap import (violation), a FastMap
//! traversed through a hash-ordered adapter (violation), an allowlisted
//! wall-clock read, and a clean BTreeMap user.

use std::collections::BTreeMap;
use std::collections::HashMap;

pub struct Table {
    by_name: FastMap<String, u64>,
    sorted: BTreeMap<String, u64>,
}

impl Table {
    /// VIOLATION: hash-ordered traversal of a FastMap.
    pub fn dump(&self) -> Vec<u64> {
        self.by_name.values().copied().collect()
    }

    /// CLEAN: lookups into a FastMap are order-free.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.by_name.get(name).copied()
    }

    /// CLEAN: ordered traversal.
    pub fn rows(&self) -> Vec<u64> {
        self.sorted.values().copied().collect()
    }

    /// ALLOWLISTED: the fixture's wall-clock perimeter.
    pub fn timed(&self) -> Duration {
        let start = Instant::now();
        start.elapsed()
    }
}
