//! Machine stub whose `audit` exhaustively destructures the fixture's
//! stats struct, keeping the counter-symmetry lint quiet.

pub struct Machine;

impl Machine {
    fn audit(&self, s: &FixtureStats) {
        let FixtureStats { hits, misses } = s;
        let _ = (hits, misses);
    }
}
