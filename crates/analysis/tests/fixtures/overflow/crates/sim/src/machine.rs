//! Machine stub whose `audit` exhaustively destructures the fixture's
//! stats struct (keeping the counter-symmetry lint quiet) and whose
//! `service_shootdowns` drain is complete.

pub struct Machine;

impl Machine {
    fn audit(&self, s: &FixtureStats) {
        let FixtureStats { hits, misses } = s;
        let _ = (hits, misses);
    }

    fn service_shootdowns(&mut self) {
        for core in self.cores.iter_mut() {
            match req {
                Request::All => core.tlb.purge_all(),
                Request::Range { vpn, pages } => core.tlb.purge_range(vpn, pages),
            };
            core.itlb.purge();
        }
    }
}
