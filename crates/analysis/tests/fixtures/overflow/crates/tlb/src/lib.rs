//! Seeded counter-overflow cases: an unchecked `+=` on a stats counter
//! (violation), an allowlisted one, and a clean saturating write.

pub struct FixtureStats {
    pub hits: u64,
    pub misses: u64,
}

pub struct Unit {
    stats: FixtureStats,
}

impl Unit {
    /// VIOLATION: unchecked accumulation on a `u64` stats counter.
    pub fn record_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// ALLOWLISTED: unchecked accumulation, justified in allowlist.toml.
    pub fn record_miss(&mut self, n: u64) {
        self.stats.misses += n;
    }

    /// CLEAN: saturating accumulation.
    pub fn record_hits(&mut self, n: u64) {
        self.stats.hits = self.stats.hits.saturating_add(n);
    }
}
