//! Seeded shootdown-completeness cases: one violation, one allowlisted
//! exemption, one clean method that reaches the queue through helpers.

pub struct Kernel;

impl Kernel {
    /// VIOLATION: mutates mapping state through a helper but never
    /// reaches `queue_shootdown` on any path.
    pub fn leak_mapping(&mut self) {
        self.write_map();
    }

    fn write_map(&mut self) {
        self.hpt.insert(pte, tm);
    }

    /// ALLOWLISTED: direct mapping write, exempted in allowlist.toml
    /// with the fixture's stand-in for the paper's swap-in argument.
    pub fn exempt_swap_in(&mut self, ctx: &mut Ctx) {
        ctx.mmc.set_mapping(index, pte, mem);
    }

    /// CLEAN: the mutation and the shootdown are both two calls deep;
    /// the call graph must connect them.
    pub fn good_remap(&mut self) {
        self.mutate_and_notify();
    }

    fn mutate_and_notify(&mut self) {
        self.shadow_regions.insert(region);
        self.invalidate();
    }

    fn invalidate(&mut self) {
        self.queue_shootdown(req);
    }

    fn queue_shootdown(&mut self, req: Req) {
        self.pending.push(req);
    }
}
