//! Minimal machine stub: gives the engine its `Machine::audit` anchor
//! and a complete `service_shootdowns` drain.

pub struct Machine;

impl Machine {
    fn audit(&self) {}

    fn service_shootdowns(&mut self) {
        for core in self.cores.iter_mut() {
            match req {
                Request::All => core.tlb.purge_all(),
                Request::Range { vpn, pages } => core.tlb.purge_range(vpn, pages),
            };
            core.itlb.purge();
        }
    }
}
