//! Component microbenches: the hot structures of the simulator itself
//! (CPU TLB lookups, MTLB-backed MMC fills, hashed-page-table walks,
//! shadow allocators). These time *host* performance of the models,
//! complementing the simulated-cycle experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtlb_cache::{CacheConfig, DataCache};
use mtlb_mem::GuestMemory;
use mtlb_mmc::{BusOp, Mmc, MmcConfig, ShadowPte, ShadowRange};
use mtlb_os::{BucketAllocator, BucketPartition, BuddyAllocator, ShadowAllocator};
use mtlb_tlb::{CpuTlb, HashedPageTable, HptConfig, Pte, PteMemory, TlbEntry};
use mtlb_types::{AccessKind, PageSize, PhysAddr, Ppn, PrivilegeLevel, Prot, VirtAddr, Vpn};

fn cpu_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_tlb");
    for entries in [64usize, 128, 256] {
        let mut tlb = CpuTlb::new(entries);
        for i in 0..entries as u64 {
            tlb.insert(
                TlbEntry::new(
                    Vpn::new(i),
                    Ppn::new(0x1000 + i),
                    PageSize::Base4K,
                    Prot::RW,
                )
                .expect("aligned"),
            );
        }
        group.bench_function(BenchmarkId::new("hit_scan", entries), |b| {
            let mut vpn = 0u64;
            b.iter(|| {
                vpn = (vpn + 7) % entries as u64;
                tlb.translate(
                    VirtAddr::new(vpn << 12),
                    AccessKind::Read,
                    PrivilegeLevel::User,
                )
            });
        });
        group.bench_function(BenchmarkId::new("repeat_hit", entries), |b| {
            b.iter(|| {
                tlb.translate(
                    VirtAddr::new(0x5000),
                    AccessKind::Read,
                    PrivilegeLevel::User,
                )
            });
        });
    }
    group.finish();
}

fn mmc_fills(c: &mut Criterion) {
    let mut group = c.benchmark_group("mmc");
    let dram = 64 << 20;
    let mut mmc = Mmc::new(MmcConfig::paper_default(dram));
    let mut mem = GuestMemory::new(dram);
    for i in 0..1024u64 {
        mmc.set_mapping(i, ShadowPte::present(Ppn::new(0x800 + i)), &mut mem);
    }
    group.bench_function("shadow_fill_hot", |b| {
        b.iter(|| {
            mmc.bus_access(PhysAddr::new(0x8000_0000 + 64), BusOp::FillShared, &mut mem)
                .expect("mapped")
        });
    });
    let mut page = 0u64;
    group.bench_function("shadow_fill_streaming", |b| {
        b.iter(|| {
            page = (page + 1) % 1024;
            mmc.bus_access(
                PhysAddr::new(0x8000_0000 + page * 4096),
                BusOp::FillShared,
                &mut mem,
            )
            .expect("mapped")
        });
    });
    group.bench_function("real_fill", |b| {
        b.iter(|| {
            mmc.bus_access(PhysAddr::new(0x20_0000), BusOp::FillShared, &mut mem)
                .expect("real")
        });
    });
    group.finish();
}

struct FlatMem(GuestMemory);

impl PteMemory for FlatMem {
    fn read_u64(&mut self, pa: PhysAddr) -> u64 {
        self.0.read_u64(pa)
    }
    fn write_u64(&mut self, pa: PhysAddr, value: u64) {
        self.0.write_u64(pa, value);
    }
}

fn hpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashed_page_table");
    let mut hpt = HashedPageTable::new(HptConfig::paper_default(PhysAddr::new(0x10_0000)));
    let mut mem = FlatMem(GuestMemory::new(64 << 20));
    for i in 0..10_000u64 {
        hpt.insert(
            Pte {
                vpn: Vpn::new(0x10000 + i),
                pfn: Ppn::new(0x2000 + i),
                size: PageSize::Base4K,
                prot: Prot::RW,
            },
            &mut mem,
        )
        .expect("capacity");
    }
    let mut i = 0u64;
    group.bench_function("lookup_10k_entries", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            hpt.lookup(Vpn::new(0x10000 + i), &mut mem)
        });
    });
    group.finish();
}

fn cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_cache");
    let mut cache = DataCache::new(CacheConfig::paper_default());
    let mut a = 0u64;
    group.bench_function("access_stream", |b| {
        b.iter(|| {
            a = (a + 32) % (1 << 20);
            cache.access_read(VirtAddr::new(a), PhysAddr::new(a))
        });
    });
    group.bench_function("flush_page", |b| {
        b.iter(|| cache.flush_page(Vpn::new(3), Ppn::new(3)));
    });
    group.finish();
}

fn allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_allocators");
    group.bench_function("bucket_alloc_free", |b| {
        let mut a = BucketAllocator::new(
            ShadowRange::paper_default(),
            &BucketPartition::paper_default(),
        );
        b.iter(|| {
            let r = a.alloc(PageSize::Size64K).expect("space");
            a.free(r, PageSize::Size64K);
        });
    });
    group.bench_function("buddy_alloc_free", |b| {
        let mut a = BuddyAllocator::new(ShadowRange::paper_default());
        b.iter(|| {
            let r = a.alloc(PageSize::Size64K).expect("space");
            a.free(r, PageSize::Size64K);
        });
    });
    group.finish();
}

criterion_group!(benches, cpu_tlb, mmc_fills, hpt, cache, allocators);
criterion_main!(benches);
