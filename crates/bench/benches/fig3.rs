//! Figure 3 bench: each workload on the three interesting machines
//! (64-entry base, 64-entry + MTLB, 128-entry base), at test scale so
//! Criterion can iterate. The `repro` binary runs the paper-scale
//! version of the same sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtlb_bench::experiments::{workload_by_name, WORKLOADS};
use mtlb_sim::{Machine, MachineConfig};
use mtlb_workloads::Scale;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for name in WORKLOADS {
        for (label, mk) in [
            ("base64", MachineConfig::paper_base(64)),
            ("mtlb64", MachineConfig::paper_mtlb(64)),
            ("base128", MachineConfig::paper_base(128)),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &mk, |b, cfg| {
                b.iter(|| {
                    let mut machine = Machine::new(cfg.clone());
                    let outcome = workload_by_name(name, Scale::Test).run(&mut machine);
                    assert!(outcome.verified);
                    machine.cycles().get()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
