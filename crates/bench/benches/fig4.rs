//! Figure 4 bench: em3d across MTLB geometries (test scale); the
//! `repro` binary runs the paper-scale sweep and prints 4(A)/4(B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtlb_bench::experiments::workload_by_name;
use mtlb_sim::{Machine, MachineConfig};
use mtlb_workloads::Scale;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("em3d", "no-mtlb"), |b| {
        b.iter(|| {
            let mut machine = Machine::new(MachineConfig::paper_base(128));
            workload_by_name("em3d", Scale::Test).run(&mut machine);
            machine.cycles().get()
        });
    });
    for (entries, assoc) in [(64, 1), (128, 2), (512, 4)] {
        group.bench_function(
            BenchmarkId::new("em3d", format!("mtlb-{entries}x{assoc}")),
            |b| {
                b.iter(|| {
                    let cfg = MachineConfig::paper_mtlb(128).with_mtlb_geometry(entries, assoc);
                    let mut machine = Machine::new(cfg);
                    workload_by_name("em3d", Scale::Test).run(&mut machine);
                    machine.cycles().get()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
