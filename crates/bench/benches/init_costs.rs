//! §3.3 bench: remap (flush-dominated) versus page copy — the cost
//! trade the shadow mechanism wins by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use mtlb_bench::experiments::init_costs;
use mtlb_sim::{Machine, MachineConfig};
use mtlb_types::{Prot, VirtAddr, PAGE_SIZE};
use mtlb_workloads::AccessExt;

fn remap_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("init_costs");
    group.sample_size(10);

    group.bench_function("remap_128_pages", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::paper_mtlb(128));
            let base = VirtAddr::new(0x1000_0000);
            m.map_region(base, 128 * PAGE_SIZE, Prot::RW);
            for p in 0..128u64 {
                m.write_u64(base + p * PAGE_SIZE, p);
            }
            let rep = m.remap(base, 128 * PAGE_SIZE);
            rep.total_cycles().get()
        });
    });

    group.bench_function("full_costs_report_1120_pages", |b| {
        b.iter(|| init_costs(1120).remap_total_cycles);
    });

    group.finish();
}

criterion_group!(benches, remap_costs);
criterion_main!(benches);
