//! §2.5 bench: steady-state superpage eviction under the two paging
//! policies (per-base-page dirty bits vs whole-superpage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mtlb_os::PagingPolicy;
use mtlb_sim::{Machine, MachineConfig};
use mtlb_types::{Prot, VirtAddr, PAGE_SIZE};
use mtlb_workloads::AccessExt;

fn eviction(c: &mut Criterion) {
    let mut group = c.benchmark_group("paging");
    group.sample_size(10);
    for (label, policy) in [
        ("per-base-page", PagingPolicy::PerBasePage),
        ("whole-superpage", PagingPolicy::WholeSuperpage),
    ] {
        group.bench_function(BenchmarkId::new("evict_10pct_dirty", label), |b| {
            b.iter(|| {
                let mut cfg = MachineConfig::paper_mtlb(64);
                cfg.kernel.paging = policy;
                let mut m = Machine::new(cfg);
                let base = VirtAddr::new(0x1000_0000);
                let len = 256 * 1024;
                m.map_region(base, len, Prot::RW);
                m.remap(base, len);
                for p in 0..64u64 {
                    m.write_u64(base + p * PAGE_SIZE, p);
                }
                // Reach steady state, then dirty ~10% and evict.
                m.swap_out_superpage(base.vpn());
                for p in 0..64u64 {
                    let _ = m.read_u64(base + p * PAGE_SIZE);
                }
                for p in [5u64, 20, 35, 50, 60, 63] {
                    m.write_u64(base + p * PAGE_SIZE + 8, p);
                }
                let rep = m.swap_out_superpage(base.vpn());
                rep.pages_written
            });
        });
    }
    group.finish();
}

criterion_group!(benches, eviction);
criterion_main!(benches);
