//! `bench_compare` — host-performance regression gate over two
//! `--bench-report` files.
//!
//! ```text
//! bench_compare OLD.json NEW.json [--max-regress PCT] [--min-wall-ns N] [--cycles-only]
//! ```
//!
//! Compares `total_wall_ns` and every `jobs_detail` row whose label
//! appears in both reports. Exits non-zero when:
//!
//! * the new total, or any matching job above the noise floor, is more
//!   than `--max-regress` percent (default 25) slower than the old one
//!   (rows below `--min-wall-ns`, default 50 ms, in the old report are
//!   skipped — sub-noise jobs regress by large factors on a busy host
//!   without meaning anything);
//! * a label present in the baseline is missing from the candidate —
//!   a silently dropped job would otherwise make the totals
//!   incomparable and could hide a removed sweep row;
//! * a matching label reports different `sim_cycles` — host-side
//!   optimisations must never change simulated time, so a cycle drift
//!   is a correctness failure, not a perf one.
//!
//! Labels present only in the candidate (a newly added experiment row,
//! e.g. the fig5 scheme shoot-out against a pre-fig5 baseline) are
//! listed as informational `NEW` lines and never fail the gate.
//!
//! `--cycles-only` turns the run into a pure fidelity gate: wall-time
//! deltas (total and per-job) are reported but never fail; only
//! `MISSING` labels and `CYCLE MISMATCH` rows do. Use it when the
//! baseline predates experiments the candidate now runs, so its wall
//! totals are structurally incomparable but its simulated cycles must
//! still match label-for-label.
//!
//! Per-job regression lines print worst-first, and a geometric-mean
//! wall-ratio summary over all matching jobs above the floor gives the
//! scale-free per-job slowdown the (longest-job-dominated) total
//! cannot.
//!
//! The parser is a minimal hand-rolled scan over the fixed shape
//! `write_bench_report` emits; it is not a general JSON reader.
//!
//! Exit codes: 0 ok, 1 regression detected, 2 usage/parse error.

use std::env;
use std::fs;
use std::process::ExitCode;

/// One parsed `jobs_detail` row.
#[derive(Debug, PartialEq, Eq)]
struct Job {
    label: String,
    wall_ns: u128,
    /// `None` when the report recorded `null` (a non-simulation task).
    sim_cycles: Option<u64>,
}

/// One parsed report: total wall time plus per-label job rows.
struct Report {
    total_wall_ns: u128,
    jobs: Vec<Job>,
}

/// Extracts the number following `"key": ` at top level (first match).
fn scalar_u128(text: &str, key: &str) -> Option<u128> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the `jobs_detail` rows: each row is one line of the form
/// `{"label": "...", "wall_ns": N, "sim_cycles": M}`.
fn parse(text: &str, path: &str) -> Result<Report, String> {
    let total_wall_ns = scalar_u128(text, "total_wall_ns")
        .ok_or_else(|| format!("{path}: no total_wall_ns field"))?;
    let mut jobs = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"label\":") {
            continue;
        }
        let label_start = line
            .find("\"label\": \"")
            .ok_or_else(|| format!("{path}: malformed row {line:?}"))?
            + "\"label\": \"".len();
        let label_len = line[label_start..]
            .find('"')
            .ok_or_else(|| format!("{path}: unterminated label in {line:?}"))?;
        let label = line[label_start..label_start + label_len].to_string();
        let wall_ns = scalar_u128(line, "wall_ns")
            .ok_or_else(|| format!("{path}: row without wall_ns: {line:?}"))?;
        let sim_cycles = scalar_u128(line, "sim_cycles").map(|c| c as u64);
        jobs.push(Job {
            label,
            wall_ns,
            sim_cycles,
        });
    }
    if jobs.is_empty() {
        return Err(format!("{path}: no jobs_detail rows"));
    }
    Ok(Report {
        total_wall_ns,
        jobs,
    })
}

fn load(path: &str) -> Result<Report, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text, path)
}

fn percent_change(old: u128, new: u128) -> f64 {
    (new as f64 - old as f64) / old as f64 * 100.0
}

/// Geometric mean of `new/old` wall ratios — the scale-free answer to
/// "how much slower is the candidate per job", which the total (being
/// dominated by the longest jobs) cannot give. Rows with a zero wall
/// on either side carry no ratio information and are skipped; `None`
/// when nothing is left.
fn geomean_ratio(rows: &[(u128, u128)]) -> Option<f64> {
    let ratios: Vec<f64> = rows
        .iter()
        .filter(|&&(old, new)| old > 0 && new > 0)
        .map(|&(old, new)| (new as f64 / old as f64).ln())
        .collect();
    if ratios.is_empty() {
        return None;
    }
    Some((ratios.iter().sum::<f64>() / ratios.len() as f64).exp())
}

fn main() -> ExitCode {
    let mut max_regress = 25.0f64;
    let mut min_wall_ns = 50_000_000u128;
    let mut cycles_only = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cycles-only" => cycles_only = true,
            "--max-regress" => {
                let Some(pct) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --max-regress requires a percentage");
                    return ExitCode::from(2);
                };
                max_regress = pct;
            }
            "--min-wall-ns" => {
                let Some(ns) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --min-wall-ns requires a nanosecond count");
                    return ExitCode::from(2);
                };
                min_wall_ns = ns;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_compare OLD.json NEW.json [--max-regress PCT] \
                     [--min-wall-ns N] [--cycles-only]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => {
                eprintln!("error: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_compare OLD.json NEW.json [--max-regress PCT] \
             [--min-wall-ns N] [--cycles-only]"
        );
        return ExitCode::from(2);
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let (_, regressions) = compare(&old, &new, max_regress, min_wall_ns, cycles_only);
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs every check, printing findings; returns `(compared, failures)`.
/// With `cycles_only`, wall-time deltas are printed but never counted
/// as failures — only missing labels and cycle drift fail.
fn compare(
    old: &Report,
    new: &Report,
    max_regress: f64,
    min_wall_ns: u128,
    cycles_only: bool,
) -> (u32, u32) {
    let mut regressions = 0u32;
    let total_delta = percent_change(old.total_wall_ns, new.total_wall_ns);
    println!(
        "total_wall_ns: {} -> {} ({:+.1}%)",
        old.total_wall_ns, new.total_wall_ns, total_delta
    );
    if total_delta > max_regress && !cycles_only {
        println!("  REGRESSION: total exceeds the {max_regress:.0}% budget");
        regressions += 1;
    }

    let mut matched: Vec<(&Job, &Job, f64)> = Vec::new();
    for job in &old.jobs {
        let Some(candidate) = new.jobs.iter().find(|j| j.label == job.label) else {
            // A baseline job the candidate no longer runs: the reports
            // are not comparable, fail loudly instead of skipping.
            println!(
                "  MISSING {}: present in baseline, absent from candidate",
                job.label
            );
            regressions += 1;
            continue;
        };
        // Simulated cycles are host-independent; any drift on a
        // matching label is a fidelity failure regardless of wall time.
        if let (Some(a), Some(b)) = (job.sim_cycles, candidate.sim_cycles) {
            if a != b {
                println!(
                    "  CYCLE MISMATCH {}: {a} -> {b} simulated cycles",
                    job.label
                );
                regressions += 1;
            }
        }
        if job.wall_ns < min_wall_ns {
            continue;
        }
        matched.push((
            job,
            candidate,
            percent_change(job.wall_ns, candidate.wall_ns),
        ));
    }
    // Worst regression first, so a long report leads with the rows
    // that need attention.
    matched.sort_by(|a, b| b.2.total_cmp(&a.2));
    let compared = matched.len() as u32;
    for &(job, candidate, delta) in &matched {
        if delta > max_regress && !cycles_only {
            println!(
                "  REGRESSION {}: {} -> {} ns ({delta:+.1}%)",
                job.label, job.wall_ns, candidate.wall_ns
            );
            regressions += 1;
        }
    }
    let ratio_rows: Vec<(u128, u128)> = matched
        .iter()
        .map(|&(job, candidate, _)| (job.wall_ns, candidate.wall_ns))
        .collect();
    if let Some(geomean) = geomean_ratio(&ratio_rows) {
        println!(
            "geomean wall ratio over {compared} matching job(s): {geomean:.3}x \
             ({:+.1}%)",
            (geomean - 1.0) * 100.0
        );
    }
    // Labels only the candidate carries (a new experiment, e.g. a fresh
    // fig row) have no baseline to regress against: list them clearly so
    // the next baseline refresh knows what it will start tracking, but
    // do not fail — growth is not a regression.
    let mut new_labels = 0u32;
    for job in &new.jobs {
        if old.jobs.iter().all(|j| j.label != job.label) {
            println!(
                "  NEW {}: {} ns, no baseline row (informational)",
                job.label, job.wall_ns
            );
            new_labels += 1;
        }
    }
    println!(
        "{compared} matching job(s) above the {min_wall_ns} ns floor compared, \
         {new_labels} candidate-only label(s), {regressions} failure(s)"
    );
    (compared, regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": 1,
  "total_wall_ns": 1000,
  "jobs_detail": [
    {"label": "fig3/radix/base96", "wall_ns": 400, "sim_cycles": 9},
    {"label": "fig3.4/radix/base96", "wall_ns": 600, "sim_cycles": null}
  ]
}"#;

    #[test]
    fn parses_totals_and_rows() {
        let r = parse(SAMPLE, "sample").unwrap();
        assert_eq!(r.total_wall_ns, 1000);
        assert_eq!(
            r.jobs,
            vec![
                Job {
                    label: "fig3/radix/base96".to_string(),
                    wall_ns: 400,
                    sim_cycles: Some(9),
                },
                Job {
                    label: "fig3.4/radix/base96".to_string(),
                    wall_ns: 600,
                    sim_cycles: None,
                },
            ]
        );
    }

    #[test]
    fn missing_candidate_label_fails() {
        let old = parse(SAMPLE, "old").unwrap();
        let new = Report {
            total_wall_ns: 1000,
            jobs: vec![Job {
                label: "fig3/radix/base96".to_string(),
                wall_ns: 400,
                sim_cycles: Some(9),
            }],
        };
        // One baseline label has no candidate row: exactly one failure.
        let (_, failures) = compare(&old, &new, 25.0, 0, false);
        assert_eq!(failures, 1);
    }

    #[test]
    fn sim_cycle_drift_fails_even_when_faster() {
        let old = parse(SAMPLE, "old").unwrap();
        let mut jobs = parse(SAMPLE, "new").unwrap().jobs;
        jobs[0].wall_ns = 100; // much faster...
        jobs[0].sim_cycles = Some(10); // ...but simulated time drifted
        let new = Report {
            total_wall_ns: 700,
            jobs,
        };
        let (_, failures) = compare(&old, &new, 25.0, 0, false);
        assert_eq!(failures, 1);
    }

    #[test]
    fn cycles_only_ignores_wall_regressions_but_keeps_fidelity_checks() {
        let old = parse(SAMPLE, "old").unwrap();
        let mut new = parse(SAMPLE, "new").unwrap();
        // 10x slower everywhere: a wall catastrophe, but not a fidelity
        // problem — cycles-only mode must pass.
        new.total_wall_ns = 10_000;
        for j in &mut new.jobs {
            j.wall_ns *= 10;
        }
        let (_, failures) = compare(&old, &new, 25.0, 0, true);
        assert_eq!(failures, 0);
        // The same deltas fail the normal gate (total + one job above
        // the floor... both jobs regress here).
        let (_, failures) = compare(&old, &new, 25.0, 0, false);
        assert!(failures >= 2);
        // Cycle drift still fails even in cycles-only mode.
        new.jobs[0].sim_cycles = Some(10);
        let (_, failures) = compare(&old, &new, 25.0, 0, true);
        assert_eq!(failures, 1);
        // As does a missing label.
        new.jobs.remove(1);
        let (_, failures) = compare(&old, &new, 25.0, 0, true);
        assert_eq!(failures, 2);
    }

    #[test]
    fn candidate_only_label_is_informational_not_a_failure() {
        let old = parse(SAMPLE, "old").unwrap();
        let mut new = parse(SAMPLE, "new").unwrap();
        // The candidate gained a fig5 row the baseline predates.
        new.jobs.push(Job {
            label: "fig5/radix/coalesced128".to_string(),
            wall_ns: 500,
            sim_cycles: Some(7),
        });
        let (compared, failures) = compare(&old, &new, 25.0, 0, false);
        assert_eq!((compared, failures), (2, 0));
    }

    #[test]
    fn identical_reports_pass() {
        let old = parse(SAMPLE, "old").unwrap();
        let new = parse(SAMPLE, "new").unwrap();
        let (compared, failures) = compare(&old, &new, 25.0, 0, false);
        assert_eq!((compared, failures), (2, 0));
    }

    #[test]
    fn rejects_reports_without_rows() {
        assert!(parse("{\"total_wall_ns\": 5\n}", "x").is_err());
        assert!(parse("{}", "x").is_err());
    }

    #[test]
    fn percent_change_signs() {
        assert!(percent_change(100, 130) > 25.0);
        assert!(percent_change(100, 80) < 0.0);
    }

    #[test]
    fn geomean_is_scale_free_and_skips_zero_rows() {
        // 2x slower and 2x faster cancel exactly in the geomean.
        let even = geomean_ratio(&[(100, 200), (200, 100)]).unwrap();
        assert!((even - 1.0).abs() < 1e-12, "got {even}");
        // A uniform 1.5x slowdown reads as 1.5 whatever the magnitudes.
        let slow = geomean_ratio(&[(10, 15), (1_000_000, 1_500_000)]).unwrap();
        assert!((slow - 1.5).abs() < 1e-12, "got {slow}");
        // Zero-wall rows carry no ratio; all-zero input yields None.
        assert_eq!(geomean_ratio(&[(0, 5), (5, 0)]), None);
        let mixed = geomean_ratio(&[(0, 5), (100, 300)]).unwrap();
        assert!((mixed - 3.0).abs() < 1e-12, "got {mixed}");
        assert_eq!(geomean_ratio(&[]), None);
    }
}
