//! `repro` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! repro [all|fig2|fig3|fig4a|fig4b|fig5|fig6|costs|paging|ablations|extensions] \
//!       [--test-scale] [--csv-dir DIR] [--json-dir DIR] [--jobs N] \
//!       [--cores N] [--trace] [--bench-report]
//! ```
//!
//! With `--test-scale` the workloads run at reduced sizes (seconds);
//! without it they run at the paper's §3.1 sizes (a few minutes total).
//! `--csv-dir` additionally writes each table as a CSV file.
//! `--json-dir` writes one machine-readable JSON report per simulated
//! experiment row (Figures 3 and 4) — the full [`RunReport`] including
//! time buckets, every component's counters and the log-bucketed
//! fill-latency and TLB-miss-interval histograms. `--trace` attaches a
//! ring-buffer event trace to every simulation and prints a per-job
//! cycle-attribution summary on stderr.
//!
//! The sweeps are sets of independent simulations; `--jobs N` runs them
//! on N OS threads (default: the host's available parallelism; `--jobs
//! 1` restores the old serial order). Tables, CSVs and JSON reports are
//! assembled in deterministic job order, so their bytes are identical at
//! every jobs level. `--bench-report` additionally writes
//! `BENCH_baseline.json` with per-job host wall times, simulated
//! cycle counts and host metadata (thread count, parallelism, cargo
//! profile).
//!
//! Trace record/replay decouples stream generation from simulation,
//! and replay is the **default** execution mode: each `(workload,
//! scale)` pair's op stream is recorded once, then every later
//! configuration of the same pair replays it through the batched
//! SoA + loop-fast-forward engine (`mtlb_trace::replay_batched`)
//! instead of re-executing the workload's host logic. Simulated
//! cycles are byte-identical live or replayed — the op stream fully
//! determines them; only host wall time changes. `--record-traces
//! DIR` additionally saves the recorded streams (`mtlb-trace` format,
//! `DIR/<workload>_<scale>.mtr`); `--replay-traces DIR` seeds the
//! cache from such files so no workload host logic runs at all.
//! `--no-replay` forces pure live runs (recording is disabled too) —
//! CI diffs the two modes byte-for-byte.
//!
//! Unknown experiment names and unknown flags print the usage line to
//! stderr and exit with status 2 before any experiment output.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use mtlb_bench::experiments::{self, WORKLOADS};
use mtlb_bench::runner::{self, Runner};
use mtlb_bench::table::Table;
use mtlb_os::PagingPolicy;
use mtlb_sim::RunReport;
use mtlb_types::Histogram;
use mtlb_workloads::Scale;

/// Every experiment name `repro` accepts, in display order.
const EXPERIMENTS: [&str; 11] = [
    "all",
    "fig2",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "costs",
    "paging",
    "ablations",
    "extensions",
];

fn usage() -> String {
    format!(
        "usage: repro [{}] [--test-scale] [--csv-dir DIR] [--json-dir DIR] \
         [--jobs N] [--cores N] [--trace] [--bench-report] [--bench-out PATH] \
         [--record-traces DIR] [--replay-traces DIR] [--no-replay]",
        EXPERIMENTS.join("|")
    )
}

struct Options {
    what: String,
    scale: Scale,
    csv_dir: Option<PathBuf>,
    json_dir: Option<PathBuf>,
    runner: Runner,
    bench_report: bool,
    bench_out: PathBuf,
    record_traces: Option<PathBuf>,
    /// Simulated core count (`--cores N`; 0 = unset). When set, fig3
    /// runs on an N-core machine (N=1 is bit-identical to the legacy
    /// single-core sweep) and fig6 co-runs exactly N instances instead
    /// of its default 2/4/8 sweep.
    cores: usize,
}

fn parse_args() -> Options {
    let mut what = "all".to_string();
    let mut scale = Scale::Paper;
    let mut csv_dir = None;
    let mut json_dir = None;
    let mut jobs = 0usize; // 0 = available parallelism
    let mut cores = 0usize; // 0 = unset
    let mut trace = false;
    let mut bench_report = false;
    let mut bench_out = PathBuf::from("BENCH_baseline.json");
    let mut record_traces = None;
    let mut replay_traces: Option<PathBuf> = None;
    let mut no_replay = false;
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--test-scale" => scale = Scale::Test,
            "--csv-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --csv-dir requires a directory");
                    std::process::exit(2);
                };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--json-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --json-dir requires a directory");
                    std::process::exit(2);
                };
                json_dir = Some(PathBuf::from(dir));
            }
            "--jobs" => {
                let Some(raw) = args.next() else {
                    eprintln!("error: --jobs requires a thread count");
                    eprintln!("{}", usage());
                    std::process::exit(2);
                };
                let Ok(n) = raw.parse::<usize>() else {
                    eprintln!("error: --jobs: invalid thread count {raw:?}");
                    eprintln!("{}", usage());
                    std::process::exit(2);
                };
                jobs = n;
            }
            "--cores" => {
                let Some(raw) = args.next() else {
                    eprintln!("error: --cores requires a core count");
                    eprintln!("{}", usage());
                    std::process::exit(2);
                };
                let Ok(n) = raw.parse::<usize>() else {
                    eprintln!("error: --cores: invalid core count {raw:?}");
                    eprintln!("{}", usage());
                    std::process::exit(2);
                };
                if n == 0 {
                    eprintln!("error: --cores must be at least 1");
                    eprintln!("{}", usage());
                    std::process::exit(2);
                }
                cores = n;
            }
            "--trace" => trace = true,
            "--no-replay" => no_replay = true,
            "--record-traces" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --record-traces requires a directory");
                    std::process::exit(2);
                };
                record_traces = Some(PathBuf::from(dir));
            }
            "--replay-traces" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --replay-traces requires a directory");
                    std::process::exit(2);
                };
                replay_traces = Some(PathBuf::from(dir));
            }
            "--bench-report" => bench_report = true,
            "--bench-out" => {
                let Some(path) = args.next() else {
                    eprintln!("error: --bench-out requires a path");
                    std::process::exit(2);
                };
                bench_out = PathBuf::from(path);
            }
            "--help" | "-h" => {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            other if !other.starts_with('-') => {
                if !EXPERIMENTS.contains(&other) {
                    eprintln!("error: unknown experiment {other:?}");
                    eprintln!("{}", usage());
                    std::process::exit(2);
                }
                what = other.to_string();
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                eprintln!("{}", usage());
                std::process::exit(2);
            }
        }
    }
    // Replay-first: every sweep records each (workload, scale) once
    // and replays all later configurations through the batched
    // loop-fast-forward engine. `--no-replay` forces pure live runs
    // (and disables recording with them).
    let replay = !no_replay;
    let runner = Runner::with_jobs(jobs)
        .live_progress(true)
        .with_trace(trace)
        .with_replay(replay);
    if let Some(dir) = &replay_traces {
        preload_traces(&runner, dir);
    }
    Options {
        what,
        scale,
        csv_dir,
        json_dir,
        runner,
        bench_report,
        bench_out,
        record_traces,
        cores,
    }
}

/// The static registry name a trace header's workload name refers to,
/// if it names a registered workload.
fn static_workload_name(name: &str) -> Option<&'static str> {
    const EXTRA: [&str; 5] = [
        "oltp",
        "synth_seq",
        "synth_stride",
        "synth_rand",
        "synth_loop",
    ];
    WORKLOADS
        .iter()
        .chain(EXTRA.iter())
        .copied()
        .find(|&w| w == name)
}

/// Seeds the runner's replay cache from every `.mtr` file in `dir`
/// (`--replay-traces`). Unreadable or unrecognised files are skipped
/// with a warning: a missing trace only costs a live run.
fn preload_traces(runner: &Runner, dir: &std::path::Path) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("warning: --replay-traces {}: {e}", dir.display());
            return;
        }
    };
    let mut loaded = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "mtr") {
            continue;
        }
        let Ok(bytes) = fs::read(&path) else {
            eprintln!("warning: unreadable trace {}", path.display());
            continue;
        };
        let header = match mtlb_trace::read_header(&bytes) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("warning: skipping {}: {e}", path.display());
                continue;
            }
        };
        let (Some(name), Some(scale)) = (
            static_workload_name(&header.name),
            runner::scale_from_byte(header.scale),
        ) else {
            eprintln!(
                "warning: skipping {}: unknown workload/scale",
                path.display()
            );
            continue;
        };
        runner.preload_trace(name, scale, bytes);
        loaded += 1;
    }
    eprintln!("[repro] preloaded {loaded} trace(s) from {}", dir.display());
}

/// Persists the runner's recorded traces as
/// `DIR/<workload>_<scale>.mtr` (`--record-traces`).
fn save_traces(opts: &Options) {
    let Some(dir) = &opts.record_traces else {
        return;
    };
    fs::create_dir_all(dir).expect("create trace dir");
    let traces = opts.runner.recorded_traces();
    for (name, scale, bytes) in &traces {
        let tag = match scale {
            Scale::Test => "test",
            Scale::Paper => "paper",
        };
        let path = dir.join(format!("{name}_{tag}.mtr"));
        fs::write(&path, bytes.as_slice()).expect("write trace");
        println!("[trace written to {}]", path.display());
    }
    eprintln!(
        "[repro] recorded {} trace(s) to {}",
        traces.len(),
        dir.display()
    );
}

fn emit(opts: &Options, name: &str, title: &str, table: &Table) {
    println!("\n=== {title} ===\n");
    print!("{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        fs::create_dir_all(dir).expect("create csv dir");
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, table.to_csv()).expect("write csv");
        println!("[written {}]", path.display());
    }
}

/// Writes one experiment row's full [`RunReport`] as `NAME.json` under
/// `--json-dir` (no-op when the flag is absent).
fn emit_json_row(opts: &Options, name: &str, report: &RunReport) {
    let Some(dir) = &opts.json_dir else { return };
    fs::create_dir_all(dir).expect("create json dir");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, report.to_json()).expect("write json");
    println!("[written {}]", path.display());
}

/// Prints a log-bucketed histogram as an indented ASCII bar chart.
fn print_histogram(title: &str, h: &Histogram) {
    println!("  {title}:");
    if h.is_empty() {
        println!("    (no samples)");
        return;
    }
    let max = h.nonempty_buckets().map(|(_, _, c)| c).max().unwrap_or(1);
    for (lo, hi, count) in h.nonempty_buckets() {
        let width = ((count as f64 / max as f64) * 40.0).ceil() as usize;
        println!("    [{lo:>6}, {hi:>6}] {count:>10}  {}", "#".repeat(width));
    }
}

fn fig2(opts: &Options) {
    let mut t = Table::new(vec!["Superpage Size", "Count", "Address Space Extent"]);
    for row in experiments::fig2() {
        t.row(vec![
            row.size.to_string(),
            row.count.to_string(),
            format!("{}MB", row.extent_bytes >> 20),
        ]);
    }
    emit(
        opts,
        "fig2",
        "Figure 2: Example Partitioning of a 512 MB Pseudo-Physical Address Space",
        &t,
    );
}

fn fig3(opts: &Options) {
    let sizes = [64, 96, 128];
    let cores = opts.cores.max(1);
    let rows =
        experiments::fig3_labelled(&opts.runner, opts.scale, &sizes, &WORKLOADS, "fig3", cores);
    let mut t = Table::new(vec![
        "workload",
        "TLB",
        "MTLB",
        "cycles",
        "normalized",
        "TLB-miss %",
        "verified",
    ]);
    for r in &rows {
        t.row(vec![
            r.workload.to_string(),
            r.tlb_entries.to_string(),
            if r.mtlb { "128/2way" } else { "none" }.to_string(),
            r.total_cycles.to_string(),
            format!("{:.3}", r.normalized),
            format!("{:.1}%", r.tlb_fraction * 100.0),
            r.verified.to_string(),
        ]);
    }
    emit(
        opts,
        "fig3",
        "Figure 3: Normalized Runtimes for Three TLB Sizes with and without a 128 Entry MTLB",
        &t,
    );
    for r in &rows {
        let kind = if r.mtlb { "mtlb" } else { "base" };
        emit_json_row(
            opts,
            &format!("fig3_{}_tlb{}_{kind}", r.workload, r.tlb_entries),
            &r.report,
        );
    }

    // Radix at 256 entries (§3.4: "even at 256 TLB entries, it still
    // spends 13.5% of total runtime in TLB miss handling"). The sweep
    // re-runs the radix base-96 normalization job, so it gets its own
    // label prefix to keep `--bench-report` job labels unique.
    let radix256 = experiments::fig3_labelled(
        &opts.runner,
        opts.scale,
        &[256],
        &["radix"],
        "fig3.4",
        cores,
    );
    let mut t = Table::new(vec!["workload", "TLB", "MTLB", "cycles", "TLB-miss %"]);
    for r in &radix256 {
        t.row(vec![
            r.workload.to_string(),
            "256".to_string(),
            if r.mtlb { "128/2way" } else { "none" }.to_string(),
            r.total_cycles.to_string(),
            format!("{:.1}%", r.tlb_fraction * 100.0),
        ]);
    }
    emit(opts, "fig3_radix256", "§3.4: radix at 256 TLB entries", &t);
    for r in &radix256 {
        let kind = if r.mtlb { "mtlb" } else { "base" };
        emit_json_row(
            opts,
            &format!("fig3_{}_tlb{}_{kind}", r.workload, r.tlb_entries),
            &r.report,
        );
    }

    // The §3.4 headline: 64-entry TLB + MTLB vs 128-entry TLB without.
    let mut t = Table::new(vec![
        "workload",
        "64+MTLB cycles",
        "128 no-MTLB cycles",
        "ratio",
        "MTLB improvement over 64 base",
    ]);
    for name in WORKLOADS {
        let m64 = rows
            .iter()
            .find(|r| r.workload == name && r.tlb_entries == 64 && r.mtlb)
            .expect("present");
        let b64 = rows
            .iter()
            .find(|r| r.workload == name && r.tlb_entries == 64 && !r.mtlb)
            .expect("present");
        let b128 = rows
            .iter()
            .find(|r| r.workload == name && r.tlb_entries == 128 && !r.mtlb)
            .expect("present");
        t.row(vec![
            name.to_string(),
            m64.total_cycles.to_string(),
            b128.total_cycles.to_string(),
            format!("{:.3}", m64.total_cycles as f64 / b128.total_cycles as f64),
            format!(
                "{:.1}%",
                (1.0 - m64.total_cycles as f64 / b64.total_cycles as f64) * 100.0
            ),
        ]);
    }
    emit(
        opts,
        "headline",
        "§3.4 headline: a 64-entry TLB + MTLB performs like a 128-entry TLB without one",
        &t,
    );
}

fn fig4(opts: &Options, which: &str) {
    let rows = experiments::fig4(
        &opts.runner,
        opts.scale,
        &[32, 64, 128, 256, 512],
        &[1, 2, 4],
    );
    if which != "fig4b" {
        let mut t = Table::new(vec![
            "MTLB config",
            "cycles",
            "normalized vs no-MTLB",
            "MTLB hit %",
        ]);
        for r in &rows {
            t.row(vec![
                match r.geometry {
                    None => "no MTLB".to_string(),
                    Some((e, a)) => format!("{e} entries / {a}-way"),
                },
                r.total_cycles.to_string(),
                format!("{:.3}", r.normalized),
                format!("{:.1}%", r.mtlb_hit_rate * 100.0),
            ]);
        }
        emit(
            opts,
            "fig4a",
            "Figure 4(A): em3d runtime sensitivity to MTLB sizes and associativities",
            &t,
        );
    }
    if which != "fig4a" {
        let mut t = Table::new(vec![
            "MTLB config",
            "avg MMC cycles/fill",
            "added delay vs standard",
        ]);
        for r in &rows {
            t.row(vec![
                match r.geometry {
                    None => "no MTLB".to_string(),
                    Some((e, a)) => format!("{e} entries / {a}-way"),
                },
                format!("{:.2}", r.avg_fill_mmc_cycles),
                format!("{:+.2}", r.added_delay),
            ]);
        }
        emit(
            opts,
            "fig4b",
            "Figure 4(B): average time per cache fill (MMC cycles)",
            &t,
        );
        // The distribution behind the averages: log-bucketed fill
        // latencies for the reference and the paper's 128/2-way MTLB.
        println!("\nFill-latency distribution (MMC cycles per demand fill):");
        for r in rows
            .iter()
            .filter(|r| r.geometry.is_none() || r.geometry == Some((128, 2)))
        {
            let label = match r.geometry {
                None => "no MTLB".to_string(),
                Some((e, a)) => format!("{e} entries / {a}-way"),
            };
            print_histogram(&label, &r.report.mmc.fill_hist);
        }
    }
    for r in &rows {
        let name = match r.geometry {
            None => "fig4_em3d_no_mtlb".to_string(),
            Some((e, a)) => format!("fig4_em3d_mtlb{e}x{a}"),
        };
        emit_json_row(opts, &name, &r.report);
    }
}

fn fig5(opts: &Options) {
    let sizes = [64, 96, 128];
    let rows = experiments::fig5(&opts.runner, opts.scale, &sizes, &WORKLOADS);
    let mut t = Table::new(vec![
        "workload",
        "scheme",
        "entries",
        "cycles",
        "normalized",
        "TLB-miss %",
        "miss rate",
        "reach",
    ]);
    for r in &rows {
        t.row(vec![
            r.workload.to_string(),
            r.scheme.to_string(),
            r.tlb_entries.to_string(),
            r.total_cycles.to_string(),
            format!("{:.3}", r.normalized),
            format!("{:.1}%", r.tlb_fraction * 100.0),
            format!("{:.4}%", r.miss_rate * 100.0),
            format!("{}KB", r.reach_bytes >> 10),
        ]);
    }
    emit(
        opts,
        "fig5",
        "Figure 5: rival TLB-reach designs head-to-head on identical recorded address streams",
        &t,
    );
    for r in &rows {
        emit_json_row(
            opts,
            &format!("fig5_{}_{}{}", r.workload, r.scheme, r.tlb_entries),
            &r.report,
        );
    }
}

fn fig6(opts: &Options) {
    // `--cores N` pins the sweep to exactly N co-running instances;
    // the default sweeps the paper machine's plausible core counts.
    let counts: Vec<usize> = if opts.cores > 0 {
        vec![opts.cores]
    } else {
        vec![2, 4, 8]
    };
    let rows = experiments::fig6(&opts.runner, opts.scale, &counts, &WORKLOADS);
    let mut t = Table::new(vec![
        "workload",
        "instances",
        "1-core cycles",
        "co-run cycles",
        "efficiency",
        "shootdowns",
        "shootdown cyc",
        "bus stalls",
        "MTLB hit %",
        "TLB-miss %",
    ]);
    for r in &rows {
        t.row(vec![
            r.workload.to_string(),
            r.instances.to_string(),
            r.baseline_cycles.to_string(),
            r.corun_cycles.to_string(),
            format!("{:.3}", r.efficiency),
            r.shootdowns.to_string(),
            r.shootdown_cycles.to_string(),
            r.contention_events.to_string(),
            format!("{:.1}%", r.mtlb_hit_rate * 100.0),
            format!("{:.1}%", r.tlb_fraction * 100.0),
        ]);
    }
    emit(
        opts,
        "fig6",
        "Figure 6 (extension): co-scheduled instances sharing one bus, MMC and MTLB",
        &t,
    );
    for r in &rows {
        emit_json_row(
            opts,
            &format!("fig6_{}_x{}", r.workload, r.instances),
            &r.report,
        );
    }
}

fn costs(opts: &Options) {
    // The paper's em3d remapped 1120 pages of initialised dynamic memory.
    let c = experiments::init_costs(1120);
    let mut t = Table::new(vec!["quantity", "measured", "paper"]);
    t.row(vec![
        "pages remapped".to_string(),
        c.remap_pages.to_string(),
        "1120".to_string(),
    ]);
    t.row(vec![
        "remap total cycles".to_string(),
        c.remap_total_cycles.to_string(),
        "1,659,154".to_string(),
    ]);
    t.row(vec![
        "  cache flushing".to_string(),
        c.remap_flush_cycles.to_string(),
        "1,497,067".to_string(),
    ]);
    t.row(vec![
        "  remaining overhead".to_string(),
        c.remap_other_cycles.to_string(),
        "162,087".to_string(),
    ]);
    t.row(vec![
        "flush cycles per 4KB page".to_string(),
        format!("{:.0}", c.flush_cycles_per_page),
        "~1400".to_string(),
    ]);
    t.row(vec![
        "warm 4KB page copy cycles".to_string(),
        c.copy_warm_page_cycles.to_string(),
        "11,400".to_string(),
    ]);
    emit(
        opts,
        "costs",
        "§3.3: Initialization costs (remap vs copy)",
        &t,
    );
}

fn paging(opts: &Options) {
    let rows = experiments::paging(&opts.runner, &[0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]);
    let mut t = Table::new(vec![
        "policy",
        "dirty fraction",
        "pages written / total",
        "swap reads for 32 touches",
        "faults",
    ]);
    for r in &rows {
        t.row(vec![
            match r.policy {
                PagingPolicy::PerBasePage => "shadow (per base page)",
                PagingPolicy::WholeSuperpage => "conventional (whole superpage)",
            }
            .to_string(),
            format!("{:.2}", r.dirty_fraction),
            format!("{} / {}", r.pages_written, r.pages_total),
            r.pages_read_back.to_string(),
            r.faults.to_string(),
        ]);
    }
    emit(
        opts,
        "paging",
        "§2.5: Swap traffic — per-base-page dirty bits vs conventional superpages (1 MB superpage)",
        &t,
    );
}

fn ablations(opts: &Options) {
    let a = experiments::allocator_ablation();
    let mut t = Table::new(vec!["allocator", "4MB regions after 16KB churn"]);
    t.row(vec![
        "bucket (paper Fig. 2)".to_string(),
        format!(
            "{} (static class size {})",
            a.bucket_4m_after_churn, a.bucket_4m_static
        ),
    ]);
    t.row(vec![
        "buddy (split/recombine)".to_string(),
        a.buddy_4m_after_churn.to_string(),
    ]);
    emit(
        opts,
        "allocators",
        "§2.4: shadow-space allocators — buckets cannot move freed space between classes",
        &t,
    );

    let (off, on) = experiments::bit_writeback_ablation(&opts.runner, opts.scale);
    let mut t = Table::new(vec!["ref/dirty write-back", "em3d cycles", "relative"]);
    t.row(vec![
        "uncharged (paper's sim)".to_string(),
        off.to_string(),
        "1.000".to_string(),
    ]);
    t.row(vec![
        "charged".to_string(),
        on.to_string(),
        format!("{:.4}", on as f64 / off as f64),
    ]);
    emit(
        opts,
        "bit_writeback",
        "§3.4: cost of writing updated reference/dirty bits back (paper: negligible)",
        &t,
    );

    let (seq, scrambled) = experiments::fragmentation_ablation(&opts.runner, opts.scale);
    let mut t = Table::new(vec!["frame allocation order", "radix cycles", "relative"]);
    t.row(vec![
        "sequential (fresh boot)".to_string(),
        seq.to_string(),
        "1.000".to_string(),
    ]);
    t.row(vec![
        "scrambled (fragmented)".to_string(),
        scrambled.to_string(),
        format!("{:.4}", scrambled as f64 / seq as f64),
    ]);
    emit(
        opts,
        "fragmentation",
        "§1 premise: discontiguous physical frames are free under shadow superpages",
        &t,
    );
}

fn extensions(opts: &Options) {
    let r = experiments::recoloring();
    let mut t = Table::new(vec!["phase", "cycles", "cache miss rate"]);
    t.row(vec![
        "two hot pages, same color (PIPT)".to_string(),
        r.conflict_cycles.to_string(),
        format!("{:.1}%", r.conflict_miss_rate * 100.0),
    ]);
    t.row(vec![
        "after no-copy recolor".to_string(),
        r.recolored_cycles.to_string(),
        format!("{:.1}%", r.recolored_miss_rate * 100.0),
    ]);
    emit(
        opts,
        "recoloring",
        "§6 extension: no-copy page recoloring via shadow memory (physically-indexed cache)",
        &t,
    );

    let rows = experiments::all_shadow_sensitivity(&opts.runner, opts.scale);
    let mut t = Table::new(vec![
        "configuration",
        "em3d cycles",
        "normalized",
        "MTLB hit %",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            r.cycles.to_string(),
            format!("{:.3}", r.normalized),
            format!("{:.1}%", r.mtlb_hit_rate * 100.0),
        ]);
    }
    emit(
        opts,
        "all_shadow",
        "§4 extension: routing ALL virtual accesses through shadow memory",
        &t,
    );

    let rows = experiments::multiprogramming(&opts.runner, &[500, 2_000, 20_000]);
    let mut t = Table::new(vec![
        "machine",
        "quantum (accesses)",
        "cycles",
        "TLB-miss %",
    ]);
    for r in &rows {
        t.row(vec![
            r.machine.to_string(),
            r.quantum.to_string(),
            r.cycles.to_string(),
            format!("{:.1}%", r.tlb_fraction * 100.0),
        ]);
    }
    emit(
        opts,
        "multiprogramming",
        "Extension: two time-sliced processes — superpages refill the TLB after a switch in a few misses",
        &t,
    );

    let rows = experiments::promotion(&opts.runner);
    let mut t = Table::new(vec!["policy", "cycles", "superpages", "auto-promoted"]);
    for r in &rows {
        t.row(vec![
            r.policy.to_string(),
            r.cycles.to_string(),
            r.superpages.to_string(),
            r.auto_promotions.to_string(),
        ]);
    }
    emit(
        opts,
        "promotion",
        "§5 extension: online superpage promotion (Romer-style) vs explicit remap()",
        &t,
    );

    let c = experiments::commercial(&opts.runner, opts.scale);
    let mut t = Table::new(vec![
        "machine (64-entry TLB)",
        "oltp cycles",
        "TLB-miss %",
        "speedup",
    ]);
    t.row(vec![
        "conventional".to_string(),
        c.base_cycles.to_string(),
        format!("{:.1}%", c.base_tlb_fraction * 100.0),
        "1.00x".to_string(),
    ]);
    t.row(vec![
        "with MTLB".to_string(),
        c.mtlb_cycles.to_string(),
        "~0%".to_string(),
        format!("{:.2}x", c.speedup),
    ]);
    emit(
        opts,
        "commercial",
        "§1 prediction: a ~26 MB commercial (OLTP) working set still benefits",
        &t,
    );

    let rows = experiments::subblock_comparison();
    let mut t = Table::new(vec![
        "trace",
        "translator",
        "misses / 1k accesses",
        "handler cycles / 1k",
    ]);
    for r in &rows {
        t.row(vec![
            r.trace.to_string(),
            r.translator.to_string(),
            format!("{:.1}", r.misses_per_k),
            format!("{:.0}", r.handler_cycles_per_k),
        ]);
    }
    emit(
        opts,
        "subblock",
        "§5 related work: complete-subblock TLB (Talluri & Hill) vs conventional TLBs",
        &t,
    );

    let sr = experiments::stream_buffers(&opts.runner);
    let mut t = Table::new(vec![
        "traffic",
        "no buffers",
        "4x4 stream buffers",
        "stream hit rate",
    ]);
    t.row(vec![
        "sequential sweep (4 MB shadow superpage)".to_string(),
        sr.sweep_without.to_string(),
        sr.sweep_with.to_string(),
        format!("{:.1}%", sr.sweep_hit_rate * 100.0),
    ]);
    t.row(vec![
        "random walk".to_string(),
        sr.random_without.to_string(),
        sr.random_with.to_string(),
        "-".to_string(),
    ]);
    emit(
        opts,
        "stream_buffers",
        "§6 extension: MMC-provided stream buffers over discontiguous shadow superpages",
        &t,
    );
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the bench report (default `BENCH_baseline.json`, overridable
/// with `--bench-out`): per-job host wall times and simulated cycle
/// counts for every job the runner executed, plus run metadata.
fn write_bench_report(opts: &Options, total_wall_ns: u128) {
    let records = opts.runner.take_records();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"generated_by\": \"repro {} --bench-report\",\n",
        json_escape(&opts.what)
    ));
    json.push_str(&format!("  \"scale\": \"{:?}\",\n", opts.scale));
    json.push_str(&format!("  \"jobs\": {},\n", opts.runner.jobs()));
    json.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    json.push_str(&format!("  \"total_wall_ns\": {total_wall_ns},\n"));
    json.push_str("  \"jobs_detail\": [\n");
    for (i, r) in records.iter().enumerate() {
        let cycles = r.sim_cycles.map_or("null".to_string(), |c| c.to_string());
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"wall_ns\": {}, \"sim_cycles\": {}}}{}\n",
            json_escape(&r.label),
            r.wall.as_nanos(),
            cycles,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = &opts.bench_out;
    fs::write(path, json).expect("write bench report");
    println!("[bench report written to {}]", path.display());
}

fn main() {
    let opts = parse_args();
    let what = opts.what.as_str();
    let started = Instant::now();
    // The jobs level goes to stderr: stdout (tables, CSV notices) must
    // be byte-identical whatever the parallelism.
    eprintln!("[repro] running with {} job thread(s)", opts.runner.jobs());
    println!(
        "shadow-superpages repro — scale: {:?}{}",
        opts.scale,
        if matches!(opts.scale, Scale::Paper) {
            " (full paper-scale runs; use --test-scale for a quick pass)"
        } else {
            ""
        }
    );
    if matches!(what, "all" | "fig2") {
        fig2(&opts);
    }
    if matches!(what, "all" | "fig3") {
        fig3(&opts);
    }
    if matches!(what, "all" | "fig4a" | "fig4b") {
        fig4(&opts, what);
    }
    if matches!(what, "all" | "fig5") {
        fig5(&opts);
    }
    if matches!(what, "all" | "fig6") {
        fig6(&opts);
    }
    if matches!(what, "all" | "costs") {
        costs(&opts);
    }
    if matches!(what, "all" | "paging") {
        paging(&opts);
    }
    if matches!(what, "all" | "ablations") {
        ablations(&opts);
    }
    if matches!(what, "all" | "extensions") {
        extensions(&opts);
    }
    save_traces(&opts);
    if opts.bench_report {
        write_bench_report(&opts, started.elapsed().as_nanos());
    }
}
