//! The experiment drivers. See the [crate docs](crate) for the mapping
//! from paper artefacts to functions.
//!
//! Every sweep takes a [`Runner`] and expresses its work as independent
//! `(workload, MachineConfig)` jobs (or labelled closures); the runner
//! decides how many OS threads execute them. Results are assembled in a
//! fixed order, so rows are identical whatever the parallelism.

use std::collections::BTreeMap;

use mtlb_cache::{CacheConfig, CacheIndexing, DataCache};
use mtlb_mem::{FrameOrder, GuestMemory};
use mtlb_mmc::{Mmc, MmcConfig};
use mtlb_os::{
    BucketAllocator, BucketPartition, BuddyAllocator, Kernel, KernelConfig, KernelCtx,
    PagingPolicy, ShadowAllocator, UserLayout,
};
use mtlb_schemes::SchemeConfig;
use mtlb_sim::{Machine, MachineConfig, MachineOp, RunReport, VecOpSink};
use mtlb_tlb::{CpuTlb, LookupOutcome, MicroItlb, SubblockOutcome, SubblockTlb, TlbEntry};
use mtlb_types::{ClockRatio, PageSize, Ppn, Prot, VirtAddr, PAGE_SIZE};
use mtlb_workloads::{
    AccessExt, Cc1, Compress95, Em3d, Oltp, Radix, Scale, SynthLoop, SyntheticTrace, Vortex,
    Workload,
};

use crate::runner::{JobResult, JobSpec, Runner, Task};

/// The five benchmark names, in the paper's Figure 3 order.
pub const WORKLOADS: [&str; 5] = ["compress95", "em3d", "radix", "vortex", "cc1"];

/// Constructs a workload by its paper name.
///
/// # Panics
///
/// Panics on an unknown name.
#[must_use]
pub fn workload_by_name(name: &str, scale: Scale) -> Box<dyn Workload> {
    match name {
        "compress95" => Box::new(Compress95::new(scale)),
        "em3d" => Box::new(Em3d::new(scale)),
        "radix" => Box::new(Radix::new(scale)),
        "vortex" => Box::new(Vortex::new(scale)),
        "cc1" => Box::new(Cc1::new(scale)),
        "oltp" => Box::new(Oltp::new(scale)),
        "synth_loop" => Box::new(SynthLoop::new(scale)),
        other => match SyntheticTrace::by_name(other, scale) {
            Some(synth) => Box::new(synth),
            None => panic!("unknown workload {other:?}"),
        },
    }
}

/// One row of Figure 2: a size class of the static shadow partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2Row {
    /// Superpage size.
    pub size: PageSize,
    /// Number of pre-allocated regions of this size.
    pub count: u64,
    /// Address-space extent consumed by the class.
    pub extent_bytes: u64,
}

/// Figure 2: the paper's example partitioning of a 512 MB shadow space.
#[must_use]
pub fn fig2() -> Vec<Fig2Row> {
    let p = BucketPartition::paper_default();
    p.counts()
        .iter()
        .map(|(size, count)| Fig2Row {
            size: *size,
            count: *count,
            extent_bytes: p.extent_of(*size),
        })
        .collect()
}

/// One run of Figure 3: a workload on one machine configuration.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: &'static str,
    /// CPU TLB entries.
    pub tlb_entries: usize,
    /// Whether the 128-entry 2-way MTLB was fitted.
    pub mtlb: bool,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Cycles in the software TLB miss handler.
    pub tlb_miss_cycles: u64,
    /// `tlb_miss_cycles / total_cycles`.
    pub tlb_fraction: f64,
    /// Runtime normalised to the 96-entry no-MTLB base system (§3.4).
    pub normalized: f64,
    /// Workload self-check passed.
    pub verified: bool,
    /// Full statistics snapshot of the run, for `--json-dir` export.
    pub report: RunReport,
}

/// Figure 3: runtimes for each TLB size with and without the MTLB,
/// normalised per-workload to the 96-entry no-MTLB base system.
///
/// `tlb_sizes` defaults in the paper to `[64, 96, 128]` (radix is also
/// cited at 256).
#[must_use]
pub fn fig3(
    runner: &Runner,
    scale: Scale,
    tlb_sizes: &[usize],
    workloads: &[&'static str],
) -> Vec<Fig3Row> {
    fig3_labelled(runner, scale, tlb_sizes, workloads, "fig3", 1)
}

/// [`fig3`] with an explicit job-label prefix and core count. Auxiliary
/// sweeps reusing the Figure 3 machinery (e.g. the §3.4 radix-at-256
/// run) must pass a distinct prefix so every job label in the
/// `--bench-report` detail is unique — the prefix changes only labels,
/// never simulated results. `cores == 1` is the paper's machine and is
/// bit-identical to the sweep before cores existed; larger counts run
/// the workload on core 0 of an `N`-core machine (the extra cores idle
/// but still receive shootdowns).
#[must_use]
pub fn fig3_labelled(
    runner: &Runner,
    scale: Scale,
    tlb_sizes: &[usize],
    workloads: &[&'static str],
    label_prefix: &str,
    cores: usize,
) -> Vec<Fig3Row> {
    // One base-96 job per workload (the normalization base, reused for
    // the 96-entry no-MTLB row instead of re-simulating) plus one job
    // per remaining (size, mtlb) cell — all independent.
    type Key = (usize, Option<(usize, bool)>);
    let mut specs: Vec<JobSpec> = Vec::new();
    let mut keys: Vec<Key> = Vec::new();
    for (w, &name) in workloads.iter().enumerate() {
        specs.push(JobSpec::new(
            format!("{label_prefix}/{name}/base96"),
            name,
            scale,
            MachineConfig::paper_base(96).with_cores(cores),
        ));
        keys.push((w, None));
        for &entries in tlb_sizes {
            for mtlb in [false, true] {
                if !mtlb && entries == 96 {
                    continue;
                }
                let (cfg, tag) = if mtlb {
                    (
                        MachineConfig::paper_mtlb(entries).with_cores(cores),
                        "+mtlb",
                    )
                } else {
                    (MachineConfig::paper_base(entries).with_cores(cores), "")
                };
                specs.push(JobSpec::new(
                    format!("{label_prefix}/{name}/tlb{entries}{tag}"),
                    name,
                    scale,
                    cfg,
                ));
                keys.push((w, Some((entries, mtlb))));
            }
        }
    }
    let results = runner.run(&specs);
    let by_key: BTreeMap<Key, &JobResult> = keys.iter().copied().zip(results.iter()).collect();

    let mut rows = Vec::new();
    for (w, &name) in workloads.iter().enumerate() {
        let base = by_key[&(w, None)];
        let base_total = base.report.total_cycles.get() as f64;
        for &entries in tlb_sizes {
            for mtlb in [false, true] {
                let r = if !mtlb && entries == 96 {
                    base
                } else {
                    by_key[&(w, Some((entries, mtlb)))]
                };
                rows.push(Fig3Row {
                    workload: name,
                    tlb_entries: entries,
                    mtlb,
                    total_cycles: r.report.total_cycles.get(),
                    tlb_miss_cycles: r.report.buckets.tlb_miss.get(),
                    tlb_fraction: r.report.tlb_miss_fraction(),
                    normalized: r.report.total_cycles.get() as f64 / base_total,
                    verified: r.outcome.verified,
                    report: r.report.clone(),
                });
            }
        }
    }
    rows
}

/// One em3d run of Figure 4 (§3.5): an MTLB geometry (or the no-MTLB
/// reference) on the 128-entry CPU TLB machine.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// `None` for the no-MTLB reference, else `(entries, assoc)`.
    pub geometry: Option<(usize, usize)>,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Runtime normalised to the no-MTLB reference.
    pub normalized: f64,
    /// Average MMC cycles per demand cache fill (Figure 4B).
    pub avg_fill_mmc_cycles: f64,
    /// Added delay per fill relative to the no-MTLB reference
    /// (Figure 4B's reported quantity; ≥ 1 cycle by construction).
    pub added_delay: f64,
    /// MTLB hit rate (0 for the reference).
    pub mtlb_hit_rate: f64,
    /// Full statistics snapshot of the run, for `--json-dir` export and
    /// the Figure 4B fill-latency histogram.
    pub report: RunReport,
}

/// Figure 4 (A and B): em3d sensitivity to MTLB size and associativity,
/// against the 128-entry-TLB no-MTLB system.
#[must_use]
pub fn fig4(runner: &Runner, scale: Scale, sizes: &[usize], assocs: &[usize]) -> Vec<Fig4Row> {
    let mut specs = vec![JobSpec::new(
        "fig4/em3d/no-mtlb",
        "em3d",
        scale,
        MachineConfig::paper_base(128),
    )];
    let mut geometries = Vec::new();
    for &entries in sizes {
        for &assoc in assocs {
            specs.push(JobSpec::new(
                format!("fig4/em3d/mtlb{entries}x{assoc}"),
                "em3d",
                scale,
                MachineConfig::paper_mtlb(128).with_mtlb_geometry(entries, assoc),
            ));
            geometries.push((entries, assoc));
        }
    }
    let results = runner.run(&specs);
    let reference = &results[0].report;
    let ref_total = reference.total_cycles.get() as f64;
    let ref_fill = reference.avg_fill_mmc_cycles();
    let mut rows = vec![Fig4Row {
        geometry: None,
        total_cycles: reference.total_cycles.get(),
        normalized: 1.0,
        avg_fill_mmc_cycles: ref_fill,
        added_delay: 0.0,
        mtlb_hit_rate: 0.0,
        report: reference.clone(),
    }];
    for (geometry, r) in geometries.into_iter().zip(&results[1..]) {
        rows.push(Fig4Row {
            geometry: Some(geometry),
            total_cycles: r.report.total_cycles.get(),
            normalized: r.report.total_cycles.get() as f64 / ref_total,
            avg_fill_mmc_cycles: r.report.avg_fill_mmc_cycles(),
            added_delay: r.report.avg_fill_mmc_cycles() - ref_fill,
            mtlb_hit_rate: r.report.mmc.mtlb_hit_rate(),
            report: r.report.clone(),
        });
    }
    rows
}

/// §3.3 initialisation-cost measurements.
#[derive(Debug, Clone)]
pub struct CostsReport {
    /// Pages remapped in the em3d-style measurement.
    pub remap_pages: u64,
    /// Total cycles of the remap syscall.
    pub remap_total_cycles: u64,
    /// Cycles spent flushing the cache (the paper's 1.497 M of 1.659 M).
    pub remap_flush_cycles: u64,
    /// All remaining remap overhead (the paper's 162 087).
    pub remap_other_cycles: u64,
    /// Average flush cycles per 4 KB page (the paper's ~1400).
    pub flush_cycles_per_page: f64,
    /// Cycles to copy one warm 4 KB page (the paper's ~11 400) — the cost
    /// conventional superpage coalescing pays per page and remapping
    /// avoids.
    pub copy_warm_page_cycles: u64,
}

/// §3.3: the em3d-style remap cost breakdown plus the warm page-copy
/// comparison. `pages` is the region size (the paper's em3d remapped
/// 1120 initialised pages).
#[must_use]
pub fn init_costs(pages: u64) -> CostsReport {
    let mut m = Machine::new(MachineConfig::paper_mtlb(128));
    let base = UserLayout::DATA_BASE;
    m.map_region(base, pages * PAGE_SIZE, Prot::RW);
    // Initialise every page so some lines are cached and dirty, as em3d's
    // explicitly-initialised dynamic memory was.
    for p in 0..pages {
        for line in 0..4 {
            m.write_u64(base + p * PAGE_SIZE + line * 512, p + line);
        }
    }
    let rep = m.remap(base, pages * PAGE_SIZE);
    assert_eq!(rep.pages_remapped + rep.pages_skipped, pages);

    // Warm page copy on a bare rig (kernel service measured in isolation).
    let mmc_cfg = MmcConfig::paper_default(128 << 20);
    let mut tlb = CpuTlb::new(128);
    let mut itlb = MicroItlb::new();
    let mut cache = DataCache::new(CacheConfig::paper_default());
    let mut mmc = Mmc::new(mmc_cfg);
    let mut mem = GuestMemory::new(128 << 20);
    let mut kernel = Kernel::new(mmc_cfg, KernelConfig::default());
    let mut ctx = KernelCtx {
        tlb: &mut tlb,
        itlb: &mut itlb,
        cache: &mut cache,
        mmc: &mut mmc,
        mem: &mut mem,
        ratio: ClockRatio::paper_default(),
    };
    kernel.boot(&mut ctx);
    let (src, dst) = (Ppn::new(0x5000), Ppn::new(0x5010));
    // Warm the source page; the block ends tm's borrow of ctx before
    // handing ctx to the kernel.
    {
        let mut tm = mtlb_os::TimedMem::new(ctx.cache, ctx.mmc, ctx.mem, ctx.ratio);
        for w in 0..(PAGE_SIZE / 4) {
            tm.charge_access(src.base_addr() + w * 4, false);
        }
    }
    let copy = kernel.copy_page_timed(&mut ctx, src, dst);

    CostsReport {
        remap_pages: rep.pages_remapped,
        remap_total_cycles: rep.total_cycles().get(),
        remap_flush_cycles: rep.flush_cycles.get(),
        remap_other_cycles: rep.other_cycles.get(),
        flush_cycles_per_page: rep.flush_cycles.get() as f64 / rep.pages_remapped as f64,
        copy_warm_page_cycles: copy.get(),
    }
}

/// One row of the §2.5 paging experiment.
#[derive(Debug, Clone)]
pub struct PagingRow {
    /// Paging policy under test.
    pub policy: PagingPolicy,
    /// Fraction of the superpage's base pages dirtied before eviction.
    pub dirty_fraction: f64,
    /// Base pages in the superpage.
    pub pages_total: u64,
    /// Pages written to swap at the steady-state eviction.
    pub pages_written: u64,
    /// Swap reads needed to service `touched_pages` scattered re-touches.
    pub pages_read_back: u64,
    /// Shadow faults the re-touches raised.
    pub faults: u64,
}

/// §2.5: swap traffic of shadow-superpage (per-base-page) paging versus
/// conventional whole-superpage paging, as the dirty fraction varies.
///
/// Uses a 1 MB superpage; steady state (every page already has a swap
/// copy); after eviction, 32 scattered pages are re-touched to measure
/// the fault-back traffic.
#[must_use]
pub fn paging(runner: &Runner, dirty_fractions: &[f64]) -> Vec<PagingRow> {
    fn one(policy: PagingPolicy, f: f64) -> PagingRow {
        let mut cfg = MachineConfig::paper_mtlb(64);
        cfg.kernel.paging = policy;
        let mut m = Machine::new(cfg);
        let base = UserLayout::DATA_BASE;
        let len = 1 << 20; // one 1 MB superpage
        let pages = len / PAGE_SIZE;
        m.map_region(base, len, Prot::RW);
        m.remap(base, len);

        // Generation 1: populate, evict (writes everything — no swap
        // copies exist), fault everything back to reach steady state.
        for p in 0..pages {
            m.write_u64(base + p * PAGE_SIZE, p);
        }
        m.swap_out_superpage(base.vpn());
        for p in 0..pages {
            let _ = m.read_u64(base + p * PAGE_SIZE);
        }

        // Dirty the prescribed fraction (scattered across the range).
        let dirty = ((pages as f64) * f).round() as u64;
        for i in 0..dirty {
            let p = (i * 97) % pages; // co-prime stride scatters them
            m.write_u64(base + p * PAGE_SIZE + 8, i);
        }

        // Steady-state eviction: the §2.5 measurement.
        let before_writes = m.kernel().swap().writes();
        let rep = m.swap_out_superpage(base.vpn());
        let written = m.kernel().swap().writes() - before_writes;
        assert_eq!(written, rep.pages_written);

        // Scattered re-touches.
        let before_reads = m.kernel().swap().reads();
        let before_faults = m.kernel().stats().shadow_faults_serviced;
        for i in 0..32u64 {
            let p = (i * 31) % pages;
            let _ = m.read_u64(base + p * PAGE_SIZE);
        }
        PagingRow {
            policy,
            dirty_fraction: f,
            pages_total: rep.pages_total,
            pages_written: written,
            pages_read_back: m.kernel().swap().reads() - before_reads,
            faults: m.kernel().stats().shadow_faults_serviced - before_faults,
        }
    }

    let mut tasks = Vec::new();
    for &policy in &[PagingPolicy::PerBasePage, PagingPolicy::WholeSuperpage] {
        for &f in dirty_fractions {
            tasks.push(Task::new(
                format!("paging/{policy:?}/dirty{f:.2}"),
                move || one(policy, f),
            ));
        }
    }
    runner.run_tasks(tasks)
}

/// Result of the §2.4 allocator comparison.
#[derive(Debug, Clone)]
pub struct AllocatorReport {
    /// 4 MB regions obtainable by the *bucket* allocator after the 16 KB
    /// churn (limited to its static 4 MB class).
    pub bucket_4m_after_churn: u64,
    /// 4 MB regions obtainable by the *buddy* allocator after the same
    /// churn (freed 16 KB regions recombine).
    pub buddy_4m_after_churn: u64,
    /// Static capacity of the bucket 4 MB class, for reference.
    pub bucket_4m_static: u64,
}

/// §2.4: buckets cannot move freed space between size classes; a buddy
/// system can. Both allocators suffer the same churn — consume every
/// 16 KB region, free them all — and are then asked for 4 MB regions.
#[must_use]
pub fn allocator_ablation() -> AllocatorReport {
    let range = mtlb_mmc::ShadowRange::paper_default();
    let partition = BucketPartition::paper_default();

    let mut bucket = BucketAllocator::new(range, &partition);
    let churn = |a: &mut dyn ShadowAllocator| {
        let mut regions = Vec::new();
        while let Some(r) = a.alloc(PageSize::Size16K) {
            regions.push(r);
        }
        for r in regions {
            a.free(r, PageSize::Size16K);
        }
        let mut got = 0;
        while a.alloc(PageSize::Size4M).is_some() {
            got += 1;
        }
        got
    };
    let bucket_static = bucket.available(PageSize::Size4M);
    let bucket_4m = churn(&mut bucket);

    let mut buddy = BuddyAllocator::new(range);
    let buddy_4m = churn(&mut buddy);

    AllocatorReport {
        bucket_4m_after_churn: bucket_4m,
        buddy_4m_after_churn: buddy_4m,
        bucket_4m_static: bucket_static,
    }
}

/// §3.4's note that writing updated reference/dirty bits back to the
/// mapping table "should have a negligible effect on performance":
/// em3d cycles with and without the charge.
#[must_use]
pub fn bit_writeback_ablation(runner: &Runner, scale: Scale) -> (u64, u64) {
    let mut off = MachineConfig::paper_mtlb(64);
    let mut on = off.clone();
    off.mmc.mtlb.as_mut().expect("mtlb").charge_bit_writeback = false;
    on.mmc.mtlb.as_mut().expect("mtlb").charge_bit_writeback = true;
    let results = runner.run(&[
        JobSpec::new("ablation/bit-writeback-off", "em3d", scale, off),
        JobSpec::new("ablation/bit-writeback-on", "em3d", scale, on),
    ]);
    (
        results[0].report.total_cycles.get(),
        results[1].report.total_cycles.get(),
    )
}

/// The §1 premise: shadow superpages make physical fragmentation free.
/// Runs radix on the MTLB machine with sequentially-allocated frames
/// (a fresh-boot machine, the conventional-superpage best case) and with
/// deliberately scrambled frames (a long-running machine, impossible for
/// conventional superpages); returns the two cycle counts, which should
/// be nearly identical.
#[must_use]
pub fn fragmentation_ablation(runner: &Runner, scale: Scale) -> (u64, u64) {
    let mut seq = MachineConfig::paper_mtlb(64);
    seq.kernel.frame_order = FrameOrder::Sequential;
    let mut scrambled = MachineConfig::paper_mtlb(64);
    scrambled.kernel.frame_order = FrameOrder::Scrambled { seed: 0xfa15e };
    let results = runner.run(&[
        JobSpec::new("ablation/frames-sequential", "radix", scale, seq),
        JobSpec::new("ablation/frames-scrambled", "radix", scale, scrambled),
    ]);
    let (r1, r2) = (&results[0], &results[1]);
    assert!(r1.outcome.verified && r2.outcome.verified);
    assert_eq!(
        r1.outcome.checksum, r2.outcome.checksum,
        "frame order must not change results"
    );
    (r1.report.total_cycles.get(), r2.report.total_cycles.get())
}

/// One row of the multiprogramming experiment.
#[derive(Debug, Clone)]
pub struct MultiprogramRow {
    /// Machine label.
    pub machine: &'static str,
    /// Accesses between context switches.
    pub quantum: u64,
    /// Total cycles for the interleaved run.
    pub cycles: u64,
    /// TLB-miss fraction.
    pub tlb_fraction: f64,
}

/// Multiprogramming: two processes, each with a working set that fits
/// the 64-entry TLB (48 pages = 192 KB), time-slice on one CPU. Every
/// context switch purges the replaceable TLB entries, so at short quanta
/// the baseline re-takes ~48 misses per switch while the superpage
/// machine refills its whole working set with a single TLB miss — a
/// benefit of TLB reach the paper's single-process runs cannot show.
#[must_use]
pub fn multiprogramming(runner: &Runner, quanta: &[u64]) -> Vec<MultiprogramRow> {
    fn one(machine: &'static str, cfg: MachineConfig, quantum: u64) -> MultiprogramRow {
        let mut m = Machine::new(cfg);
        let pages = 48u64; // 192 KB per process: fits a 64-entry TLB
        let p1 = m.spawn_process();
        let bases = [
            Machine::process_heap_base(0),
            Machine::process_heap_base(p1),
        ];
        for (pid, base) in bases.iter().enumerate() {
            m.try_switch_process(pid).expect("pid was spawned");
            m.map_region(*base, pages * PAGE_SIZE, Prot::RW);
            m.remap(*base, pages * PAGE_SIZE);
        }
        m.reset_stats();
        let mut x = [1u64, 99];
        let total_accesses = 200_000u64;
        let mut done = 0u64;
        let mut pid = 0usize;
        while done < total_accesses {
            m.try_switch_process(pid).expect("pid was spawned");
            for _ in 0..quantum.min(total_accesses - done) {
                let xs = &mut x[pid];
                *xs = xs
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let page = (*xs >> 33) % pages;
                m.read_u32(bases[pid] + page * PAGE_SIZE);
                m.execute(8);
            }
            done += quantum.min(total_accesses - done);
            pid = 1 - pid;
        }
        let r = m.report();
        MultiprogramRow {
            machine,
            quantum,
            cycles: r.total_cycles.get(),
            tlb_fraction: r.tlb_miss_fraction(),
        }
    }

    let mut tasks = Vec::new();
    for (machine, cfg) in [
        ("base 64", MachineConfig::paper_base(64)),
        ("64 + MTLB", MachineConfig::paper_mtlb(64)),
    ] {
        for &quantum in quanta {
            let cfg = cfg.clone();
            tasks.push(Task::new(
                format!("multiprogramming/{machine}/q{quantum}"),
                move || one(machine, cfg, quantum),
            ));
        }
    }
    runner.run_tasks(tasks)
}

/// One row of the §5 online-promotion experiment.
#[derive(Debug, Clone)]
pub struct PromotionRow {
    /// Policy label.
    pub policy: &'static str,
    /// Total cycles for the walk.
    pub cycles: u64,
    /// Superpages in the address space at the end.
    pub superpages: u64,
    /// Of which created by the online policy.
    pub auto_promotions: u64,
}

/// §5 extension — online superpage promotion (Romer et al., adapted to
/// shadow promotion's copy-free cost): a random walk over 2 MB of mapped
/// memory that never calls `remap()`, on (a) the baseline, (b) a machine
/// whose program remapped explicitly, and (c) a machine whose kernel
/// promotes hot regions automatically.
#[must_use]
pub fn promotion(runner: &Runner) -> Vec<PromotionRow> {
    fn walk(m: &mut Machine, base: VirtAddr, pages: u64) {
        let mut x = 3u64;
        for _ in 0..pages * 400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m.read_u32(base + ((x >> 33) % pages) * PAGE_SIZE);
            m.execute(12);
        }
    }
    fn one(policy: &'static str, cfg: MachineConfig) -> PromotionRow {
        let pages = 512u64; // 2 MB
        let base = UserLayout::DATA_BASE;
        let mut m = Machine::new(cfg);
        m.map_region(base, pages * PAGE_SIZE, Prot::RW);
        // Count from here so the rows compare the *policies'* costs —
        // explicit remap and online promotion both pay their promotion
        // work inside the measured window.
        m.reset_stats();
        if policy == "explicit remap()" {
            m.remap(base, pages * PAGE_SIZE);
        }
        walk(&mut m, base, pages);
        PromotionRow {
            policy,
            cycles: m.cycles().get(),
            superpages: m.kernel().aspace().superpages().count() as u64,
            auto_promotions: m.kernel().stats().auto_promotions,
        }
    }

    let tasks = [
        ("no superpages", MachineConfig::paper_base(64)),
        ("explicit remap()", MachineConfig::paper_mtlb(64)),
        ("online promotion", {
            let mut cfg = MachineConfig::paper_mtlb(64);
            cfg.kernel.promotion = Some(mtlb_os::PromotionConfig::default());
            cfg
        }),
    ]
    .into_iter()
    .map(|(policy, cfg)| Task::new(format!("promotion/{policy}"), move || one(policy, cfg)))
    .collect();
    runner.run_tasks(tasks)
}

/// Result of the §6 no-copy recoloring experiment (PIPT cache).
#[derive(Debug, Clone)]
pub struct RecoloringReport {
    /// Cycles for the ping-pong loop while the two hot pages conflict.
    pub conflict_cycles: u64,
    /// Cache miss rate during the conflict phase.
    pub conflict_miss_rate: f64,
    /// Cycles for the identical loop after recoloring one page.
    pub recolored_cycles: u64,
    /// Cache miss rate after recoloring.
    pub recolored_miss_rate: f64,
}

/// §6 extension — no-copy page recoloring: on a physically-indexed
/// cache, two hot pages whose frames share a color thrash; remapping one
/// of them to a shadow address of a different color fixes the conflict
/// without copying.
#[must_use]
pub fn recoloring() -> RecoloringReport {
    let mut cfg = MachineConfig::paper_mtlb(64);
    cfg.cache = CacheConfig::paper_default().with_indexing(CacheIndexing::Physical);
    // Sequential frames so page colors are predictable.
    cfg.kernel.frame_order = FrameOrder::Sequential;
    let mut m = Machine::new(cfg);
    let base = UserLayout::DATA_BASE;
    let colors = m.config().cache.page_colors();
    // Map colors+1 pages: with sequential frames, page 0 and page
    // `colors` receive frames of the same color.
    m.map_region(base, (colors + 1) * PAGE_SIZE, Prot::RW);
    let hot_a = base;
    let hot_b = base + colors * PAGE_SIZE;
    assert_eq!(
        m.page_color(hot_a.vpn()),
        m.page_color(hot_b.vpn()),
        "test setup: the two hot pages must conflict"
    );

    let ping_pong = |m: &mut Machine| {
        m.reset_stats();
        for i in 0..10_000u64 {
            let off = (i % 64) * 8;
            m.read_u64(hot_a + off);
            m.read_u64(hot_b + off);
            m.execute(10);
        }
        let r = m.report();
        (r.total_cycles.get(), 1.0 - r.cache.hit_rate())
    };

    let (conflict_cycles, conflict_miss_rate) = ping_pong(&mut m);
    // Recolor one of the combatants to the next color over.
    let new_color = (m.page_color(hot_b.vpn()) + 1) % colors;
    m.recolor_page(hot_b.vpn(), new_color);
    assert_ne!(m.page_color(hot_a.vpn()), m.page_color(hot_b.vpn()));
    let (recolored_cycles, recolored_miss_rate) = ping_pong(&mut m);

    RecoloringReport {
        conflict_cycles,
        conflict_miss_rate,
        recolored_cycles,
        recolored_miss_rate,
    }
}

/// Result of the §1-prediction experiment: the OLTP workload on the
/// usual machine pair.
#[derive(Debug, Clone)]
pub struct CommercialReport {
    /// Baseline (64-entry TLB, no MTLB) cycles.
    pub base_cycles: u64,
    /// MTLB (64-entry TLB + 128/2 MTLB) cycles.
    pub mtlb_cycles: u64,
    /// Baseline TLB-miss fraction.
    pub base_tlb_fraction: f64,
    /// MTLB speedup over the baseline.
    pub speedup: f64,
}

/// §1's closing prediction: applications with significantly larger
/// working sets (databases, commercial codes) should benefit even more.
/// Runs the ~26 MB OLTP workload on the 64-entry machines.
#[must_use]
pub fn commercial(runner: &Runner, scale: Scale) -> CommercialReport {
    let results = runner.run(&[
        JobSpec::new(
            "commercial/oltp/base64",
            "oltp",
            scale,
            MachineConfig::paper_base(64),
        ),
        JobSpec::new(
            "commercial/oltp/mtlb64",
            "oltp",
            scale,
            MachineConfig::paper_mtlb(64),
        ),
    ]);
    let (b, m) = (&results[0], &results[1]);
    assert!(b.outcome.verified && m.outcome.verified);
    assert_eq!(b.outcome.checksum, m.outcome.checksum);
    CommercialReport {
        base_cycles: b.report.total_cycles.get(),
        mtlb_cycles: m.report.total_cycles.get(),
        base_tlb_fraction: b.report.tlb_miss_fraction(),
        speedup: b.report.total_cycles.get() as f64 / m.report.total_cycles.get() as f64,
    }
}

/// One row of the §4 all-shadow experiment.
#[derive(Debug, Clone)]
pub struct AllShadowRow {
    /// Configuration label.
    pub label: String,
    /// Total cycles for the workload.
    pub cycles: u64,
    /// Normalised to the conventional baseline.
    pub normalized: f64,
    /// MTLB hit rate (0 for the baseline).
    pub mtlb_hit_rate: f64,
}

/// §4 extension — machines with *no* free physical addresses can route
/// every virtual access through shadow memory. The MTLB then carries all
/// traffic of programs that never asked for superpages; the paper
/// predicts "it might be necessary to expand its size and/or
/// associativity … to maintain performance". Runs em3d (no
/// superpages anywhere; the worst cache behaviour, so the heaviest
/// MTLB load) on the conventional baseline and on all-shadow
/// machines with the default and an enlarged MTLB.
#[must_use]
pub fn all_shadow_sensitivity(runner: &Runner, scale: Scale) -> Vec<AllShadowRow> {
    let geometries = [
        ("all-shadow, 128-entry 2-way MTLB", 128, 2),
        ("all-shadow, 512-entry 4-way MTLB", 512, 4),
        ("all-shadow, 2048-entry 4-way MTLB", 2048, 4),
    ];
    let mut specs = vec![JobSpec::new(
        "all-shadow/em3d/base96",
        "em3d",
        scale,
        MachineConfig::paper_base(96),
    )];
    for (label, entries, assoc) in geometries {
        let mut cfg = MachineConfig::paper_mtlb(96).with_mtlb_geometry(entries, assoc);
        cfg.kernel.all_shadow = true;
        cfg.kernel.use_superpages = false;
        specs.push(JobSpec::new(
            format!("all-shadow/em3d/{label}"),
            "em3d",
            scale,
            cfg,
        ));
    }
    let results = runner.run(&specs);
    let base_total = results[0].report.total_cycles.get();
    let mut rows = vec![AllShadowRow {
        label: "conventional (no MTLB)".to_string(),
        cycles: base_total,
        normalized: 1.0,
        mtlb_hit_rate: 0.0,
    }];
    for ((label, _, _), r) in geometries.into_iter().zip(&results[1..]) {
        assert!(r.outcome.verified);
        rows.push(AllShadowRow {
            label: label.to_string(),
            cycles: r.report.total_cycles.get(),
            normalized: r.report.total_cycles.get() as f64 / base_total as f64,
            mtlb_hit_rate: r.report.mmc.mtlb_hit_rate(),
        });
    }
    rows
}

/// Result of the §6 stream-buffer experiment.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Sequential-sweep cycles without stream buffers.
    pub sweep_without: u64,
    /// Sequential-sweep cycles with four 4-deep buffers.
    pub sweep_with: u64,
    /// Stream-buffer hit rate during the sweep.
    pub sweep_hit_rate: f64,
    /// Random-walk cycles without buffers.
    pub random_without: u64,
    /// Random-walk cycles with buffers (should be ≈ equal: no streams).
    pub random_with: u64,
}

/// §6 extension — MMC stream buffers: a sequential sweep through a
/// shadow superpage streams from the buffers (despite the discontiguous
/// real frames behind it); random traffic gains nothing.
#[must_use]
pub fn stream_buffers(runner: &Runner) -> StreamReport {
    fn run(stream: bool, random: bool) -> (u64, f64) {
        let mut cfg = MachineConfig::paper_mtlb(64);
        if stream {
            cfg.mmc.stream = Some(mtlb_mmc::StreamConfig::jouppi_default());
        }
        let mut m = Machine::new(cfg);
        let base = UserLayout::DATA_BASE;
        let len = 4 << 20;
        m.map_region(base, len, Prot::RW);
        m.remap(base, len);
        m.reset_stats();
        let mut x = 9u64;
        for i in 0..(len / 32) {
            let off = if random {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 24) % (len / 32)) * 32
            } else {
                i * 32
            };
            m.read_u32(base + off / 4 * 4);
            m.execute(4);
        }
        let hits = {
            let s = m.mmc_stream_stats();
            s.hit_rate()
        };
        (m.cycles().get(), hits)
    }
    let results = runner.run_tasks(vec![
        Task::new("stream/sweep/no-buffers", || run(false, false)),
        Task::new("stream/sweep/buffers", || run(true, false)),
        Task::new("stream/random/no-buffers", || run(false, true)),
        Task::new("stream/random/buffers", || run(true, true)),
    ]);
    let (sweep_without, _) = results[0];
    let (sweep_with, sweep_hit_rate) = results[1];
    let (random_without, _) = results[2];
    let (random_with, _) = results[3];
    StreamReport {
        sweep_without,
        sweep_with,
        sweep_hit_rate,
        random_without,
        random_with,
    }
}

/// One row of the §5 related-work comparison: misses per thousand
/// accesses of one translator on one trace.
#[derive(Debug, Clone)]
pub struct SubblockRow {
    /// Trace name.
    pub trace: &'static str,
    /// Translator label.
    pub translator: &'static str,
    /// TLB misses (any kind) per 1000 accesses.
    pub misses_per_k: f64,
    /// Estimated miss-handling cycles per 1000 accesses (subblock
    /// refills are cheaper than full entry misses).
    pub handler_cycles_per_k: f64,
}

/// §5 related work: replays page-reference traces against a conventional
/// TLB (64 and 128 entries) and Talluri & Hill's complete-subblock TLB
/// (64 entries, 16 subblocks each). The shadow-superpage machine's
/// numbers for the same access patterns appear in Figure 3; this
/// experiment shows where the subblock design sits between the two:
/// 16× reach without contiguity, but bounded by what per-subblock frame
/// storage fits on the processor.
#[must_use]
pub fn subblock_comparison() -> Vec<SubblockRow> {
    // Traces over a 1024-page (4 MB) region: page index per access.
    let make_trace = |kind: &str| -> Vec<u64> {
        let pages = 1024u64;
        let n = 60_000usize;
        let mut trace = Vec::with_capacity(n);
        let mut x = 0x1234_5678u64;
        for i in 0..n {
            let p = match kind {
                "sequential" => (i as u64 / 8) % pages,
                "random" => {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) % pages
                }
                "clustered" => {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if (x >> 20) % 10 < 8 {
                        (x >> 33) % 96 // hot 384 KB
                    } else {
                        (x >> 33) % pages
                    }
                }
                _ => unreachable!(),
            };
            trace.push(p);
        }
        trace
    };

    const FULL_MISS: f64 = 55.0;
    const SUBBLOCK_REFILL: f64 = 40.0;

    let mut rows = Vec::new();
    for trace_name in ["sequential", "random", "clustered"] {
        let trace = make_trace(trace_name);
        let k = trace.len() as f64 / 1000.0;

        for entries in [64usize, 128] {
            let mut tlb = CpuTlb::new(entries);
            let mut misses = 0u64;
            for &p in &trace {
                let va = VirtAddr::new(0x1000_0000 + p * PAGE_SIZE);
                match tlb.translate(
                    va,
                    mtlb_types::AccessKind::Read,
                    mtlb_types::PrivilegeLevel::User,
                ) {
                    LookupOutcome::Hit(_) => {}
                    LookupOutcome::Miss => {
                        misses += 1;
                        tlb.insert(
                            TlbEntry::new(
                                va.vpn(),
                                Ppn::new(0x8000 + p),
                                PageSize::Base4K,
                                Prot::RW,
                            )
                            .expect("aligned"),
                        );
                    }
                    LookupOutcome::Fault(_) => unreachable!(),
                }
            }
            rows.push(SubblockRow {
                trace: trace_name,
                translator: if entries == 64 {
                    "conventional 64"
                } else {
                    "conventional 128"
                },
                misses_per_k: misses as f64 / k,
                handler_cycles_per_k: misses as f64 * FULL_MISS / k,
            });
        }

        let mut sub = SubblockTlb::new(64);
        let mut cycles = 0f64;
        for &p in &trace {
            let va = VirtAddr::new(0x1000_0000 + p * PAGE_SIZE);
            match sub.translate(va) {
                SubblockOutcome::Hit(_) => {}
                SubblockOutcome::SubblockMiss => {
                    cycles += SUBBLOCK_REFILL;
                    sub.fill(va.vpn(), Ppn::new(0x8000 + p));
                }
                SubblockOutcome::EntryMiss => {
                    cycles += FULL_MISS;
                    sub.fill(va.vpn(), Ppn::new(0x8000 + p));
                }
            }
        }
        rows.push(SubblockRow {
            trace: trace_name,
            translator: "complete-subblock 64",
            misses_per_k: sub.stats().misses() as f64 / k,
            handler_cycles_per_k: cycles / k,
        });
    }
    rows
}

/// One cell of the fig6 multi-core co-scheduling experiment: `instances`
/// copies of one workload sharing the bus, MMC and MTLB.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: &'static str,
    /// Co-running instances (= cores).
    pub instances: usize,
    /// Single-instance cycles on the 1-core machine (the C1 baseline).
    pub baseline_cycles: u64,
    /// Total cycles for the co-scheduled run.
    pub corun_cycles: u64,
    /// `instances × baseline / corun` — 1.0 means the shared MTLB added
    /// no interference over running the instances back to back.
    pub efficiency: f64,
    /// Inter-processor TLB shootdowns delivered.
    pub shootdowns: u64,
    /// Cycles spent delivering them.
    pub shootdown_cycles: u64,
    /// Bus-arbitration (MTLB contention) stalls.
    pub contention_events: u64,
    /// Cycles those stalls cost.
    pub contention_cycles: u64,
    /// Shared-MTLB hit rate under the combined working sets.
    pub mtlb_hit_rate: f64,
    /// TLB-miss fraction of the co-run.
    pub tlb_fraction: f64,
    /// Full statistics snapshot of the co-run, for `--json-dir` export.
    pub report: RunReport,
}

/// Relocates a recorded op's virtual addresses by `delta` bytes,
/// placing an instance's whole address stream inside its process's
/// private 4 GB virtual window. `sbrk` needs no relocation (the kernel
/// allocates from the calling process's own heap window, which is
/// `delta` bytes above the recording process's — so the recorded
/// pointer arithmetic lands exactly right), and `load_program` places
/// text per-process by itself. Returns `None` for the host-level ops a
/// single-process recording cannot contain; the co-run skips them.
fn rebase_op(op: &MachineOp, delta: u64) -> Option<MachineOp> {
    let pages = delta / PAGE_SIZE;
    Some(match *op {
        MachineOp::Execute { n } => MachineOp::Execute { n },
        MachineOp::Read { va, size } => MachineOp::Read {
            va: va + delta,
            size,
        },
        MachineOp::Write { va, size } => MachineOp::Write {
            va: va + delta,
            size,
        },
        MachineOp::ReadBlock { va, len, instr } => MachineOp::ReadBlock {
            va: va + delta,
            len,
            instr,
        },
        MachineOp::WriteBlock { va, len, instr } => MachineOp::WriteBlock {
            va: va + delta,
            len,
            instr,
        },
        MachineOp::StreamReadU32 { base, count, instr } => MachineOp::StreamReadU32 {
            base: base + delta,
            count,
            instr,
        },
        MachineOp::StreamWriteU32 { base, count, instr } => MachineOp::StreamWriteU32 {
            base: base + delta,
            count,
            instr,
        },
        MachineOp::StreamWritePairU32 { a, b, count, instr } => MachineOp::StreamWritePairU32 {
            a: a + delta,
            b: b + delta,
            count,
            instr,
        },
        MachineOp::StreamWriteU32F64 { a, b, count, instr } => MachineOp::StreamWriteU32F64 {
            a: a + delta,
            b: b + delta,
            count,
            instr,
        },
        MachineOp::MapRegion { start, len, prot } => MachineOp::MapRegion {
            start: start + delta,
            len,
            prot,
        },
        MachineOp::Remap { start, len } => MachineOp::Remap {
            start: start + delta,
            len,
        },
        MachineOp::Sbrk { increment } => MachineOp::Sbrk { increment },
        MachineOp::SwapOutSuperpage { vpn } => MachineOp::SwapOutSuperpage {
            vpn: vpn.offset(pages),
        },
        MachineOp::DemoteSuperpage { vpn } => MachineOp::DemoteSuperpage {
            vpn: vpn.offset(pages),
        },
        MachineOp::PageBits { vpn } => MachineOp::PageBits {
            vpn: vpn.offset(pages),
        },
        MachineOp::RecolorPage { vpn, color } => MachineOp::RecolorPage {
            vpn: vpn.offset(pages),
            color,
        },
        MachineOp::LoadProgram { len, remap_text } => MachineOp::LoadProgram { len, remap_text },
        MachineOp::SpawnProcess | MachineOp::SwitchProcess { .. } | MachineOp::ResetStats => {
            return None;
        }
    })
}

/// One fig6 co-run: `instances` copies of the recorded op stream, one
/// per core, each in its own process and virtual window, interleaved
/// by the deterministic round-robin scheduler (one op per core per
/// turn).
fn fig6_corun(ops: &[MachineOp], instances: usize) -> RunReport {
    let mut m = Machine::new(MachineConfig::paper_mtlb(96).with_cores(instances));
    // Instance 0 stays in the boot process (delta 0 — the stream
    // replays exactly as recorded); every other instance gets a fresh
    // process, whose pid fixes its 4 GB window.
    let mut deltas = vec![0u64];
    for core in 1..instances {
        let pid = m.spawn_process();
        deltas.push(Machine::process_heap_base(pid).get() - Machine::process_heap_base(0).get());
        m.set_active_core(core);
        m.try_switch_process(pid).expect("pid just spawned");
    }
    m.set_active_core(0);
    for (i, op) in ops.iter().enumerate() {
        for (core, &delta) in deltas.iter().enumerate() {
            let Some(op) = rebase_op(op, delta) else {
                continue;
            };
            m.set_active_core(core);
            if let Err(e) = mtlb_trace::apply_op(&mut m, &op, i as u64) {
                panic!("fig6 co-run replay diverged on core {core}: {e}");
            }
        }
    }
    m.report()
}

/// The fig6 experiment: co-run 2/4/8 instances of each workload on a
/// multi-core machine sharing one bus, MMC and MTLB, and compare
/// against the single-core baseline. Each workload is recorded once
/// (that recording run *is* the C1 baseline — it is never re-simulated
/// per instance count); each `(workload, instances)` cell replays the
/// stream round-robin across the cores. Cells are independent runner
/// tasks, and rows are assembled in a fixed order, so the output is
/// byte-identical at every `--jobs` level.
#[must_use]
pub fn fig6(
    runner: &Runner,
    scale: Scale,
    instance_counts: &[usize],
    workloads: &[&'static str],
) -> Vec<Fig6Row> {
    let record_tasks = workloads
        .iter()
        .map(|&name| {
            Task::new(format!("fig6/{name}/record"), move || {
                let mut m = Machine::new(MachineConfig::paper_mtlb(96));
                m.set_op_sink(Box::new(VecOpSink::default()));
                let outcome = workload_by_name(name, scale).run(&mut m);
                assert!(outcome.verified, "fig6 record: {name} failed self-check");
                let sink = m.take_op_sink().expect("sink still attached");
                let ops = sink
                    .into_any()
                    .downcast::<VecOpSink>()
                    .expect("VecOpSink was attached")
                    .ops;
                (ops, m.report())
            })
        })
        .collect();
    let recorded: Vec<(Vec<MachineOp>, RunReport)> = runner.run_tasks(record_tasks);

    let mut tasks = Vec::new();
    for (w, &name) in workloads.iter().enumerate() {
        for &n in instance_counts {
            let ops = &recorded[w].0;
            tasks.push(Task::new(format!("fig6/{name}/x{n}"), move || {
                fig6_corun(ops, n)
            }));
        }
    }
    let reports = runner.run_tasks(tasks);

    let mut rows = Vec::new();
    let mut reports = reports.into_iter();
    for (w, &name) in workloads.iter().enumerate() {
        let baseline = recorded[w].1.total_cycles.get();
        for &n in instance_counts {
            let report = reports.next().expect("one report per cell");
            rows.push(Fig6Row {
                workload: name,
                instances: n,
                baseline_cycles: baseline,
                corun_cycles: report.total_cycles.get(),
                efficiency: (n as f64 * baseline as f64) / report.total_cycles.get() as f64,
                shootdowns: report.kernel.shootdowns,
                shootdown_cycles: report.kernel.shootdown_cycles.get(),
                contention_events: report.mtlb_contention_events,
                contention_cycles: report.mtlb_contention_cycles.get(),
                mtlb_hit_rate: report.mmc.mtlb_hit_rate(),
                tlb_fraction: report.tlb_miss_fraction(),
                report,
            });
        }
    }
    rows
}

/// One cell of the fig5 rival-scheme comparison: one translation front
/// end at one capacity, driven by the recorded op stream of one
/// workload.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: &'static str,
    /// Translation-scheme name (`cpu`, `mtlb`, `coalesced`, `split`).
    pub scheme: &'static str,
    /// Front-end entry count (the split scheme's is fixed by design).
    pub tlb_entries: usize,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// Cycles in the software TLB miss handler.
    pub tlb_miss_cycles: u64,
    /// `tlb_miss_cycles / total_cycles`.
    pub tlb_fraction: f64,
    /// Front-end misses (= software miss-handler invocations).
    pub misses: u64,
    /// `misses / (hits + misses)`.
    pub miss_rate: f64,
    /// Bytes the front end could translate without a miss at the end of
    /// the run — the reach the rival designs compete on.
    pub reach_bytes: u64,
    /// Runtime normalised to the 96-entry conventional-TLB base cell.
    pub normalized: f64,
    /// Full statistics snapshot of the run, for `--json-dir` export.
    pub report: RunReport,
}

/// One fig5 matrix cell the record run does not already cover: build
/// the machine for the scheme under test and re-drive the recorded op
/// stream through it. Replay panics on divergence, so a returned report
/// is a verified run.
fn fig5_replay(
    name: &str,
    scheme: &str,
    ops: &[MachineOp],
    cfg: MachineConfig,
) -> (RunReport, u64) {
    let mut m = Machine::new(cfg);
    for (i, op) in ops.iter().enumerate() {
        if let Err(e) = mtlb_trace::apply_op(&mut m, op, i as u64) {
            panic!("fig5 {scheme} replay of {name} diverged: {e}");
        }
    }
    let reach = m.tlb_reach_bytes();
    (m.report(), reach)
}

/// One column of the fig5 matrix: a scheme at a capacity, with the
/// machine configuration to build — or `None` when the record run *is*
/// this cell (the paper machine at 96 entries).
struct Fig5Cell {
    scheme: &'static str,
    entries: usize,
    cfg: Option<MachineConfig>,
}

/// The fig5 matrix columns for one size sweep. Scheme pairing follows
/// what each design needs from the OS: the conventional TLB and the
/// coalescing TLB run on 4 KB mappings with no MTLB; the paper's
/// machine and the split TLB run with shadow superpages and the MTLB,
/// where multi-page-size entries actually occur. The coalescing TLB
/// additionally gets a fresh-boot sequential frame allocator — its
/// premise is that the OS produces physically-contiguous runs, which
/// the default deliberately-scrambled allocator (the paper's
/// fragmented-memory model, see the fragmentation ablation) never
/// does; under fragmentation it degenerates to the conventional TLB
/// exactly.
fn fig5_cells(tlb_sizes: &[usize]) -> Vec<Fig5Cell> {
    let mut cells = Vec::new();
    for &e in tlb_sizes {
        cells.push(Fig5Cell {
            scheme: "cpu",
            entries: e,
            cfg: Some(MachineConfig::paper_base(e)),
        });
    }
    for &e in tlb_sizes {
        cells.push(Fig5Cell {
            scheme: "mtlb",
            entries: e,
            // The record run is the 96-entry paper machine; reuse it.
            cfg: (e != 96).then(|| MachineConfig::paper_mtlb(e)),
        });
    }
    for &e in tlb_sizes {
        let mut cfg = MachineConfig::paper_base(e).with_scheme(SchemeConfig::Coalesced);
        cfg.kernel.frame_order = FrameOrder::Sequential;
        cells.push(Fig5Cell {
            scheme: "coalesced",
            entries: e,
            cfg: Some(cfg),
        });
    }
    cells.push(Fig5Cell {
        scheme: "split",
        entries: SchemeConfig::Split.build(0).capacity(),
        cfg: Some(MachineConfig::paper_mtlb(96).with_scheme(SchemeConfig::Split)),
    });
    cells
}

/// The fig5 experiment: rival TLB-reach designs head-to-head on
/// identical recorded address streams. Each workload is recorded once
/// on the paper's 96-entry MTLB machine (that run *is* the
/// `mtlb`/96 cell); every other `(scheme, entries)` cell replays the
/// stream on a machine built for that scheme. Cells are independent
/// runner tasks and rows are assembled in a fixed order, so the output
/// is byte-identical at every `--jobs` level. Runtimes are normalised
/// per-workload to the 96-entry conventional (`cpu`) cell.
#[must_use]
pub fn fig5(
    runner: &Runner,
    scale: Scale,
    tlb_sizes: &[usize],
    workloads: &[&'static str],
) -> Vec<Fig5Row> {
    let record_tasks = workloads
        .iter()
        .map(|&name| {
            Task::new(format!("fig5/{name}/record"), move || {
                let mut m = Machine::new(MachineConfig::paper_mtlb(96));
                m.set_op_sink(Box::new(VecOpSink::default()));
                let outcome = workload_by_name(name, scale).run(&mut m);
                assert!(outcome.verified, "fig5 record: {name} failed self-check");
                let sink = m.take_op_sink().expect("sink still attached");
                let ops = sink
                    .into_any()
                    .downcast::<VecOpSink>()
                    .expect("VecOpSink was attached")
                    .ops;
                let reach = m.tlb_reach_bytes();
                (ops, m.report(), reach)
            })
        })
        .collect();
    let recorded: Vec<(Vec<MachineOp>, RunReport, u64)> = runner.run_tasks(record_tasks);

    let cells = fig5_cells(tlb_sizes);
    let mut tasks = Vec::new();
    for (w, &name) in workloads.iter().enumerate() {
        for cell in &cells {
            if let Some(cfg) = cell.cfg.clone() {
                let ops = &recorded[w].0;
                let scheme = cell.scheme;
                tasks.push(Task::new(
                    format!("fig5/{name}/{}{}", cell.scheme, cell.entries),
                    move || fig5_replay(name, scheme, ops, cfg),
                ));
            }
        }
    }
    let replayed: Vec<(RunReport, u64)> = runner.run_tasks(tasks);

    let mut rows = Vec::new();
    let mut replayed = replayed.into_iter();
    for (w, &name) in workloads.iter().enumerate() {
        let results: Vec<(RunReport, u64)> = cells
            .iter()
            .map(|cell| match &cell.cfg {
                Some(_) => replayed.next().expect("one result per replay cell"),
                None => (recorded[w].1.clone(), recorded[w].2),
            })
            .collect();
        let base_total = cells
            .iter()
            .zip(results.iter())
            .find(|(c, _)| c.scheme == "cpu" && c.entries == 96)
            .or_else(|| {
                cells
                    .iter()
                    .zip(results.iter())
                    .find(|(c, _)| c.scheme == "cpu")
            })
            .map_or(1.0, |(_, (r, _))| r.total_cycles.get() as f64);
        for (cell, (report, reach)) in cells.iter().zip(results) {
            let hits = report.tlb.hits;
            let misses = report.tlb.misses;
            let lookups = hits.saturating_add(misses);
            rows.push(Fig5Row {
                workload: name,
                scheme: cell.scheme,
                tlb_entries: cell.entries,
                total_cycles: report.total_cycles.get(),
                tlb_miss_cycles: report.buckets.tlb_miss.get(),
                tlb_fraction: report.tlb_miss_fraction(),
                misses,
                miss_rate: if lookups == 0 {
                    0.0
                } else {
                    misses as f64 / lookups as f64
                },
                reach_bytes: reach,
                normalized: report.total_cycles.get() as f64 / base_total,
                report,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_the_paper_exactly() {
        let rows = fig2();
        let expect = [
            (PageSize::Size16K, 1024u64, 16u64 << 20),
            (PageSize::Size64K, 256, 16 << 20),
            (PageSize::Size256K, 128, 32 << 20),
            (PageSize::Size1M, 64, 64 << 20),
            (PageSize::Size4M, 32, 128 << 20),
            (PageSize::Size16M, 16, 256 << 20),
        ];
        assert_eq!(rows.len(), expect.len());
        for (row, (size, count, extent)) in rows.iter().zip(expect) {
            assert_eq!(
                (row.size, row.count, row.extent_bytes),
                (size, count, extent)
            );
        }
    }

    #[test]
    fn fig3_small_run_shapes() {
        let rows = fig3(&Runner::with_jobs(2), Scale::Test, &[64], &["radix"]);
        assert_eq!(rows.len(), 2);
        let base = rows.iter().find(|r| !r.mtlb).unwrap();
        let mtlb = rows.iter().find(|r| r.mtlb).unwrap();
        assert!(base.verified && mtlb.verified);
        assert!(
            mtlb.tlb_fraction < base.tlb_fraction,
            "the MTLB must cut TLB miss time"
        );
    }

    #[test]
    fn fig5_small_run_shapes() {
        let rows = fig5(&Runner::with_jobs(2), Scale::Test, &[64, 96], &["radix"]);
        // 2 cpu + 2 mtlb + 2 coalesced + 1 split cells.
        assert_eq!(rows.len(), 7);
        let cell = |scheme: &str, entries: usize| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.tlb_entries == entries)
                .expect("cell present")
        };
        // The cpu/96 cell is the normalization base.
        assert!((cell("cpu", 96).normalized - 1.0).abs() < 1e-12);
        // All schemes saw lookups and kept their counters sane.
        for r in &rows {
            assert!(r.total_cycles > 0);
            assert!(r.reach_bytes > 0);
            assert!((0.0..=1.0).contains(&r.miss_rate), "{r:?}");
        }
        // The split scheme's geometry is fixed regardless of the sweep.
        assert_eq!(cell("split", 104).scheme, "split");
        // Coalescing on a fresh-boot allocator cannot miss more often
        // than the conventional TLB at the same capacity.
        assert!(cell("coalesced", 64).misses <= cell("cpu", 64).misses);
        // The mtlb/96 cell is the record run reused, not re-simulated:
        // its report matches the paper machine bit-for-bit.
        assert_eq!(cell("mtlb", 96).tlb_entries, 96);
    }

    #[test]
    fn fig4_reference_row_is_first() {
        let rows = fig4(&Runner::serial(), Scale::Test, &[64], &[1, 2]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].geometry.is_none());
        assert!((rows[0].normalized - 1.0).abs() < 1e-12);
        for r in &rows[1..] {
            assert!(r.added_delay >= 1.0, "the detect cycle is a floor");
            assert!(r.mtlb_hit_rate > 0.0);
        }
    }

    #[test]
    fn init_costs_land_in_paper_bands() {
        let c = init_costs(128);
        assert!(
            (1100.0..1800.0).contains(&c.flush_cycles_per_page),
            "flush {:.0}/page",
            c.flush_cycles_per_page
        );
        assert!(
            (9_000..14_000).contains(&c.copy_warm_page_cycles),
            "copy {}",
            c.copy_warm_page_cycles
        );
        assert!(c.remap_flush_cycles > c.remap_other_cycles);
    }

    #[test]
    fn paging_traffic_shapes() {
        let rows = paging(&Runner::serial(), &[0.1]);
        let per = rows
            .iter()
            .find(|r| r.policy == PagingPolicy::PerBasePage)
            .unwrap();
        let whole = rows
            .iter()
            .find(|r| r.policy == PagingPolicy::WholeSuperpage)
            .unwrap();
        assert_eq!(per.pages_total, 256);
        // Per-base-page writes ≈ dirty pages; whole writes everything.
        assert!(per.pages_written <= 30 && per.pages_written >= 20);
        assert_eq!(whole.pages_written, 256);
        // Re-touch traffic: selective vs everything.
        assert!(per.pages_read_back <= 32);
        assert_eq!(whole.pages_read_back, 256);
        assert_eq!(whole.faults, 1, "one fault brings the whole superpage in");
    }

    #[test]
    fn allocator_ablation_shows_buddy_flexibility() {
        let r = allocator_ablation();
        assert_eq!(r.bucket_4m_after_churn, r.bucket_4m_static);
        assert!(
            r.buddy_4m_after_churn > r.bucket_4m_after_churn,
            "buddy reuses freed 16 KB space for large regions"
        );
    }

    #[test]
    fn recoloring_removes_conflict_misses() {
        let r = recoloring();
        assert!(r.conflict_miss_rate > 0.9, "ping-pong must thrash: {r:?}");
        assert!(r.recolored_miss_rate < 0.1, "recolor must fix it: {r:?}");
        assert!(r.recolored_cycles * 2 < r.conflict_cycles);
    }

    #[test]
    fn stream_buffers_help_sweeps_not_randoms() {
        let r = stream_buffers(&Runner::with_jobs(2));
        assert!(r.sweep_with < r.sweep_without, "{r:?}");
        assert!(r.sweep_hit_rate > 0.8, "{r:?}");
        let ratio = r.random_with as f64 / r.random_without as f64;
        assert!(
            (0.98..1.05).contains(&ratio),
            "random traffic unchanged: {r:?}"
        );
    }

    #[test]
    fn multiprogramming_hurts_the_baseline_more_at_short_quanta() {
        let rows = multiprogramming(&Runner::with_jobs(2), &[500, 20_000]);
        let get = |machine: &str, q: u64| {
            rows.iter()
                .find(|r| r.machine == machine && r.quantum == q)
                .expect("row")
                .cycles
        };
        // The MTLB machine wins at both quanta...
        assert!(get("64 + MTLB", 500) < get("base 64", 500));
        // ...and the baseline's short-quantum penalty (refilling hundreds
        // of 4 KB entries after every switch) exceeds the MTLB machine's.
        let base_penalty = get("base 64", 500) as f64 / get("base 64", 20_000) as f64;
        let mtlb_penalty = get("64 + MTLB", 500) as f64 / get("64 + MTLB", 20_000) as f64;
        assert!(base_penalty > mtlb_penalty, "{rows:?}");
    }

    #[test]
    fn online_promotion_approaches_explicit_remap() {
        let rows = promotion(&Runner::serial());
        let base = rows.iter().find(|r| r.policy == "no superpages").unwrap();
        let explicit = rows
            .iter()
            .find(|r| r.policy == "explicit remap()")
            .unwrap();
        let auto = rows
            .iter()
            .find(|r| r.policy == "online promotion")
            .unwrap();
        assert!(auto.auto_promotions > 0, "{rows:?}");
        assert!(
            auto.cycles < base.cycles,
            "promotion must beat the baseline"
        );
        // Within 25% of the explicit-remap machine (warmup misses cost).
        assert!(
            (auto.cycles as f64) < explicit.cycles as f64 * 1.25,
            "{rows:?}"
        );
    }

    #[test]
    fn commercial_workload_runs_and_agrees() {
        // At Test scale the 8 MB sbrk preallocation's remap flush
        // dominates the tiny run, so no speedup is asserted here (the
        // paper-scale win is recorded in EXPERIMENTS.md); `commercial`
        // itself asserts checksum equality across machines.
        let r = commercial(&Runner::serial(), Scale::Test);
        assert!(r.base_cycles > 0 && r.mtlb_cycles > 0);
        assert!(r.base_tlb_fraction > 0.0);
    }

    #[test]
    fn all_shadow_mode_works_and_bigger_mtlbs_recover() {
        let rows = all_shadow_sensitivity(&Runner::serial(), Scale::Test);
        assert_eq!(rows.len(), 4);
        // All-shadow traffic really hits the MTLB.
        assert!(rows[1].mtlb_hit_rate > 0.0);
        // A larger MTLB performs no worse than the default one.
        assert!(rows[3].cycles <= rows[1].cycles);
    }

    #[test]
    fn subblock_beats_conventional_on_clustered_traces() {
        let rows = subblock_comparison();
        let get = |trace: &str, tr: &str| {
            rows.iter()
                .find(|r| r.trace == trace && r.translator == tr)
                .expect("row present")
                .handler_cycles_per_k
        };
        // Clustered 384 KB hot set: beyond a 64-entry conventional TLB's
        // 256 KB reach, well within the subblock TLB's 4 MB.
        assert!(
            get("clustered", "complete-subblock 64") < get("clustered", "conventional 64") / 2.0
        );
        // Uniform random over 4 MB defeats the conventional TLB entirely;
        // the subblock TLB's 4 MB reach eventually captures it.
        assert!(get("random", "complete-subblock 64") < get("random", "conventional 128"));
    }

    #[test]
    fn fragmentation_is_free_under_shadow_superpages() {
        let (seq, scrambled) = fragmentation_ablation(&Runner::serial(), Scale::Test);
        let ratio = scrambled as f64 / seq as f64;
        assert!(
            (0.99..1.01).contains(&ratio),
            "scrambled frames cost {ratio:.4}x"
        );
    }
}
