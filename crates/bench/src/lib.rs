//! Experiment drivers regenerating the paper's evaluation (§3).
//!
//! Each public function in [`experiments`] reproduces one table or figure
//! and returns structured rows; the `repro` binary prints them in the
//! paper's format and the Criterion benches re-time the same drivers.
//!
//! | Paper artefact | Driver |
//! |---|---|
//! | Figure 2 (shadow-space partition) | [`experiments::fig2`] |
//! | Figure 3 (normalised runtimes, TLB-miss fractions) | [`experiments::fig3`] |
//! | Figure 4A (em3d runtime vs MTLB geometry) | [`experiments::fig4`] |
//! | Figure 4B (avg time per cache fill) | [`experiments::fig4`] |
//! | §3.3 (remap / flush / copy costs) | [`experiments::init_costs`] |
//! | §2.5 (per-base-page vs whole-superpage paging) | [`experiments::paging`] |
//! | §3.4 headline (64+MTLB ≈ 128 without) | derived from [`experiments::fig3`] |
//! | §2.4 allocator discussion (buckets vs buddy) | [`experiments::allocator_ablation`] |
//! | §3.4 note (ref/dirty write-back cost) | [`experiments::bit_writeback_ablation`] |
//! | §1 premise (discontiguous frames are free) | [`experiments::fragmentation_ablation`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod table;
