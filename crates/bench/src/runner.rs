//! Parallel sweep execution.
//!
//! Every sweep in [`experiments`](crate::experiments) is a set of
//! *independent* simulations — one workload on one [`MachineConfig`] —
//! so the drivers describe their work as [`JobSpec`] lists (or labelled
//! closures, for experiments that drive a machine by hand) and hand them
//! to a [`Runner`]. The runner executes them across OS threads with
//! [`std::thread::scope`]; no job queue crate, no channels.
//!
//! Two properties the rest of the crate relies on:
//!
//! * **Determinism.** Results always come back in job order, whatever
//!   order the jobs finished in, so tables and CSVs built from them are
//!   byte-identical between `--jobs 1` and `--jobs N`. Each simulation
//!   is single-threaded and seeded, so its simulated cycle counts cannot
//!   depend on scheduling either.
//! * **Attribution.** The runner records per-job host wall time and
//!   simulated cycles ([`JobRecord`]); `repro --bench-report` drains
//!   these into `BENCH_baseline.json`.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mtlb_sim::{Bucket, Machine, MachineConfig, RingTrace, RunReport};
use mtlb_trace::TraceWriter;
use mtlb_workloads::{Outcome, Scale};

use crate::experiments::workload_by_name;

/// The scale discriminant stored in a trace header ([`mtlb_trace`]
/// keeps it a raw byte so it does not depend on the workloads crate).
#[must_use]
pub fn scale_byte(scale: Scale) -> u8 {
    match scale {
        Scale::Test => 0,
        Scale::Paper => 1,
    }
}

/// Inverts [`scale_byte`].
#[must_use]
pub fn scale_from_byte(byte: u8) -> Option<Scale> {
    match byte {
        0 => Some(Scale::Test),
        1 => Some(Scale::Paper),
        _ => None,
    }
}

/// One independent simulation: a workload on a machine configuration.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Display label, e.g. `fig3/em3d/tlb64+mtlb`.
    pub label: String,
    /// Workload name (see [`crate::experiments::WORKLOADS`]).
    pub workload: &'static str,
    /// Workload scale.
    pub scale: Scale,
    /// The machine to run it on.
    pub cfg: MachineConfig,
}

impl JobSpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        workload: &'static str,
        scale: Scale,
        cfg: MachineConfig,
    ) -> Self {
        JobSpec {
            label: label.into(),
            workload,
            scale,
            cfg,
        }
    }
}

/// The outcome of one completed [`JobSpec`].
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The spec's label.
    pub label: String,
    /// Workload outcome (checksum + self-check).
    pub outcome: Outcome,
    /// Full statistics snapshot of the run.
    pub report: RunReport,
    /// Host wall time the job took.
    pub wall: Duration,
}

/// A host-time record of one finished job, for `--bench-report`.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The job's label.
    pub label: String,
    /// Host wall time.
    pub wall: Duration,
    /// Simulated cycles, when the job was a machine simulation.
    pub sim_cycles: Option<u64>,
}

/// A labelled closure job, for experiments that drive a machine by hand
/// rather than running a named workload (paging, multiprogramming, …).
pub struct Task<'scope, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'scope>,
}

impl<'scope, T> Task<'scope, T> {
    /// Wraps a closure with a display label.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'scope) -> Self {
        Task {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

/// Recorded op traces, keyed by the `(workload, scale)` pair whose
/// address stream they capture. One entry drives every machine
/// configuration of that pair in a sweep.
type TraceCache = BTreeMap<(&'static str, Scale), Arc<Vec<u8>>>;

/// Finished simulations keyed by `(workload, scale, config)` — the
/// config via its exhaustive `Debug` rendering. Simulations are
/// deterministic, so identical rows appearing across experiments in
/// one sweep (`fig3` and `fig3.4` share several) run once.
type ResultCache = BTreeMap<(&'static str, Scale, String), (Outcome, RunReport)>;

/// Decoded-batch cache: each recorded trace is varint-decoded into
/// SoA batches once, and every further configuration replays straight
/// from the decoded ops ([`mtlb_trace::replay_decoded`]).
type DecodedCache = BTreeMap<(&'static str, Scale), Arc<mtlb_trace::DecodedTrace>>;

/// Ceiling on total ops held in the decoded-batch cache. Decoded
/// batches cost ~17 bytes per op (several times the encoded trace);
/// past the ceiling, further traces decode per replay instead of
/// caching. The full paper-scale workload set is ~75M ops.
const DECODED_OPS_CAP: u64 = 128_000_000;

/// Executes independent jobs across OS threads, returning results in
/// deterministic job order.
#[derive(Debug)]
pub struct Runner {
    jobs: usize,
    live: bool,
    trace: bool,
    replay: bool,
    traces: Mutex<TraceCache>,
    decoded: Mutex<DecodedCache>,
    results: Mutex<ResultCache>,
    records: Mutex<Vec<JobRecord>>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::with_jobs(0)
    }
}

impl Runner {
    /// A runner executing jobs one at a time, in order, on the calling
    /// thread — the pre-parallelism behaviour.
    #[must_use]
    pub fn serial() -> Self {
        Runner::with_jobs(1)
    }

    /// A runner using `jobs` worker threads; `0` means the host's
    /// available parallelism.
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            jobs
        };
        Runner {
            jobs,
            live: false,
            trace: false,
            replay: true,
            traces: Mutex::new(BTreeMap::new()),
            decoded: Mutex::new(BTreeMap::new()),
            results: Mutex::new(BTreeMap::new()),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Enables a per-job completion line on stderr (label, wall time,
    /// simulated cycles). Stdout stays untouched so rendered tables and
    /// CSVs remain byte-identical across jobs levels.
    #[must_use]
    pub fn live_progress(mut self, on: bool) -> Self {
        self.live = on;
        self
    }

    /// Attaches a [`RingTrace`] sink to every simulated machine and
    /// prints a per-job cycle-attribution summary (events seen, cycles
    /// per bucket) on stderr when the job completes. Stdout — and the
    /// simulated cycle counts themselves — are unaffected.
    #[must_use]
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables or disables the trace record/replay cache (**on** by
    /// default): the first run of each `(workload, scale)` pair is
    /// recorded through a [`TraceWriter`], and every later run of the
    /// same pair — whatever its machine configuration — replays the
    /// recorded op stream instead of re-executing the workload's host
    /// logic. Simulated cycles are byte-identical either way (the op
    /// stream fully determines them); only host wall time changes.
    ///
    /// Recording captures the op stream both as encoded bytes and as
    /// decoded SoA batches ([`mtlb_trace::DecodedTrace`]); every
    /// further configuration replays straight from the decoded batches
    /// through [`mtlb_trace::replay_decoded`] — batched dispatch, span
    /// coalescing and the steady-state loop fast-forward, with no
    /// decode pass at all. That makes record-once/replay-many the
    /// cheapest execution mode for multi-config sweeps: each
    /// workload's host logic and RNG run once, and every further
    /// configuration consumes the already-decoded address stream.
    /// `with_replay(false)` (the `repro --no-replay` flag) restores
    /// pure live execution; the CI triple-diff pins the two modes to
    /// byte-identical output.
    #[must_use]
    pub fn with_replay(mut self, on: bool) -> Self {
        self.replay = on;
        self
    }

    /// The worker-thread count this runner uses.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Seeds the replay cache with an externally recorded trace (see
    /// `repro --replay-traces`). Ignored when the cache already holds
    /// this key.
    pub fn preload_trace(&self, workload: &'static str, scale: Scale, bytes: Vec<u8>) {
        self.traces
            .lock()
            .expect("traces")
            .entry((workload, scale))
            .or_insert_with(|| Arc::new(bytes));
    }

    /// Snapshots the recorded traces accumulated so far (see
    /// `repro --record-traces`).
    #[must_use]
    pub fn recorded_traces(&self) -> Vec<(&'static str, Scale, Arc<Vec<u8>>)> {
        let traces = self.traces.lock().expect("traces");
        let mut out: Vec<_> = traces
            .iter()
            .map(|(&(name, scale), bytes)| (name, scale, Arc::clone(bytes)))
            .collect();
        out.sort_by_key(|&(name, scale, _)| (name, scale_byte(scale)));
        out
    }

    /// Runs every spec and returns their results in spec order.
    pub fn run(&self, specs: &[JobSpec]) -> Vec<JobResult> {
        self.execute(specs.len(), |i| {
            let spec = &specs[i];
            let start = Instant::now();
            let (outcome, report) = self.simulate(spec);
            let wall = start.elapsed();
            self.note(&spec.label, wall, Some(report.total_cycles.get()));
            JobResult {
                label: spec.label.clone(),
                outcome,
                report,
                wall,
            }
        })
    }

    /// One simulation: deduplicated against an already-finished
    /// identical row when possible, then replayed from the trace cache,
    /// live (and recorded) otherwise.
    fn simulate(&self, spec: &JobSpec) -> (Outcome, RunReport) {
        // Trace mode bypasses the dedup so every job still prints its
        // own cycle-attribution summary.
        let dedup_key =
            (!self.trace).then(|| (spec.workload, spec.scale, format!("{:?}", spec.cfg)));
        if let Some(key) = &dedup_key {
            if let Some((outcome, report)) = self.results.lock().expect("results").get(key) {
                return (outcome.clone(), report.clone());
            }
        }
        let (outcome, report) = self.simulate_uncached(spec);
        if let Some(key) = dedup_key {
            self.results
                .lock()
                .expect("results")
                .insert(key, (outcome.clone(), report.clone()));
        }
        (outcome, report)
    }

    /// The decoded batches for this job's `(workload, scale)` trace,
    /// if one has been recorded: served from the decoded-batch cache,
    /// or decoded now — and cached, while the total stays under
    /// [`DECODED_OPS_CAP`] — from the encoded trace cache.
    fn decoded_trace(&self, spec: &JobSpec) -> Option<Arc<mtlb_trace::DecodedTrace>> {
        let key = (spec.workload, spec.scale);
        if let Some(hit) = self.decoded.lock().expect("decoded").get(&key) {
            return Some(Arc::clone(hit));
        }
        let bytes = self.traces.lock().expect("traces").get(&key).cloned()?;
        // A decode error means a corrupt preloaded trace; fall back to
        // a live run rather than failing the sweep.
        let decoded = Arc::new(mtlb_trace::decode_trace(&bytes).ok()?);
        let mut cache = self.decoded.lock().expect("decoded");
        let held: u64 = cache.values().map(|d| d.ops()).sum();
        if held + decoded.ops() <= DECODED_OPS_CAP {
            cache.entry(key).or_insert_with(|| Arc::clone(&decoded));
        }
        Some(decoded)
    }

    /// Runs the simulation for real: replayed from the trace cache when
    /// possible, live (and recorded) otherwise.
    fn simulate_uncached(&self, spec: &JobSpec) -> (Outcome, RunReport) {
        if self.replay {
            if let Some(decoded) = self.decoded_trace(spec) {
                let mut machine = Machine::new(spec.cfg.clone());
                if self.trace {
                    machine.set_trace_sink(Box::new(RingTrace::new(1024)));
                }
                if let Ok(header) = mtlb_trace::replay_decoded(&mut machine, &decoded) {
                    let report = machine.report();
                    self.trace_summary(&spec.label, &mut machine);
                    let outcome = Outcome {
                        checksum: header.checksum,
                        verified: header.verified,
                    };
                    return (outcome, report);
                }
                // A replay fault means the trace does not apply to this
                // machine (it shouldn't happen for the registered
                // workloads, whose op streams are config-independent) —
                // fall back to a live run rather than failing the sweep.
            }
        }
        let mut machine = Machine::new(spec.cfg.clone());
        if self.trace {
            machine.set_trace_sink(Box::new(RingTrace::new(1024)));
        }
        if self.replay {
            // Capture SoA batches alongside the encoded bytes so the
            // replay jobs that follow never pay a decode pass.
            machine.set_op_sink(Box::new(TraceWriter::capturing()));
        }
        let outcome = workload_by_name(spec.workload, spec.scale).run(&mut machine);
        let report = machine.report();
        if let Some(sink) = machine.take_op_sink() {
            if let Ok(writer) = sink.into_any().downcast::<TraceWriter>() {
                let (bytes, decoded) = writer.finish_decoded(
                    spec.workload,
                    scale_byte(spec.scale),
                    outcome.checksum,
                    outcome.verified,
                );
                self.preload_trace(spec.workload, spec.scale, bytes);
                if let Some(decoded) = decoded {
                    self.preload_decoded(spec.workload, spec.scale, decoded);
                }
            }
        }
        self.trace_summary(&spec.label, &mut machine);
        (outcome, report)
    }

    /// Inserts freshly captured decoded batches into the decoded-batch
    /// cache, while the total held stays under [`DECODED_OPS_CAP`].
    fn preload_decoded(
        &self,
        workload: &'static str,
        scale: Scale,
        decoded: mtlb_trace::DecodedTrace,
    ) {
        let mut cache = self.decoded.lock().expect("decoded");
        let held: u64 = cache.values().map(|d| d.ops()).sum();
        if held + decoded.ops() <= DECODED_OPS_CAP {
            cache
                .entry((workload, scale))
                .or_insert_with(|| Arc::new(decoded));
        }
    }

    /// Prints the per-job cycle-attribution summary when `--trace` is
    /// on. Identical for live and replayed runs — the charge stream is.
    fn trace_summary(&self, label: &str, machine: &mut Machine) {
        if let Some(sink) = machine.take_trace_sink() {
            if let Some(ring) = sink.as_any().downcast_ref::<RingTrace>() {
                let per_bucket: Vec<String> = Bucket::ALL
                    .iter()
                    .map(|&b| format!("{} {}", b.name(), ring.bucket_cycles(b).get()))
                    .collect();
                eprintln!(
                    "[trace] {label}: {} events ({} retained), cycles by bucket: {}",
                    ring.events(),
                    ring.records().count(),
                    per_bucket.join(", ")
                );
            }
        }
    }

    /// Runs labelled closures and returns their values in task order.
    pub fn run_tasks<T: Send>(&self, tasks: Vec<Task<'_, T>>) -> Vec<T> {
        let cells: Vec<Mutex<Option<Task<'_, T>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.execute(cells.len(), |i| {
            let task = cells[i]
                .lock()
                .expect("task cell")
                .take()
                .expect("each task runs exactly once");
            let start = Instant::now();
            let value = (task.run)();
            self.note(&task.label, start.elapsed(), None);
            value
        })
    }

    /// Drains the per-job records accumulated so far.
    pub fn take_records(&self) -> Vec<JobRecord> {
        std::mem::take(&mut *self.records.lock().expect("records"))
    }

    fn note(&self, label: &str, wall: Duration, sim_cycles: Option<u64>) {
        if self.live {
            match sim_cycles {
                Some(c) => eprintln!("[job] {label}: {:>9.2?} wall, {c} simulated cycles", wall),
                None => eprintln!("[job] {label}: {:>9.2?} wall", wall),
            }
        }
        self.records.lock().expect("records").push(JobRecord {
            label: label.to_string(),
            wall,
            sim_cycles,
        });
    }

    /// Runs `worker(0..n)` across the configured threads; `out[i]` is
    /// `worker(i)`. With one job (or one item) this degenerates to a
    /// plain in-order loop on the calling thread.
    fn execute<T: Send>(&self, n: usize, worker: impl Fn(usize) -> T + Sync) -> Vec<T> {
        if self.jobs <= 1 || n <= 1 {
            return (0..n).map(worker).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.jobs.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = worker(i);
                    *slots[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every job completed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for jobs in [1, 2, 7] {
            let runner = Runner::with_jobs(jobs);
            let tasks: Vec<Task<'_, usize>> = (0..23usize)
                .map(|i| {
                    Task::new(format!("t{i}"), move || {
                        // Stagger finish times so out-of-order completion
                        // would be caught.
                        std::thread::sleep(Duration::from_micros((((23 - i) % 5) * 200) as u64));
                        i
                    })
                })
                .collect();
            let got = runner.run_tasks(tasks);
            assert_eq!(got, (0..23usize).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn zero_means_available_parallelism() {
        assert!(Runner::with_jobs(0).jobs() >= 1);
        assert_eq!(Runner::serial().jobs(), 1);
    }

    #[test]
    fn records_carry_labels_and_wall_times() {
        let runner = Runner::with_jobs(2);
        let _ = runner.run_tasks(vec![Task::new("a", || 1u32), Task::new("b", || 2u32)]);
        let mut labels: Vec<String> = runner.take_records().into_iter().map(|r| r.label).collect();
        labels.sort();
        assert_eq!(labels, ["a", "b"]);
        assert!(runner.take_records().is_empty(), "drained");
    }

    #[test]
    fn replayed_jobs_match_live_runs_across_configs() {
        use mtlb_sim::MachineConfig;
        let specs: Vec<JobSpec> = [16usize, 64, 128]
            .iter()
            .map(|&e| {
                JobSpec::new(
                    format!("tlb{e}"),
                    "radix",
                    Scale::Test,
                    MachineConfig::paper_mtlb(e),
                )
            })
            .collect();
        // Replay on (the default): first job records, the rest replay.
        let replayed = Runner::serial().with_replay(true).run(&specs);
        // Replay off: every job runs the workload live.
        let live = Runner::serial().with_replay(false).run(&specs);
        for (a, b) in replayed.iter().zip(&live) {
            assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn recorded_traces_can_seed_another_runner() {
        use mtlb_sim::MachineConfig;
        let spec = JobSpec::new("a", "radix", Scale::Test, MachineConfig::paper_mtlb(64));
        let recorder = Runner::serial().with_replay(true);
        let first = recorder.run(std::slice::from_ref(&spec));
        let traces = recorder.recorded_traces();
        assert_eq!(traces.len(), 1);
        let (name, scale, bytes) = &traces[0];
        assert_eq!((*name, *scale), ("radix", Scale::Test));

        let seeded = Runner::serial().with_replay(true);
        seeded.preload_trace(name, *scale, bytes.to_vec());
        let second = seeded.run(std::slice::from_ref(&spec));
        assert_eq!(
            format!("{:?}", first[0].report),
            format!("{:?}", second[0].report)
        );
        assert_eq!(first[0].outcome, second[0].outcome);
    }

    #[test]
    fn identical_simulations_on_any_jobs_level() {
        use mtlb_sim::MachineConfig;
        let spec =
            |label: &str| JobSpec::new(label, "radix", Scale::Test, MachineConfig::paper_base(64));
        let serial = Runner::serial().run(&[spec("s0"), spec("s1")]);
        let threaded = Runner::with_jobs(4).run(&[spec("p0"), spec("p1")]);
        for (a, b) in serial.iter().zip(&threaded) {
            // RunReport carries no PartialEq; its Debug output covers
            // every field, so this is full-report equality.
            assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
            assert_eq!(a.outcome.checksum, b.outcome.checksum);
        }
    }
}
