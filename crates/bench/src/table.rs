//! Minimal text-table and CSV rendering for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned text table with an optional CSV rendering.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders comma-separated values (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22222"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("22222"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y"]);
        assert_eq!(t.to_csv(), "a\n\"x,y\"\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn len_counts_rows() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
    }
}
