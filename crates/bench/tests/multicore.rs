//! Multi-core determinism gates: the fig6 co-scheduling experiment and
//! the runner's trace cache must be byte-identical at every `--jobs`
//! level, and the fig6 baseline must be simulated exactly once per
//! workload however many instance counts are swept.

use mtlb_bench::experiments;
use mtlb_bench::runner::{JobSpec, Runner};
use mtlb_sim::MachineConfig;
use mtlb_workloads::Scale;

/// A small but representative fig6 slice: two real workloads, two
/// instance counts.
fn fig6_slice(runner: &Runner) -> Vec<experiments::Fig6Row> {
    experiments::fig6(runner, Scale::Test, &[2, 4], &["em3d", "radix"])
}

#[test]
fn fig6_is_byte_identical_across_jobs_levels() {
    let serial = fig6_slice(&Runner::serial());
    let parallel = fig6_slice(&Runner::with_jobs(4));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!((s.workload, s.instances), (p.workload, p.instances));
        assert_eq!(
            s.report.to_json(),
            p.report.to_json(),
            "fig6 {}x{} diverged between --jobs 1 and --jobs 4",
            s.workload,
            s.instances
        );
        assert_eq!(s.baseline_cycles, p.baseline_cycles);
    }
}

#[test]
fn fig6_baseline_is_recorded_once_per_workload() {
    let rows = fig6_slice(&Runner::serial());
    // Two workloads × two instance counts.
    assert_eq!(rows.len(), 4);
    for w in ["em3d", "radix"] {
        let baselines: Vec<u64> = rows
            .iter()
            .filter(|r| r.workload == w)
            .map(|r| r.baseline_cycles)
            .collect();
        assert_eq!(baselines.len(), 2);
        assert_eq!(
            baselines[0], baselines[1],
            "{w}: the C1 baseline must be shared across instance counts, not re-derived"
        );
    }
}

#[test]
fn fig6_corun_exercises_the_multicore_machinery() {
    let rows = fig6_slice(&Runner::serial());
    for r in &rows {
        // Setup alone context-switches each extra core into its own
        // process, so shootdowns must have been delivered...
        assert!(
            r.shootdowns > 0,
            "{}x{}: no shootdowns delivered",
            r.workload,
            r.instances
        );
        assert_eq!(r.shootdown_cycles % 400, 0, "shootdown_ipi is 400 cycles");
        // ...and interleaved bus traffic must have paid arbitration.
        assert!(
            r.contention_events > 0,
            "{}x{}: no bus contention observed",
            r.workload,
            r.instances
        );
        // The co-run does n instances' worth of work: it cannot beat
        // perfect scaling.
        assert!(
            r.corun_cycles >= r.baseline_cycles,
            "{}x{}: co-run faster than one instance",
            r.workload,
            r.instances
        );
        assert!(r.efficiency <= 1.0 + 1e-9);
    }
}

/// The recorded trace bytes for a `(workload, scale)` pair must not
/// depend on which job thread recorded them.
#[test]
fn recorded_traces_are_byte_identical_across_jobs_levels() {
    let specs: Vec<JobSpec> = ["em3d", "radix"]
        .into_iter()
        .flat_map(|name| {
            [64usize, 96].into_iter().map(move |entries| {
                JobSpec::new(
                    format!("trace/{name}/tlb{entries}"),
                    name,
                    Scale::Test,
                    MachineConfig::paper_mtlb(entries),
                )
            })
        })
        .collect();
    let record = |runner: Runner| {
        let runner = runner.with_replay(true);
        let _ = runner.run(&specs);
        let mut traces = runner.recorded_traces();
        traces.sort_by_key(|(name, scale, _)| (*name, format!("{scale:?}")));
        traces
    };
    let serial = record(Runner::serial());
    let parallel = record(Runner::with_jobs(4));
    assert_eq!(serial.len(), parallel.len());
    assert!(!serial.is_empty(), "tracing runner recorded nothing");
    for ((n1, s1, b1), (n2, s2, b2)) in serial.iter().zip(&parallel) {
        assert_eq!((n1, s1), (n2, s2));
        assert_eq!(
            b1.as_slice(),
            b2.as_slice(),
            "trace bytes for {n1} differ between --jobs 1 and --jobs 4"
        );
    }
}
