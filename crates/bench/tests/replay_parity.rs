//! Replay-parity regression gate: the runner's trace record/replay
//! cache must be invisible in simulated results.
//!
//! Builds the exact Figure 3 job grid (every workload × TLB size ×
//! MTLB on/off, test scale) and runs it twice — once with the replay
//! cache enabled (first run of each workload records, every other
//! configuration replays) and once fully live (the default) — comparing the
//! serialized `RunReport` JSON byte-for-byte on every row, plus the
//! workload outcomes. Any divergence means replay is not
//! cycle-faithful and fails the build.

use mtlb_bench::runner::{JobSpec, Runner};
use mtlb_sim::MachineConfig;
use mtlb_workloads::Scale;

/// The Figure 3 grid at test scale: per workload, the base-96 job plus
/// one job per (size, mtlb) cell — the same specs `experiments::fig3`
/// submits.
fn fig3_specs() -> Vec<JobSpec> {
    let workloads: [&'static str; 5] = ["compress95", "em3d", "radix", "vortex", "cc1"];
    let mut specs = Vec::new();
    for name in workloads {
        specs.push(JobSpec::new(
            format!("fig3/{name}/base96"),
            name,
            Scale::Test,
            MachineConfig::paper_base(96),
        ));
        for entries in [64usize, 96, 128] {
            for mtlb in [false, true] {
                if !mtlb && entries == 96 {
                    continue;
                }
                let (cfg, tag) = if mtlb {
                    (MachineConfig::paper_mtlb(entries), "+mtlb")
                } else {
                    (MachineConfig::paper_base(entries), "")
                };
                specs.push(JobSpec::new(
                    format!("fig3/{name}/tlb{entries}{tag}"),
                    name,
                    Scale::Test,
                    cfg,
                ));
            }
        }
    }
    specs
}

#[test]
fn replayed_fig3_rows_are_byte_identical_to_live() {
    let specs = fig3_specs();
    let replayed = Runner::serial().with_replay(true).run(&specs);
    let live = Runner::serial().run(&specs);
    assert_eq!(replayed.len(), live.len());
    for (r, l) in replayed.iter().zip(&live) {
        assert_eq!(r.label, l.label);
        assert_eq!(
            r.report.to_json(),
            l.report.to_json(),
            "replayed RunReport diverged from live for {}",
            r.label
        );
        assert_eq!(r.outcome, l.outcome, "outcome diverged for {}", r.label);
    }
}

#[test]
fn synthetic_workloads_replay_identically_too() {
    let specs: Vec<JobSpec> = ["synth_seq", "synth_stride", "synth_rand"]
        .into_iter()
        .flat_map(|name| {
            [64usize, 128].into_iter().map(move |entries| {
                JobSpec::new(
                    format!("synth/{name}/tlb{entries}"),
                    name,
                    Scale::Test,
                    MachineConfig::paper_mtlb(entries),
                )
            })
        })
        .collect();
    let replayed = Runner::serial().with_replay(true).run(&specs);
    let live = Runner::serial().run(&specs);
    for (r, l) in replayed.iter().zip(&live) {
        assert_eq!(
            r.report.to_json(),
            l.report.to_json(),
            "{} diverged",
            r.label
        );
        assert_eq!(r.outcome, l.outcome);
    }
}
