//! End-to-end determinism of the parallel sweep runner.
//!
//! Two guarantees, checked through the real `repro` binary:
//!
//! * **Golden cycles** — `fig3 --test-scale` stdout (tables *and* CSV)
//!   is byte-identical to a fixture captured from the serial,
//!   pre-optimisation implementation, pinning every simulated cycle
//!   count through the runner and TLB/MMC fast-path rewrites.
//! * **Jobs parity** — `--jobs 4` produces byte-identical stdout to
//!   `--jobs 1`, whatever order the worker threads finish in.
//! * **JSON reports** — `--json-dir` writes one report per experiment
//!   row whose time-bucket values sum to its `total_cycles`, and bad
//!   invocations exit 2 with usage on stderr.

use std::process::Command;

fn repro_stdout(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn fig3_serial_output_matches_pre_optimisation_golden() {
    let golden = include_bytes!("fixtures/fig3_test_scale.txt");
    let got = repro_stdout(&["fig3", "--test-scale", "--jobs", "1"]);
    assert!(
        got == golden,
        "fig3 --test-scale output drifted from the golden fixture;\n\
         simulated cycle counts must not change.\n--- got ---\n{}",
        String::from_utf8_lossy(&got)
    );
}

#[test]
fn fig3_parallel_output_is_byte_identical_to_serial() {
    let serial = repro_stdout(&["fig3", "--test-scale", "--jobs", "1"]);
    let parallel = repro_stdout(&["fig3", "--test-scale", "--jobs", "4"]);
    assert!(serial == parallel, "--jobs 4 stdout differs from --jobs 1");
}

/// Pulls the integer value of a top-level `"key":N` field out of a flat
/// JSON report (no serde in the workspace; the emitter's field grammar
/// is fixed, so substring parsing is exact).
fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat).unwrap_or_else(|| panic!("{key} present")) + pat.len();
    let digits: String = json[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("{key} is an integer"))
}

#[test]
fn json_dir_reports_have_buckets_summing_to_total_cycles() {
    let dir = std::env::temp_dir().join("repro_parity_json_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = repro_stdout(&[
        "fig3",
        "--test-scale",
        "--json-dir",
        dir.to_str().expect("utf-8 temp path"),
    ]);
    let mut seen = 0usize;
    for entry in std::fs::read_dir(&dir).expect("json dir written") {
        let path = entry.expect("dir entry").path();
        let json = std::fs::read_to_string(&path).expect("readable report");
        let total = json_u64(&json, "total_cycles");
        let sum = json_u64(&json, "user")
            + json_u64(&json, "tlb_miss")
            + json_u64(&json, "mem_stall")
            + json_u64(&json, "kernel")
            + json_u64(&json, "fault");
        assert_eq!(sum, total, "bucket sums drifted in {}", path.display());
        assert!(total > 0, "empty run in {}", path.display());
        seen += 1;
    }
    // 5 workloads x 3 TLB sizes x {base, mtlb} + radix at 256 x 2.
    assert_eq!(seen, 32, "one JSON report per fig3 row");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_experiments_and_flags_exit_2_with_usage() {
    for args in [&["frobnicate"][..], &["fig3", "--bogus-flag"][..]] {
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .output()
            .expect("repro runs");
        assert_eq!(out.status.code(), Some(2), "repro {args:?} exit status");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "usage on stderr for {args:?}");
        assert!(
            out.stdout.is_empty(),
            "bad invocations must not start printing experiment output"
        );
    }
}

#[test]
fn invalid_flag_values_exit_2_naming_the_token() {
    for (args, token) in [
        (&["fig6", "--cores", "abc"][..], "abc"),
        (&["fig3", "--jobs", "many"][..], "many"),
        (&["fig6", "--cores", "-3"][..], "-3"),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .output()
            .expect("repro runs");
        assert_eq!(out.status.code(), Some(2), "repro {args:?} exit status");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(token),
            "stderr must name the offending token {token:?} for {args:?}: {stderr}"
        );
        assert!(stderr.contains("usage:"), "usage on stderr for {args:?}");
        assert!(
            out.stdout.is_empty(),
            "bad invocations must not start printing experiment output"
        );
    }
}
