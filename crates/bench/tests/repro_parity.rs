//! End-to-end determinism of the parallel sweep runner.
//!
//! Two guarantees, checked through the real `repro` binary:
//!
//! * **Golden cycles** — `fig3 --test-scale` stdout (tables *and* CSV)
//!   is byte-identical to a fixture captured from the serial,
//!   pre-optimisation implementation, pinning every simulated cycle
//!   count through the runner and TLB/MMC fast-path rewrites.
//! * **Jobs parity** — `--jobs 4` produces byte-identical stdout to
//!   `--jobs 1`, whatever order the worker threads finish in.

use std::process::Command;

fn repro_stdout(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "repro {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn fig3_serial_output_matches_pre_optimisation_golden() {
    let golden = include_bytes!("fixtures/fig3_test_scale.txt");
    let got = repro_stdout(&["fig3", "--test-scale", "--jobs", "1"]);
    assert!(
        got == golden,
        "fig3 --test-scale output drifted from the golden fixture;\n\
         simulated cycle counts must not change.\n--- got ---\n{}",
        String::from_utf8_lossy(&got)
    );
}

#[test]
fn fig3_parallel_output_is_byte_identical_to_serial() {
    let serial = repro_stdout(&["fig3", "--test-scale", "--jobs", "1"]);
    let parallel = repro_stdout(&["fig3", "--test-scale", "--jobs", "4"]);
    assert!(serial == parallel, "--jobs 4 stdout differs from --jobs 1");
}
