//! The direct-mapped VIPT write-back cache model.

use mtlb_types::{PhysAddr, Ppn, VirtAddr, Vpn, CACHE_LINE_SHIFT, CACHE_LINE_SIZE, PAGE_SIZE};

use crate::{CacheConfig, CacheIndexing, CacheStats};

/// Whether a fill request asks for a shared or exclusive copy of the line.
///
/// The distinction is what lets the memory controller maintain accurate
/// per-base-page *dirty* bits (paper §2.5): a load miss issues a `Shared`
/// fill, a store miss an `Exclusive` one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FillKind {
    /// Line requested for reading.
    Shared,
    /// Line requested for writing (will be dirtied).
    Exclusive,
}

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present; single-cycle access.
    Hit,
    /// The line was absent. The cache has installed the new line; the
    /// caller must charge a fill transaction (and a writeback first, if a
    /// dirty victim was displaced).
    Miss {
        /// Shared (load) or exclusive (store) fill request.
        fill: FillKind,
        /// Bus address of a dirty victim line that must be written back
        /// before the fill, if any.
        writeback: Option<PhysAddr>,
    },
}

/// Result of an explicit flush walk over part of the cache.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Number of lines examined by the walk.
    pub lines_examined: u64,
    /// Bus addresses of dirty lines that must be written back.
    pub writebacks: Vec<PhysAddr>,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    /// Bus physical address of the line (tag + index combined; line-aligned).
    pa_line: u64,
    dirty: bool,
}

/// The simulated data cache. See the [crate documentation](crate) for the
/// modelled organisation.
#[derive(Debug, Clone)]
pub struct DataCache {
    config: CacheConfig,
    lines: Vec<Option<Line>>,
    /// Host-side acceleration: `num_lines - 1` when the line count is a
    /// power of two, so the per-access index computation is a mask
    /// instead of a hardware division. `None` falls back to `%`.
    index_mask: Option<u64>,
    stats: CacheStats,
}

impl DataCache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        DataCache {
            config,
            lines: vec![None; config.num_lines() as usize],
            index_mask: config
                .num_lines()
                .is_power_of_two()
                .then(|| config.num_lines() - 1),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn index_of(&self, va: VirtAddr, pa: PhysAddr) -> usize {
        // Index bits come from immediately above the line offset of the
        // configured indexing address (virtual for the paper's VIPT
        // machine, bus-physical for the recoloring PIPT variant).
        let bits = match self.config.indexing() {
            CacheIndexing::Virtual => va.get(),
            CacheIndexing::Physical => pa.get(),
        };
        let line = bits >> CACHE_LINE_SHIFT;
        match self.index_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.config.num_lines()) as usize,
        }
    }

    /// Performs a load access.
    pub fn access_read(&mut self, va: VirtAddr, pa: PhysAddr) -> AccessResult {
        self.access(va, pa, FillKind::Shared)
    }

    /// Performs a store access.
    pub fn access_write(&mut self, va: VirtAddr, pa: PhysAddr) -> AccessResult {
        self.access(va, pa, FillKind::Exclusive)
    }

    fn access(&mut self, va: VirtAddr, pa: PhysAddr, kind: FillKind) -> AccessResult {
        let idx = self.index_of(va, pa);
        let pa_line = pa.get() >> CACHE_LINE_SHIFT;
        let write = matches!(kind, FillKind::Exclusive);

        if let Some(line) = &mut self.lines[idx] {
            if line.pa_line == pa_line {
                // Physically tagged: hit only when the bus address matches.
                line.dirty |= write;
                self.stats.hits = self.stats.hits.saturating_add(1);
                return AccessResult::Hit;
            }
        }

        // Miss: displace the victim (writeback if dirty), install new line.
        self.stats.misses = self.stats.misses.saturating_add(1);
        let writeback = self.lines[idx].and_then(|victim| {
            victim.dirty.then(|| {
                self.stats.replacement_writebacks =
                    self.stats.replacement_writebacks.saturating_add(1);
                PhysAddr::new(victim.pa_line << CACHE_LINE_SHIFT)
            })
        });
        self.lines[idx] = Some(Line {
            pa_line,
            dirty: write,
        });
        AccessResult::Miss {
            fill: kind,
            writeback,
        }
    }

    /// Returns `true` when the line containing `(va, pa)` is present.
    #[must_use]
    pub fn probe(&self, va: VirtAddr, pa: PhysAddr) -> bool {
        let idx = self.index_of(va, pa);
        matches!(&self.lines[idx], Some(l) if l.pa_line == pa.get() >> CACHE_LINE_SHIFT)
    }

    /// Replays `count` accesses that all hit the single resident line
    /// containing `(va, pa)`, without re-running the lookup.
    ///
    /// The fast-forward layer calls this after proving residency with
    /// [`probe`](Self::probe); the side effects are exactly those of
    /// `count` hitting `access` calls on one line — the hit counter and
    /// the dirty bit.
    pub fn note_fast_hits(&mut self, va: VirtAddr, pa: PhysAddr, count: u64, write: bool) {
        debug_assert!(self.probe(va, pa), "fast hits on a non-resident line");
        let idx = self.index_of(va, pa);
        if let Some(line) = &mut self.lines[idx] {
            line.dirty |= write;
        }
        self.stats.hits = self.stats.hits.saturating_add(count);
    }

    /// Flushes (writes back and invalidates) every cached line of the
    /// virtual 4 KB page `vpn`.
    ///
    /// This is the per-page cache purge the OS performs before changing a
    /// page's mapping between real and shadow addresses (paper §2.3). The
    /// walk always examines all 128 line slots of the page — the paper's
    /// implementation "does not try to optimize by determining which pages
    /// are dirty", and neither do we; per-line costs are charged by the
    /// caller from `lines_examined` and `writebacks`.
    ///
    /// `pfn` is the page's current bus-physical frame (real or shadow):
    /// it tags the lines being sought and, on physically-indexed
    /// configurations, determines which index slots the walk visits.
    pub fn flush_page(&mut self, vpn: Vpn, pfn: Ppn) -> FlushOutcome {
        let base = vpn.base_addr();
        let pa_base = pfn.base_addr();
        let lines_per_page = PAGE_SIZE / CACHE_LINE_SIZE;
        self.stats.flush_walks = self.stats.flush_walks.saturating_add(1);
        let mut out = FlushOutcome::default();
        for i in 0..lines_per_page {
            let va = base + i * CACHE_LINE_SIZE;
            let pa = pa_base + i * CACHE_LINE_SIZE;
            out.lines_examined += 1;
            self.stats.lines_flushed = self.stats.lines_flushed.saturating_add(1);
            let idx = self.index_of(va, pa);
            let pa_line = pa.get() >> CACHE_LINE_SHIFT;
            if let Some(line) = self.lines[idx] {
                // Only evict the line if it actually belongs to this
                // page (the slot may hold an unrelated line).
                if line.pa_line == pa_line {
                    if line.dirty {
                        self.stats.flush_writebacks = self.stats.flush_writebacks.saturating_add(1);
                        out.writebacks
                            .push(PhysAddr::new(line.pa_line << CACHE_LINE_SHIFT));
                    }
                    self.lines[idx] = None;
                }
            }
        }
        out
    }

    /// Flushes the entire cache, returning dirty lines for writeback.
    pub fn flush_all(&mut self) -> FlushOutcome {
        self.stats.flush_walks = self.stats.flush_walks.saturating_add(1);
        let mut out = FlushOutcome::default();
        for slot in &mut self.lines {
            out.lines_examined += 1;
            self.stats.lines_flushed = self.stats.lines_flushed.saturating_add(1);
            if let Some(line) = slot.take() {
                if line.dirty {
                    self.stats.flush_writebacks = self.stats.flush_writebacks.saturating_add(1);
                    out.writebacks
                        .push(PhysAddr::new(line.pa_line << CACHE_LINE_SHIFT));
                }
            }
        }
        out
    }

    /// Number of currently valid lines (for tests and reports).
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().flatten().count()
    }

    /// Number of currently dirty lines (for tests and reports).
    #[must_use]
    pub fn dirty_lines(&self) -> usize {
        self.lines.iter().flatten().filter(|l| l.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> DataCache {
        // 4 KB cache = 128 lines, so conflicts are easy to construct.
        DataCache::new(CacheConfig::new(4 * 1024))
    }

    fn va(x: u64) -> VirtAddr {
        VirtAddr::new(x)
    }

    fn pa(x: u64) -> PhysAddr {
        PhysAddr::new(x)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        assert!(matches!(
            c.access_read(va(0x100), pa(0x5100)),
            AccessResult::Miss {
                fill: FillKind::Shared,
                writeback: None
            }
        ));
        assert_eq!(c.access_read(va(0x100), pa(0x5100)), AccessResult::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = small_cache();
        c.access_read(va(0x100), pa(0x5100));
        assert_eq!(c.access_read(va(0x11f), pa(0x511f)), AccessResult::Hit);
        // Next line misses.
        assert!(matches!(
            c.access_read(va(0x120), pa(0x5120)),
            AccessResult::Miss { .. }
        ));
    }

    #[test]
    fn write_miss_is_exclusive_fill() {
        let mut c = small_cache();
        assert!(matches!(
            c.access_write(va(0x200), pa(0x200)),
            AccessResult::Miss {
                fill: FillKind::Exclusive,
                ..
            }
        ));
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn conflict_eviction_writes_back_dirty_victim() {
        let mut c = small_cache();
        // Two addresses 4 KB apart share an index in a 4 KB cache.
        c.access_write(va(0x100), pa(0x100));
        let r = c.access_read(va(0x1100), pa(0x1100));
        assert_eq!(
            r,
            AccessResult::Miss {
                fill: FillKind::Shared,
                writeback: Some(pa(0x100)),
            }
        );
        assert_eq!(c.stats().replacement_writebacks, 1);
    }

    #[test]
    fn clean_victim_is_dropped_silently() {
        let mut c = small_cache();
        c.access_read(va(0x100), pa(0x100));
        let r = c.access_read(va(0x1100), pa(0x1100));
        assert_eq!(
            r,
            AccessResult::Miss {
                fill: FillKind::Shared,
                writeback: None,
            }
        );
    }

    #[test]
    fn physical_tag_mismatch_is_a_miss_even_with_same_index() {
        // Same virtual index, different physical tag: remap happened
        // without a flush — the cache must treat it as a miss.
        let mut c = small_cache();
        c.access_read(va(0x300), pa(0x4300));
        assert!(matches!(
            c.access_read(va(0x300), pa(0x8000_0300)),
            AccessResult::Miss { .. }
        ));
    }

    #[test]
    fn shadow_addresses_are_legal_tags() {
        let mut c = small_cache();
        c.access_write(va(0x4080), pa(0x8024_0080));
        assert!(c.probe(va(0x4080), pa(0x8024_0080)));
        assert_eq!(
            c.access_read(va(0x4080), pa(0x8024_0080)),
            AccessResult::Hit
        );
    }

    #[test]
    fn flush_page_examines_128_lines_and_collects_dirty() {
        let mut c = DataCache::new(CacheConfig::paper_default());
        // Dirty 4 lines and read 2 more in page vpn=3 (pfn 0x70003).
        for i in 0..4u64 {
            c.access_write(va(0x3000 + i * 32), pa(0x7000_3000 + i * 32));
        }
        for i in 4..6u64 {
            c.access_read(va(0x3000 + i * 32), pa(0x7000_3000 + i * 32));
        }
        let out = c.flush_page(Vpn::new(3), Ppn::new(0x70003));
        assert_eq!(out.lines_examined, 128);
        assert_eq!(out.writebacks.len(), 4);
        assert_eq!(c.valid_lines(), 0);
        // A second flush finds nothing dirty.
        let out2 = c.flush_page(Vpn::new(3), Ppn::new(0x70003));
        assert_eq!(out2.writebacks.len(), 0);
        assert_eq!(out2.lines_examined, 128);
    }

    #[test]
    fn flush_page_leaves_unrelated_conflicting_lines_alone() {
        let mut c = small_cache(); // 4 KB: page 0 and page 1 fully conflict
        c.access_write(va(0x1100), pa(0x1100)); // line of vpn 1 in slot shared with vpn 0
        let out = c.flush_page(Vpn::new(0), Ppn::new(0));
        assert!(
            out.writebacks.is_empty(),
            "vpn 1's line must survive a vpn 0 flush"
        );
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn physically_indexed_cache_places_by_bus_address() {
        use crate::CacheIndexing;
        // 4 KB PIPT cache: two pages with the same VA index but
        // different physical colors do NOT conflict...
        let mut c =
            DataCache::new(CacheConfig::new(4 * 1024).with_indexing(CacheIndexing::Physical));
        c.access_write(va(0x100), pa(0x5100));
        assert!(
            matches!(
                c.access_read(va(0x100), pa(0x6180)),
                AccessResult::Miss {
                    writeback: None,
                    ..
                }
            ),
            "different index: no victim displaced"
        );
        assert!(c.probe(va(0x100), pa(0x5100)), "first line survives");
        // ...while two with the same physical index DO conflict.
        let r = c.access_read(va(0x2100), pa(0x6100));
        assert!(
            matches!(
                r,
                AccessResult::Miss {
                    writeback: Some(_),
                    ..
                }
            ),
            "same physical index evicts the dirty line"
        );
    }

    #[test]
    fn pipt_flush_page_walks_physical_slots() {
        use crate::CacheIndexing;
        let mut c =
            DataCache::new(CacheConfig::paper_default().with_indexing(CacheIndexing::Physical));
        c.access_write(va(0x3000), pa(0x7000_3000));
        let out = c.flush_page(Vpn::new(3), Ppn::new(0x70003));
        assert_eq!(out.writebacks.len(), 1);
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn flush_all_empties_cache() {
        let mut c = small_cache();
        c.access_write(va(0x0), pa(0x0));
        c.access_write(va(0x40), pa(0x40));
        c.access_read(va(0x80), pa(0x80));
        let out = c.flush_all();
        assert_eq!(out.writebacks.len(), 2);
        assert_eq!(out.lines_examined, 128);
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(c.dirty_lines(), 0);
    }

    #[test]
    fn write_hit_dirties_clean_line() {
        let mut c = small_cache();
        c.access_read(va(0x100), pa(0x100));
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.access_write(va(0x104), pa(0x104)), AccessResult::Hit);
        assert_eq!(c.dirty_lines(), 1);
        // Evicting it now produces a writeback even though the *fill* was shared.
        let r = c.access_read(va(0x1100), pa(0x1100));
        assert!(matches!(
            r,
            AccessResult::Miss {
                writeback: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn stats_reset() {
        let mut c = small_cache();
        c.access_read(va(0), pa(0));
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.valid_lines(), 1, "reset_stats must not drop contents");
    }
}
