//! Cache geometry configuration.

use mtlb_types::{PhysAddr, CACHE_LINE_SIZE, PAGE_SIZE};

/// Which address supplies the cache index bits.
///
/// The paper's machine is virtually indexed (physically tagged). The
/// *physically*-indexed variant exists for the §6 no-copy page
/// recoloring extension: with physical indexing, changing a page's
/// shadow address changes its cache placement, so the OS can resolve
/// conflicts without copying.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CacheIndexing {
    /// Index from the virtual address (VIPT — the paper's machine).
    #[default]
    Virtual,
    /// Index from the bus physical address (PIPT).
    Physical,
}

/// Geometry of the direct-mapped data cache.
///
/// Capacity and indexing vary; the line size is fixed at 32 bytes and
/// the organisation at direct-mapped, matching the paper's simulated
/// machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    indexing: CacheIndexing,
}

impl CacheConfig {
    /// Creates a configuration for a cache of `size_bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a power of two and at least one line.
    #[must_use]
    pub fn new(size_bytes: u64) -> Self {
        assert!(
            size_bytes.is_power_of_two() && size_bytes >= CACHE_LINE_SIZE,
            "cache size must be a power of two and at least one 32-byte line"
        );
        CacheConfig {
            size_bytes,
            indexing: CacheIndexing::Virtual,
        }
    }

    /// Same geometry with the given indexing.
    #[must_use]
    pub fn with_indexing(mut self, indexing: CacheIndexing) -> Self {
        self.indexing = indexing;
        self
    }

    /// The paper's configuration: 512 KB.
    #[must_use]
    pub fn paper_default() -> Self {
        CacheConfig::new(512 * 1024)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub const fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Number of 32-byte lines.
    #[must_use]
    pub const fn num_lines(self) -> u64 {
        self.size_bytes / CACHE_LINE_SIZE
    }

    /// The indexing mode.
    #[must_use]
    pub const fn indexing(self) -> CacheIndexing {
        self.indexing
    }

    /// Number of distinct page *colors* (cache size / page size) —
    /// meaningful for recoloring on physically-indexed configurations.
    #[must_use]
    pub const fn page_colors(self) -> u64 {
        self.size_bytes / PAGE_SIZE
    }

    /// The color of the page holding `pa`.
    #[must_use]
    pub fn color_of(self, pa: PhysAddr) -> u64 {
        (pa.get() / PAGE_SIZE) % self.page_colors()
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_512kb_16k_lines_vipt() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.size_bytes(), 512 * 1024);
        assert_eq!(c.num_lines(), 16 * 1024);
        assert_eq!(c.indexing(), CacheIndexing::Virtual);
        assert_eq!(c.page_colors(), 128);
    }

    #[test]
    fn colors_wrap_at_cache_size() {
        let c = CacheConfig::paper_default();
        assert_eq!(c.color_of(PhysAddr::new(0)), 0);
        assert_eq!(c.color_of(PhysAddr::new(5 * PAGE_SIZE)), 5);
        assert_eq!(c.color_of(PhysAddr::new(512 * 1024 + PAGE_SIZE)), 1);
    }

    #[test]
    fn indexing_override() {
        let c = CacheConfig::paper_default().with_indexing(CacheIndexing::Physical);
        assert_eq!(c.indexing(), CacheIndexing::Physical);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = CacheConfig::new(500 * 1000);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn sub_line_size_rejected() {
        let _ = CacheConfig::new(16);
    }
}
