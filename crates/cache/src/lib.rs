//! The simulated first-level data cache.
//!
//! Models the paper's PA-8000-style cache (§3.2): a single-level,
//! **direct-mapped**, **virtually-indexed / physically-tagged**, 512 KB,
//! write-back, write-allocate cache with 32-byte lines. Hits cost a single
//! CPU cycle (folded into the instruction); misses produce bus traffic that
//! the machine model (`mtlb-sim`) prices via the memory controller
//! (`mtlb-mmc`).
//!
//! The instruction cache is assumed perfect, exactly as in the paper, so
//! only a data cache is modelled.
//!
//! Two properties matter for the shadow-memory mechanism:
//!
//! * cache tags hold **bus physical** addresses, which may be *shadow*
//!   addresses — the cache neither knows nor cares (paper §1: "they will
//!   appear as physical tags on cache lines");
//! * remapping a page from real to shadow addresses (or back) requires
//!   flushing its lines, because the tags change — [`DataCache::flush_page`]
//!   implements exactly the per-line walk whose cost the paper reports as
//!   ~1400 CPU cycles per 4 KB page (§3.3).
//!
//! # Example
//!
//! ```
//! use mtlb_cache::{AccessResult, CacheConfig, DataCache, FillKind};
//! use mtlb_types::{PhysAddr, VirtAddr};
//!
//! let mut cache = DataCache::new(CacheConfig::paper_default());
//! let va = VirtAddr::new(0x4080);
//! let pa = PhysAddr::new(0x8024_0080); // a shadow address: the cache doesn't care
//!
//! // Cold miss, shared fill:
//! match cache.access_read(va, pa) {
//!     AccessResult::Miss { fill, writeback } => {
//!         assert_eq!(fill, FillKind::Shared);
//!         assert!(writeback.is_none());
//!     }
//!     AccessResult::Hit => unreachable!("cold cache"),
//! }
//! // Now it hits:
//! assert_eq!(cache.access_read(va, pa), AccessResult::Hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod stats;

pub use cache::{AccessResult, DataCache, FillKind, FlushOutcome};
pub use config::{CacheConfig, CacheIndexing};
pub use stats::CacheStats;
