//! Cache event counters.

use core::fmt;

/// Counters accumulated by [`DataCache`](crate::DataCache).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit in the cache.
    pub hits: u64,
    /// Accesses that missed (each produced one fill request).
    pub misses: u64,
    /// Dirty lines written back on replacement.
    pub replacement_writebacks: u64,
    /// Dirty lines written back by explicit flushes (remap, page cleaning).
    pub flush_writebacks: u64,
    /// Lines examined by explicit flush walks (dirty or not).
    pub lines_flushed: u64,
    /// Explicit flush operations performed (per-page walks and full
    /// flushes). Each walk examines many lines; `lines_flushed` counts
    /// those, this counts the walks themselves.
    pub flush_walks: u64,
}

impl CacheStats {
    /// Total accesses (hits + misses).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses occurred.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// All writebacks, from replacements and flushes.
    #[must_use]
    pub fn total_writebacks(&self) -> u64 {
        self.replacement_writebacks + self.flush_writebacks
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache: {} accesses, {:.2}% hits, {} misses, {} writebacks ({} from flushes)",
            self.accesses(),
            self.hit_rate() * 100.0,
            self.misses,
            self.total_writebacks(),
            self.flush_writebacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_totals() {
        let s = CacheStats {
            hits: 84,
            misses: 16,
            replacement_writebacks: 3,
            flush_writebacks: 2,
            lines_flushed: 10,
            flush_walks: 1,
        };
        assert_eq!(s.accesses(), 100);
        assert!((s.hit_rate() - 0.84).abs() < 1e-12);
        assert_eq!(s.total_writebacks(), 5);
    }

    #[test]
    fn empty_stats_have_zero_hit_rate() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn display_mentions_hit_rate() {
        let s = CacheStats {
            hits: 1,
            misses: 1,
            ..CacheStats::default()
        };
        assert!(s.to_string().contains("50.00%"));
    }
}
