//! The physical frame allocator.

use std::collections::BTreeSet;

use mtlb_types::Ppn;

/// The order in which free frames are handed out.
///
/// The paper's mechanism exists precisely because, under normal paging,
/// the frames backing a virtual region end up *dispersed* through
/// physical memory. `Scrambled` reproduces that dispersal
/// deterministically, so experiments exercise the discontiguous case;
/// `Sequential` models a freshly-booted machine and is the best case for
/// conventional (contiguity-requiring) superpages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameOrder {
    /// Lowest-numbered free frame first.
    Sequential,
    /// A deterministic pseudo-random permutation of the frame range,
    /// parameterised by `seed`.
    Scrambled {
        /// Seed for the permutation; same seed ⇒ same order.
        seed: u64,
    },
}

/// Allocates 4 KB physical frames from a contiguous frame range.
///
/// ```
/// use mtlb_mem::{FrameAllocator, FrameOrder};
///
/// let mut a = FrameAllocator::new(0x100, 16, FrameOrder::Sequential);
/// let f0 = a.alloc().unwrap();
/// assert_eq!(f0.index(), 0x100);
/// a.free(f0);
/// assert_eq!(a.free_frames(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    first: u64,
    count: u64,
    /// Frames not yet handed out, in hand-out order (front = next).
    free_order: Vec<Ppn>,
    /// Set view of `free_order` for O(log n) double-free checks.
    free_set: BTreeSet<u64>,
}

impl FrameAllocator {
    /// Creates an allocator over frames `[first_frame, first_frame + count)`.
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero or the range overflows.
    #[must_use]
    pub fn new(first_frame: u64, count: u64, order: FrameOrder) -> Self {
        assert!(count > 0, "frame range must be non-empty");
        first_frame
            .checked_add(count)
            .expect("frame range overflows");
        let mut frames: Vec<u64> = (first_frame..first_frame + count).collect();
        if let FrameOrder::Scrambled { seed } = order {
            // Fisher–Yates driven by a SplitMix64 stream: deterministic,
            // dependency-free, and full-period over the seed space.
            let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for i in (1..frames.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                frames.swap(i, j);
            }
        }
        // Pop from the back; reverse so the configured order is preserved.
        frames.reverse();
        let free_set = frames.iter().copied().collect();
        FrameAllocator {
            first: first_frame,
            count,
            free_order: frames.into_iter().map(Ppn::new).collect(),
            free_set,
        }
    }

    /// Allocates one frame, or `None` when physical memory is exhausted.
    pub fn alloc(&mut self) -> Option<Ppn> {
        let f = self.free_order.pop()?;
        self.free_set.remove(&f.index());
        Some(f)
    }

    /// Allocates `n` frames, or `None` (allocating nothing) when fewer
    /// than `n` remain.
    pub fn alloc_many(&mut self, n: usize) -> Option<Vec<Ppn>> {
        if self.free_order.len() < n {
            return None;
        }
        Some(
            (0..n)
                .map(|_| self.alloc().expect("checked above"))
                .collect(),
        )
    }

    /// Returns a frame to the pool. Freed frames are reused LIFO.
    ///
    /// # Panics
    ///
    /// Panics on double-free or on a frame outside this allocator's range.
    pub fn free(&mut self, frame: Ppn) {
        let idx = frame.index();
        assert!(
            idx >= self.first && idx < self.first + self.count,
            "freed frame {frame} outside allocator range"
        );
        assert!(self.free_set.insert(idx), "double free of frame {frame}");
        self.free_order.push(frame);
    }

    /// Number of frames still available.
    #[must_use]
    pub fn free_frames(&self) -> u64 {
        self.free_order.len() as u64
    }

    /// Total frames managed (free + allocated).
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.count
    }

    /// Returns `true` when the given frame is currently free.
    #[must_use]
    pub fn is_free(&self, frame: Ppn) -> bool {
        self.free_set.contains(&frame.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_order_is_ascending() {
        let mut a = FrameAllocator::new(10, 5, FrameOrder::Sequential);
        let got: Vec<u64> = (0..5).map(|_| a.alloc().unwrap().index()).collect();
        assert_eq!(got, vec![10, 11, 12, 13, 14]);
        assert_eq!(a.alloc(), None);
    }

    #[test]
    fn scrambled_order_is_a_permutation_and_deterministic() {
        let drain = |seed| {
            let mut a = FrameAllocator::new(0, 64, FrameOrder::Scrambled { seed });
            let v: Vec<u64> = (0..64).map(|_| a.alloc().unwrap().index()).collect();
            v
        };
        let a = drain(7);
        let b = drain(7);
        let c = drain(8);
        assert_eq!(a, b, "same seed must give the same order");
        assert_ne!(a, c, "different seeds should differ");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "must be a permutation");
        // The scramble must actually disperse: not the identity.
        assert_ne!(a, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn free_and_reuse() {
        let mut a = FrameAllocator::new(0, 2, FrameOrder::Sequential);
        let f0 = a.alloc().unwrap();
        let f1 = a.alloc().unwrap();
        assert_eq!(a.free_frames(), 0);
        a.free(f0);
        assert!(a.is_free(f0));
        assert!(!a.is_free(f1));
        assert_eq!(a.alloc().unwrap(), f0);
    }

    #[test]
    fn alloc_many_is_all_or_nothing() {
        let mut a = FrameAllocator::new(0, 4, FrameOrder::Sequential);
        assert!(a.alloc_many(5).is_none());
        assert_eq!(a.free_frames(), 4, "failed alloc_many must not consume");
        let v = a.alloc_many(4).unwrap();
        assert_eq!(v.len(), 4);
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = FrameAllocator::new(0, 2, FrameOrder::Sequential);
        let f = a.alloc().unwrap();
        a.free(f);
        a.free(f);
    }

    #[test]
    #[should_panic(expected = "outside allocator range")]
    fn foreign_frame_free_panics() {
        let mut a = FrameAllocator::new(0, 2, FrameOrder::Sequential);
        a.free(Ppn::new(99));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = FrameAllocator::new(0, 0, FrameOrder::Sequential);
    }
}
