//! The sparse guest DRAM byte store.

use std::collections::HashMap;

use mtlb_types::{PhysAddr, Ppn, PAGE_SIZE};

const PAGE_BYTES: usize = PAGE_SIZE as usize;

/// Installed DRAM: a sparse, page-granular store of real bytes.
///
/// Addresses must designate **real** physical memory — shadow addresses
/// are remapped by the memory controller (`mtlb-mmc`) *before* reaching
/// this store. Pages materialise zero-filled on first write; reads of
/// untouched pages return zeros without allocating.
///
/// # Panics
///
/// All accessors panic when the access extends past the installed DRAM
/// size; the memory controller is responsible for range-checking bus
/// addresses first, so such a panic indicates a simulator bug rather than
/// guest misbehaviour.
#[derive(Debug, Clone, Default)]
pub struct GuestMemory {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
    installed_bytes: u64,
}

impl GuestMemory {
    /// Creates a DRAM store of `installed_bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `installed_bytes` is a non-zero multiple of the 4 KB
    /// page size.
    #[must_use]
    pub fn new(installed_bytes: u64) -> Self {
        assert!(
            installed_bytes > 0 && installed_bytes.is_multiple_of(PAGE_SIZE),
            "installed DRAM must be a non-zero multiple of the page size"
        );
        GuestMemory {
            pages: HashMap::new(),
            installed_bytes,
        }
    }

    /// Installed DRAM capacity in bytes.
    #[must_use]
    pub fn installed_bytes(&self) -> u64 {
        self.installed_bytes
    }

    /// Number of pages that have actually been materialised (touched by a
    /// write). Useful for asserting footprint expectations in tests.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn check(&self, addr: PhysAddr, len: u64) {
        let end = addr
            .get()
            .checked_add(len)
            .expect("physical access overflows the address space");
        assert!(
            end <= self.installed_bytes,
            "physical access {addr}+{len} beyond installed DRAM ({} bytes); \
             the MMC should have range-checked this",
            self.installed_bytes
        );
    }

    /// Reads `buf.len()` bytes starting at `addr`, which may span pages.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.check(addr, buf.len() as u64);
        let mut a = addr.get();
        let mut filled = 0usize;
        while filled < buf.len() {
            let page = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_BYTES - off, buf.len() - filled);
            match self.pages.get(&page) {
                Some(data) => buf[filled..filled + n].copy_from_slice(&data[off..off + n]),
                None => buf[filled..filled + n].fill(0),
            }
            filled += n;
            a += n as u64;
        }
    }

    /// Writes `buf` starting at `addr`, which may span pages.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) {
        self.check(addr, buf.len() as u64);
        let mut a = addr.get();
        let mut consumed = 0usize;
        while consumed < buf.len() {
            let page = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_BYTES - off, buf.len() - consumed);
            let data = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            data[off..off + n].copy_from_slice(&buf[consumed..consumed + n]);
            consumed += n;
            a += n as u64;
        }
    }

    /// Reads a little-endian `u8`.
    #[must_use]
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        let mut b = [0u8; 1];
        self.read(addr, &mut b);
        b[0]
    }

    /// Writes a `u8`.
    pub fn write_u8(&mut self, addr: PhysAddr, v: u8) {
        self.write(addr, &[v]);
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, addr: PhysAddr) -> u16 {
        let mut b = [0u8; 2];
        self.read(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: PhysAddr, v: u16) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: PhysAddr, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Zero-fills one 4 KB page (the OS model uses this when handing fresh
    /// frames to a process).
    pub fn zero_page(&mut self, frame: Ppn) {
        self.check(frame.base_addr(), PAGE_SIZE);
        // Dropping the backing page is equivalent to zeroing it and keeps
        // the store sparse.
        self.pages.remove(&frame.index());
    }

    /// Copies a whole 4 KB page from `src` to `dst`.
    ///
    /// This is the conventional-superpage coalescing operation the shadow
    /// mechanism exists to avoid; the §3.3 cost benchmark exercises it.
    pub fn copy_page(&mut self, src: Ppn, dst: Ppn) {
        self.check(src.base_addr(), PAGE_SIZE);
        self.check(dst.base_addr(), PAGE_SIZE);
        match self.pages.get(&src.index()).cloned() {
            Some(data) => {
                self.pages.insert(dst.index(), data);
            }
            None => {
                self.pages.remove(&dst.index());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> GuestMemory {
        GuestMemory::new(1 << 20)
    }

    #[test]
    fn reads_of_untouched_memory_are_zero() {
        let m = mem();
        assert_eq!(m.read_u64(PhysAddr::new(0x1234)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn scalar_round_trips() {
        let mut m = mem();
        m.write_u8(PhysAddr::new(1), 0xab);
        m.write_u16(PhysAddr::new(2), 0xcdef);
        m.write_u32(PhysAddr::new(4), 0x0123_4567);
        m.write_u64(PhysAddr::new(8), 0x89ab_cdef_0123_4567);
        assert_eq!(m.read_u8(PhysAddr::new(1)), 0xab);
        assert_eq!(m.read_u16(PhysAddr::new(2)), 0xcdef);
        assert_eq!(m.read_u32(PhysAddr::new(4)), 0x0123_4567);
        assert_eq!(m.read_u64(PhysAddr::new(8)), 0x89ab_cdef_0123_4567);
    }

    #[test]
    fn cross_page_access_spans_correctly() {
        let mut m = mem();
        let addr = PhysAddr::new(PAGE_SIZE - 2);
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.read_u16(PhysAddr::new(PAGE_SIZE)), 0xaabb);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bulk_read_write() {
        let mut m = mem();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        m.write(PhysAddr::new(100), &data);
        let mut back = vec![0u8; data.len()];
        m.read(PhysAddr::new(100), &mut back);
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "beyond installed DRAM")]
    fn out_of_range_access_panics() {
        let m = mem();
        let _ = m.read_u8(PhysAddr::new(1 << 20));
    }

    #[test]
    #[should_panic(expected = "beyond installed DRAM")]
    fn straddling_end_of_dram_panics() {
        let mut m = mem();
        m.write_u32(PhysAddr::new((1 << 20) - 2), 1);
    }

    #[test]
    fn zero_page_clears_contents() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(0x2000), 42);
        assert_eq!(m.resident_pages(), 1);
        m.zero_page(Ppn::new(2));
        assert_eq!(m.read_u64(PhysAddr::new(0x2000)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn copy_page_duplicates_bytes() {
        let mut m = mem();
        m.write_u32(PhysAddr::new(0x1004), 7);
        m.copy_page(Ppn::new(1), Ppn::new(3));
        assert_eq!(m.read_u32(PhysAddr::new(0x3004)), 7);
        // Copying an untouched source zeroes the destination.
        m.copy_page(Ppn::new(5), Ppn::new(3));
        assert_eq!(m.read_u32(PhysAddr::new(0x3004)), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the page size")]
    fn misaligned_capacity_rejected() {
        let _ = GuestMemory::new(1000);
    }
}
