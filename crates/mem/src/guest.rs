//! The sparse guest DRAM byte store.

use std::cell::Cell;

use mtlb_types::{PhysAddr, Ppn, PAGE_SIZE};

const PAGE_BYTES: usize = PAGE_SIZE as usize;

/// Directory sentinel for "no backing page materialised".
const NO_SLOT: u32 = u32::MAX;

/// Installed DRAM: a sparse, page-granular store of real bytes.
///
/// Addresses must designate **real** physical memory — shadow addresses
/// are remapped by the memory controller (`mtlb-mmc`) *before* reaching
/// this store. Pages materialise zero-filled on first write; reads of
/// untouched pages return zeros without allocating.
///
/// Internally the store is a flat two-level structure rather than a hash
/// map: a page **directory** (`Vec<u32>`, one entry per installed page
/// frame) maps a page index to a slot in a page **arena**
/// (`Vec<Box<[u8; PAGE_BYTES]>>`), with a freelist recycling slots that
/// [`zero_page`](GuestMemory::zero_page) releases. A one-entry last-page
/// memo (a [`Cell`], so reads stay `&self`) short-circuits the directory
/// probe for the same-page runs that dominate workload access patterns.
/// This keeps every access hash-free: the host-side cost of a guest byte
/// access is an array index or two.
///
/// # Panics
///
/// All accessors panic when the access extends past the installed DRAM
/// size; the memory controller is responsible for range-checking bus
/// addresses first, so such a panic indicates a simulator bug rather than
/// guest misbehaviour.
#[derive(Debug, Clone, Default)]
pub struct GuestMemory {
    /// Page index → arena slot, or [`NO_SLOT`] when untouched.
    dir: Vec<u32>,
    /// Backing 4 KB pages; slots are recycled through `free`.
    arena: Vec<Box<[u8; PAGE_BYTES]>>,
    /// Arena slots released by `zero_page`, ready for reuse.
    free: Vec<u32>,
    /// Materialised page count (`dir` entries that are not `NO_SLOT`).
    resident: usize,
    /// Last-page memo: `(page index, slot + 1)`; `0` means invalid.
    last: Cell<(u64, u32)>,
    installed_bytes: u64,
}

impl GuestMemory {
    /// Creates a DRAM store of `installed_bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `installed_bytes` is a non-zero multiple of the 4 KB
    /// page size.
    #[must_use]
    pub fn new(installed_bytes: u64) -> Self {
        assert!(
            installed_bytes > 0 && installed_bytes.is_multiple_of(PAGE_SIZE),
            "installed DRAM must be a non-zero multiple of the page size"
        );
        let num_pages = (installed_bytes / PAGE_SIZE) as usize;
        GuestMemory {
            dir: vec![NO_SLOT; num_pages],
            arena: Vec::new(),
            free: Vec::new(),
            resident: 0,
            last: Cell::new((0, 0)),
            installed_bytes,
        }
    }

    /// Installed DRAM capacity in bytes.
    #[must_use]
    pub fn installed_bytes(&self) -> u64 {
        self.installed_bytes
    }

    /// Number of pages that have actually been materialised (touched by a
    /// write). Useful for asserting footprint expectations in tests.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    fn check(&self, addr: PhysAddr, len: u64) {
        let end = addr
            .get()
            .checked_add(len)
            .expect("physical access overflows the address space");
        assert!(
            end <= self.installed_bytes,
            "physical access {addr}+{len} beyond installed DRAM ({} bytes); \
             the MMC should have range-checked this",
            self.installed_bytes
        );
    }

    /// Arena slot backing `page`, or `None` while it is untouched.
    ///
    /// Pure apart from refreshing the last-page memo; callers must have
    /// range-checked `page` already.
    #[inline]
    fn page_slot(&self, page: u64) -> Option<usize> {
        let (memo_page, memo_slot) = self.last.get();
        if memo_slot != 0 && memo_page == page {
            return Some((memo_slot - 1) as usize);
        }
        let slot = self.dir[page as usize];
        if slot == NO_SLOT {
            return None;
        }
        self.last.set((page, slot + 1));
        Some(slot as usize)
    }

    /// Backing bytes for `page`, materialising a zero-filled arena page
    /// (recycled from the freelist when possible) on first write.
    #[inline]
    fn ensure_page(&mut self, page: u64) -> &mut [u8; PAGE_BYTES] {
        let mut slot = self.dir[page as usize];
        if slot == NO_SLOT {
            slot = match self.free.pop() {
                Some(s) => {
                    self.arena[s as usize].fill(0);
                    s
                }
                None => {
                    self.arena.push(Box::new([0u8; PAGE_BYTES]));
                    (self.arena.len() - 1) as u32
                }
            };
            self.dir[page as usize] = slot;
            self.resident += 1;
        }
        self.last.set((page, slot + 1));
        &mut self.arena[slot as usize]
    }

    /// Reads `buf.len()` bytes starting at `addr`, which may span pages.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.check(addr, buf.len() as u64);
        let mut a = addr.get();
        let mut filled = 0usize;
        while filled < buf.len() {
            let page = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_BYTES - off, buf.len() - filled);
            match self.page_slot(page) {
                Some(slot) => {
                    buf[filled..filled + n].copy_from_slice(&self.arena[slot][off..off + n]);
                }
                None => buf[filled..filled + n].fill(0),
            }
            filled += n;
            a += n as u64;
        }
    }

    /// Writes `buf` starting at `addr`, which may span pages.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) {
        self.check(addr, buf.len() as u64);
        let mut a = addr.get();
        let mut consumed = 0usize;
        while consumed < buf.len() {
            let page = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = usize::min(PAGE_BYTES - off, buf.len() - consumed);
            let data = self.ensure_page(page);
            data[off..off + n].copy_from_slice(&buf[consumed..consumed + n]);
            consumed += n;
            a += n as u64;
        }
    }

    /// Reads a little-endian `u8`.
    #[must_use]
    #[inline]
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        self.check(addr, 1);
        let a = addr.get();
        match self.page_slot(a / PAGE_SIZE) {
            Some(slot) => self.arena[slot][(a % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes a `u8`.
    #[inline]
    pub fn write_u8(&mut self, addr: PhysAddr, v: u8) {
        self.check(addr, 1);
        let a = addr.get();
        self.ensure_page(a / PAGE_SIZE)[(a % PAGE_SIZE) as usize] = v;
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    #[inline]
    pub fn read_u16(&self, addr: PhysAddr) -> u16 {
        let mut b = [0u8; 2];
        self.read_scalar(addr, &mut b);
        u16::from_le_bytes(b)
    }

    /// Writes a little-endian `u16`.
    #[inline]
    pub fn write_u16(&mut self, addr: PhysAddr, v: u16) {
        self.write_scalar(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    #[inline]
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let mut b = [0u8; 4];
        self.read_scalar(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: PhysAddr, v: u32) {
        self.write_scalar(addr, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    #[inline]
    pub fn read_u64(&self, addr: PhysAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read_scalar(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) {
        self.write_scalar(addr, &v.to_le_bytes());
    }

    /// Scalar read helper: single page lookup when the access does not
    /// straddle a page boundary, falling back to the spanning loop.
    #[inline]
    fn read_scalar(&self, addr: PhysAddr, buf: &mut [u8]) {
        let a = addr.get();
        let off = (a % PAGE_SIZE) as usize;
        if off + buf.len() > PAGE_BYTES {
            self.read(addr, buf);
            return;
        }
        self.check(addr, buf.len() as u64);
        match self.page_slot(a / PAGE_SIZE) {
            Some(slot) => buf.copy_from_slice(&self.arena[slot][off..off + buf.len()]),
            None => buf.fill(0),
        }
    }

    /// Scalar write helper: single page lookup when the access does not
    /// straddle a page boundary, falling back to the spanning loop.
    #[inline]
    fn write_scalar(&mut self, addr: PhysAddr, buf: &[u8]) {
        let a = addr.get();
        let off = (a % PAGE_SIZE) as usize;
        if off + buf.len() > PAGE_BYTES {
            self.write(addr, buf);
            return;
        }
        self.check(addr, buf.len() as u64);
        let data = self.ensure_page(a / PAGE_SIZE);
        data[off..off + buf.len()].copy_from_slice(buf);
    }

    /// Zero-fills one 4 KB page (the OS model uses this when handing fresh
    /// frames to a process).
    pub fn zero_page(&mut self, frame: Ppn) {
        self.check(frame.base_addr(), PAGE_SIZE);
        // Releasing the backing page to the freelist is equivalent to
        // zeroing it and keeps the store sparse.
        let page = frame.index();
        let slot = self.dir[page as usize];
        if slot != NO_SLOT {
            self.dir[page as usize] = NO_SLOT;
            self.free.push(slot);
            self.resident -= 1;
            self.last.set((0, 0));
        }
    }

    /// Copies a whole 4 KB page from `src` to `dst`.
    ///
    /// This is the conventional-superpage coalescing operation the shadow
    /// mechanism exists to avoid; the §3.3 cost benchmark exercises it.
    pub fn copy_page(&mut self, src: Ppn, dst: Ppn) {
        self.check(src.base_addr(), PAGE_SIZE);
        self.check(dst.base_addr(), PAGE_SIZE);
        match self.page_slot(src.index()) {
            Some(src_slot) => {
                let data = *self.arena[src_slot];
                *self.ensure_page(dst.index()) = data;
            }
            None => self.zero_page(dst),
        }
    }

    /// A deterministic digest of the full memory image (resident pages in
    /// page-index order). Two stores with the same installed size and the
    /// same byte contents digest equally; diagnostics only.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for (page, &slot) in self.dir.iter().enumerate() {
            if slot == NO_SLOT {
                continue;
            }
            let data = &self.arena[slot as usize];
            // Skip pages that were materialised but still hold only
            // zeros, so the digest depends on contents, not residency
            // history.
            if data.iter().all(|&b| b == 0) {
                continue;
            }
            h = (h ^ page as u64).wrapping_mul(FNV_PRIME);
            for &b in data.iter() {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> GuestMemory {
        GuestMemory::new(1 << 20)
    }

    #[test]
    fn reads_of_untouched_memory_are_zero() {
        let m = mem();
        assert_eq!(m.read_u64(PhysAddr::new(0x1234)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn scalar_round_trips() {
        let mut m = mem();
        m.write_u8(PhysAddr::new(1), 0xab);
        m.write_u16(PhysAddr::new(2), 0xcdef);
        m.write_u32(PhysAddr::new(4), 0x0123_4567);
        m.write_u64(PhysAddr::new(8), 0x89ab_cdef_0123_4567);
        assert_eq!(m.read_u8(PhysAddr::new(1)), 0xab);
        assert_eq!(m.read_u16(PhysAddr::new(2)), 0xcdef);
        assert_eq!(m.read_u32(PhysAddr::new(4)), 0x0123_4567);
        assert_eq!(m.read_u64(PhysAddr::new(8)), 0x89ab_cdef_0123_4567);
    }

    #[test]
    fn cross_page_access_spans_correctly() {
        let mut m = mem();
        let addr = PhysAddr::new(PAGE_SIZE - 2);
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.read_u16(PhysAddr::new(PAGE_SIZE)), 0xaabb);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bulk_read_write() {
        let mut m = mem();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        m.write(PhysAddr::new(100), &data);
        let mut back = vec![0u8; data.len()];
        m.read(PhysAddr::new(100), &mut back);
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "beyond installed DRAM")]
    fn out_of_range_access_panics() {
        let m = mem();
        let _ = m.read_u8(PhysAddr::new(1 << 20));
    }

    #[test]
    #[should_panic(expected = "beyond installed DRAM")]
    fn straddling_end_of_dram_panics() {
        let mut m = mem();
        m.write_u32(PhysAddr::new((1 << 20) - 2), 1);
    }

    #[test]
    fn zero_page_clears_contents() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(0x2000), 42);
        assert_eq!(m.resident_pages(), 1);
        m.zero_page(Ppn::new(2));
        assert_eq!(m.read_u64(PhysAddr::new(0x2000)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn zeroed_pages_are_recycled_and_cleared() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(0x2008), !0);
        m.zero_page(Ppn::new(2));
        // The recycled arena slot must come back zero-filled for a
        // different page.
        m.write_u8(PhysAddr::new(0x5000), 1);
        assert_eq!(m.read_u64(PhysAddr::new(0x5008)), 0);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn copy_page_duplicates_bytes() {
        let mut m = mem();
        m.write_u32(PhysAddr::new(0x1004), 7);
        m.copy_page(Ppn::new(1), Ppn::new(3));
        assert_eq!(m.read_u32(PhysAddr::new(0x3004)), 7);
        // Copying an untouched source zeroes the destination.
        m.copy_page(Ppn::new(5), Ppn::new(3));
        assert_eq!(m.read_u32(PhysAddr::new(0x3004)), 0);
    }

    #[test]
    fn content_digest_tracks_bytes_not_residency() {
        let mut a = mem();
        let mut b = mem();
        a.write_u32(PhysAddr::new(0x1004), 7);
        // Materialise an extra all-zero page in `b` only.
        b.write_u32(PhysAddr::new(0x1004), 7);
        b.write_u8(PhysAddr::new(0x9000), 0);
        assert_eq!(a.content_digest(), b.content_digest());
        b.write_u8(PhysAddr::new(0x9000), 3);
        assert_ne!(a.content_digest(), b.content_digest());
    }

    #[test]
    #[should_panic(expected = "multiple of the page size")]
    fn misaligned_capacity_rejected() {
        let _ = GuestMemory::new(1000);
    }
}
