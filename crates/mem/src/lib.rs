//! Guest DRAM storage and physical frame allocation.
//!
//! This crate provides the *functional* half of the simulated memory
//! system: it stores real bytes so that workloads genuinely compute (the
//! radix sort really sorts, the compressor really compresses). All
//! *timing* lives in `mtlb-mmc` and `mtlb-sim`.
//!
//! * [`GuestMemory`] — a sparse, page-granular byte store representing
//!   installed DRAM. Pages materialise zero-filled on first touch.
//! * [`FrameAllocator`] — hands out 4 KB physical frames. It can
//!   deliberately *scramble* allocation order to reproduce the paper's
//!   premise that real pages end up dispersed throughout memory, which is
//!   exactly what shadow superpages tolerate and conventional superpages
//!   do not.
//!
//! # Example
//!
//! ```
//! use mtlb_mem::{FrameAllocator, FrameOrder, GuestMemory};
//! use mtlb_types::PhysAddr;
//!
//! let mut dram = GuestMemory::new(64 * 1024 * 1024); // 64 MB installed
//! let mut frames = FrameAllocator::new(0x100, 1024, FrameOrder::Scrambled { seed: 7 });
//!
//! let f = frames.alloc().unwrap();
//! let addr = f.base_addr();
//! dram.write_u32(addr, 0xdead_beef);
//! assert_eq!(dram.read_u32(addr), 0xdead_beef);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frame;
mod guest;

pub use frame::{FrameAllocator, FrameOrder};
pub use guest::GuestMemory;
