//! The memory controller: bus-op classification, MTLB management, and the
//! OS-facing control-register interface.

use mtlb_mem::GuestMemory;
use mtlb_types::{Fault, PhysAddr, RealAddr, PAGE_SIZE};

use crate::mtlb::Evicted;
use crate::stream::StreamBuffers;
use crate::{
    MmcStats, MmcTiming, Mtlb, MtlbConfig, ShadowPte, ShadowRange, StreamConfig, StreamStats,
};

/// A bus operation presented to the MMC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// Cache fill for reading (shared).
    FillShared,
    /// Cache fill for writing (exclusive) — marks the base page dirty.
    FillExclusive,
    /// Writeback of a dirty line — also marks the base page dirty.
    Writeback,
}

/// The MMC's answer to a bus operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusResponse {
    /// The real DRAM address the operation was steered to (equal to the
    /// bus address for non-shadow operations).
    pub real_pa: RealAddr,
    /// MMC cycles consumed (convert with the machine's clock ratio).
    pub mmc_cycles: u64,
}

/// Static configuration of the memory controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmcConfig {
    /// Installed DRAM in bytes; bus addresses below this are real memory.
    pub installed_dram: u64,
    /// The shadow physical address range.
    pub shadow: ShadowRange,
    /// Real base address of the flat shadow-to-real mapping table
    /// (the paper's example places it at physical 0, §2.2).
    pub table_base: PhysAddr,
    /// MTLB geometry; `None` models the conventional (baseline) MMC.
    pub mtlb: Option<MtlbConfig>,
    /// Stream-buffer geometry (§6 extension); `None` (the paper's
    /// evaluation) fits no prefetcher.
    pub stream: Option<StreamConfig>,
    /// Latency parameters.
    pub timing: MmcTiming,
}

impl MmcConfig {
    /// The paper's MTLB-equipped configuration: 512 MB shadow at
    /// `0x8000_0000`, mapping table at physical 0, 128-entry 2-way MTLB.
    ///
    /// # Panics
    ///
    /// Panics when `installed_dram` collides with the shadow range or
    /// cannot hold the mapping table.
    #[must_use]
    pub fn paper_default(installed_dram: u64) -> Self {
        let cfg = MmcConfig {
            installed_dram,
            shadow: ShadowRange::paper_default(),
            table_base: PhysAddr::new(0),
            mtlb: Some(MtlbConfig::paper_default()),
            stream: None,
            timing: MmcTiming::paper_default(),
        };
        cfg.validate();
        cfg
    }

    /// The baseline system: same DRAM, no MTLB, no shadow translation.
    #[must_use]
    pub fn no_mtlb(installed_dram: u64) -> Self {
        let cfg = MmcConfig {
            installed_dram,
            shadow: ShadowRange::paper_default(),
            table_base: PhysAddr::new(0),
            mtlb: None,
            stream: None,
            timing: MmcTiming::paper_default(),
        };
        cfg.validate();
        cfg
    }

    /// Bytes of real memory the mapping table occupies (4 bytes per
    /// shadow page — 512 KB for the paper's 512 MB shadow space).
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        self.shadow.pages() * 4
    }

    fn validate(&self) {
        assert!(
            self.installed_dram > 0 && self.installed_dram.is_multiple_of(PAGE_SIZE),
            "installed DRAM must be a non-zero multiple of the page size"
        );
        assert!(
            self.shadow.base().get() >= self.installed_dram,
            "shadow range must lie above installed DRAM"
        );
        assert!(
            (self.table_base + self.table_bytes()).get() <= self.installed_dram,
            "mapping table must fit in installed DRAM"
        );
    }
}

/// The main memory controller model. See the [crate docs](crate) for the
/// architecture.
#[derive(Debug, Clone)]
pub struct Mmc {
    config: MmcConfig,
    mtlb: Option<Mtlb>,
    streams: Option<StreamBuffers>,
    stats: MmcStats,
}

impl Mmc {
    /// Creates a controller. The mapping table region of guest memory is
    /// assumed zeroed (all entries invalid).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (see [`MmcConfig`]).
    #[must_use]
    pub fn new(config: MmcConfig) -> Self {
        config.validate();
        Mmc {
            config,
            mtlb: config.mtlb.map(Mtlb::new),
            streams: config.stream.map(StreamBuffers::new),
            stats: MmcStats::default(),
        }
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> MmcConfig {
        self.config
    }

    /// Whether an MTLB is fitted.
    #[must_use]
    pub fn has_mtlb(&self) -> bool {
        self.mtlb.is_some()
    }

    /// Whether `pa` falls in the shadow physical range. Real addresses
    /// translate to themselves, so callers holding a non-shadow `pa` can
    /// skip [`translate_functional`](Self::translate_functional) entirely.
    #[inline]
    #[must_use]
    pub fn is_shadow(&self, pa: PhysAddr) -> bool {
        self.config.shadow.contains(pa)
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> MmcStats {
        self.stats
    }

    /// Stream-buffer counters (zeroes when no buffers are fitted).
    #[must_use]
    pub fn stream_stats(&self) -> StreamStats {
        self.streams.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Resets counters (not MTLB contents).
    pub fn reset_stats(&mut self) {
        self.stats = MmcStats::default();
    }

    fn table_entry_addr(&self, index: u64) -> PhysAddr {
        self.config.table_base + index * 4
    }

    /// Reads a mapping entry straight from the in-memory table (no MTLB,
    /// no timing) — the hardware fill path and functional translation use
    /// this.
    fn table_read(&self, index: u64, mem: &GuestMemory) -> ShadowPte {
        ShadowPte::decode(mem.read_u32(self.table_entry_addr(index)))
    }

    fn table_write(&self, index: u64, pte: ShadowPte, mem: &mut GuestMemory) {
        mem.write_u32(self.table_entry_addr(index), pte.encode());
    }

    /// Merges referenced/dirty bits carried by an evicted MTLB entry back
    /// into the table. Functionally always performed; charged only when
    /// configured (§3.4 leaves it uncharged).
    fn merge_evicted(&mut self, ev: Evicted, mem: &mut GuestMemory) -> u64 {
        let mut table = self.table_read(ev.index, mem);
        let new_bits = (ev.pte.referenced && !table.referenced) || (ev.pte.dirty && !table.dirty);
        table.referenced |= ev.pte.referenced;
        table.dirty |= ev.pte.dirty;
        self.table_write(ev.index, table, mem);
        let charge = self
            .mtlb
            .as_ref()
            .map(|m| m.config().charge_bit_writeback)
            .unwrap_or(false);
        if charge && new_bits {
            self.config.timing.dram_access
        } else {
            0
        }
    }

    /// Services a cache fill or writeback arriving on the bus.
    ///
    /// Returns the real address the operation resolves to plus the MMC
    /// cycles it consumed.
    ///
    /// # Errors
    ///
    /// * [`Fault::ShadowPageFault`] when a shadow page's backing frame is
    ///   absent (valid bit clear) — the precise fault of §4.
    /// * [`Fault::BusError`] for addresses in neither DRAM nor the shadow
    ///   range, or for shadow addresses on a machine without an MTLB.
    pub fn bus_access(
        &mut self,
        pa: PhysAddr,
        op: BusOp,
        mem: &mut GuestMemory,
    ) -> Result<BusResponse, Fault> {
        let t = self.config.timing;
        let mut cycles = t.bus_request;
        if self.mtlb.is_some() {
            // The paper's conservative assumption: +1 MMC cycle on every
            // operation for shadow/real classification.
            cycles += t.shadow_detect;
        }

        let real_pa = if let Some(sa) = self.config.shadow.classify(pa) {
            if self.mtlb.is_none() {
                self.stats.bus_errors = self.stats.bus_errors.saturating_add(1);
                return Err(Fault::BusError { pa });
            }
            self.stats.shadow_ops = self.stats.shadow_ops.saturating_add(1);
            let index = self.config.shadow.page_index(sa);

            if self
                .mtlb
                .as_mut()
                .is_some_and(|m| m.lookup(index).is_none())
            {
                // Hardware fill: one DRAM read of the flat table.
                self.stats.mtlb_misses = self.stats.mtlb_misses.saturating_add(1);
                cycles += t.mtlb_fill;
                let pte = self.table_read(index, mem);
                let evicted = self.mtlb.as_mut().and_then(|m| m.insert(index, pte));
                if let Some(ev) = evicted {
                    cycles += self.merge_evicted(ev, mem);
                }
            } else {
                self.stats.mtlb_hits = self.stats.mtlb_hits.saturating_add(1);
            }

            let Some(entry) = self.mtlb.as_mut().and_then(|m| m.lookup(index)) else {
                // Unreachable by construction — the entry was just filled
                // or hit above — but a wild state degrades to a bus error
                // rather than a panic.
                self.stats.bus_errors = self.stats.bus_errors.saturating_add(1);
                return Err(Fault::BusError { pa });
            };
            if !entry.valid {
                self.stats.shadow_faults = self.stats.shadow_faults.saturating_add(1);
                return Err(Fault::ShadowPageFault { shadow: sa });
            }
            entry.referenced = true;
            if matches!(op, BusOp::FillExclusive | BusOp::Writeback) {
                entry.dirty = true;
            }
            entry.rpfn.base_addr() + pa.page_offset()
        } else if pa.get() < self.config.installed_dram {
            self.stats.real_ops = self.stats.real_ops.saturating_add(1);
            pa
        } else {
            self.stats.bus_errors = self.stats.bus_errors.saturating_add(1);
            return Err(Fault::BusError { pa });
        };

        match op {
            BusOp::FillShared | BusOp::FillExclusive => {
                // §6 extension: a fill whose real line sits at a stream
                // buffer head skips the DRAM access.
                let stream_hit = self
                    .streams
                    .as_mut()
                    .is_some_and(|sb| sb.demand_fill(real_pa));
                cycles += if stream_hit {
                    t.stream_hit + t.line_transfer
                } else {
                    t.dram_access + t.line_transfer
                };
                if matches!(op, BusOp::FillShared) {
                    self.stats.fills_shared = self.stats.fills_shared.saturating_add(1);
                } else {
                    self.stats.fills_exclusive = self.stats.fills_exclusive.saturating_add(1);
                }
                self.stats.fill_mmc_cycles = self.stats.fill_mmc_cycles.saturating_add(cycles);
                self.stats.fill_hist.record(cycles);
            }
            BusOp::Writeback => {
                // Posted: the CPU sees only the bus occupancy.
                cycles += t.writeback_issue;
                self.stats.writebacks = self.stats.writebacks.saturating_add(1);
            }
        }

        Ok(BusResponse {
            real_pa,
            mmc_cycles: cycles,
        })
    }

    /// Translates a bus address to a real address with **no timing or
    /// statistics side effects** — the functional path the simulator uses
    /// to move actual data on cache *hits* (where real hardware would
    /// find the data in the cache and never consult the MMC).
    ///
    /// # Errors
    ///
    /// Same faults as [`bus_access`](Self::bus_access).
    pub fn translate_functional(&self, pa: PhysAddr, mem: &GuestMemory) -> Result<RealAddr, Fault> {
        if let Some(sa) = self.config.shadow.classify(pa) {
            if self.mtlb.is_none() {
                return Err(Fault::BusError { pa });
            }
            let index = self.config.shadow.page_index(sa);
            // Cached MTLB bits never change the *translation*, so reading
            // the table is sufficient here.
            let pte = self.table_read(index, mem);
            if !pte.valid {
                return Err(Fault::ShadowPageFault { shadow: sa });
            }
            Ok(pte.rpfn.base_addr() + pa.page_offset())
        } else if pa.get() < self.config.installed_dram {
            Ok(pa)
        } else {
            Err(Fault::BusError { pa })
        }
    }

    /// OS control-register write establishing (or replacing) the mapping
    /// for shadow page `index` (§2.4: "initialized via uncached writes by
    /// the kernel to a special MMC control register").
    ///
    /// Any cached MTLB entry is invalidated first, its accumulated bits
    /// merged into the table *before* the overwrite (so the OS can read
    /// them back until the moment it replaces the mapping).
    ///
    /// Returns MMC cycles consumed.
    pub fn set_mapping(&mut self, index: u64, pte: ShadowPte, mem: &mut GuestMemory) -> u64 {
        assert!(
            index < self.config.shadow.pages(),
            "shadow page index out of range"
        );
        self.stats.control_ops = self.stats.control_ops.saturating_add(1);
        let mut cycles = self.config.timing.control_op;
        if let Some(mtlb) = self.mtlb.as_mut() {
            if let Some(ev) = mtlb.invalidate(index) {
                cycles += self.merge_evicted(ev, mem);
            }
        }
        // Prefetched lines of the frame being unmapped are stale.
        if self.streams.is_some() {
            let old = self.table_read(index, mem);
            if let (true, Some(sb)) = (old.valid, self.streams.as_mut()) {
                sb.invalidate_page(old.rpfn.base_addr());
            }
        }
        self.table_write(index, pte, mem);
        cycles
    }

    /// OS read of the current mapping entry, *coherent* with any bits
    /// accumulated in the MTLB (models a control-register read that
    /// snoops the MTLB). Returns the entry and the MMC cycles consumed.
    pub fn read_mapping(&mut self, index: u64, mem: &mut GuestMemory) -> (ShadowPte, u64) {
        assert!(
            index < self.config.shadow.pages(),
            "shadow page index out of range"
        );
        self.stats.control_ops = self.stats.control_ops.saturating_add(1);
        let mut pte = self.table_read(index, mem);
        if let Some(mtlb) = self.mtlb.as_mut() {
            if let Some(cached) = mtlb.probe(index) {
                pte.referenced |= cached.referenced;
                pte.dirty |= cached.dirty;
            }
        }
        (pte, self.config.timing.control_op)
    }

    /// OS control operation clearing the referenced and/or dirty bits of
    /// one shadow page (CLOCK hand sweep, post-clean bookkeeping).
    /// Returns MMC cycles consumed.
    pub fn clear_bits(
        &mut self,
        index: u64,
        clear_referenced: bool,
        clear_dirty: bool,
        mem: &mut GuestMemory,
    ) -> u64 {
        self.stats.control_ops = self.stats.control_ops.saturating_add(1);
        let mut pte = self.table_read(index, mem);
        if clear_referenced {
            pte.referenced = false;
        }
        if clear_dirty {
            pte.dirty = false;
        }
        self.table_write(index, pte, mem);
        if let Some(mtlb) = self.mtlb.as_mut() {
            if let Some(cached) = mtlb.lookup(index) {
                if clear_referenced {
                    cached.referenced = false;
                }
                if clear_dirty {
                    cached.dirty = false;
                }
            }
        }
        self.config.timing.control_op
    }

    /// OS control operation purging the whole MTLB, merging all cached
    /// bits into the table. Returns MMC cycles consumed.
    pub fn purge_mtlb(&mut self, mem: &mut GuestMemory) -> u64 {
        self.stats.control_ops = self.stats.control_ops.saturating_add(1);
        let mut cycles = self.config.timing.control_op;
        if let Some(mtlb) = self.mtlb.as_mut() {
            for ev in mtlb.purge_all() {
                cycles += self.merge_evicted(ev, mem);
            }
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::Ppn;

    const DRAM: u64 = 64 << 20;

    fn setup() -> (Mmc, GuestMemory) {
        (
            Mmc::new(MmcConfig::paper_default(DRAM)),
            GuestMemory::new(DRAM),
        )
    }

    fn shadow_pa(offset: u64) -> PhysAddr {
        PhysAddr::new(0x8000_0000 + offset)
    }

    #[test]
    fn real_address_passes_through() {
        let (mut mmc, mut mem) = setup();
        let resp = mmc
            .bus_access(PhysAddr::new(0x12340), BusOp::FillShared, &mut mem)
            .unwrap();
        assert_eq!(resp.real_pa, PhysAddr::new(0x12340));
        // bus_request(4) + shadow_detect(1) + dram(20) + transfer(4) = 29.
        assert_eq!(resp.mmc_cycles, 29);
        assert_eq!(mmc.stats().real_ops, 1);
    }

    #[test]
    fn no_mtlb_system_skips_detect_penalty() {
        let mut mmc = Mmc::new(MmcConfig::no_mtlb(DRAM));
        let mut mem = GuestMemory::new(DRAM);
        let resp = mmc
            .bus_access(PhysAddr::new(0x12340), BusOp::FillShared, &mut mem)
            .unwrap();
        assert_eq!(resp.mmc_cycles, 28, "28 = base fill with no detect cycle");
    }

    #[test]
    fn shadow_fill_translates_and_costs_mtlb_fill_on_miss() {
        let (mut mmc, mut mem) = setup();
        mmc.set_mapping(0x240, ShadowPte::present(Ppn::new(0x4013)), &mut mem);
        // Figure 1's second example: shadow 0x80240040-ish.
        let resp = mmc
            .bus_access(shadow_pa(0x24_0040), BusOp::FillShared, &mut mem)
            .unwrap();
        assert_eq!(resp.real_pa, PhysAddr::new(0x0401_3040));
        // 29 + mtlb_fill(12) = 41 on the miss...
        assert_eq!(resp.mmc_cycles, 41);
        // ...and 29 on the subsequent hit.
        let resp2 = mmc
            .bus_access(shadow_pa(0x24_0080), BusOp::FillShared, &mut mem)
            .unwrap();
        assert_eq!(resp2.mmc_cycles, 29);
        assert_eq!(mmc.stats().mtlb_misses, 1);
        assert_eq!(mmc.stats().mtlb_hits, 1);
        assert_eq!(mmc.stats().shadow_ops, 2);
    }

    #[test]
    fn unmapped_shadow_page_faults() {
        let (mut mmc, mut mem) = setup();
        let err = mmc
            .bus_access(shadow_pa(0x5000), BusOp::FillShared, &mut mem)
            .unwrap_err();
        assert!(matches!(err, Fault::ShadowPageFault { .. }));
        assert_eq!(mmc.stats().shadow_faults, 1);
    }

    #[test]
    fn swapped_out_page_faults_with_fault_bit_visible() {
        let (mut mmc, mut mem) = setup();
        mmc.set_mapping(7, ShadowPte::swapped_out(), &mut mem);
        let err = mmc
            .bus_access(shadow_pa(7 * 4096), BusOp::FillShared, &mut mem)
            .unwrap_err();
        assert!(matches!(err, Fault::ShadowPageFault { .. }));
        let (pte, _) = mmc.read_mapping(7, &mut mem);
        assert!(
            pte.fault,
            "OS can distinguish a swapped page from a wild access"
        );
    }

    #[test]
    fn shadow_access_without_mtlb_is_a_bus_error() {
        let mut mmc = Mmc::new(MmcConfig::no_mtlb(DRAM));
        let mut mem = GuestMemory::new(DRAM);
        let err = mmc
            .bus_access(shadow_pa(0), BusOp::FillShared, &mut mem)
            .unwrap_err();
        assert!(matches!(err, Fault::BusError { .. }));
    }

    #[test]
    fn wild_address_is_a_bus_error() {
        let (mut mmc, mut mem) = setup();
        let err = mmc
            .bus_access(PhysAddr::new(0xF000_0000), BusOp::FillShared, &mut mem)
            .unwrap_err();
        assert!(matches!(err, Fault::BusError { .. }));
        assert_eq!(mmc.stats().bus_errors, 1);
    }

    #[test]
    fn exclusive_fill_and_writeback_set_dirty_bit() {
        let (mut mmc, mut mem) = setup();
        mmc.set_mapping(1, ShadowPte::present(Ppn::new(0x100)), &mut mem);
        mmc.set_mapping(2, ShadowPte::present(Ppn::new(0x101)), &mut mem);

        mmc.bus_access(shadow_pa(4096), BusOp::FillExclusive, &mut mem)
            .unwrap();
        let (pte1, _) = mmc.read_mapping(1, &mut mem);
        assert!(pte1.referenced && pte1.dirty);

        mmc.bus_access(shadow_pa(2 * 4096), BusOp::FillShared, &mut mem)
            .unwrap();
        let (pte2, _) = mmc.read_mapping(2, &mut mem);
        assert!(pte2.referenced && !pte2.dirty);

        mmc.bus_access(shadow_pa(2 * 4096), BusOp::Writeback, &mut mem)
            .unwrap();
        let (pte2, _) = mmc.read_mapping(2, &mut mem);
        assert!(pte2.dirty, "writebacks mark the base page dirty (§2.5)");
    }

    #[test]
    fn per_base_page_bits_within_one_superpage_are_independent() {
        // The paper's headline §2.5 property: a superpage's pages keep
        // individual dirty bits.
        let (mut mmc, mut mem) = setup();
        for i in 0..4 {
            mmc.set_mapping(i, ShadowPte::present(Ppn::new(0x200 + i)), &mut mem);
        }
        // Dirty only page 2 of the "superpage".
        mmc.bus_access(shadow_pa(2 * 4096 + 64), BusOp::FillExclusive, &mut mem)
            .unwrap();
        for i in 0..4 {
            let (pte, _) = mmc.read_mapping(i, &mut mem);
            assert_eq!(pte.dirty, i == 2, "only page 2 is dirty");
        }
    }

    #[test]
    fn bits_survive_mtlb_eviction() {
        // Tiny direct-mapped MTLB so evictions are easy to force.
        let mut cfg = MmcConfig::paper_default(DRAM);
        cfg.mtlb = Some(MtlbConfig {
            entries: 2,
            assoc: 1,
            charge_bit_writeback: false,
        });
        let mut mmc = Mmc::new(cfg);
        let mut mem = GuestMemory::new(DRAM);
        mmc.set_mapping(0, ShadowPte::present(Ppn::new(0x300)), &mut mem);
        mmc.set_mapping(2, ShadowPte::present(Ppn::new(0x301)), &mut mem);
        mmc.bus_access(shadow_pa(0), BusOp::FillExclusive, &mut mem)
            .unwrap();
        // Index 2 maps to the same set (2 sets, index % 2 == 0): evicts 0.
        mmc.bus_access(shadow_pa(2 * 4096), BusOp::FillShared, &mut mem)
            .unwrap();
        // The dirty bit must have been merged into the in-memory table.
        let raw = ShadowPte::decode(mem.read_u32(PhysAddr::new(0)));
        assert!(raw.dirty && raw.referenced);
    }

    #[test]
    fn purge_merges_bits() {
        let (mut mmc, mut mem) = setup();
        mmc.set_mapping(9, ShadowPte::present(Ppn::new(0x400)), &mut mem);
        mmc.bus_access(shadow_pa(9 * 4096), BusOp::FillExclusive, &mut mem)
            .unwrap();
        mmc.purge_mtlb(&mut mem);
        let raw = ShadowPte::decode(mem.read_u32(PhysAddr::new(9 * 4)));
        assert!(raw.dirty);
    }

    #[test]
    fn clear_bits_resets_table_and_cached_entry() {
        let (mut mmc, mut mem) = setup();
        mmc.set_mapping(3, ShadowPte::present(Ppn::new(0x500)), &mut mem);
        mmc.bus_access(shadow_pa(3 * 4096), BusOp::FillExclusive, &mut mem)
            .unwrap();
        mmc.clear_bits(3, true, true, &mut mem);
        let (pte, _) = mmc.read_mapping(3, &mut mem);
        assert!(!pte.referenced && !pte.dirty);
    }

    #[test]
    fn functional_translation_matches_timed_path() {
        let (mut mmc, mut mem) = setup();
        mmc.set_mapping(0x240, ShadowPte::present(Ppn::new(0x4013)), &mut mem);
        let f = mmc
            .translate_functional(shadow_pa(0x24_0080), &mem)
            .unwrap();
        let t = mmc
            .bus_access(shadow_pa(0x24_0080), BusOp::FillShared, &mut mem)
            .unwrap();
        assert_eq!(f, t.real_pa);
        assert_eq!(
            mmc.translate_functional(PhysAddr::new(0x40), &mem).unwrap(),
            PhysAddr::new(0x40)
        );
        assert!(mmc
            .translate_functional(shadow_pa(0x100_0000), &mem)
            .is_err());
    }

    #[test]
    fn set_mapping_invalidates_stale_mtlb_entry() {
        let (mut mmc, mut mem) = setup();
        mmc.set_mapping(5, ShadowPte::present(Ppn::new(0x111)), &mut mem);
        mmc.bus_access(shadow_pa(5 * 4096), BusOp::FillShared, &mut mem)
            .unwrap();
        // Remap to a different frame; the cached entry must not be used.
        mmc.set_mapping(5, ShadowPte::present(Ppn::new(0x222)), &mut mem);
        let resp = mmc
            .bus_access(shadow_pa(5 * 4096 + 8), BusOp::FillShared, &mut mem)
            .unwrap();
        assert_eq!(resp.real_pa, PhysAddr::new(0x222 << 12 | 8));
        assert_eq!(mmc.stats().mtlb_misses, 2, "remap forces a refill");
    }

    #[test]
    fn writeback_timing_is_cheap_and_uncounted_as_fill() {
        let (mut mmc, mut mem) = setup();
        mmc.set_mapping(1, ShadowPte::present(Ppn::new(0x100)), &mut mem);
        mmc.bus_access(shadow_pa(4096), BusOp::FillShared, &mut mem)
            .unwrap();
        let fills_before = mmc.stats().fills();
        let cycles_before = mmc.stats().fill_mmc_cycles;
        let resp = mmc
            .bus_access(shadow_pa(4096 + 32), BusOp::Writeback, &mut mem)
            .unwrap();
        // bus_request(4) + detect(1) + writeback_issue(4) = 9 (MTLB hit).
        assert_eq!(resp.mmc_cycles, 9);
        assert_eq!(mmc.stats().fills(), fills_before);
        assert_eq!(mmc.stats().fill_mmc_cycles, cycles_before);
        assert_eq!(mmc.stats().writebacks, 1);
    }

    #[test]
    #[should_panic(expected = "above installed DRAM")]
    fn shadow_overlapping_dram_rejected() {
        let _ = MmcConfig::paper_default(4 << 30);
    }

    #[test]
    fn avg_fill_cycles_reflects_mtlb_misses() {
        let (mut mmc, mut mem) = setup();
        for i in 0..8u64 {
            mmc.set_mapping(i, ShadowPte::present(Ppn::new(0x600 + i)), &mut mem);
        }
        // 8 distinct pages: all MTLB misses -> avg = 41.
        for i in 0..8u64 {
            mmc.bus_access(shadow_pa(i * 4096), BusOp::FillShared, &mut mem)
                .unwrap();
        }
        assert!((mmc.stats().avg_fill_mmc_cycles() - 41.0).abs() < 1e-9);
        // 8 more fills to the same pages at different lines: all hits.
        for i in 0..8u64 {
            mmc.bus_access(shadow_pa(i * 4096 + 64), BusOp::FillShared, &mut mem)
                .unwrap();
        }
        assert!((mmc.stats().avg_fill_mmc_cycles() - 35.0).abs() < 1e-9);
    }
}
