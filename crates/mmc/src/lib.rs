//! The main memory controller (MMC) with its memory-controller TLB
//! (MTLB) — the paper's central hardware contribution (§2.2).
//!
//! The MMC watches every cache fill request and writeback on the bus and
//! classifies the bus physical address:
//!
//! * **real** addresses (below installed DRAM) pass straight through;
//! * **shadow** addresses (inside the configured shadow range, a region
//!   of physical address space *not* backed by DRAM) are retranslated,
//!   base-page by base-page, to real frames via the MTLB;
//! * anything else is a bus error.
//!
//! The MTLB is a small set-associative cache of the **flat shadow page
//! table** — a dense array of 4-byte entries in DRAM, indexed directly by
//! shadow page offset, so a hardware fill is a single DRAM read (no walk).
//! Entries carry the real page frame plus *valid*, *fault*, *referenced*
//! and *dirty* bits (§2.2's 4-byte entry layout), which is what lets the
//! OS page shadow-backed superpages one base page at a time (§2.5).
//!
//! Timing follows the paper's conservative assumptions: when an MTLB is
//! present, the shadow/real classification adds **one MMC cycle to every
//! MMC operation**; an MTLB miss adds one DRAM access to read the mapping
//! entry (§3.5, Figure 4B).
//!
//! # Example
//!
//! ```
//! use mtlb_mem::GuestMemory;
//! use mtlb_mmc::{BusOp, Mmc, MmcConfig, ShadowPte};
//! use mtlb_types::{PhysAddr, Ppn};
//!
//! let mut mem = GuestMemory::new(64 << 20);
//! let mut mmc = Mmc::new(MmcConfig::paper_default(64 << 20));
//!
//! // OS: back shadow page 0 with real frame 0x1234.
//! mmc.set_mapping(0, ShadowPte::present(Ppn::new(0x1234)), &mut mem);
//!
//! // A cache fill for shadow address 0x80000040 lands on real 0x1234040.
//! let resp = mmc
//!     .bus_access(PhysAddr::new(0x8000_0040), BusOp::FillShared, &mut mem)
//!     .expect("mapped");
//! assert_eq!(resp.real_pa, PhysAddr::new(0x0123_4040));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod mtlb;
mod shadow;
mod stats;
mod stream;
mod timing;

pub use controller::{BusOp, BusResponse, Mmc, MmcConfig};
pub use mtlb::{Mtlb, MtlbConfig};
pub use shadow::{ShadowPte, ShadowRange};
pub use stats::MmcStats;
pub use stream::{StreamBuffers, StreamConfig, StreamStats};
pub use timing::MmcTiming;
