//! The memory-controller TLB proper: a set-associative cache of shadow
//! page table entries.

use crate::ShadowPte;

/// Geometry of the MTLB.
///
/// The paper's default configuration is 128 entries, 2-way set
/// associative, with not-recently-used replacement (§3.4); §3.5 sweeps
/// sizes 64–512 and associativities 1–4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MtlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Ways per set. Use `entries` for full associativity.
    pub assoc: usize,
    /// Charge a DRAM write when evicted entries carry updated
    /// referenced/dirty bits. The paper's simulations left this off
    /// ("does not write back updated reference/modification information",
    /// §3.4) and argue the cost is negligible; the bits themselves are
    /// always merged into the table functionally.
    pub charge_bit_writeback: bool,
}

impl MtlbConfig {
    /// The paper's default: 128 entries, 2-way, no charged bit writeback.
    #[must_use]
    pub const fn paper_default() -> Self {
        MtlbConfig {
            entries: 128,
            assoc: 2,
            charge_bit_writeback: false,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is inconsistent (see [`Mtlb::new`]).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(
            self.assoc > 0 && self.entries > 0 && self.entries.is_multiple_of(self.assoc),
            "MTLB entries must be a positive multiple of associativity"
        );
        let sets = self.entries / self.assoc;
        assert!(
            sets.is_power_of_two(),
            "MTLB set count must be a power of two"
        );
        sets
    }
}

impl Default for MtlbConfig {
    fn default() -> Self {
        MtlbConfig::paper_default()
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    /// Shadow page index this way caches.
    tag: u64,
    pte: ShadowPte,
    /// NRU use bit.
    used: bool,
}

/// An entry evicted from the MTLB, carrying possibly-updated state bits
/// that must be merged back into the in-memory table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Evicted {
    pub index: u64,
    pub pte: ShadowPte,
}

/// The set-associative MTLB cache.
///
/// This type is purely the cache structure; the surrounding
/// [`Mmc`](crate::Mmc) drives fills, fault generation and bit
/// maintenance.
#[derive(Debug, Clone)]
pub struct Mtlb {
    config: MtlbConfig,
    sets: Vec<Vec<Option<Way>>>,
    hands: Vec<usize>,
    /// Host-side acceleration only: `(tag, set, way)` of the most recent
    /// hit, checked before the way scan. Re-validated against the stored
    /// tag on every use, so stale values after invalidate/insert are
    /// harmless and behaviour matches the plain scan exactly.
    mru: Option<(u64, usize, usize)>,
}

impl Mtlb {
    /// Creates an empty MTLB.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is not a positive multiple of `assoc`, or the
    /// resulting set count is not a power of two.
    #[must_use]
    pub fn new(config: MtlbConfig) -> Self {
        let sets = config.sets();
        Mtlb {
            config,
            sets: vec![vec![None; config.assoc]; sets],
            hands: vec![0; sets],
            mru: None,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> MtlbConfig {
        self.config
    }

    /// Number of valid entries currently cached.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().flatten().count()
    }

    #[inline]
    fn set_of(&self, index: u64) -> usize {
        // Set counts are asserted powers of two at construction, so the
        // modulo is a mask (avoids a hardware division per bus access).
        (index & (self.sets.len() as u64 - 1)) as usize
    }

    /// Looks up the entry for a shadow page index, setting its NRU use
    /// bit on a hit. Returns a mutable reference so the controller can
    /// update referenced/dirty bits in place.
    pub(crate) fn lookup(&mut self, index: u64) -> Option<&mut ShadowPte> {
        let set = self.set_of(index);
        let way = match self.mru {
            // Fast path: the most recently hit way, if it still holds this
            // tag (its set is `set` by construction: same index, same hash).
            Some((tag, _, w))
                if tag == index && matches!(&self.sets[set][w], Some(way) if way.tag == index) =>
            {
                Some(w)
            }
            _ => self.sets[set]
                .iter()
                .position(|w| matches!(w, Some(way) if way.tag == index)),
        }?;
        self.mru = Some((index, set, way));
        let w = self.sets[set][way].as_mut().expect("hit way is occupied");
        w.used = true;
        Some(&mut w.pte)
    }

    /// Read-only probe without NRU side effects (tests, OS inspection).
    #[must_use]
    pub fn probe(&self, index: u64) -> Option<ShadowPte> {
        let set = self.set_of(index);
        self.sets[set]
            .iter()
            .flatten()
            .find(|w| w.tag == index)
            .map(|w| w.pte)
    }

    /// Installs a just-filled entry, evicting an NRU victim if the set is
    /// full. The evicted entry (with any accumulated bit updates) is
    /// returned for merging into the in-memory table.
    pub(crate) fn insert(&mut self, index: u64, pte: ShadowPte) -> Option<Evicted> {
        let set = self.set_of(index);
        debug_assert!(
            !self.sets[set].iter().flatten().any(|w| w.tag == index),
            "inserting an entry that is already cached"
        );
        let new = Way {
            tag: index,
            pte,
            used: true,
        };
        if let Some(slot) = self.sets[set].iter_mut().find(|w| w.is_none()) {
            *slot = Some(new);
            return None;
        }
        // NRU within the set, with a rotating hand, mirroring the CPU TLB.
        let assoc = self.config.assoc;
        let victim = 'found: {
            for round in 0..2 {
                for i in 0..assoc {
                    let idx = (self.hands[set] + i) % assoc;
                    if let Some(w) = &self.sets[set][idx] {
                        if !w.used {
                            break 'found idx;
                        }
                    }
                }
                if round == 0 {
                    for w in self.sets[set].iter_mut().flatten() {
                        w.used = false;
                    }
                }
            }
            unreachable!("after an NRU reset some way must be unused");
        };
        let old = self.sets[set][victim].replace(new).expect("victim exists");
        self.hands[set] = (victim + 1) % assoc;
        Some(Evicted {
            index: old.tag,
            pte: old.pte,
        })
    }

    /// Removes the entry for `index` (OS updated the mapping). Returns
    /// the cached entry so accumulated bits survive.
    pub(crate) fn invalidate(&mut self, index: u64) -> Option<Evicted> {
        let set = self.set_of(index);
        for slot in &mut self.sets[set] {
            if matches!(slot, Some(w) if w.tag == index) {
                let w = slot.take().expect("matched above");
                return Some(Evicted {
                    index: w.tag,
                    pte: w.pte,
                });
            }
        }
        None
    }

    /// Empties the whole MTLB, yielding every cached entry for bit
    /// merging (OS control-register purge).
    pub(crate) fn purge_all(&mut self) -> Vec<Evicted> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for slot in set {
                if let Some(w) = slot.take() {
                    out.push(Evicted {
                        index: w.tag,
                        pte: w.pte,
                    });
                }
            }
        }
        for h in &mut self.hands {
            *h = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::Ppn;

    fn pte(rpfn: u64) -> ShadowPte {
        ShadowPte::present(Ppn::new(rpfn))
    }

    #[test]
    fn paper_default_geometry() {
        let m = Mtlb::new(MtlbConfig::paper_default());
        assert_eq!(m.config().entries, 128);
        assert_eq!(m.config().assoc, 2);
        assert_eq!(m.config().sets(), 64);
    }

    #[test]
    fn insert_lookup_hit() {
        let mut m = Mtlb::new(MtlbConfig {
            entries: 8,
            assoc: 2,
            charge_bit_writeback: false,
        });
        assert!(m.lookup(5).is_none());
        assert_eq!(m.insert(5, pte(0x42)), None);
        assert_eq!(m.lookup(5).map(|p| p.rpfn.index()), Some(0x42));
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn set_conflicts_evict_nru_victim() {
        // 4 sets, 2 ways: indices 0, 4, 8 share set 0.
        let mut m = Mtlb::new(MtlbConfig {
            entries: 8,
            assoc: 2,
            charge_bit_writeback: false,
        });
        m.insert(0, pte(10));
        m.insert(4, pte(14));
        let ev = m.insert(8, pte(18)).expect("set full, someone evicted");
        assert!(ev.index == 0 || ev.index == 4);
        assert!(m.probe(8).is_some());
        assert_eq!(m.occupancy(), 2);
    }

    #[test]
    fn nru_spares_recently_used_way() {
        let mut m = Mtlb::new(MtlbConfig {
            entries: 4,
            assoc: 2,
            charge_bit_writeback: false,
        });
        m.insert(0, pte(10));
        m.insert(2, pte(12));
        // Both used; the first conflict insert resets the generation and
        // evicts one of them; the freshly-inserted entry is marked used.
        let first = m.insert(4, pte(14)).unwrap();
        let survivor = if first.index == 0 { 2 } else { 0 };
        // The survivor's use bit was cleared by the reset while entry 4 is
        // recently used, so the next insert must victimise the survivor.
        let second = m.insert(6, pte(16)).unwrap();
        assert_eq!(second.index, survivor);
        assert!(m.probe(4).is_some(), "recently-used entry 4 is spared");
    }

    #[test]
    fn direct_mapped_config_works() {
        let mut m = Mtlb::new(MtlbConfig {
            entries: 4,
            assoc: 1,
            charge_bit_writeback: false,
        });
        m.insert(1, pte(11));
        let ev = m.insert(5, pte(15)).expect("same set in direct-mapped");
        assert_eq!(ev.index, 1);
    }

    #[test]
    fn fully_associative_config_works() {
        let mut m = Mtlb::new(MtlbConfig {
            entries: 4,
            assoc: 4,
            charge_bit_writeback: false,
        });
        for i in 0..4 {
            assert!(m.insert(i * 7, pte(i)).is_none());
        }
        assert!(m.insert(100, pte(5)).is_some());
        assert_eq!(m.occupancy(), 4);
    }

    #[test]
    fn invalidate_returns_accumulated_bits() {
        let mut m = Mtlb::new(MtlbConfig {
            entries: 4,
            assoc: 2,
            charge_bit_writeback: false,
        });
        m.insert(3, pte(13));
        m.lookup(3).unwrap().dirty = true;
        let ev = m.invalidate(3).unwrap();
        assert!(ev.pte.dirty);
        assert!(m.probe(3).is_none());
        assert!(m.invalidate(3).is_none());
    }

    #[test]
    fn purge_all_drains_everything() {
        let mut m = Mtlb::new(MtlbConfig {
            entries: 4,
            assoc: 2,
            charge_bit_writeback: false,
        });
        m.insert(0, pte(1));
        m.insert(1, pte(2));
        m.insert(2, pte(3));
        let drained = m.purge_all();
        assert_eq!(drained.len(), 3);
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Mtlb::new(MtlbConfig {
            entries: 12,
            assoc: 2,
            charge_bit_writeback: false,
        });
    }
}
