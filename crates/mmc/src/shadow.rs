//! Shadow address range and shadow page table entries.

use core::fmt;

use mtlb_types::{PhysAddr, Ppn, ShadowAddr, PAGE_SHIFT, PAGE_SIZE};

/// The region of physical address space designated as shadow memory.
///
/// The paper's running example (§2.2): 512 MB of shadow space at
/// `0x8000_0000..0xA000_0000`, in a machine whose installed DRAM ends
/// well below `0x8000_0000`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShadowRange {
    base: PhysAddr,
    size_bytes: u64,
}

impl ShadowRange {
    /// Creates a shadow range `[base, base + size_bytes)`.
    ///
    /// # Panics
    ///
    /// Panics unless both base and size are page-aligned and the size is
    /// non-zero.
    #[must_use]
    pub fn new(base: PhysAddr, size_bytes: u64) -> Self {
        assert!(
            base.is_aligned(PAGE_SIZE) && size_bytes > 0 && size_bytes.is_multiple_of(PAGE_SIZE),
            "shadow range must be page-aligned and non-empty"
        );
        base.get()
            .checked_add(size_bytes)
            .expect("shadow range overflows the address space");
        ShadowRange { base, size_bytes }
    }

    /// The paper's example range: 512 MB at `0x8000_0000`.
    #[must_use]
    pub fn paper_default() -> Self {
        ShadowRange::new(PhysAddr::new(0x8000_0000), 512 << 20)
    }

    /// First shadow address, in its bus view (for range comparisons
    /// against DRAM bounds).
    #[must_use]
    pub const fn base(&self) -> PhysAddr {
        self.base
    }

    /// First shadow address, in its typed shadow view.
    #[must_use]
    pub const fn shadow_base(&self) -> ShadowAddr {
        ShadowAddr::from_bus(self.base)
    }

    /// Size of the range in bytes.
    #[must_use]
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of 4 KB shadow pages in the range.
    #[must_use]
    pub const fn pages(&self) -> u64 {
        self.size_bytes >> PAGE_SHIFT
    }

    /// Returns `true` when `pa` lies inside the shadow range. This is the
    /// classification the MMC performs on every bus operation.
    #[must_use]
    pub fn contains(&self, pa: PhysAddr) -> bool {
        pa >= self.base && pa.offset_from(self.base) < self.size_bytes
    }

    /// Classifies a bus address: the typed shadow address when `pa` falls
    /// inside the shadow window, `None` for real (DRAM-side) addresses.
    ///
    /// This is the sole place the simulator mints a [`ShadowAddr`] from a
    /// bare bus address.
    #[must_use]
    pub fn classify(&self, pa: PhysAddr) -> Option<ShadowAddr> {
        if self.contains(pa) {
            Some(ShadowAddr::from_bus(pa))
        } else {
            None
        }
    }

    /// The index of the shadow page containing `sa`, used to address the
    /// flat mapping table.
    ///
    /// # Panics
    ///
    /// Panics when `sa` is outside the range.
    #[must_use]
    pub fn page_index(&self, sa: ShadowAddr) -> u64 {
        assert!(self.contains(sa.bus()), "address {sa} outside shadow range");
        sa.offset_from(self.shadow_base()) >> PAGE_SHIFT
    }

    /// The shadow address of the page with the given index.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn page_addr(&self, index: u64) -> ShadowAddr {
        assert!(index < self.pages(), "shadow page index out of range");
        self.shadow_base() + (index << PAGE_SHIFT)
    }
}

/// A 4-byte entry of the flat shadow-to-real mapping table (§2.2).
///
/// Layout (32 bits): bits 23..0 hold the real page frame number
/// (sufficient for 64 GB of real memory, as the paper notes), bit 24 is
/// *valid*, bit 25 *fault*, bit 26 *referenced*, bit 27 *dirty*; the top
/// nibble is reserved "for future expansion".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ShadowPte {
    /// Real page frame backing this shadow page (meaningful when valid).
    pub rpfn: Ppn,
    /// The backing page is present in DRAM; accesses may proceed.
    pub valid: bool,
    /// Set by the OS when the page was swapped out: accesses raise a
    /// (precise) shadow page fault for the OS to service (§4).
    pub fault: bool,
    /// A cache fill has touched this base page since the OS last cleared
    /// the bit (approximate — see §2.5).
    pub referenced: bool,
    /// An exclusive fill or writeback has targeted this base page since
    /// the OS last cleaned it (exact — see §2.5).
    pub dirty: bool,
}

impl ShadowPte {
    /// An invalid (unmapped) entry.
    #[must_use]
    pub const fn invalid() -> Self {
        ShadowPte {
            rpfn: Ppn::new(0),
            valid: false,
            fault: false,
            referenced: false,
            dirty: false,
        }
    }

    /// A freshly-established, clean, present mapping to `rpfn`.
    #[must_use]
    pub const fn present(rpfn: Ppn) -> Self {
        ShadowPte {
            rpfn,
            valid: true,
            fault: false,
            referenced: false,
            dirty: false,
        }
    }

    /// An entry for a page the OS has swapped out: not valid, fault bit
    /// set so the OS can distinguish a shadow page fault from a wild
    /// access when it inspects the table.
    #[must_use]
    pub const fn swapped_out() -> Self {
        ShadowPte {
            rpfn: Ppn::new(0),
            valid: false,
            fault: true,
            referenced: false,
            dirty: false,
        }
    }

    /// Encodes into the 4-byte table format.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the frame number exceeds 24 bits.
    #[must_use]
    pub fn encode(&self) -> u32 {
        // Bit-field packing, not address arithmetic: the raw frame index
        // is deliberately unwrapped into a 24-bit field here.
        let rpfn = self.rpfn.index();
        debug_assert!(rpfn < (1 << 24), "real pfn exceeds 24 bits");
        (rpfn as u32)
            | u32::from(self.valid) << 24
            | u32::from(self.fault) << 25
            | u32::from(self.referenced) << 26
            | u32::from(self.dirty) << 27
    }

    /// Decodes from the 4-byte table format.
    #[must_use]
    pub fn decode(raw: u32) -> Self {
        ShadowPte {
            rpfn: Ppn::new(u64::from(raw & 0x00ff_ffff)),
            valid: raw & (1 << 24) != 0,
            fault: raw & (1 << 25) != 0,
            referenced: raw & (1 << 26) != 0,
            dirty: raw & (1 << 27) != 0,
        }
    }
}

impl fmt::Display for ShadowPte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShadowPte(rpfn={}, {}{}{}{})",
            self.rpfn,
            if self.valid { "V" } else { "-" },
            if self.fault { "F" } else { "-" },
            if self.referenced { "R" } else { "-" },
            if self.dirty { "D" } else { "-" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_classification() {
        let r = ShadowRange::paper_default();
        assert!(!r.contains(PhysAddr::new(0x7fff_ffff)));
        assert!(r.contains(PhysAddr::new(0x8000_0000)));
        assert!(r.contains(PhysAddr::new(0x9fff_ffff)));
        assert!(!r.contains(PhysAddr::new(0xa000_0000)));
        assert_eq!(r.pages(), 128 * 1024); // 512 MB / 4 KB = 128 K pages (§2.2)
    }

    #[test]
    fn page_index_round_trips() {
        let r = ShadowRange::paper_default();
        let sa = r.classify(PhysAddr::new(0x8024_0080)).unwrap();
        let idx = r.page_index(sa);
        assert_eq!(idx, 0x240);
        assert_eq!(r.page_addr(idx).bus(), PhysAddr::new(0x8024_0000));
    }

    #[test]
    fn classify_rejects_real_addresses() {
        let r = ShadowRange::paper_default();
        assert_eq!(r.classify(PhysAddr::new(0x100)), None);
        assert_eq!(r.classify(PhysAddr::new(0xa000_0000)), None);
        assert!(r.classify(PhysAddr::new(0x8000_0000)).is_some());
    }

    #[test]
    #[should_panic(expected = "outside shadow range")]
    fn page_index_rejects_out_of_range_shadow() {
        let r = ShadowRange::paper_default();
        // A ShadowAddr minted outside the window (contract violation).
        let _ = r.page_index(ShadowAddr::from_bus(PhysAddr::new(0x100)));
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn misaligned_range_rejected() {
        let _ = ShadowRange::new(PhysAddr::new(0x100), 4096);
    }

    #[test]
    fn pte_encode_decode_round_trip() {
        let cases = [
            ShadowPte::invalid(),
            ShadowPte::present(Ppn::new(0x40138)),
            ShadowPte::swapped_out(),
            ShadowPte {
                rpfn: Ppn::new(0xff_ffff),
                valid: true,
                fault: false,
                referenced: true,
                dirty: true,
            },
        ];
        for pte in cases {
            assert_eq!(ShadowPte::decode(pte.encode()), pte);
        }
    }

    #[test]
    fn pte_entry_is_four_bytes_with_room_to_spare() {
        // The paper: 24-bit frame + 4 state bits fit in 4 bytes "with room
        // left over for future expansion".
        let pte = ShadowPte {
            rpfn: Ppn::new(0xff_ffff),
            valid: true,
            fault: true,
            referenced: true,
            dirty: true,
        };
        assert_eq!(pte.encode() >> 28, 0, "top nibble stays reserved");
    }

    #[test]
    fn display_shows_bits() {
        let pte = ShadowPte {
            rpfn: Ppn::new(1),
            valid: true,
            fault: false,
            referenced: true,
            dirty: false,
        };
        assert!(pte.to_string().contains("V-R-"));
    }
}
