//! Memory-controller event counters.

use core::fmt;

use mtlb_types::Histogram;

/// Counters accumulated by the [`Mmc`](crate::Mmc).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MmcStats {
    /// Shared (read) cache fills serviced.
    pub fills_shared: u64,
    /// Exclusive (write) cache fills serviced.
    pub fills_exclusive: u64,
    /// Writebacks accepted.
    pub writebacks: u64,
    /// Operations whose bus address was in the shadow range.
    pub shadow_ops: u64,
    /// Operations on real (non-shadow) addresses.
    pub real_ops: u64,
    /// MTLB lookups that hit.
    pub mtlb_hits: u64,
    /// MTLB lookups that missed (each one caused a hardware table fill).
    pub mtlb_misses: u64,
    /// Shadow accesses that raised a shadow page fault.
    pub shadow_faults: u64,
    /// Wild accesses outside DRAM and shadow ranges.
    pub bus_errors: u64,
    /// MMC cycles spent servicing demand fills (for the Figure 4B
    /// average-time-per-fill metric).
    pub fill_mmc_cycles: u64,
    /// Control-register operations (mapping setup, purges, bit reads).
    pub control_ops: u64,
    /// Distribution of MMC cycles per demand fill — the Figure 4B
    /// metric as a log-bucketed histogram rather than only an average.
    pub fill_hist: Histogram,
}

impl MmcStats {
    /// Total demand fills.
    #[must_use]
    pub fn fills(&self) -> u64 {
        self.fills_shared + self.fills_exclusive
    }

    /// MTLB hit rate over all MTLB lookups; zero when no lookups.
    #[must_use]
    pub fn mtlb_hit_rate(&self) -> f64 {
        let total = self.mtlb_hits + self.mtlb_misses;
        if total == 0 {
            0.0
        } else {
            self.mtlb_hits as f64 / total as f64
        }
    }

    /// Mean MMC cycles per demand fill (the paper's Figure 4B metric).
    #[must_use]
    pub fn avg_fill_mmc_cycles(&self) -> f64 {
        let fills = self.fills();
        if fills == 0 {
            0.0
        } else {
            self.fill_mmc_cycles as f64 / fills as f64
        }
    }
}

impl fmt::Display for MmcStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mmc: {} fills ({} excl), {} writebacks, avg fill {:.2} MMC cycles, \
             MTLB {:.2}% hits ({} misses), {} shadow faults",
            self.fills(),
            self.fills_exclusive,
            self.writebacks,
            self.avg_fill_mmc_cycles(),
            self.mtlb_hit_rate() * 100.0,
            self.mtlb_misses,
            self.shadow_faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = MmcStats {
            fills_shared: 60,
            fills_exclusive: 40,
            mtlb_hits: 91,
            mtlb_misses: 9,
            fill_mmc_cycles: 2900,
            ..MmcStats::default()
        };
        assert_eq!(s.fills(), 100);
        assert!((s.mtlb_hit_rate() - 0.91).abs() < 1e-12);
        assert!((s.avg_fill_mmc_cycles() - 29.0).abs() < 1e-12);
    }

    #[test]
    fn idle_stats_are_zero() {
        let s = MmcStats::default();
        assert_eq!(s.mtlb_hit_rate(), 0.0);
        assert_eq!(s.avg_fill_mmc_cycles(), 0.0);
    }
}
