//! MMC-resident stream buffers (paper §6 future work: "MMC-provided
//! stream buffers", after Jouppi).
//!
//! A small set of FIFO prefetch buffers living in the memory controller.
//! When a demand fill misses every buffer, a new stream is allocated
//! (LRU) and the next `depth` lines are prefetched into it; when a fill
//! hits the head of a buffer, the line is returned without a DRAM access
//! and the stream advances, prefetching one more line.
//!
//! Because the buffers sit *behind* the MTLB, they work on **real**
//! addresses: a stream through a shadow superpage keeps streaming even
//! though its base pages are physically discontiguous — the composition
//! of the two mechanisms the paper anticipates.

use mtlb_types::{PhysAddr, CACHE_LINE_SHIFT};

/// Stream-buffer geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamConfig {
    /// Number of independent stream buffers.
    pub buffers: usize,
    /// Lines prefetched ahead per stream.
    pub depth: usize,
}

impl StreamConfig {
    /// Jouppi's classic configuration: four 4-deep buffers.
    #[must_use]
    pub const fn jouppi_default() -> Self {
        StreamConfig {
            buffers: 4,
            depth: 4,
        }
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig::jouppi_default()
    }
}

/// Stream-buffer event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Demand fills served from a buffer head (no DRAM access).
    pub hits: u64,
    /// Demand fills that missed every buffer.
    pub misses: u64,
    /// Lines prefetched (background DRAM traffic).
    pub prefetches: u64,
    /// Streams (re)allocated.
    pub allocations: u64,
}

impl StreamStats {
    /// Hit rate over demand fills seen by the buffers.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Real line address at the buffer head.
    head_line: u64,
    /// Valid lines buffered ahead (≤ depth).
    valid: usize,
    /// LRU stamp.
    last_use: u64,
}

/// The stream-buffer array. Purely a hit/miss/advance model — the data
/// itself lives in [`GuestMemory`](mtlb_mem::GuestMemory) as everywhere
/// else in the simulator.
#[derive(Debug, Clone)]
pub struct StreamBuffers {
    config: StreamConfig,
    streams: Vec<Option<Stream>>,
    clock: u64,
    stats: StreamStats,
}

impl StreamBuffers {
    /// Creates empty buffers.
    #[must_use]
    pub fn new(config: StreamConfig) -> Self {
        assert!(
            config.buffers > 0 && config.depth > 0,
            "degenerate stream config"
        );
        StreamBuffers {
            config,
            streams: vec![None; config.buffers],
            clock: 0,
            stats: StreamStats::default(),
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Cache-line index of a bus address: line-granular stream
    /// bookkeeping, not an address-domain computation.
    fn line_of(pa: PhysAddr) -> u64 {
        let raw = pa.get();
        raw >> CACHE_LINE_SHIFT
    }

    /// Presents a demand fill for the *real* address `real_pa`.
    /// Returns `true` when served from a buffer head (skip the DRAM
    /// access); on a miss, allocates a stream and prefetches behind it.
    pub fn demand_fill(&mut self, real_pa: PhysAddr) -> bool {
        self.clock += 1;
        let line = Self::line_of(real_pa);
        // Head hit?
        for stream in self.streams.iter_mut().flatten() {
            if stream.valid > 0 && stream.head_line == line {
                stream.head_line += 1;
                // The consumed slot is refilled in the background.
                self.stats.prefetches = self.stats.prefetches.saturating_add(1);
                stream.last_use = self.clock;
                self.stats.hits = self.stats.hits.saturating_add(1);
                return true;
            }
        }
        self.stats.misses = self.stats.misses.saturating_add(1);
        // Allocate (or steal, LRU) a stream starting after this line.
        let slot = match self.streams.iter().position(Option::is_none) {
            Some(i) => i,
            None => self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.map(|s| s.last_use).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("buffers is non-empty"),
        };
        self.streams[slot] = Some(Stream {
            head_line: line + 1,
            valid: self.config.depth,
            last_use: self.clock,
        });
        self.stats.allocations = self.stats.allocations.saturating_add(1);
        self.stats.prefetches = self
            .stats
            .prefetches
            .saturating_add(self.config.depth as u64);
        false
    }

    /// Invalidates every buffer whose head falls within the real page
    /// `[page_base, page_base + 4 KB)` — the OS purges streams when it
    /// re-purposes a frame (swap-out, remap), exactly as it purges the
    /// MTLB.
    pub fn invalidate_page(&mut self, page_base: PhysAddr) {
        let first = Self::line_of(page_base);
        let last = first + (mtlb_types::PAGE_SIZE >> CACHE_LINE_SHIFT);
        for slot in &mut self.streams {
            if let Some(s) = slot {
                let end = s.head_line + s.valid as u64;
                if s.head_line < last && first < end {
                    *slot = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa(line: u64) -> PhysAddr {
        PhysAddr::new(line << CACHE_LINE_SHIFT)
    }

    #[test]
    fn sequential_stream_hits_after_first_miss() {
        let mut sb = StreamBuffers::new(StreamConfig::jouppi_default());
        assert!(!sb.demand_fill(pa(100)), "cold miss allocates");
        for line in 101..120 {
            assert!(sb.demand_fill(pa(line)), "line {line} should stream");
        }
        assert_eq!(sb.stats().misses, 1);
        assert_eq!(sb.stats().hits, 19);
    }

    #[test]
    fn four_interleaved_streams_coexist() {
        let mut sb = StreamBuffers::new(StreamConfig::jouppi_default());
        let bases = [1000u64, 2000, 3000, 4000];
        for b in bases {
            sb.demand_fill(pa(b));
        }
        for i in 1..10u64 {
            for b in bases {
                assert!(sb.demand_fill(pa(b + i)), "stream {b} line {i}");
            }
        }
        assert_eq!(sb.stats().allocations, 4);
    }

    #[test]
    fn fifth_stream_steals_lru() {
        let mut sb = StreamBuffers::new(StreamConfig::jouppi_default());
        for b in [1000u64, 2000, 3000, 4000] {
            sb.demand_fill(pa(b));
        }
        // Touch 2000..4000 streams so 1000 is LRU, then start a fifth.
        for b in [2000u64, 3000, 4000] {
            sb.demand_fill(pa(b + 1));
        }
        sb.demand_fill(pa(5000));
        // The newer streams survive the steal...
        assert!(sb.demand_fill(pa(2002)));
        // ...but the LRU (1000) stream is gone; its next line misses
        // (and that miss in turn steals another slot).
        assert!(!sb.demand_fill(pa(1001)));
    }

    #[test]
    fn random_traffic_never_hits() {
        let mut sb = StreamBuffers::new(StreamConfig::jouppi_default());
        let mut x = 7u64;
        for _ in 0..100 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            assert!(!sb.demand_fill(pa((x >> 20) & 0xfffff)));
        }
        assert_eq!(sb.stats().hit_rate(), 0.0);
    }

    #[test]
    fn invalidate_page_kills_overlapping_streams() {
        let mut sb = StreamBuffers::new(StreamConfig::jouppi_default());
        sb.demand_fill(pa(128)); // stream heads at line 129 (page 1)
        sb.demand_fill(pa(100_000));
        sb.invalidate_page(PhysAddr::new(4096)); // lines 128..256
        assert!(!sb.demand_fill(pa(129)), "purged stream cannot hit");
        assert!(sb.demand_fill(pa(100_001)), "unrelated stream survives");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_buffers_rejected() {
        let _ = StreamBuffers::new(StreamConfig {
            buffers: 0,
            depth: 4,
        });
    }
}
