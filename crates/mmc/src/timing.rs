//! MMC latency parameters.
//!
//! All values are **MMC (bus) cycles** at the paper's 120 MHz; the machine
//! model converts to CPU cycles with the configured [`ClockRatio`]
//! (2 CPU cycles per MMC cycle by default).
//!
//! [`ClockRatio`]: mtlb_types::ClockRatio

/// Latency parameters of the memory controller, in MMC cycles.
///
/// Defaults are calibrated so the paper's *shape* reproduces:
///
/// * a cache fill on the standard (no-MTLB) system costs
///   `bus_request + dram_access + line_transfer` = 28 MMC cycles
///   (56 CPU cycles — mid-1990s main-memory latency);
/// * with an MTLB present, every MMC operation pays `shadow_detect`
///   (1 cycle, the paper's "conservative estimate", §2.2);
/// * an MTLB miss adds `mtlb_fill` — one *word* read of the flat table,
///   cheaper than a full line fill (no 32-byte transfer phase) — so the
///   Figure 4B "added delay per cache fill" spans ≈ 1.5 MMC cycles (high
///   hit rates) up to ≈ 10 (small direct-mapped MTLBs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MmcTiming {
    /// Shadow/real classification added to *every* operation when an MTLB
    /// is present.
    pub shadow_detect: u64,
    /// Bus arbitration + request transfer for an operation reaching the MMC.
    pub bus_request: u64,
    /// One DRAM access (row activate + column read).
    pub dram_access: u64,
    /// Returning a 32-byte line over the 64-bit bus.
    pub line_transfer: u64,
    /// The DRAM read performed by the hardware MTLB fill engine.
    pub mtlb_fill: u64,
    /// Cycles the CPU observes for a posted writeback (bus occupancy
    /// only; the DRAM write completes in the background).
    pub writeback_issue: u64,
    /// An uncached control-register write (OS establishing a
    /// shadow-to-real mapping, §2.4) or read (OS inspecting ref/dirty
    /// bits).
    pub control_op: u64,
    /// Serving a demand fill from a stream-buffer head instead of DRAM
    /// (§6 extension; only reachable when stream buffers are fitted).
    pub stream_hit: u64,
}

impl MmcTiming {
    /// The calibrated defaults described in the type-level docs.
    #[must_use]
    pub const fn paper_default() -> Self {
        MmcTiming {
            shadow_detect: 1,
            bus_request: 4,
            dram_access: 20,
            line_transfer: 4,
            mtlb_fill: 12,
            writeback_issue: 4,
            control_op: 25,
            stream_hit: 2,
        }
    }

    /// MMC cycles for a demand fill that hits no MTLB machinery (standard
    /// system, or real-address fill with `shadow_detect` added by the
    /// caller as appropriate).
    #[must_use]
    pub const fn base_fill(&self) -> u64 {
        self.bus_request + self.dram_access + self.line_transfer
    }
}

impl Default for MmcTiming {
    fn default() -> Self {
        MmcTiming::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fill_cost_is_28_mmc_cycles() {
        let t = MmcTiming::paper_default();
        assert_eq!(t.base_fill(), 28);
        assert_eq!(t.shadow_detect, 1, "the paper's 1-cycle classification");
    }
}
