//! Timed kernel memory access.
//!
//! Kernel code runs under the locked identity block mapping (VA = PA), so
//! its data accesses skip the CPU TLB but still travel the normal
//! cache → bus → MMC path, paying real cycles. [`TimedMem`] bundles the
//! memory-system components and accumulates the CPU cycles consumed; it
//! implements [`PteMemory`] so hashed-page-table walks (software TLB miss
//! handling) and updates are charged faithfully — including the §3.5
//! effect that hot PTEs hit in the data cache.

use mtlb_cache::{AccessResult, DataCache, FillKind};
use mtlb_mem::GuestMemory;
use mtlb_mmc::{BusOp, Mmc};
use mtlb_tlb::PteMemory;
use mtlb_types::{ClockRatio, Cycles, PhysAddr, VirtAddr};

/// A borrowed view of the memory system performing kernel-privilege,
/// identity-mapped, *timed* accesses.
#[derive(Debug)]
pub struct TimedMem<'a> {
    /// The data cache (kernel PTE traffic is cached like anything else).
    pub cache: &'a mut DataCache,
    /// The memory controller.
    pub mmc: &'a mut Mmc,
    /// Backing DRAM.
    pub mem: &'a mut GuestMemory,
    /// CPU-per-bus clock ratio for cycle conversion.
    pub ratio: ClockRatio,
    /// CPU cycles accumulated by accesses made through this view.
    pub cycles: Cycles,
}

impl<'a> TimedMem<'a> {
    /// Creates a view with a zeroed cycle accumulator.
    pub fn new(
        cache: &'a mut DataCache,
        mmc: &'a mut Mmc,
        mem: &'a mut GuestMemory,
        ratio: ClockRatio,
    ) -> Self {
        TimedMem {
            cache,
            mmc,
            mem,
            ratio,
            cycles: Cycles::ZERO,
        }
    }

    /// Charges the cache/bus/MMC cost of one kernel access to `pa`
    /// (identity-mapped, physically addressed).
    ///
    /// # Panics
    ///
    /// Panics if kernel memory faults — kernel structures always live in
    /// real DRAM, so a fault is a simulator bug.
    pub fn charge_access(&mut self, pa: PhysAddr, write: bool) {
        // Every access costs at least the single-cycle cache pipeline.
        self.cycles += Cycles::new(1);
        let va = VirtAddr::new(pa.get()); // identity block mapping
        let result = if write {
            self.cache.access_write(va, pa)
        } else {
            self.cache.access_read(va, pa)
        };
        if let AccessResult::Miss { fill, writeback } = result {
            if let Some(victim) = writeback {
                let resp = self
                    .mmc
                    .bus_access(victim, BusOp::Writeback, self.mem)
                    .expect("victim writeback cannot fault");
                self.cycles += self.ratio.device_to_cpu(resp.mmc_cycles);
            }
            let op = match fill {
                FillKind::Shared => BusOp::FillShared,
                FillKind::Exclusive => BusOp::FillExclusive,
            };
            let resp = self
                .mmc
                .bus_access(pa, op, self.mem)
                .expect("kernel memory never faults");
            self.cycles += self.ratio.device_to_cpu(resp.mmc_cycles);
        }
    }

    /// Takes the accumulated cycles, resetting the accumulator.
    pub fn take_cycles(&mut self) -> Cycles {
        std::mem::replace(&mut self.cycles, Cycles::ZERO)
    }
}

impl PteMemory for TimedMem<'_> {
    fn read_u64(&mut self, pa: PhysAddr) -> u64 {
        self.charge_access(pa, false);
        self.mem.read_u64(pa)
    }

    fn write_u64(&mut self, pa: PhysAddr, value: u64) {
        self.charge_access(pa, true);
        self.mem.write_u64(pa, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_cache::CacheConfig;
    use mtlb_mmc::MmcConfig;

    const DRAM: u64 = 64 << 20;

    struct Rig {
        cache: DataCache,
        mmc: Mmc,
        mem: GuestMemory,
    }

    fn rig() -> Rig {
        Rig {
            cache: DataCache::new(CacheConfig::paper_default()),
            mmc: Mmc::new(MmcConfig::paper_default(DRAM)),
            mem: GuestMemory::new(DRAM),
        }
    }

    #[test]
    fn cold_read_pays_fill_then_hits_are_single_cycle() {
        let mut r = rig();
        let mut tm = TimedMem::new(
            &mut r.cache,
            &mut r.mmc,
            &mut r.mem,
            ClockRatio::paper_default(),
        );
        let pa = PhysAddr::new(0x8_0000);
        let _ = tm.read_u64(pa);
        // 1 (cache) + 29 MMC cycles * 2 = 59 CPU cycles.
        assert_eq!(tm.take_cycles(), Cycles::new(59));
        let _ = tm.read_u64(pa);
        assert_eq!(tm.take_cycles(), Cycles::new(1));
    }

    #[test]
    fn writes_functionally_update_memory() {
        let mut r = rig();
        let mut tm = TimedMem::new(
            &mut r.cache,
            &mut r.mmc,
            &mut r.mem,
            ClockRatio::paper_default(),
        );
        tm.write_u64(PhysAddr::new(0x9_0000), 0xfeed);
        assert_eq!(tm.read_u64(PhysAddr::new(0x9_0000)), 0xfeed);
        assert_eq!(r.mem.read_u64(PhysAddr::new(0x9_0000)), 0xfeed);
    }

    #[test]
    fn conflicting_kernel_lines_produce_writebacks() {
        let mut r = rig();
        let mut tm = TimedMem::new(
            &mut r.cache,
            &mut r.mmc,
            &mut r.mem,
            ClockRatio::paper_default(),
        );
        let a = PhysAddr::new(0x10_0000);
        let b = PhysAddr::new(0x10_0000 + 512 * 1024); // same index, different tag
        tm.write_u64(a, 1);
        let _ = tm.take_cycles();
        let _ = tm.read_u64(b); // evicts dirty a -> writeback + fill
                                // 1 + writeback(4+1+4=9 MMC -> 18) + fill(29 MMC -> 58) = 77.
        assert_eq!(tm.take_cycles(), Cycles::new(77));
    }
}
