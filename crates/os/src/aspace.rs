//! Per-process address-space bookkeeping.

use std::collections::BTreeMap;

use mtlb_types::{PageSize, Ppn, Prot, Spn, VirtAddr, Vpn, PAGE_SIZE};

/// What backs a mapped virtual page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backing {
    /// An ordinary page mapped straight to a real DRAM frame.
    Real(Ppn),
    /// A page inside a shadow-backed superpage: the CPU-visible frame is
    /// a shadow page; the real frame behind it lives in the MMC's table
    /// (and may be absent while swapped out).
    Shadow {
        /// The shadow page frame the CPU TLB maps this page to.
        shadow_spn: Spn,
    },
}

/// Kernel bookkeeping for one mapped virtual page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageInfo {
    /// Current backing.
    pub backing: Backing,
    /// Protection (uniform across a superpage).
    pub prot: Prot,
    /// Size of the TLB mapping this page belongs to: `Base4K` for
    /// ordinary pages, the superpage size for remapped ones.
    pub mapping_size: PageSize,
}

/// One shadow-backed superpage created by `remap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperpageInfo {
    /// First virtual page (size-aligned).
    pub vpn_base: Vpn,
    /// Superpage size.
    pub size: PageSize,
    /// First shadow page frame (size-aligned; contiguous shadow range).
    pub shadow_base: Spn,
}

impl SuperpageInfo {
    /// Returns `true` when `vpn` lies inside this superpage.
    #[must_use]
    pub fn covers(&self, vpn: Vpn) -> bool {
        let d = vpn.index().wrapping_sub(self.vpn_base.index());
        d < self.size.base_pages()
    }
}

/// The kernel's view of a (single) process address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    pages: BTreeMap<u64, PageInfo>,
    superpages: BTreeMap<u64, SuperpageInfo>,
}

impl AddressSpace {
    /// An empty address space.
    #[must_use]
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// Records a mapping for one page.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped (unmap first).
    pub fn map_page(&mut self, vpn: Vpn, info: PageInfo) {
        let prev = self.pages.insert(vpn.index(), info);
        assert!(prev.is_none(), "vpn {vpn} is already mapped");
    }

    /// Replaces the record for an already-mapped page (remap).
    ///
    /// # Panics
    ///
    /// Panics if the page is not currently mapped.
    pub fn remap_page(&mut self, vpn: Vpn, info: PageInfo) {
        let slot = self
            .pages
            .get_mut(&vpn.index())
            .unwrap_or_else(|| panic!("remap of unmapped vpn {vpn}"));
        *slot = info;
    }

    /// Removes the mapping for one page, returning its last state.
    pub fn unmap_page(&mut self, vpn: Vpn) -> Option<PageInfo> {
        self.pages.remove(&vpn.index())
    }

    /// Looks up one page.
    #[must_use]
    pub fn page(&self, vpn: Vpn) -> Option<&PageInfo> {
        self.pages.get(&vpn.index())
    }

    /// Mutable lookup.
    pub fn page_mut(&mut self, vpn: Vpn) -> Option<&mut PageInfo> {
        self.pages.get_mut(&vpn.index())
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Returns `true` when every page of `[start, start + len)` is mapped.
    #[must_use]
    pub fn range_mapped(&self, start: VirtAddr, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let first = start.vpn().index();
        let last = (start + (len - 1)).vpn().index();
        (first..=last).all(|v| self.pages.contains_key(&v))
    }

    /// Iterates mapped pages of a vpn range.
    pub fn pages_in(&self, vpn: Vpn, pages: u64) -> impl Iterator<Item = (Vpn, &PageInfo)> + '_ {
        self.pages
            .range(vpn.index()..vpn.offset(pages).index())
            .map(|(k, v)| (Vpn::new(*k), v))
    }

    /// Records a created superpage.
    ///
    /// # Panics
    ///
    /// Panics on overlap with an existing superpage.
    pub fn add_superpage(&mut self, sp: SuperpageInfo) {
        assert!(
            self.superpage_of(sp.vpn_base).is_none()
                && self
                    .superpage_of(sp.vpn_base.offset(sp.size.base_pages() - 1))
                    .is_none(),
            "superpage overlaps an existing one"
        );
        self.superpages.insert(sp.vpn_base.index(), sp);
    }

    /// Finds the superpage containing `vpn`, if any.
    #[must_use]
    pub fn superpage_of(&self, vpn: Vpn) -> Option<&SuperpageInfo> {
        self.superpages
            .range(..=vpn.index())
            .next_back()
            .map(|(_, sp)| sp)
            .filter(|sp| sp.covers(vpn))
    }

    /// Removes a superpage record by base vpn.
    pub fn remove_superpage(&mut self, vpn_base: Vpn) -> Option<SuperpageInfo> {
        self.superpages.remove(&vpn_base.index())
    }

    /// All superpages, ordered by virtual base.
    pub fn superpages(&self) -> impl Iterator<Item = &SuperpageInfo> + '_ {
        self.superpages.values()
    }

    /// Total bytes currently mapped.
    #[must_use]
    pub fn mapped_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(frame: u64) -> PageInfo {
        PageInfo {
            backing: Backing::Real(Ppn::new(frame)),
            prot: Prot::RW,
            mapping_size: PageSize::Base4K,
        }
    }

    #[test]
    fn map_lookup_unmap() {
        let mut a = AddressSpace::new();
        a.map_page(Vpn::new(5), info(100));
        assert_eq!(
            a.page(Vpn::new(5)).unwrap().backing,
            Backing::Real(Ppn::new(100))
        );
        assert!(a.page(Vpn::new(6)).is_none());
        assert_eq!(a.mapped_pages(), 1);
        let old = a.unmap_page(Vpn::new(5)).unwrap();
        assert_eq!(old, info(100));
        assert_eq!(a.mapped_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut a = AddressSpace::new();
        a.map_page(Vpn::new(5), info(1));
        a.map_page(Vpn::new(5), info(2));
    }

    #[test]
    fn remap_replaces_backing() {
        let mut a = AddressSpace::new();
        a.map_page(Vpn::new(5), info(1));
        a.remap_page(
            Vpn::new(5),
            PageInfo {
                backing: Backing::Shadow {
                    shadow_spn: Spn::new(0x80240),
                },
                prot: Prot::RW,
                mapping_size: PageSize::Size16K,
            },
        );
        let p = a.page(Vpn::new(5)).unwrap();
        assert!(matches!(p.backing, Backing::Shadow { .. }));
        assert_eq!(p.mapping_size, PageSize::Size16K);
    }

    #[test]
    fn range_mapped_checks_every_page() {
        let mut a = AddressSpace::new();
        for v in 10..20 {
            a.map_page(Vpn::new(v), info(v));
        }
        let base = VirtAddr::new(10 * PAGE_SIZE);
        assert!(a.range_mapped(base, 10 * PAGE_SIZE));
        assert!(!a.range_mapped(base, 11 * PAGE_SIZE));
        assert!(a.range_mapped(base, 0), "empty range is trivially mapped");
        // Sub-page length still requires the page.
        assert!(a.range_mapped(VirtAddr::new(19 * PAGE_SIZE), 100));
        assert!(!a.range_mapped(VirtAddr::new(20 * PAGE_SIZE), 1));
    }

    #[test]
    fn superpage_lookup_by_containment() {
        let mut a = AddressSpace::new();
        a.add_superpage(SuperpageInfo {
            vpn_base: Vpn::new(8),
            size: PageSize::Size16K,
            shadow_base: Spn::new(0x80240),
        });
        assert!(a.superpage_of(Vpn::new(7)).is_none());
        assert!(a.superpage_of(Vpn::new(8)).is_some());
        assert!(a.superpage_of(Vpn::new(11)).is_some());
        assert!(a.superpage_of(Vpn::new(12)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_superpages_panic() {
        let mut a = AddressSpace::new();
        a.add_superpage(SuperpageInfo {
            vpn_base: Vpn::new(8),
            size: PageSize::Size16K,
            shadow_base: Spn::new(0x80240),
        });
        a.add_superpage(SuperpageInfo {
            vpn_base: Vpn::new(8),
            size: PageSize::Size64K,
            shadow_base: Spn::new(0x80300),
        });
    }

    #[test]
    fn pages_in_iterates_range() {
        let mut a = AddressSpace::new();
        for v in [1u64, 2, 5, 9] {
            a.map_page(Vpn::new(v), info(v));
        }
        let got: Vec<u64> = a.pages_in(Vpn::new(2), 6).map(|(v, _)| v.index()).collect();
        assert_eq!(got, vec![2, 5]);
    }

    #[test]
    fn mapped_bytes_counts_pages() {
        let mut a = AddressSpace::new();
        a.map_page(Vpn::new(1), info(1));
        a.map_page(Vpn::new(2), info(2));
        assert_eq!(a.mapped_bytes(), 2 * PAGE_SIZE);
    }
}
