//! The simulated kernel: boot, region mapping, `remap()` superpage
//! creation, the modified `sbrk()`, software TLB miss handling, and
//! demand paging of shadow-backed superpages.
//!
//! Every service returns the CPU [`Cycles`] it consumed so the machine
//! model (`mtlb-sim`) can attribute kernel time, exactly as the paper's
//! simulations "include the execution time and memory accesses of these
//! kernel operations" (§3.2).

use mtlb_cache::DataCache;
use mtlb_mem::{FrameAllocator, FrameOrder, GuestMemory};
use mtlb_mmc::{BusOp, Mmc, MmcConfig, ShadowPte};
use mtlb_tlb::{ContigInfo, HashedPageTable, MicroItlb, Pte, TlbEntry, TranslationScheme};
use mtlb_types::{
    ClockRatio, Cycles, Fault, PageSize, Ppn, Prot, ShadowAddr, Spn, VirtAddr, Vpn, PAGE_SIZE,
};

use std::collections::BTreeMap;

use crate::access::TimedMem;
use crate::aspace::{AddressSpace, Backing, PageInfo, SuperpageInfo};
use crate::layout::{KernelLayout, UserLayout};
use crate::paging::{PagingPolicy, SwapCosts, SwapDevice};
use crate::shadow_alloc::{BucketAllocator, BucketPartition, BuddyAllocator, ShadowAllocator};

/// Base pages in the aligned window the miss handler scans for
/// contiguous mappings when the translation scheme asks for
/// [`ContigInfo`] (one page-table cache line's worth of PTEs — the
/// neighbourhood a hardware coalescing TLB sees for free during the
/// walk).
pub const CONTIG_SCAN_WINDOW: u64 = 8;

/// Borrowed hardware state handed to kernel services.
#[derive(Debug)]
pub struct KernelCtx<'a> {
    /// The CPU's translation front end (the paper's unified TLB, or a
    /// rival [`TranslationScheme`]).
    pub tlb: &'a mut dyn TranslationScheme,
    /// The micro-ITLB.
    pub itlb: &'a mut MicroItlb,
    /// The data cache.
    pub cache: &'a mut DataCache,
    /// The memory controller.
    pub mmc: &'a mut Mmc,
    /// Installed DRAM.
    pub mem: &'a mut GuestMemory,
    /// CPU-per-bus clock ratio.
    pub ratio: ClockRatio,
}

/// Which shadow-space allocator the kernel uses (§2.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShadowAllocPolicy {
    /// Static pre-partitioned buckets (the paper's scheme, Figure 2).
    Bucket(BucketPartition),
    /// Buddy system with split/recombine (the paper's suggested
    /// alternative).
    Buddy,
}

impl Default for ShadowAllocPolicy {
    fn default() -> Self {
        ShadowAllocPolicy::Bucket(BucketPartition::paper_default())
    }
}

#[derive(Debug, Clone)]
enum ShadowAlloc {
    Bucket(BucketAllocator),
    Buddy(BuddyAllocator),
}

impl ShadowAlloc {
    fn alloc(&mut self, size: PageSize) -> Option<ShadowAddr> {
        match self {
            ShadowAlloc::Bucket(a) => a.alloc(size),
            ShadowAlloc::Buddy(a) => a.alloc(size),
        }
    }

    fn free(&mut self, addr: ShadowAddr, size: PageSize) {
        match self {
            ShadowAlloc::Bucket(a) => a.free(addr, size),
            ShadowAlloc::Buddy(a) => a.free(addr, size),
        }
    }

    fn available(&self, size: PageSize) -> u64 {
        match self {
            ShadowAlloc::Bucket(a) => a.available(size),
            ShadowAlloc::Buddy(a) => a.available(size),
        }
    }
}

/// A deferred inter-processor TLB shootdown: the invalidation a kernel
/// service applied to the local core's TLB and micro-ITLB that every
/// *other* core must replay before the mapping change is globally safe.
///
/// The uniprocessor paper never needed these; they are the cost the
/// multi-core extension measures. The kernel queues one request per
/// local invalidation and the machine drains the queue on every kernel
/// exit, applying it to the remote cores and charging
/// [`KernelCosts::shootdown_ipi`] per remote core notified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShootdownRequest {
    /// Invalidate every replaceable entry (context switch).
    All,
    /// Invalidate entries overlapping `[vpn, vpn + pages)` (remap,
    /// demotion, recoloring, whole-superpage pageout).
    Range {
        /// First virtual page of the shot-down range.
        vpn: Vpn,
        /// Base pages in the range.
        pages: u64,
    },
}

/// Software cost constants (CPU cycles) for kernel services, calibrated
/// against the paper's §3.3 measurements — see each field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelCosts {
    /// Trap + syscall entry/exit for `remap`/`sbrk`/`mmap`-style calls.
    pub syscall_overhead: Cycles,
    /// Bookkeeping per page mapped (frame allocation, PTE setup beyond
    /// the charged memory writes).
    pub map_page_overhead: Cycles,
    /// Bookkeeping per page remapped (shadow index arithmetic, loop
    /// overhead). With the control-register write and HPT update this
    /// lands near the paper's ~145 non-flush cycles per page (§3.3).
    pub remap_page_overhead: Cycles,
    /// Per-superpage shootdown/allocation overhead.
    pub per_superpage_overhead: Cycles,
    /// The flush instruction issued for each line slot of a flushed page;
    /// 128 lines × 10 ≈ 1280 plus writeback traffic reproduces the
    /// paper's ~1400 cycles per 4 KB page (§3.3).
    pub flush_line: Cycles,
    /// TLB miss trap entry/exit (the handler's memory probes are charged
    /// separately, through the cache).
    pub tlb_trap_overhead: Cycles,
    /// Handler instructions per hashed-page-table probe.
    pub tlb_probe_instructions: Cycles,
    /// Instructions to build and insert the TLB entry.
    pub tlb_insert: Cycles,
    /// Software cost of fielding a shadow page fault (§4's parity-style
    /// delivery plus kernel dispatch).
    pub page_fault_overhead: Cycles,
    /// Per-word software overhead of the kernel page-copy loop (load,
    /// store, increment, branch) — with the memory traffic this lands on
    /// the paper's ≈11 400 cycles per warm 4 KB page copy (§3.3).
    pub copy_word_overhead: Cycles,
    /// Scheduler + state save/restore cost of a context switch (the TLB
    /// refill cost is what the multiprogramming experiment measures, on
    /// top of this).
    pub context_switch: Cycles,
    /// Inter-processor TLB shootdown, charged per remote core per
    /// request: the initiating core's IPI send, the remote trap
    /// entry/exit, and the invalidation itself. Calibrated near a
    /// cross-call round trip on §3-era hardware.
    pub shootdown_ipi: Cycles,
}

impl KernelCosts {
    /// The calibrated defaults.
    #[must_use]
    pub const fn paper_default() -> Self {
        KernelCosts {
            syscall_overhead: Cycles::new(150),
            map_page_overhead: Cycles::new(30),
            remap_page_overhead: Cycles::new(40),
            per_superpage_overhead: Cycles::new(60),
            flush_line: Cycles::new(10),
            tlb_trap_overhead: Cycles::new(30),
            tlb_probe_instructions: Cycles::new(8),
            tlb_insert: Cycles::new(8),
            page_fault_overhead: Cycles::new(400),
            copy_word_overhead: Cycles::new(2),
            context_switch: Cycles::new(800),
            shootdown_ipi: Cycles::new(400),
        }
    }
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts::paper_default()
    }
}

/// `sbrk()` pre-allocation behaviour (§2.3: the modified `sbrk`
/// "pre-allocates a large region, from which it satisfies subsequent
/// small requests"; §3.1 gives vortex's 8 MB-then-2 MB settings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SbrkConfig {
    /// Bytes mapped by the first extension.
    pub initial_chunk: u64,
    /// Bytes mapped by subsequent extensions.
    pub later_chunk: u64,
}

impl SbrkConfig {
    /// Vortex's configuration from §3.1.
    #[must_use]
    pub const fn paper_default() -> Self {
        SbrkConfig {
            initial_chunk: 8 << 20,
            later_chunk: 2 << 20,
        }
    }
}

impl Default for SbrkConfig {
    fn default() -> Self {
        SbrkConfig::paper_default()
    }
}

/// Online superpage promotion policy (§5's Romer et al., adapted: the
/// paper notes such a mechanism "would be useful in the kernel of a
/// machine exploiting shadow memory, although the specific parameters
/// would need to be tweaked to reflect the reduced cost" of shadow
/// promotion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PromotionConfig {
    /// TLB misses on 4 KB pages of an aligned candidate region before
    /// the kernel promotes it. Shadow promotion is cheap (no copies), so
    /// the threshold can be far lower than Romer's copy-based one.
    pub miss_threshold: u64,
    /// Candidate region granularity (a superpage size).
    pub region: PageSize,
}

impl Default for PromotionConfig {
    fn default() -> Self {
        PromotionConfig {
            miss_threshold: 32,
            region: PageSize::Size256K,
        }
    }
}

/// Kernel configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelConfig {
    /// Whether `remap()` actually creates shadow superpages. `false`
    /// models the baseline OS: the syscall becomes a cheap no-op and all
    /// pages stay 4 KB.
    pub use_superpages: bool,
    /// Shadow allocator choice.
    pub shadow_alloc: ShadowAllocPolicy,
    /// `sbrk` pre-allocation.
    pub sbrk: SbrkConfig,
    /// Frame hand-out order (scrambled reproduces long-running-system
    /// fragmentation; the mechanism's whole point is tolerating it).
    pub frame_order: FrameOrder,
    /// Cost constants.
    pub costs: KernelCosts,
    /// Paging policy for superpages.
    pub paging: PagingPolicy,
    /// Swap I/O costs.
    pub swap_costs: SwapCosts,
    /// §5 extension: online superpage promotion — the kernel watches
    /// per-region TLB miss counts and promotes hot regions to shadow
    /// superpages automatically, without any `remap()` calls from the
    /// program. `None` (the paper's setup) promotes only on request.
    pub promotion: Option<PromotionConfig>,
    /// §4 extension: route *every* mapping through shadow memory (for
    /// machines where all addressable physical memory is installed, the
    /// paper suggests making all virtual accesses use shadow addresses).
    /// Ordinary 4 KB mappings then also translate through the MTLB;
    /// superpage promotion is disabled (every page is already shadowed).
    pub all_shadow: bool,
    /// Hashed-page-table capacity multiplier (power of two). The
    /// multi-core machine passes its core count rounded up so N
    /// co-resident working sets fit in the shared table; `1` is the
    /// paper's 16 K-bucket geometry.
    pub hpt_scale: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            use_superpages: true,
            shadow_alloc: ShadowAllocPolicy::default(),
            sbrk: SbrkConfig::default(),
            frame_order: FrameOrder::Scrambled { seed: 0x5eed },
            costs: KernelCosts::default(),
            paging: PagingPolicy::default(),
            swap_costs: SwapCosts::default(),
            promotion: None,
            all_shadow: false,
            hpt_scale: 1,
        }
    }
}

/// Kernel event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Software TLB miss handler invocations.
    pub tlb_miss_handler_calls: u64,
    /// `remap` syscalls serviced.
    pub remaps: u64,
    /// Superpages created.
    pub superpages_created: u64,
    /// Base pages remapped into superpages.
    pub pages_remapped: u64,
    /// `sbrk` syscalls serviced.
    pub sbrk_calls: u64,
    /// Shadow page faults serviced (swap-ins).
    pub shadow_faults_serviced: u64,
    /// Base pages swapped out.
    pub pages_swapped_out: u64,
    /// Base pages swapped in.
    pub pages_swapped_in: u64,
    /// CLOCK hand advances.
    pub clock_sweeps: u64,
    /// Pages recolored via shadow remapping (§6 extension).
    pub pages_recolored: u64,
    /// Superpages created by the online promotion policy (§5 extension).
    pub auto_promotions: u64,
    /// Processes created beyond the initial one.
    pub processes_spawned: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// CPU cycles charged by successful TLB miss handler invocations.
    /// The cycle-attribution auditor reconciles this against the
    /// machine's `tlb_miss` time bucket.
    pub tlb_miss_cycles: Cycles,
    /// CPU cycles charged by successful shadow-fault service (audited
    /// against the `fault` time bucket).
    pub fault_cycles: Cycles,
    /// CPU cycles charged by explicit kernel services — boot, map,
    /// remap, sbrk, swap control, demote, recolor, context switch
    /// (audited against the `kernel` time bucket). Nested internal
    /// calls (e.g. `sbrk` → remap) are counted once, at the public
    /// entry point.
    pub service_cycles: Cycles,
    /// Remote-core invalidations delivered (one per shootdown request
    /// per remote core). Zero on a 1-core machine.
    pub shootdowns: u64,
    /// CPU cycles charged for those deliveries, separate from
    /// `service_cycles` (audited against the `kernel` time bucket as
    /// its own term).
    pub shootdown_cycles: Cycles,
}

/// Result of a `remap` syscall.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RemapReport {
    /// Each created superpage: virtual base and size.
    pub superpages: Vec<(VirtAddr, PageSize)>,
    /// Base pages moved behind shadow superpages.
    pub pages_remapped: u64,
    /// Pages left as 4 KB because they fell before the first aligned
    /// boundary or in the sub-16 KB tail (§2.4 skips them).
    pub pages_skipped: u64,
    /// Cache line slots examined by the per-page flushes.
    pub lines_flushed: u64,
    /// Dirty lines written back by those flushes.
    pub flush_writebacks: u64,
    /// Cycles spent flushing (the dominant §3.3 cost).
    pub flush_cycles: Cycles,
    /// All other cycles (allocation, mapping setup, shootdowns).
    pub other_cycles: Cycles,
}

impl RemapReport {
    /// Total cycles consumed by the syscall.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        self.flush_cycles + self.other_cycles
    }
}

/// Result of explicitly swapping a superpage out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwapOutReport {
    /// Base pages in the superpage.
    pub pages_total: u64,
    /// Pages actually written to swap.
    pub pages_written: u64,
    /// Cycles consumed.
    pub cycles: Cycles,
}

/// One simulated process: its address space and heap state. Processes
/// live in disjoint virtual windows (a single-address-space
/// organisation), so their translations compete for TLB capacity exactly
/// as multiprogrammed workloads do.
#[derive(Debug, Clone)]
struct Process {
    aspace: AddressSpace,
    heap_brk: VirtAddr,
    heap_mapped_end: VirtAddr,
    heap_extended: bool,
}

impl Process {
    /// Size of each process's private virtual window.
    const WINDOW: u64 = 1 << 32;

    fn new(pid: usize) -> Self {
        let heap = UserLayout::HEAP_BASE + pid as u64 * Self::WINDOW;
        Process {
            aspace: AddressSpace::new(),
            heap_brk: heap,
            heap_mapped_end: heap,
            heap_extended: false,
        }
    }
}

/// The simulated kernel. See the module-level documentation for the modelled behaviour.
#[derive(Debug, Clone)]
pub struct Kernel {
    layout: KernelLayout,
    mmc_config: MmcConfig,
    config: KernelConfig,
    hpt: HashedPageTable,
    frames: FrameAllocator,
    shadow: ShadowAlloc,
    processes: Vec<Process>,
    current: usize,
    /// Shadow regions by base shadow-page index, for reverse lookup.
    shadow_regions: BTreeMap<u64, SuperpageInfo>,
    swap: SwapDevice,
    /// Individual shadow base pages reserved for recoloring, by color.
    recolor_pool: BTreeMap<u64, Vec<Spn>>,
    /// Individual shadow base pages for all-shadow 4 KB mappings.
    shadow_page_pool: Vec<Spn>,
    /// Per-candidate-region TLB miss counters for online promotion.
    promo_counters: BTreeMap<u64, u64>,
    /// CLOCK ring of resident shadow page indices.
    resident: Vec<u64>,
    clock_hand: usize,
    /// Shootdowns queued by local invalidations, awaiting delivery to
    /// the other cores (drained by the machine on kernel exit).
    pending_shootdowns: Vec<ShootdownRequest>,
    stats: KernelStats,
}

impl Kernel {
    /// Creates a kernel for a machine with the given MMC geometry.
    #[must_use]
    pub fn new(mmc_config: MmcConfig, config: KernelConfig) -> Self {
        let layout = KernelLayout::standard_scaled(&mmc_config, config.hpt_scale);
        let first = layout.first_user_frame();
        let total = mmc_config.installed_dram / PAGE_SIZE - first;
        let shadow = match &config.shadow_alloc {
            ShadowAllocPolicy::Bucket(p) => {
                ShadowAlloc::Bucket(BucketAllocator::new(mmc_config.shadow, p))
            }
            ShadowAllocPolicy::Buddy => ShadowAlloc::Buddy(BuddyAllocator::new(mmc_config.shadow)),
        };
        Kernel {
            layout,
            mmc_config,
            hpt: HashedPageTable::new(layout.hpt_config()),
            frames: FrameAllocator::new(first, total, config.frame_order),
            shadow,
            config,
            processes: vec![Process::new(0)],
            current: 0,
            shadow_regions: BTreeMap::new(),
            swap: SwapDevice::new(),
            recolor_pool: BTreeMap::new(),
            shadow_page_pool: Vec::new(),
            promo_counters: BTreeMap::new(),
            resident: Vec::new(),
            clock_hand: 0,
            pending_shootdowns: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    fn proc(&self) -> &Process {
        &self.processes[self.current]
    }

    fn proc_mut(&mut self) -> &mut Process {
        &mut self.processes[self.current]
    }

    /// Creates a new process (an `exec`-style fresh address space in its
    /// own virtual window) and returns its pid. The caller maps regions
    /// and runs after [`switch_process`](Self::switch_process)ing to it.
    pub fn spawn_process(&mut self) -> usize {
        let pid = self.processes.len();
        self.processes.push(Process::new(pid));
        self.stats.processes_spawned = self.stats.processes_spawned.saturating_add(1);
        pid
    }

    /// Context switch (the paper's kernel schedules processes, §3.2):
    /// purges the replaceable CPU TLB entries and the micro-ITLB — the
    /// locked kernel block entry survives — and charges the scheduler's
    /// software cost. Returns cycles.
    ///
    /// # Errors
    ///
    /// [`Fault::NoSuchProcess`] on an unknown pid; no state changes and
    /// no cycles are charged.
    pub fn switch_process(&mut self, ctx: &mut KernelCtx<'_>, pid: usize) -> Result<Cycles, Fault> {
        if pid >= self.processes.len() {
            return Err(Fault::NoSuchProcess { pid: pid as u64 });
        }
        self.current = pid;
        ctx.tlb.purge_all();
        ctx.itlb.purge();
        self.queue_shootdown(ShootdownRequest::All);
        self.stats.context_switches = self.stats.context_switches.saturating_add(1);
        let cycles = self.config.costs.context_switch;
        self.stats.service_cycles += cycles;
        Ok(cycles)
    }

    /// Re-points the kernel's notion of the running process without a
    /// context switch — used when the machine banks one core's state out
    /// and another's in: each core is already running its process, so no
    /// purge, shootdown, or cycle cost applies.
    ///
    /// The pid must come from [`spawn_process`](Self::spawn_process);
    /// an unknown pid is a host-side bug, not a simulated fault.
    pub fn set_current_process(&mut self, pid: usize) {
        assert!(pid < self.processes.len(), "no such process {pid}");
        self.current = pid;
    }

    /// The locked kernel block mapping [`boot`](Self::boot) installs,
    /// recomputed for secondary cores: every core's TLB pins the same
    /// identity mapping of the reserved low-memory region.
    #[must_use]
    pub fn kernel_block_entry(&self) -> Option<TlbEntry> {
        let size = PageSize::from_bytes(self.layout.reserved_bytes)?;
        TlbEntry::new(
            Vpn::new(0),
            Ppn::new(0),
            size,
            Prot::RW | Prot::EXEC | Prot::SUPERVISOR_ONLY,
        )
    }

    /// Queues a TLB shootdown request for delivery to remote cores.
    ///
    /// Every mapping mutation that can invalidate a remote core's TLB
    /// entry must funnel through here (the shootdown-completeness lint
    /// checks reachability); the machine drains the queue via
    /// [`take_shootdowns`](Self::take_shootdowns) after each service.
    fn queue_shootdown(&mut self, request: ShootdownRequest) {
        self.pending_shootdowns.push(request);
    }

    /// Whether any shootdown requests await delivery.
    #[must_use]
    pub fn has_pending_shootdowns(&self) -> bool {
        !self.pending_shootdowns.is_empty()
    }

    /// Drains the queued shootdown requests. The caller (the machine)
    /// applies them to every remote core and reports the delivery via
    /// [`note_shootdown`](Self::note_shootdown); a 1-core machine drains
    /// and drops them at zero cost.
    pub fn take_shootdowns(&mut self) -> Vec<ShootdownRequest> {
        core::mem::take(&mut self.pending_shootdowns)
    }

    /// Accounts for delivering `requests` shootdown requests to
    /// `remote_cores` cores each, returning the CPU cycles to charge
    /// (one [`KernelCosts::shootdown_ipi`] per delivery). Kept out of
    /// `service_cycles` so the cycle auditor can reconcile the two
    /// kernel-time sources independently.
    pub fn note_shootdown(&mut self, requests: u64, remote_cores: u64) -> Cycles {
        let deliveries = requests * remote_cores;
        self.stats.shootdowns = self.stats.shootdowns.saturating_add(deliveries);
        let cycles = self.config.costs.shootdown_ipi * deliveries;
        self.stats.shootdown_cycles += cycles;
        cycles
    }

    /// The running process id.
    #[must_use]
    pub fn current_process(&self) -> usize {
        self.current
    }

    /// The base of a process's private heap window.
    #[must_use]
    pub fn heap_base(pid: usize) -> VirtAddr {
        UserLayout::HEAP_BASE + pid as u64 * Process::WINDOW
    }

    /// The physical layout in use.
    #[must_use]
    pub fn layout(&self) -> KernelLayout {
        self.layout
    }

    /// The current process's address space (for assertions and reports).
    #[must_use]
    pub fn aspace(&self) -> &AddressSpace {
        &self.proc().aspace
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The swap device (for traffic reports).
    #[must_use]
    pub fn swap(&self) -> &SwapDevice {
        &self.swap
    }

    /// Free user frames remaining.
    #[must_use]
    pub fn free_frames(&self) -> u64 {
        self.frames.free_frames()
    }

    /// Shadow regions of `size` still available.
    #[must_use]
    pub fn shadow_available(&self, size: PageSize) -> u64 {
        self.shadow.available(size)
    }

    /// Boot-time setup: installs the locked kernel block mapping
    /// (§3.2's non-replaceable block TLB entry) covering the reserved
    /// low-memory region, identity-mapped and supervisor-only.
    pub fn boot(&mut self, ctx: &mut KernelCtx<'_>) -> Cycles {
        let size = PageSize::from_bytes(self.layout.reserved_bytes)
            .expect("reserved region is a block-mappable size");
        let entry = TlbEntry::new(
            Vpn::new(0),
            Ppn::new(0),
            size,
            Prot::RW | Prot::EXEC | Prot::SUPERVISOR_ONLY,
        )
        .expect("identity block mapping is aligned");
        ctx.tlb.insert_locked(entry);
        // A token boot cost: building tables, zeroing, device setup.
        let cycles = Cycles::new(10_000);
        self.stats.service_cycles += cycles;
        cycles
    }

    fn timed<'c>(&self, ctx: &'c mut KernelCtx<'_>) -> TimedMem<'c> {
        TimedMem::new(&mut *ctx.cache, &mut *ctx.mmc, &mut *ctx.mem, ctx.ratio)
    }

    fn alloc_frame(&mut self, ctx: &mut KernelCtx<'_>) -> (Ppn, Cycles) {
        if let Some(f) = self.frames.alloc() {
            return (f, Cycles::ZERO);
        }
        // Physical memory exhausted: run the CLOCK hand until a frame
        // frees up.
        let mut cycles = Cycles::ZERO;
        loop {
            cycles += self.clock_evict_one(ctx);
            if let Some(f) = self.frames.alloc() {
                return (f, cycles);
            }
        }
    }

    /// Takes one shadow base page for an all-shadow 4 KB mapping,
    /// provisioning 16 KB at a time.
    fn take_shadow_page(&mut self) -> Spn {
        if let Some(p) = self.shadow_page_pool.pop() {
            return p;
        }
        let region = self
            .shadow
            .alloc(PageSize::Size16K)
            .expect("shadow space exhausted in all-shadow mode");
        // Pool pages 0..3 and hand out page 3 directly — the same order a
        // push-all-then-pop sequence would produce.
        for i in 0..3u64 {
            self.shadow_page_pool.push(region.spn().offset(i));
        }
        region.spn().offset(3)
    }

    /// Maps `[start, start+len)` with fresh zeroed frames at 4 KB
    /// granularity (the `mmap`-like primitive workloads use for text,
    /// data and explicit buffers).
    ///
    /// # Panics
    ///
    /// Panics when `start` is not page-aligned or the range intersects an
    /// existing mapping.
    pub fn map_region(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        start: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> Cycles {
        let cycles = self.map_region_inner(ctx, start, len, prot);
        self.stats.service_cycles += cycles;
        cycles
    }

    fn map_region_inner(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        start: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> Cycles {
        assert!(
            start.is_aligned(PAGE_SIZE),
            "map_region start must be page-aligned"
        );
        assert!(len > 0, "map_region of zero bytes");
        assert!(
            start.get() >= self.layout.reserved_bytes,
            "user mappings must lie above the locked kernel block window              (first {} bytes)",
            self.layout.reserved_bytes
        );
        let pages = len.div_ceil(PAGE_SIZE);
        let mut cycles = self.config.costs.syscall_overhead;
        for i in 0..pages {
            let vpn = start.vpn().offset(i);
            let (frame, c) = self.alloc_frame(ctx);
            cycles += c;
            ctx.mem.zero_page(frame);
            // §4 all-shadow mode: the CPU-visible frame is a shadow page
            // remapped by the MTLB even for ordinary 4 KB mappings.
            let (pfn, backing) = if self.config.all_shadow {
                let shadow_spn = self.take_shadow_page();
                let index = self.mmc_config.shadow.page_index(shadow_spn.base_addr());
                let mmc_cycles = ctx
                    .mmc
                    .set_mapping(index, ShadowPte::present(frame), ctx.mem);
                cycles += ctx.ratio.device_to_cpu(mmc_cycles);
                let sp = SuperpageInfo {
                    vpn_base: vpn,
                    size: PageSize::Base4K,
                    shadow_base: shadow_spn,
                };
                self.shadow_regions.insert(index, sp);
                self.resident.push(index);
                (shadow_spn.bus(), Backing::Shadow { shadow_spn })
            } else {
                (frame, Backing::Real(frame))
            };
            let mut tm = self.timed(ctx);
            self.hpt
                .insert(
                    Pte {
                        vpn,
                        pfn,
                        size: PageSize::Base4K,
                        prot,
                    },
                    &mut tm,
                )
                .expect("hashed page table exhausted");
            cycles += tm.take_cycles();
            self.proc_mut().aspace.map_page(
                vpn,
                PageInfo {
                    backing,
                    prot,
                    mapping_size: PageSize::Base4K,
                },
            );
            cycles += self.config.costs.map_page_overhead;
        }
        cycles
    }

    /// The `remap()` syscall (§2.3–2.4): walks `[start, start+len)`
    /// creating maximally-sized shadow-backed superpages from the
    /// existing (discontiguous) 4 KB mappings.
    ///
    /// On a kernel configured with `use_superpages: false` this is a
    /// cheap no-op, which is how the baseline machine runs the identical
    /// workload binaries.
    pub fn remap(&mut self, ctx: &mut KernelCtx<'_>, start: VirtAddr, len: u64) -> RemapReport {
        let report = self.remap_inner(ctx, start, len);
        self.stats.service_cycles += report.total_cycles();
        report
    }

    fn remap_inner(&mut self, ctx: &mut KernelCtx<'_>, start: VirtAddr, len: u64) -> RemapReport {
        let mut report = RemapReport {
            other_cycles: self.config.costs.syscall_overhead,
            ..RemapReport::default()
        };
        self.stats.remaps = self.stats.remaps.saturating_add(1);
        if !self.config.use_superpages || len == 0 {
            return report;
        }
        let end = start + len;
        // Smallest superpage-aligned address at or above start (§2.4);
        // skipped head pages stay 4 KB.
        let aligned_start = start.align_up(PageSize::Size16K.bytes());
        report.pages_skipped += aligned_start.min(end).offset_from(start) / PAGE_SIZE;

        let mut va = aligned_start;
        while va + PageSize::Size16K.bytes() <= end {
            match self.pick_superpage(va, end.offset_from(va)) {
                Some(size) => {
                    let (sp_cycles, flush) = self.create_superpage(ctx, va, size, &mut report);
                    report.other_cycles += sp_cycles;
                    report.flush_cycles += flush;
                    va += size.bytes();
                }
                None => {
                    // Hole, foreign backing, mixed protection or shadow
                    // exhaustion at even 16 KB: leave this page alone.
                    report.pages_skipped += 1;
                    va += PAGE_SIZE;
                }
            }
        }
        // Sub-16 KB tail.
        report.pages_skipped += (end.offset_from(va.min(end))) / PAGE_SIZE;
        report
    }

    /// Chooses the largest usable superpage size at `va` given
    /// `remaining` bytes, per the §2.4 walk: virtual alignment, fit,
    /// uniform 4 KB real mappings underneath, and shadow availability.
    fn pick_superpage(&self, va: VirtAddr, remaining: u64) -> Option<PageSize> {
        for size in PageSize::SUPERPAGES.iter().copied().rev() {
            if size.bytes() > remaining || !va.is_aligned(size.bytes()) {
                continue;
            }
            if self.shadow.available(size) == 0 {
                continue;
            }
            if self.region_promotable(va.vpn(), size) {
                return Some(size);
            }
        }
        None
    }

    /// All pages present, real-backed, and of uniform protection (the
    /// paper requires identical protection across a superpage, §2.1).
    fn region_promotable(&self, vpn_base: Vpn, size: PageSize) -> bool {
        let pages = size.base_pages();
        let mut prot: Option<Prot> = None;
        let mut count = 0;
        for (_, info) in self.proc().aspace.pages_in(vpn_base, pages) {
            count += 1;
            if !matches!(info.backing, Backing::Real(_)) {
                return false;
            }
            match prot {
                None => prot = Some(info.prot),
                Some(p) if p == info.prot => {}
                Some(_) => return false,
            }
        }
        count == pages
    }

    fn create_superpage(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        va: VirtAddr,
        size: PageSize,
        report: &mut RemapReport,
    ) -> (Cycles, Cycles) {
        let mut cycles = self.config.costs.per_superpage_overhead;
        let mut flush_cycles = Cycles::ZERO;
        let shadow_base = self
            .shadow
            .alloc(size)
            .expect("availability was checked in pick_superpage");
        let shadow_base_spn = shadow_base.spn();
        let base_index = self.mmc_config.shadow.page_index(shadow_base);
        let vpn_base = va.vpn();
        let pages = size.base_pages();

        // Shoot down stale CPU TLB entries for the range (§2.3).
        ctx.tlb.purge_range(vpn_base, pages);
        ctx.itlb.purge();
        self.queue_shootdown(ShootdownRequest::Range {
            vpn: vpn_base,
            pages,
        });

        let prot = self
            .proc()
            .aspace
            .page(vpn_base)
            .expect("promotable region is mapped")
            .prot;

        for i in 0..pages {
            let vpn = vpn_base.offset(i);
            let info = *self
                .proc()
                .aspace
                .page(vpn)
                .expect("promotable region is mapped");
            let Backing::Real(frame) = info.backing else {
                unreachable!("region_promotable checked real backing");
            };

            // Flush the page's cache lines: the tags are about to change
            // from real to shadow addresses (§2.3).
            let out = ctx.cache.flush_page(vpn, frame);
            report.lines_flushed = report.lines_flushed.saturating_add(out.lines_examined);
            flush_cycles += self.config.costs.flush_line * out.lines_examined;
            for wb in &out.writebacks {
                report.flush_writebacks = report.flush_writebacks.saturating_add(1);
                let resp = ctx
                    .mmc
                    .bus_access(*wb, BusOp::Writeback, ctx.mem)
                    .expect("flush writeback cannot fault");
                flush_cycles += ctx.ratio.device_to_cpu(resp.mmc_cycles);
            }

            // Point shadow page at the (discontiguous) real frame via the
            // MMC control register (§2.4).
            let mmc_cycles =
                ctx.mmc
                    .set_mapping(base_index + i, ShadowPte::present(frame), ctx.mem);
            cycles += ctx.ratio.device_to_cpu(mmc_cycles);

            // Re-point the PTE at the shadow frame with the superpage size.
            let mut tm = self.timed(ctx);
            self.hpt
                .insert(
                    Pte {
                        vpn,
                        pfn: shadow_base_spn.offset(i).bus(),
                        size,
                        prot,
                    },
                    &mut tm,
                )
                .expect("hashed page table exhausted");
            cycles += tm.take_cycles();

            self.proc_mut().aspace.remap_page(
                vpn,
                PageInfo {
                    backing: Backing::Shadow {
                        shadow_spn: shadow_base_spn.offset(i),
                    },
                    prot,
                    mapping_size: size,
                },
            );
            self.resident.push(base_index + i);
            cycles += self.config.costs.remap_page_overhead;
            report.pages_remapped = report.pages_remapped.saturating_add(1);
        }

        let sp = SuperpageInfo {
            vpn_base,
            size,
            shadow_base: shadow_base_spn,
        };
        self.proc_mut().aspace.add_superpage(sp);
        self.shadow_regions.insert(base_index, sp);
        report.superpages.push((va, size));
        self.stats.superpages_created = self.stats.superpages_created.saturating_add(1);
        self.stats.pages_remapped = self.stats.pages_remapped.saturating_add(pages);
        (cycles, flush_cycles)
    }

    /// The modified `sbrk()` (§2.3): extends the heap, pre-allocating
    /// large chunks and promoting them to shadow superpages.
    ///
    /// Returns the previous break (the address of the new allocation)
    /// and the cycles consumed.
    pub fn sbrk(&mut self, ctx: &mut KernelCtx<'_>, increment: u64) -> (VirtAddr, Cycles) {
        self.stats.sbrk_calls = self.stats.sbrk_calls.saturating_add(1);
        let old_brk = self.proc().heap_brk;
        let mut cycles = self.config.costs.syscall_overhead;
        let new_brk = old_brk + increment;
        if new_brk > self.proc().heap_mapped_end {
            let need = new_brk.offset_from(self.proc().heap_mapped_end);
            let chunk_cfg = if self.proc().heap_extended {
                self.config.sbrk.later_chunk
            } else {
                self.config.sbrk.initial_chunk
            };
            let chunk = need.max(chunk_cfg).div_ceil(PAGE_SIZE) * PAGE_SIZE;
            let base = self.proc().heap_mapped_end;
            cycles += self.map_region_inner(ctx, base, chunk, Prot::RW);
            if self.config.use_superpages {
                let report = self.remap_inner(ctx, base, chunk);
                cycles += report.total_cycles();
            }
            let p = self.proc_mut();
            p.heap_mapped_end = base + chunk;
            p.heap_extended = true;
        }
        self.proc_mut().heap_brk = new_brk;
        self.stats.service_cycles += cycles;
        (old_brk, cycles)
    }

    /// Current process's heap break.
    #[must_use]
    pub fn brk(&self) -> VirtAddr {
        self.proc().heap_brk
    }

    /// The software TLB miss handler (§3.2): trap, probe the hashed page
    /// table through the cache, insert the (super)page entry.
    ///
    /// # Errors
    ///
    /// [`Fault::PageNotMapped`] when no PTE exists.
    pub fn handle_tlb_miss(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        va: VirtAddr,
    ) -> Result<(TlbEntry, Cycles), Fault> {
        self.stats.tlb_miss_handler_calls = self.stats.tlb_miss_handler_calls.saturating_add(1);
        let mut cycles = self.config.costs.tlb_trap_overhead;
        let mut tm = self.timed(ctx);
        let lookup = self.hpt.lookup(va.vpn(), &mut tm);
        cycles += tm.take_cycles();
        cycles += self.config.costs.tlb_probe_instructions * u64::from(lookup.probes);
        let Some(mut pte) = lookup.pte else {
            return Err(Fault::PageNotMapped { va });
        };
        // §5 extension: online promotion. Misses on 4 KB pages charge a
        // per-region counter; crossing the threshold promotes the
        // aligned region to a shadow superpage and re-walks the table.
        if let Some(promo) = self.config.promotion {
            if self.config.use_superpages && pte.size == PageSize::Base4K {
                let region_base = va.vpn().align_down_to(promo.region).index();
                let count = self.promo_counters.entry(region_base).or_insert(0);
                *count += 1;
                if *count >= promo.miss_threshold {
                    self.promo_counters.remove(&region_base);
                    let report = self.remap_inner(
                        ctx,
                        Vpn::new(region_base).base_addr(),
                        promo.region.bytes(),
                    );
                    if !report.superpages.is_empty() {
                        self.stats.auto_promotions = self
                            .stats
                            .auto_promotions
                            .saturating_add(report.superpages.len() as u64);
                        cycles += report.total_cycles();
                        // Re-walk: the PTE now names a superpage.
                        let mut tm = self.timed(ctx);
                        let again = self.hpt.lookup(va.vpn(), &mut tm);
                        cycles += tm.take_cycles();
                        cycles +=
                            self.config.costs.tlb_probe_instructions * u64::from(again.probes);
                        pte = again.pte.expect("page was mapped a moment ago");
                    }
                }
            }
        }
        let entry = TlbEntry::new(
            pte.mapping_vpn_base(),
            pte.mapping_pfn_base(),
            pte.size,
            pte.prot,
        )
        .expect("PTEs always describe aligned mappings");
        let contig = if ctx.tlb.wants_contiguity() {
            self.contiguity_of(&entry)
        } else {
            ContigInfo::for_entry(&entry)
        };
        ctx.tlb.fill(entry, &contig);
        cycles += self.config.costs.tlb_insert;
        self.stats.tlb_miss_cycles += cycles;
        Ok((entry, cycles))
    }

    /// Mapping-contiguity metadata for a miss-handler refill: the
    /// maximal run of virtually- and physically-contiguous base pages
    /// with uniform protection containing `entry`, bounded to the
    /// aligned [`CONTIG_SCAN_WINDOW`]-page window around it.
    ///
    /// Costs no simulated cycles: a hardware coalescing TLB reads the
    /// neighbouring PTEs from the same cache line the walk already
    /// fetched (Ban et al., arXiv:1908.08774), so the metadata is free
    /// at fill time; only schemes that opt in via
    /// [`TranslationScheme::wants_contiguity`] trigger the host-side
    /// scan at all.
    fn contiguity_of(&self, entry: &TlbEntry) -> ContigInfo {
        if entry.size() != PageSize::Base4K {
            return ContigInfo::for_entry(entry);
        }
        let anchor = entry.vpn_base().index();
        let window_base = anchor & !(CONTIG_SCAN_WINDOW - 1);
        let window_end = window_base + CONTIG_SCAN_WINDOW;
        // The CPU-visible (bus) frame of a neighbouring base page, if it
        // is mapped with the same protection at base-page granularity.
        let frame_of = |p: u64| -> Option<u64> {
            let info = self.proc().aspace.page(Vpn::new(p))?;
            if info.mapping_size != PageSize::Base4K || info.prot != entry.prot() {
                return None;
            }
            match info.backing {
                Backing::Real(f) => Some(f.index()),
                Backing::Shadow { shadow_spn } => {
                    let bus = shadow_spn.bus();
                    Some(bus.index())
                }
            }
        };
        let anchor_frame = entry.pfn_base().index();
        let mut lo = anchor;
        let mut lo_frame = anchor_frame;
        while lo > window_base {
            match frame_of(lo - 1) {
                Some(f) if f + 1 == lo_frame => {
                    lo -= 1;
                    lo_frame = f;
                }
                _ => break,
            }
        }
        let mut hi = anchor;
        let mut hi_frame = anchor_frame;
        while hi + 1 < window_end {
            match frame_of(hi + 1) {
                Some(f) if f == hi_frame + 1 => {
                    hi += 1;
                    hi_frame = f;
                }
                _ => break,
            }
        }
        ContigInfo {
            base: Vpn::new(lo),
            pfn: Ppn::new(lo_frame),
            pages: hi - lo + 1,
        }
    }

    /// Services a shadow page fault (§4): the MMC found an invalid
    /// mapping for a swapped-out base page. Pages it (or, under the
    /// conventional policy, its whole superpage) back in.
    ///
    /// # Errors
    ///
    /// Returns the fault unchanged when the shadow page belongs to no
    /// known superpage (a wild access).
    pub fn handle_shadow_fault(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        shadow_pa: ShadowAddr,
    ) -> Result<Cycles, Fault> {
        let index = self.mmc_config.shadow.page_index(shadow_pa);
        let Some(region) = self.region_of_index(index) else {
            return Err(Fault::ShadowPageFault { shadow: shadow_pa });
        };
        self.stats.shadow_faults_serviced = self.stats.shadow_faults_serviced.saturating_add(1);
        let mut cycles = self.config.costs.page_fault_overhead;
        match self.config.paging {
            PagingPolicy::PerBasePage => {
                cycles += self.swap_in_page(ctx, index);
            }
            PagingPolicy::WholeSuperpage => {
                // Conventional behaviour: the whole superpage comes back.
                let base = self
                    .mmc_config
                    .shadow
                    .page_index(region.shadow_base.base_addr());
                for i in 0..region.size.base_pages() {
                    let idx = base + i;
                    let (pte, c) = ctx.mmc.read_mapping(idx, ctx.mem);
                    cycles += ctx.ratio.device_to_cpu(c);
                    if !pte.valid {
                        cycles += self.swap_in_page(ctx, idx);
                    }
                }
            }
        }
        self.stats.fault_cycles += cycles;
        Ok(cycles)
    }

    fn region_of_index(&self, index: u64) -> Option<SuperpageInfo> {
        self.shadow_regions
            .range(..=index)
            .next_back()
            .map(|(_, sp)| *sp)
            .filter(|sp| {
                index
                    < self
                        .mmc_config
                        .shadow
                        .page_index(sp.shadow_base.base_addr())
                        + sp.size.base_pages()
            })
    }

    fn vpn_of_index(&self, index: u64) -> Option<Vpn> {
        let sp = self.region_of_index(index)?;
        let base = self
            .mmc_config
            .shadow
            .page_index(sp.shadow_base.base_addr());
        Some(sp.vpn_base.offset(index - base))
    }

    fn swap_in_page(&mut self, ctx: &mut KernelCtx<'_>, index: u64) -> Cycles {
        let (frame, mut cycles) = self.alloc_frame(ctx);
        let bytes = self
            .swap
            .read(index)
            .unwrap_or_else(|| vec![0u8; PAGE_SIZE as usize]);
        ctx.mem.write(frame.base_addr(), &bytes);
        cycles += self.config.swap_costs.page_read;
        let mmc_cycles = ctx
            .mmc
            .set_mapping(index, ShadowPte::present(frame), ctx.mem);
        cycles += ctx.ratio.device_to_cpu(mmc_cycles);
        self.resident.push(index);
        self.stats.pages_swapped_in = self.stats.pages_swapped_in.saturating_add(1);
        cycles
    }

    /// Swaps out a single shadow base page: flush its cache lines, write
    /// it to swap if dirty (or never yet copied), invalidate the mapping,
    /// free the frame. The CPU TLB superpage entry **stays in place** —
    /// that is the paper's key §2.5/§4 property.
    fn swap_out_page(&mut self, ctx: &mut KernelCtx<'_>, index: u64, force_write: bool) -> Cycles {
        let vpn = self
            .vpn_of_index(index)
            .expect("resident ring holds only region pages");
        let shadow_ppn = self.mmc_config.shadow.page_addr(index).spn().bus();
        let mut cycles = Cycles::ZERO;

        // Clean the page: flush lines so DRAM is current and the dirty
        // bit is final (§2.5's "cleaning process"). The lines are tagged
        // with the page's *shadow* address.
        let out = ctx.cache.flush_page(vpn, shadow_ppn);
        cycles += self.config.costs.flush_line * out.lines_examined;
        for wb in &out.writebacks {
            let resp = ctx
                .mmc
                .bus_access(*wb, BusOp::Writeback, ctx.mem)
                .expect("flush writeback cannot fault");
            cycles += ctx.ratio.device_to_cpu(resp.mmc_cycles);
        }

        let (pte, c) = ctx.mmc.read_mapping(index, ctx.mem);
        cycles += ctx.ratio.device_to_cpu(c);
        assert!(pte.valid, "swapping out a non-resident page");

        if force_write || pte.dirty || !self.swap.has_copy(index) {
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            ctx.mem.read(pte.rpfn.base_addr(), &mut buf);
            self.swap.write(index, buf);
            cycles += self.config.swap_costs.page_write;
        }

        let mmc_cycles = ctx
            .mmc
            .set_mapping(index, ShadowPte::swapped_out(), ctx.mem);
        cycles += ctx.ratio.device_to_cpu(mmc_cycles);
        self.frames.free(pte.rpfn);
        if let Some(pos) = self.resident.iter().position(|i| *i == index) {
            self.resident.swap_remove(pos);
            if self.clock_hand > pos {
                self.clock_hand -= 1;
            }
        }
        self.stats.pages_swapped_out = self.stats.pages_swapped_out.saturating_add(1);
        cycles
    }

    /// One CLOCK eviction: sweep the resident ring clearing referenced
    /// bits until an unreferenced page is found, then swap it (or, under
    /// the conventional policy, its whole superpage) out.
    fn clock_evict_one(&mut self, ctx: &mut KernelCtx<'_>) -> Cycles {
        assert!(
            !self.resident.is_empty(),
            "out of physical memory with nothing evictable"
        );
        let mut cycles = Cycles::ZERO;
        loop {
            self.stats.clock_sweeps = self.stats.clock_sweeps.saturating_add(1);
            assert!(
                !self.resident.is_empty(),
                "out of physical memory with nothing evictable"
            );
            if self.clock_hand >= self.resident.len() {
                self.clock_hand = 0;
            }
            let index = self.resident[self.clock_hand];
            let (pte, c) = ctx.mmc.read_mapping(index, ctx.mem);
            cycles += ctx.ratio.device_to_cpu(c);
            if pte.referenced {
                let c = ctx.mmc.clear_bits(index, true, false, ctx.mem);
                cycles += ctx.ratio.device_to_cpu(c);
                self.clock_hand = (self.clock_hand + 1) % self.resident.len();
                continue;
            }
            match self.config.paging {
                PagingPolicy::PerBasePage => {
                    cycles += self.swap_out_page(ctx, index, false);
                }
                PagingPolicy::WholeSuperpage => {
                    let sp = self
                        .region_of_index(index)
                        .expect("resident pages belong to regions");
                    cycles += self.swap_out_superpage_inner(ctx, sp).cycles;
                }
            }
            return cycles;
        }
    }

    /// Explicitly swaps out the superpage containing `vpn`, honouring the
    /// configured [`PagingPolicy`]: per-base-page mode writes only dirty
    /// pages; whole-superpage mode writes everything and removes the TLB
    /// entry (the conventional superpage behaviour the paper contrasts).
    ///
    /// # Panics
    ///
    /// Panics when `vpn` is not inside a shadow-backed superpage.
    pub fn swap_out_superpage(&mut self, ctx: &mut KernelCtx<'_>, vpn: Vpn) -> SwapOutReport {
        let sp = *self
            .proc()
            .aspace
            .superpage_of(vpn)
            .unwrap_or_else(|| panic!("vpn {vpn} is not in a shadow superpage"));
        let report = match self.config.paging {
            PagingPolicy::PerBasePage => self.swap_out_dirty_pages(ctx, sp),
            PagingPolicy::WholeSuperpage => {
                // Conventional superpages also lose their TLB mapping.
                ctx.tlb.purge_range(sp.vpn_base, sp.size.base_pages());
                self.queue_shootdown(ShootdownRequest::Range {
                    vpn: sp.vpn_base,
                    pages: sp.size.base_pages(),
                });
                self.swap_out_superpage_inner(ctx, sp)
            }
        };
        self.stats.service_cycles += report.cycles;
        report
    }

    fn swap_out_dirty_pages(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        sp: SuperpageInfo,
    ) -> SwapOutReport {
        let base = self
            .mmc_config
            .shadow
            .page_index(sp.shadow_base.base_addr());
        let mut report = SwapOutReport {
            pages_total: sp.size.base_pages(),
            ..SwapOutReport::default()
        };
        for i in 0..sp.size.base_pages() {
            let index = base + i;
            let (pte, c) = ctx.mmc.read_mapping(index, ctx.mem);
            report.cycles += ctx.ratio.device_to_cpu(c);
            if !pte.valid {
                continue; // already out
            }
            let writes_before = self.swap.writes();
            report.cycles += self.swap_out_page(ctx, index, false);
            report.pages_written += self.swap.writes() - writes_before;
        }
        report
    }

    fn swap_out_superpage_inner(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        sp: SuperpageInfo,
    ) -> SwapOutReport {
        let base = self
            .mmc_config
            .shadow
            .page_index(sp.shadow_base.base_addr());
        let mut report = SwapOutReport {
            pages_total: sp.size.base_pages(),
            ..SwapOutReport::default()
        };
        for i in 0..sp.size.base_pages() {
            let index = base + i;
            let (pte, c) = ctx.mmc.read_mapping(index, ctx.mem);
            report.cycles += ctx.ratio.device_to_cpu(c);
            if !pte.valid {
                continue;
            }
            // No dirty information usable: every page is written.
            report.cycles += self.swap_out_page(ctx, index, true);
            report.pages_written += 1;
        }
        report
    }

    /// Returns the cache color of the bus address currently backing a
    /// mapped page (meaningful on physically-indexed caches).
    ///
    /// # Panics
    ///
    /// Panics when `vpn` is unmapped.
    pub fn page_color(&self, ctx: &KernelCtx<'_>, vpn: Vpn) -> u64 {
        let info = self
            .proc()
            .aspace
            .page(vpn)
            .unwrap_or_else(|| panic!("page_color of unmapped vpn {vpn}"));
        let ppn = match info.backing {
            Backing::Real(f) => f,
            Backing::Shadow { shadow_spn } => shadow_spn.bus(),
        };
        ctx.cache.config().color_of(ppn.base_addr())
    }

    /// No-copy page recoloring (paper §6 / Bershad et al.): gives a
    /// real-backed 4 KB page a *shadow* bus address of the requested
    /// cache color, so a physically-indexed cache places it elsewhere —
    /// without copying a byte. The real frame is untouched; only the
    /// MMC mapping, the PTE and the (purged) TLB entry change.
    ///
    /// Returns the cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics when the page is unmapped, not real-backed, the color is
    /// out of range, or shadow space for the pool is exhausted.
    pub fn recolor_page(&mut self, ctx: &mut KernelCtx<'_>, vpn: Vpn, color: u64) -> Cycles {
        let colors = ctx.cache.config().page_colors();
        assert!(color < colors, "color {color} out of range 0..{colors}");
        let info = *self
            .proc()
            .aspace
            .page(vpn)
            .unwrap_or_else(|| panic!("recolor of unmapped vpn {vpn}"));
        let Backing::Real(frame) = info.backing else {
            panic!("recolor of non-real-backed vpn {vpn}");
        };
        let mut cycles = self.config.costs.syscall_overhead;

        // Find (or provision) a shadow base page of the wanted color.
        // Each 16 KB allocation contributes four consecutive colors, so
        // at most `colors / 4` allocations cover the whole palette.
        let shadow_spn = loop {
            if let Some(p) = self.recolor_pool.get_mut(&color).and_then(Vec::pop) {
                break p;
            }
            let region = self
                .shadow
                .alloc(PageSize::Size16K)
                .expect("shadow space exhausted while recoloring");
            for i in 0..4u64 {
                let addr = region + i * PAGE_SIZE;
                let c = ctx.cache.config().color_of(addr.bus());
                self.recolor_pool.entry(c).or_default().push(addr.spn());
            }
            cycles += self.config.costs.per_superpage_overhead;
        };

        // The page's lines move to new index slots: flush under the old
        // (real) address, shoot down the stale translation.
        let out = ctx.cache.flush_page(vpn, frame);
        cycles += self.config.costs.flush_line * out.lines_examined;
        for wb in &out.writebacks {
            let resp = ctx
                .mmc
                .bus_access(*wb, BusOp::Writeback, ctx.mem)
                .expect("flush writeback cannot fault");
            cycles += ctx.ratio.device_to_cpu(resp.mmc_cycles);
        }
        ctx.tlb.purge_range(vpn, 1);
        ctx.itlb.purge();
        self.queue_shootdown(ShootdownRequest::Range { vpn, pages: 1 });

        let index = self.mmc_config.shadow.page_index(shadow_spn.base_addr());
        let mmc_cycles = ctx
            .mmc
            .set_mapping(index, ShadowPte::present(frame), ctx.mem);
        cycles += ctx.ratio.device_to_cpu(mmc_cycles);

        let mut tm = self.timed(ctx);
        self.hpt
            .insert(
                Pte {
                    vpn,
                    pfn: shadow_spn.bus(),
                    size: PageSize::Base4K,
                    prot: info.prot,
                },
                &mut tm,
            )
            .expect("hashed page table exhausted");
        cycles += tm.take_cycles();
        self.proc_mut().aspace.remap_page(
            vpn,
            PageInfo {
                backing: Backing::Shadow { shadow_spn },
                prot: info.prot,
                mapping_size: PageSize::Base4K,
            },
        );
        // Track as a one-page shadow region so faults/paging find it.
        let sp = SuperpageInfo {
            vpn_base: vpn,
            size: PageSize::Base4K,
            shadow_base: shadow_spn,
        };
        self.proc_mut().aspace.add_superpage(sp);
        self.shadow_regions.insert(index, sp);
        self.resident.push(index);
        cycles += self.config.costs.remap_page_overhead;
        self.stats.pages_recolored = self.stats.pages_recolored.saturating_add(1);
        self.stats.service_cycles += cycles;
        cycles
    }

    /// Demotes the superpage containing `vpn` back to ordinary 4 KB
    /// mappings (§2.3 notes mappings may change "from real to shadow
    /// addresses (or back)"): swapped-out base pages are brought in, the
    /// virtual region is flushed and shot down, PTEs are re-pointed at
    /// the real frames, and the shadow region returns to the allocator.
    ///
    /// # Panics
    ///
    /// Panics when `vpn` is not inside a shadow-backed superpage.
    pub fn demote_superpage(&mut self, ctx: &mut KernelCtx<'_>, vpn: Vpn) -> Cycles {
        let sp = *self
            .proc()
            .aspace
            .superpage_of(vpn)
            .unwrap_or_else(|| panic!("vpn {vpn} is not in a shadow superpage"));
        let base = self
            .mmc_config
            .shadow
            .page_index(sp.shadow_base.base_addr());
        let pages = sp.size.base_pages();
        let mut cycles =
            self.config.costs.syscall_overhead + self.config.costs.per_superpage_overhead;

        ctx.tlb.purge_range(sp.vpn_base, pages);
        ctx.itlb.purge();
        self.queue_shootdown(ShootdownRequest::Range {
            vpn: sp.vpn_base,
            pages,
        });

        for i in 0..pages {
            let index = base + i;
            let page_vpn = sp.vpn_base.offset(i);

            // Shadow-tagged lines must go before the mapping does.
            let shadow_ppn = sp.shadow_base.offset(i).bus();
            let out = ctx.cache.flush_page(page_vpn, shadow_ppn);
            cycles += self.config.costs.flush_line * out.lines_examined;
            for wb in &out.writebacks {
                let resp = ctx
                    .mmc
                    .bus_access(*wb, BusOp::Writeback, ctx.mem)
                    .expect("flush writeback cannot fault");
                cycles += ctx.ratio.device_to_cpu(resp.mmc_cycles);
            }

            let (pte, c) = ctx.mmc.read_mapping(index, ctx.mem);
            cycles += ctx.ratio.device_to_cpu(c);
            let frame = if pte.valid {
                pte.rpfn
            } else {
                // Swapped out: bring it back so the 4 KB mapping is real.
                cycles += self.swap_in_page(ctx, index);
                let (pte, c) = ctx.mmc.read_mapping(index, ctx.mem);
                cycles += ctx.ratio.device_to_cpu(c);
                pte.rpfn
            };

            let prot = self
                .proc()
                .aspace
                .page(page_vpn)
                .expect("superpage pages are mapped")
                .prot;
            let mut tm = self.timed(ctx);
            self.hpt
                .insert(
                    Pte {
                        vpn: page_vpn,
                        pfn: frame,
                        size: PageSize::Base4K,
                        prot,
                    },
                    &mut tm,
                )
                .expect("hashed page table exhausted");
            cycles += tm.take_cycles();
            self.proc_mut().aspace.remap_page(
                page_vpn,
                PageInfo {
                    backing: Backing::Real(frame),
                    prot,
                    mapping_size: PageSize::Base4K,
                },
            );

            let mmc_cycles = ctx.mmc.set_mapping(index, ShadowPte::invalid(), ctx.mem);
            cycles += ctx.ratio.device_to_cpu(mmc_cycles);
            if let Some(pos) = self.resident.iter().position(|x| *x == index) {
                self.resident.swap_remove(pos);
                if self.clock_hand > pos {
                    self.clock_hand -= 1;
                }
            }
            cycles += self.config.costs.remap_page_overhead;
        }

        self.proc_mut().aspace.remove_superpage(sp.vpn_base);
        self.shadow_regions.remove(&base);
        self.shadow.free(sp.shadow_base.base_addr(), sp.size);
        self.stats.service_cycles += cycles;
        cycles
    }

    /// Reads the per-base-page referenced/dirty bits of a superpage — the
    /// OS-visible §2.5 accounting.
    pub fn page_bits(&mut self, ctx: &mut KernelCtx<'_>, vpn: Vpn) -> Vec<(Vpn, bool, bool)> {
        let sp = *self
            .proc()
            .aspace
            .superpage_of(vpn)
            .unwrap_or_else(|| panic!("vpn {vpn} is not in a shadow superpage"));
        let base = self
            .mmc_config
            .shadow
            .page_index(sp.shadow_base.base_addr());
        (0..sp.size.base_pages())
            .map(|i| {
                let (pte, _) = ctx.mmc.read_mapping(base + i, ctx.mem);
                (sp.vpn_base.offset(i), pte.referenced, pte.dirty)
            })
            .collect()
    }

    /// Kernel page copy with the paper's §3.3 cost structure (word loads
    /// and stores through the cache plus loop overhead) — the operation
    /// conventional superpage coalescing needs and shadow remapping
    /// avoids. Copies `src` frame to `dst` frame; returns cycles.
    pub fn copy_page_timed(&mut self, ctx: &mut KernelCtx<'_>, src: Ppn, dst: Ppn) -> Cycles {
        let words = PAGE_SIZE / 4;
        let mut cycles = self.config.costs.copy_word_overhead * words;
        let mut tm = self.timed(ctx);
        for w in 0..words {
            tm.charge_access(src.base_addr() + w * 4, false);
            tm.charge_access(dst.base_addr() + w * 4, true);
        }
        cycles += tm.take_cycles();
        ctx.mem.copy_page(src, dst);
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_cache::CacheConfig;
    use mtlb_tlb::CpuTlb;

    const DRAM: u64 = 128 << 20;

    struct Rig {
        tlb: CpuTlb,
        itlb: MicroItlb,
        cache: DataCache,
        mmc: Mmc,
        mem: GuestMemory,
        kernel: Kernel,
    }

    impl Rig {
        fn new(kcfg: KernelConfig) -> Self {
            let mmc_cfg = MmcConfig::paper_default(DRAM);
            let mut rig = Rig {
                tlb: CpuTlb::new(96),
                itlb: MicroItlb::new(),
                cache: DataCache::new(CacheConfig::paper_default()),
                mmc: Mmc::new(mmc_cfg),
                mem: GuestMemory::new(DRAM),
                kernel: Kernel::new(mmc_cfg, kcfg),
            };
            let mut ctx = KernelCtx {
                tlb: &mut rig.tlb,
                itlb: &mut rig.itlb,
                cache: &mut rig.cache,
                mmc: &mut rig.mmc,
                mem: &mut rig.mem,
                ratio: ClockRatio::paper_default(),
            };
            rig.kernel.boot(&mut ctx);
            rig
        }

        fn with<R>(&mut self, f: impl FnOnce(&mut Kernel, &mut KernelCtx<'_>) -> R) -> R {
            let mut ctx = KernelCtx {
                tlb: &mut self.tlb,
                itlb: &mut self.itlb,
                cache: &mut self.cache,
                mmc: &mut self.mmc,
                mem: &mut self.mem,
                ratio: ClockRatio::paper_default(),
            };
            f(&mut self.kernel, &mut ctx)
        }
    }

    fn rig() -> Rig {
        Rig::new(KernelConfig::default())
    }

    #[test]
    fn boot_installs_locked_kernel_block() {
        let mut r = rig();
        // Kernel VA 0x1000 is covered by the locked 16 MB identity entry.
        let out = r.tlb.translate(
            VirtAddr::new(0x1000),
            mtlb_types::AccessKind::Read,
            mtlb_types::PrivilegeLevel::Supervisor,
        );
        assert!(matches!(out, mtlb_tlb::LookupOutcome::Hit(pa) if pa.get() == 0x1000));
        // ...but is supervisor-only.
        let out = r.tlb.translate(
            VirtAddr::new(0x1000),
            mtlb_types::AccessKind::Read,
            mtlb_types::PrivilegeLevel::User,
        );
        assert!(matches!(out, mtlb_tlb::LookupOutcome::Fault(_)));
    }

    #[test]
    fn map_region_then_tlb_miss_fills_base_page() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 8 * PAGE_SIZE, Prot::RW);
            let (entry, cycles) = k.handle_tlb_miss(ctx, base + 0x123).unwrap();
            assert_eq!(entry.size(), PageSize::Base4K);
            assert!(cycles > Cycles::ZERO);
        });
        // The entry is now in the TLB.
        assert!(r.tlb.probe(base.vpn()).is_some());
    }

    #[test]
    fn tlb_miss_on_unmapped_address_faults() {
        let mut r = rig();
        r.with(|k, ctx| {
            let err = k
                .handle_tlb_miss(ctx, VirtAddr::new(0x6000_0000))
                .unwrap_err();
            assert!(matches!(err, Fault::PageNotMapped { .. }));
        });
    }

    #[test]
    fn remap_builds_maximal_superpages() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE; // 256 MB-aligned: any size fits
        r.with(|k, ctx| {
            // 64 KB + 16 KB + one loose page = 84 KB.
            k.map_region(ctx, base, 84 * 1024, Prot::RW);
            let rep = k.remap(ctx, base, 84 * 1024);
            assert_eq!(
                rep.superpages,
                vec![
                    (base, PageSize::Size64K),
                    (base + 64 * 1024, PageSize::Size16K)
                ]
            );
            assert_eq!(rep.pages_remapped, 20);
            assert_eq!(rep.pages_skipped, 1, "the 4 KB tail stays a base page");
        });
    }

    #[test]
    fn remap_skips_unaligned_head() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE + PAGE_SIZE; // 4 KB past alignment
        r.with(|k, ctx| {
            k.map_region(ctx, base, 20 * 1024, Prot::RW); // 5 pages
            let rep = k.remap(ctx, base, 20 * 1024);
            // Head skips 3 pages to reach 16 KB alignment, leaving 2 pages
            // — below 16 KB, so nothing is promoted (compress95's buffer
            // alignment effect from §3.1).
            assert!(rep.superpages.is_empty());
            assert_eq!(rep.pages_skipped, 5);
        });
    }

    #[test]
    fn remap_establishes_mmc_mappings_to_old_frames() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 16 * 1024, Prot::RW);
            // Collect the real frames before remap.
            let frames: Vec<Ppn> = (0..4)
                .map(|i| {
                    match k
                        .aspace()
                        .page(Vpn::new(base.vpn().index() + i))
                        .unwrap()
                        .backing
                    {
                        Backing::Real(f) => f,
                        Backing::Shadow { .. } => panic!("not yet remapped"),
                    }
                })
                .collect();
            let rep = k.remap(ctx, base, 16 * 1024);
            assert_eq!(rep.superpages.len(), 1);
            let sp = *k.aspace().superpages().next().unwrap();
            // Each shadow page must point at the original (discontiguous)
            // frame.
            for (i, f) in frames.iter().enumerate() {
                let idx = ctx
                    .mmc
                    .config()
                    .shadow
                    .page_index(sp.shadow_base.base_addr())
                    + i as u64;
                let (pte, _) = ctx.mmc.read_mapping(idx, ctx.mem);
                assert!(pte.valid);
                assert_eq!(pte.rpfn, *f);
            }
            // With a scrambled frame allocator the frames really are
            // discontiguous — the situation conventional superpages cannot
            // handle at all.
            let contiguous = frames.windows(2).all(|w| w[1].index() == w[0].index() + 1);
            assert!(!contiguous, "scrambled frames should be discontiguous");
        });
    }

    #[test]
    fn tlb_miss_after_remap_inserts_superpage_entry() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 64 * 1024, Prot::RW);
            k.remap(ctx, base, 64 * 1024);
            let (entry, _) = k.handle_tlb_miss(ctx, base + 5 * PAGE_SIZE).unwrap();
            assert_eq!(entry.size(), PageSize::Size64K);
            assert_eq!(entry.vpn_base(), base.vpn());
            // One TLB entry now covers all 16 pages.
        });
        assert!(r.tlb.probe(Vpn::new(base.vpn().index() + 15)).is_some());
    }

    #[test]
    fn remap_noop_on_baseline_kernel() {
        let mut r = Rig::new(KernelConfig {
            use_superpages: false,
            ..KernelConfig::default()
        });
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 64 * 1024, Prot::RW);
            let rep = k.remap(ctx, base, 64 * 1024);
            assert!(rep.superpages.is_empty());
            assert_eq!(rep.pages_remapped, 0);
            let (entry, _) = k.handle_tlb_miss(ctx, base).unwrap();
            assert_eq!(entry.size(), PageSize::Base4K);
        });
    }

    #[test]
    fn remap_flush_cost_is_about_1400_cycles_per_page() {
        // §3.3: "the cost of cache flushing is quite modest, averaging
        // 1400 CPU cycles per 4KB page".
        let mut r = rig();
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 256 * 1024, Prot::RW);
            let rep = k.remap(ctx, base, 256 * 1024);
            let per_page = rep.flush_cycles.get() as f64 / rep.pages_remapped as f64;
            assert!(
                (1100.0..1800.0).contains(&per_page),
                "flush cost {per_page} cycles/page is out of the paper's band"
            );
        });
    }

    #[test]
    fn sbrk_preallocates_and_promotes() {
        let mut r = rig();
        let (first, _) = r.with(|k, ctx| k.sbrk(ctx, 1000));
        assert_eq!(first, UserLayout::HEAP_BASE);
        let k = &r.kernel;
        // 8 MB chunk mapped and largely promoted to superpages.
        assert_eq!(k.aspace().mapped_bytes(), 8 << 20);
        assert!(k.stats().superpages_created >= 1);
        // Heap base is 4 MB-aligned (0x2000_0000), so the first superpage
        // should be large.
        let first_sp = k.aspace().superpages().next().unwrap();
        assert!(first_sp.size >= PageSize::Size4M);
        // Subsequent small sbrk stays within the preallocation: no new pages.
        let mapped_before = r.kernel.aspace().mapped_pages();
        r.with(|k, ctx| k.sbrk(ctx, 100_000));
        assert_eq!(r.kernel.aspace().mapped_pages(), mapped_before);
        // Blowing past the preallocation maps a later chunk (2 MB).
        r.with(|k, ctx| k.sbrk(ctx, 9 << 20));
        assert_eq!(r.kernel.aspace().mapped_bytes(), (8 << 20) + (2 << 20));
    }

    #[test]
    fn swap_out_writes_only_dirty_pages() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 64 * 1024, Prot::RW);
            k.remap(ctx, base, 64 * 1024);
            let sp = *k.aspace().superpages().next().unwrap();

            // Generation 1: no page has a swap copy yet, so every page is
            // written regardless of dirtiness (data must not be lost).
            let rep = k.swap_out_superpage(ctx, base.vpn());
            assert_eq!(rep.pages_total, 16);
            assert_eq!(rep.pages_written, 16);

            // Bring everything back in.
            for page in 0..16u64 {
                let shadow_pa = sp.shadow_base.base_addr() + page * PAGE_SIZE;
                k.handle_shadow_fault(ctx, shadow_pa).unwrap();
            }

            // Dirty exactly pages 3 and 7 via exclusive fills at their
            // shadow addresses.
            for page in [3u64, 7] {
                let shadow_pa = sp.shadow_base.base_addr() + page * PAGE_SIZE;
                ctx.mmc
                    .bus_access(shadow_pa.bus(), BusOp::FillExclusive, ctx.mem)
                    .unwrap();
            }

            // Generation 2 — the paper's §2.5 claim: only dirty base
            // pages are flushed to disk.
            let writes_before = k.swap().writes();
            let rep = k.swap_out_superpage(ctx, base.vpn());
            assert_eq!(rep.pages_total, 16);
            assert_eq!(rep.pages_written, 2, "only the dirty pages are written");
            assert_eq!(k.swap().writes() - writes_before, 2);
            assert_eq!(k.stats().pages_swapped_out, 32);
        });
    }

    #[test]
    fn conventional_policy_writes_whole_superpage() {
        let mut r = Rig::new(KernelConfig {
            paging: PagingPolicy::WholeSuperpage,
            ..KernelConfig::default()
        });
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 64 * 1024, Prot::RW);
            k.remap(ctx, base, 64 * 1024);
            let sp = *k.aspace().superpages().next().unwrap();
            let shadow_pa = sp.shadow_base.base_addr() + 3 * PAGE_SIZE;
            ctx.mmc
                .bus_access(shadow_pa.bus(), BusOp::FillExclusive, ctx.mem)
                .unwrap();
            let rep = k.swap_out_superpage(ctx, base.vpn());
            assert_eq!(rep.pages_total, 16);
            assert_eq!(
                rep.pages_written, 16,
                "without per-page dirty bits everything is written"
            );
        });
    }

    #[test]
    fn shadow_fault_swaps_page_back_in_with_data_intact() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 16 * 1024, Prot::RW);
            k.remap(ctx, base, 16 * 1024);
            let sp = *k.aspace().superpages().next().unwrap();
            let shadow_pa = sp.shadow_base.base_addr() + PAGE_SIZE;

            // Write recognisable data through the real frame.
            let real = ctx
                .mmc
                .translate_functional(shadow_pa.bus(), ctx.mem)
                .unwrap();
            ctx.mem.write_u64(real, 0xdead_beef_cafe_f00d);
            // Make the page dirty in the MMC's eyes, then swap out.
            ctx.mmc
                .bus_access(shadow_pa.bus(), BusOp::FillExclusive, ctx.mem)
                .unwrap();
            k.swap_out_superpage(ctx, base.vpn());

            // An access now faults precisely...
            let err = ctx
                .mmc
                .bus_access(shadow_pa.bus(), BusOp::FillShared, ctx.mem)
                .unwrap_err();
            assert!(matches!(err, Fault::ShadowPageFault { .. }));

            // ...the OS services it...
            k.handle_shadow_fault(ctx, shadow_pa).unwrap();

            // ...and the data is back, possibly in a different frame.
            let real2 = ctx
                .mmc
                .translate_functional(shadow_pa.bus(), ctx.mem)
                .unwrap();
            assert_eq!(ctx.mem.read_u64(real2), 0xdead_beef_cafe_f00d);
            assert_eq!(k.stats().pages_swapped_in, 1);
        });
    }

    #[test]
    fn wild_shadow_fault_propagates() {
        let mut r = rig();
        r.with(|k, ctx| {
            let err = k
                .handle_shadow_fault(
                    ctx,
                    ShadowAddr::from_bus(mtlb_types::PhysAddr::new(0x9f00_0000)),
                )
                .unwrap_err();
            assert!(matches!(err, Fault::ShadowPageFault { .. }));
        });
    }

    #[test]
    fn demote_restores_base_pages_and_frees_shadow() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 64 * 1024, Prot::RW);
            let avail = k.shadow_available(PageSize::Size64K);
            k.remap(ctx, base, 64 * 1024);
            assert_eq!(k.shadow_available(PageSize::Size64K), avail - 1);
            k.demote_superpage(ctx, base.vpn());
            assert_eq!(k.shadow_available(PageSize::Size64K), avail);
            assert!(k.aspace().superpages().next().is_none());
            let (entry, _) = k.handle_tlb_miss(ctx, base).unwrap();
            assert_eq!(entry.size(), PageSize::Base4K);
            // The page is real-backed again.
            assert!(matches!(
                k.aspace().page(base.vpn()).unwrap().backing,
                Backing::Real(_)
            ));
        });
    }

    #[test]
    fn clock_eviction_frees_frames_under_pressure() {
        // A machine with few user frames: map + remap a region, then
        // demand more memory than exists.
        let mmc_cfg = MmcConfig::paper_default(DRAM);
        let mut r = Rig::new(KernelConfig::default());
        let need_frames = r.kernel.free_frames();
        let base = UserLayout::DATA_BASE;
        // Consume all but 32 frames with an (unremapped) mapping.
        let bulk = (need_frames - 32) * PAGE_SIZE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, bulk, Prot::RW);
            // Remap a 64 KB window so there is something evictable.
            k.remap(ctx, base, 64 * 1024);
            assert_eq!(k.free_frames(), 32);
            // Now map 40 more pages: CLOCK must evict shadow-backed pages
            // (32 free + 16 evictable covers it).
            k.map_region(ctx, UserLayout::STACK_BASE, 40 * PAGE_SIZE, Prot::RW);
            assert!(k.stats().pages_swapped_out > 0);
            assert!(k.stats().clock_sweeps > 0);
        });
        let _ = mmc_cfg;
    }

    #[test]
    fn online_promotion_triggers_after_threshold_misses() {
        let mut r = Rig::new(KernelConfig {
            promotion: Some(crate::PromotionConfig {
                miss_threshold: 8,
                region: PageSize::Size64K,
            }),
            ..KernelConfig::default()
        });
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 64 * 1024, Prot::RW);
            // Generate base-page TLB misses across the region: purge the
            // TLB between touches so every touch misses.
            for round in 0..8u64 {
                let va = base + (round % 16) * PAGE_SIZE;
                let (_, _) = k.handle_tlb_miss(ctx, va).unwrap();
                ctx.tlb.purge_all();
            }
            assert_eq!(k.stats().auto_promotions, 1, "8th miss promotes");
            // The next miss loads a 64 KB superpage entry.
            let (entry, _) = k.handle_tlb_miss(ctx, base).unwrap();
            assert_eq!(entry.size(), PageSize::Size64K);
        });
    }

    #[test]
    fn promotion_disabled_by_default() {
        let mut r = rig();
        let base = UserLayout::DATA_BASE;
        r.with(|k, ctx| {
            k.map_region(ctx, base, 64 * 1024, Prot::RW);
            for _ in 0..100 {
                k.handle_tlb_miss(ctx, base).unwrap();
                ctx.tlb.purge_all();
            }
            assert_eq!(k.stats().auto_promotions, 0);
        });
    }

    #[test]
    fn processes_have_disjoint_windows_and_switching_purges() {
        let mut r = rig();
        r.with(|k, ctx| {
            let p1 = k.spawn_process();
            assert_eq!(p1, 1);
            // Map and use memory in process 0.
            k.map_region(ctx, UserLayout::DATA_BASE, 4096, Prot::RW);
            k.handle_tlb_miss(ctx, UserLayout::DATA_BASE).unwrap();
            assert!(ctx.tlb.entry_for(UserLayout::DATA_BASE.vpn()).is_some());
            // Switch: replaceable entries are gone, kernel block stays.
            k.switch_process(ctx, p1).expect("pid 1 exists");
            assert!(ctx.tlb.entry_for(UserLayout::DATA_BASE.vpn()).is_none());
            assert!(
                ctx.tlb.entry_for(Vpn::new(1)).is_some(),
                "kernel block survives"
            );
            // Process 1 has its own heap window and empty address space.
            assert_eq!(k.aspace().mapped_pages(), 0);
            let (brk, _) = k.sbrk(ctx, 1000);
            assert_eq!(brk, Kernel::heap_base(1));
            assert!(brk.get() >= UserLayout::HEAP_BASE.get() + (1 << 32));
            // Back to process 0: its mapping is still there.
            k.switch_process(ctx, 0).expect("pid 0 exists");
            assert_eq!(k.aspace().mapped_pages(), 1);
            assert_eq!(k.stats().context_switches, 2);
            // Each switch queued a full shootdown for the other cores
            // (the sbrk in between may add Range requests of its own).
            assert!(k.has_pending_shootdowns());
            let drained = k.take_shootdowns();
            assert_eq!(
                drained
                    .iter()
                    .filter(|r| **r == ShootdownRequest::All)
                    .count(),
                2
            );
            assert!(!k.has_pending_shootdowns());
        });
    }

    #[test]
    fn switching_to_unknown_pid_faults() {
        let mut r = rig();
        r.with(|k, ctx| {
            // A bad pid is a typed fault, not a panic, and charges
            // nothing: the kernel validates before touching any state.
            let before = k.stats();
            assert_eq!(
                k.switch_process(ctx, 9),
                Err(Fault::NoSuchProcess { pid: 9 })
            );
            assert_eq!(k.stats(), before);
            assert_eq!(k.current_process(), 0);
            assert!(!k.has_pending_shootdowns());
        });
    }

    #[test]
    fn copy_page_costs_about_11400_cycles_warm() {
        // §3.3: "a comparable cost for copying a 4KB page, when the source
        // page is warm in the cache, is 11,400 CPU cycles".
        let mut r = rig();
        r.with(|k, ctx| {
            // Frames chosen so src and dst do not conflict in the
            // direct-mapped cache (they are 64 KB apart; the cache wraps
            // at 512 KB).
            let src = Ppn::new(0x5000);
            let dst = Ppn::new(0x5010);
            // Warm the source.
            let mut tm = TimedMem::new(ctx.cache, ctx.mmc, ctx.mem, ctx.ratio);
            for w in 0..(PAGE_SIZE / 4) {
                tm.charge_access(src.base_addr() + w * 4, false);
            }
            let cycles = k.copy_page_timed(ctx, src, dst).get() as f64;
            assert!(
                (9_000.0..14_000.0).contains(&cycles),
                "warm page copy cost {cycles} out of the paper's band"
            );
        });
    }
}
