//! Physical and virtual memory layout of the simulated machine.

use mtlb_mmc::MmcConfig;
use mtlb_tlb::HptConfig;
use mtlb_types::{PageSize, PhysAddr, VirtAddr, PAGE_SIZE};

/// Fixed placement of kernel structures in low physical memory.
///
/// The kernel occupies the bottom of DRAM, identity-mapped (VA = PA) by a
/// single locked block-TLB entry — the paper's "kernel code and data
/// structures are mapped using a single block TLB entry that is not
/// subject to replacement" (§3.2). User frames are handed out above the
/// reserved region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelLayout {
    /// Base of the MMC's flat shadow-to-real mapping table (the paper's
    /// example uses physical 0).
    pub mmc_table_base: PhysAddr,
    /// Base of the hashed page table.
    pub hpt_base: PhysAddr,
    /// Bytes of low DRAM reserved for the kernel (tables + text + data),
    /// also the span of the identity block mapping.
    pub reserved_bytes: u64,
    /// Hashed-page-table capacity multiplier (power of two). `1` is the
    /// paper's 16 K-bucket table; the multi-core machine scales the
    /// table with its core count so N co-resident working sets fit.
    pub hpt_scale: u64,
}

impl KernelLayout {
    /// Computes the standard layout for a machine with the given MMC
    /// geometry: mapping table at 0, HPT immediately after (page
    /// aligned), 16 MB reserved in total.
    ///
    /// # Panics
    ///
    /// Panics when the tables do not fit in the reservation or the
    /// reservation exceeds installed DRAM.
    #[must_use]
    pub fn standard(mmc: &MmcConfig) -> Self {
        Self::standard_scaled(mmc, 1)
    }

    /// [`standard`](Self::standard) with the hashed page table scaled
    /// by `hpt_scale` (power of two; the multi-core machine passes its
    /// core count rounded up). `standard_scaled(mmc, 1)` is exactly
    /// [`standard`](Self::standard).
    ///
    /// # Panics
    ///
    /// Panics when `hpt_scale` is not a power of two, the tables do not
    /// fit in the reservation, or the reservation exceeds installed
    /// DRAM.
    #[must_use]
    pub fn standard_scaled(mmc: &MmcConfig, hpt_scale: u64) -> Self {
        assert!(
            hpt_scale.is_power_of_two(),
            "hpt_scale must be a power of two (bucket hashing masks)"
        );
        let table_end = mmc.table_base + mmc.table_bytes();
        let hpt_base = table_end.align_up(PAGE_SIZE);
        let reserved = PageSize::Size16M.bytes();
        let layout = KernelLayout {
            mmc_table_base: mmc.table_base,
            hpt_base,
            reserved_bytes: reserved,
            hpt_scale,
        };
        let hpt_cfg = layout.hpt_config();
        assert!(
            (hpt_base + hpt_cfg.table_bytes()).get() <= reserved,
            "kernel tables exceed the reserved region"
        );
        assert!(
            reserved <= mmc.installed_dram,
            "kernel reservation exceeds installed DRAM"
        );
        layout
    }

    /// The hashed-page-table geometry placed by this layout (the paper's
    /// 16 K-bucket table, times `hpt_scale`).
    #[must_use]
    pub fn hpt_config(&self) -> HptConfig {
        let base = HptConfig::paper_default(self.hpt_base);
        HptConfig {
            base: base.base,
            buckets: base.buckets * self.hpt_scale,
            overflow_slots: base.overflow_slots * self.hpt_scale,
        }
    }

    /// First user-allocatable page frame.
    #[must_use]
    pub fn first_user_frame(&self) -> u64 {
        self.reserved_bytes / PAGE_SIZE
    }
}

/// Conventional bases for user-space regions.
///
/// The kernel's identity block mapping owns virtual `0..16 MB`, so user
/// regions start above it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UserLayout;

impl UserLayout {
    /// Program text.
    pub const TEXT_BASE: VirtAddr = VirtAddr::new(0x0100_0000);
    /// Static data / BSS.
    pub const DATA_BASE: VirtAddr = VirtAddr::new(0x1000_0000);
    /// Heap (grown by `sbrk`).
    pub const HEAP_BASE: VirtAddr = VirtAddr::new(0x2000_0000);
    /// Stack region base (grows upward in this simplified model).
    pub const STACK_BASE: VirtAddr = VirtAddr::new(0x7000_0000);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_fits_paper_tables() {
        let mmc = MmcConfig::paper_default(256 << 20);
        let l = KernelLayout::standard(&mmc);
        // 512 MB shadow / 4 KB pages * 4 B = 512 KB table at 0.
        assert_eq!(l.mmc_table_base, PhysAddr::new(0));
        assert_eq!(l.hpt_base, PhysAddr::new(512 * 1024));
        // HPT: 16 K buckets + overflow, 16 B each = 512 KB.
        assert_eq!(l.hpt_config().table_bytes(), 512 * 1024);
        assert_eq!(l.reserved_bytes, 16 << 20);
        assert_eq!(l.first_user_frame(), 4096);
    }

    #[test]
    fn user_regions_clear_the_kernel_block() {
        let mmc = MmcConfig::paper_default(256 << 20);
        let l = KernelLayout::standard(&mmc);
        for base in [
            UserLayout::TEXT_BASE,
            UserLayout::DATA_BASE,
            UserLayout::HEAP_BASE,
            UserLayout::STACK_BASE,
        ] {
            assert!(base.get() >= l.reserved_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds installed DRAM")]
    fn tiny_dram_rejected() {
        let mut mmc = MmcConfig::paper_default(256 << 20);
        mmc.installed_dram = 8 << 20;
        let _ = KernelLayout::standard(&mmc);
    }
}
