//! The simulated operating system's virtual-memory layer.
//!
//! The paper's mechanism needs only "modest changes to the VM software"
//! (§1); this crate is that VM software:
//!
//! * [`Kernel`] — boot, region mapping, the `remap()` syscall that builds
//!   maximally-sized shadow-backed superpages (§2.3–2.4), the modified
//!   pre-allocating `sbrk()`, the software TLB miss handler, and demand
//!   paging with per-base-page dirty bits (§2.5, §4).
//! * [`BucketAllocator`] / [`BuddyAllocator`] — shadow address-space
//!   allocators (§2.4, Figure 2).
//! * [`AddressSpace`] — per-process page/superpage bookkeeping.
//! * [`SwapDevice`] / [`PagingPolicy`] — swap model contrasting
//!   per-base-page paging (this paper) with whole-superpage paging
//!   (conventional superpages).
//! * [`TimedMem`] — kernel memory accesses charged through the simulated
//!   cache and memory controller.
//!
//! # Example
//!
//! Building a kernel for a paper-default machine:
//!
//! ```
//! use mtlb_mmc::MmcConfig;
//! use mtlb_os::{Kernel, KernelConfig};
//!
//! let kernel = Kernel::new(MmcConfig::paper_default(256 << 20), KernelConfig::default());
//! assert!(kernel.shadow_available(mtlb_types::PageSize::Size16M) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod aspace;
mod kernel;
mod layout;
mod paging;
mod shadow_alloc;

pub use access::TimedMem;
pub use aspace::{AddressSpace, Backing, PageInfo, SuperpageInfo};
pub use kernel::{
    Kernel, KernelConfig, KernelCosts, KernelCtx, KernelStats, PromotionConfig, RemapReport,
    SbrkConfig, ShadowAllocPolicy, ShootdownRequest, SwapOutReport,
};
pub use layout::{KernelLayout, UserLayout};
pub use paging::{PagingPolicy, SwapCosts, SwapDevice};
pub use shadow_alloc::{BucketAllocator, BucketPartition, BuddyAllocator, ShadowAllocator};
