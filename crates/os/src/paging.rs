//! Swap device model and paging policy.

use std::collections::BTreeMap;

use mtlb_types::{Cycles, PAGE_SIZE};

/// How superpages are paged to disk.
///
/// This is the paper's §2.5 comparison: conventional superpages force the
/// OS to swap the *entire* superpage because per-base-page dirty
/// information is lost, while shadow-backed superpages keep exact dirty
/// bits in the MMC table and can be paged one base page at a time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PagingPolicy {
    /// Shadow-superpage paging: evict/load individual base pages, write
    /// only dirty ones (the paper's mechanism).
    #[default]
    PerBasePage,
    /// Conventional-superpage paging: the whole superpage moves as a
    /// unit and every base page is written (no per-page dirty bits).
    WholeSuperpage,
}

/// A simple swap "disk": page-sized slots keyed by shadow page index,
/// with real contents (so swapped data genuinely round-trips) and
/// access counters for the traffic experiments.
#[derive(Debug, Clone, Default)]
pub struct SwapDevice {
    slots: BTreeMap<u64, Box<[u8]>>,
    writes: u64,
    reads: u64,
}

impl SwapDevice {
    /// An empty swap device.
    #[must_use]
    pub fn new() -> Self {
        SwapDevice::default()
    }

    /// Stores a page's contents under `key`.
    ///
    /// # Panics
    ///
    /// Panics unless `data` is exactly one page.
    pub fn write(&mut self, key: u64, data: Vec<u8>) {
        assert_eq!(data.len() as u64, PAGE_SIZE, "swap slots hold whole pages");
        self.slots.insert(key, data.into_boxed_slice());
        self.writes += 1;
    }

    /// Retrieves a copy of the page stored under `key`.
    pub fn read(&mut self, key: u64) -> Option<Vec<u8>> {
        let data = self.slots.get(&key)?.to_vec();
        self.reads += 1;
        Some(data)
    }

    /// Whether a current copy exists for `key` (clean evictions can skip
    /// the write).
    #[must_use]
    pub fn has_copy(&self, key: u64) -> bool {
        self.slots.contains_key(&key)
    }

    /// Page writes performed so far.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Page reads performed so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Pages currently stored.
    #[must_use]
    pub fn pages_stored(&self) -> usize {
        self.slots.len()
    }
}

/// Per-page I/O cost model for the swap device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwapCosts {
    /// CPU cycles charged per page written to swap.
    pub page_write: Cycles,
    /// CPU cycles charged per page read from swap.
    pub page_read: Cycles,
}

impl SwapCosts {
    /// A deliberately moderate default (≈ 0.8 ms at 240 MHz): large
    /// enough that swap traffic dominates when paging, small enough that
    /// paging experiments finish quickly.
    #[must_use]
    pub const fn default_disk() -> Self {
        SwapCosts {
            page_write: Cycles::new(200_000),
            page_read: Cycles::new(200_000),
        }
    }
}

impl Default for SwapCosts {
    fn default() -> Self {
        SwapCosts::default_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_contents() {
        let mut s = SwapDevice::new();
        let data: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 256) as u8).collect();
        s.write(7, data.clone());
        assert!(s.has_copy(7));
        assert_eq!(s.read(7), Some(data));
        assert_eq!(s.writes(), 1);
        assert_eq!(s.reads(), 1);
    }

    #[test]
    fn missing_slot_reads_none() {
        let mut s = SwapDevice::new();
        assert_eq!(s.read(1), None);
        assert_eq!(s.reads(), 0, "failed reads are not counted");
    }

    #[test]
    fn rewrites_replace_and_count() {
        let mut s = SwapDevice::new();
        s.write(1, vec![0xaa; PAGE_SIZE as usize]);
        s.write(1, vec![0xbb; PAGE_SIZE as usize]);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.pages_stored(), 1);
        assert_eq!(s.read(1).unwrap()[0], 0xbb);
    }

    #[test]
    #[should_panic(expected = "whole pages")]
    fn partial_pages_rejected() {
        let mut s = SwapDevice::new();
        s.write(1, vec![0; 100]);
    }
}
