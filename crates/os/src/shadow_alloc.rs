//! Shadow physical address space allocators (paper §2.4).
//!
//! Two implementations of [`ShadowAllocator`]:
//!
//! * [`BucketAllocator`] — the paper's scheme: the shadow space is
//!   statically pre-partitioned into buckets of each legal superpage size
//!   (Figure 2), and allocation pops any free region from the right
//!   bucket. Simple and fast, but a size class can run dry.
//! * [`BuddyAllocator`] — the buddy-system variant the paper suggests
//!   "experience may suggest" (§2.4): regions split and recombine on
//!   demand, so the space flexes between size classes at a small cost in
//!   bookkeeping.
//!
//! Both hand out **naturally aligned** regions, which is what lets the
//! CPU TLB map them as superpages.

use std::collections::{BTreeMap, BTreeSet};

use mtlb_mmc::ShadowRange;
use mtlb_types::{PageSize, ShadowAddr};

/// Allocates naturally-aligned superpage-sized regions of shadow space.
pub trait ShadowAllocator {
    /// Allocates one region of exactly `size`, or `None` when the
    /// allocator cannot satisfy the request.
    fn alloc(&mut self, size: PageSize) -> Option<ShadowAddr>;

    /// Returns a region previously obtained from [`alloc`](Self::alloc).
    ///
    /// # Panics
    ///
    /// Implementations panic on double frees or foreign regions.
    fn free(&mut self, addr: ShadowAddr, size: PageSize);

    /// Number of regions of exactly `size` that could be allocated right
    /// now (for buddies this counts carvable blocks).
    fn available(&self, size: PageSize) -> u64;
}

/// The static partition of shadow space into per-size buckets.
///
/// The paper's Figure 2 example partitions 512 MB as
/// 1024×16 KB + 256×64 KB + 128×256 KB + 64×1 MB + 32×4 MB + 16×16 MB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketPartition {
    counts: Vec<(PageSize, u64)>,
}

impl BucketPartition {
    /// Builds a partition from `(size, count)` pairs. Buckets are laid
    /// out in the given order from the base of the shadow range.
    ///
    /// # Panics
    ///
    /// Panics on duplicate sizes or a base-page entry.
    #[must_use]
    pub fn new(counts: Vec<(PageSize, u64)>) -> Self {
        let mut seen = BTreeSet::new();
        for (size, _) in &counts {
            assert!(size.is_superpage(), "buckets hold superpages only");
            assert!(seen.insert(*size), "duplicate bucket size {size}");
        }
        BucketPartition { counts }
    }

    /// The paper's Figure 2 partition of a 512 MB shadow space.
    #[must_use]
    pub fn paper_default() -> Self {
        BucketPartition::new(vec![
            (PageSize::Size16K, 1024),
            (PageSize::Size64K, 256),
            (PageSize::Size256K, 128),
            (PageSize::Size1M, 64),
            (PageSize::Size4M, 32),
            (PageSize::Size16M, 16),
        ])
    }

    /// The `(size, count)` pairs in layout order.
    #[must_use]
    pub fn counts(&self) -> &[(PageSize, u64)] {
        &self.counts
    }

    /// Total bytes of shadow space the partition consumes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.counts.iter().map(|(s, n)| s.bytes() * n).sum()
    }

    /// Address-space extent of one size class (the Figure 2
    /// "Address Space Extent" column).
    #[must_use]
    pub fn extent_of(&self, size: PageSize) -> u64 {
        self.counts
            .iter()
            .find(|(s, _)| *s == size)
            .map(|(s, n)| s.bytes() * n)
            .unwrap_or(0)
    }
}

/// The paper's bucket allocator over a [`BucketPartition`].
#[derive(Debug, Clone)]
pub struct BucketAllocator {
    /// Free regions per size, used LIFO.
    free: BTreeMap<PageSize, Vec<ShadowAddr>>,
    /// `[start, end)` of each size class, for free() validation.
    class_ranges: BTreeMap<PageSize, (u64, u64)>,
    allocated: BTreeSet<u64>,
}

impl BucketAllocator {
    /// Lays the partition out from the base of `range`.
    ///
    /// # Panics
    ///
    /// Panics when the partition exceeds the range, or a bucket would not
    /// be naturally aligned for its size (the paper's Figure 2 layout
    /// aligns naturally; exotic partitions may not).
    #[must_use]
    pub fn new(range: ShadowRange, partition: &BucketPartition) -> Self {
        assert!(
            partition.total_bytes() <= range.size_bytes(),
            "partition ({} bytes) exceeds shadow range ({} bytes)",
            partition.total_bytes(),
            range.size_bytes()
        );
        let mut free = BTreeMap::new();
        let mut class_ranges = BTreeMap::new();
        let mut cursor = range.shadow_base();
        for (size, count) in partition.counts() {
            let start = cursor.get();
            let regions: Vec<ShadowAddr> = (0..*count)
                .map(|i| {
                    let addr = cursor + i * size.bytes();
                    assert!(
                        addr.is_aligned(size.bytes()),
                        "bucket region {addr} not aligned to {size}"
                    );
                    addr
                })
                // LIFO pop order: reverse so the lowest region goes out first.
                .rev()
                .collect();
            cursor += size.bytes() * count;
            free.insert(*size, regions);
            class_ranges.insert(*size, (start, cursor.get()));
        }
        BucketAllocator {
            free,
            class_ranges,
            allocated: BTreeSet::new(),
        }
    }

    /// Convenience: the Figure 2 configuration over the paper's 512 MB
    /// shadow range.
    #[must_use]
    pub fn paper_default() -> Self {
        BucketAllocator::new(
            ShadowRange::paper_default(),
            &BucketPartition::paper_default(),
        )
    }
}

impl ShadowAllocator for BucketAllocator {
    fn alloc(&mut self, size: PageSize) -> Option<ShadowAddr> {
        let addr = self.free.get_mut(&size)?.pop()?;
        self.allocated.insert(addr.get());
        Some(addr)
    }

    fn free(&mut self, addr: ShadowAddr, size: PageSize) {
        // Documented API contract (# Panics): freeing into a class the
        // partition never defined is caller error.
        let (start, end) = *self
            .class_ranges
            .get(&size)
            .unwrap_or_else(|| panic!("no bucket class for {size}"));
        assert!(
            addr.get() >= start && addr.get() < end && addr.is_aligned(size.bytes()),
            "freed region {addr} does not belong to the {size} bucket"
        );
        assert!(
            self.allocated.remove(&addr.get()),
            "double free of shadow region {addr}"
        );
        // The class is known to exist: `class_ranges` and `free` share
        // their key set by construction.
        self.free.entry(size).or_default().push(addr);
    }

    fn available(&self, size: PageSize) -> u64 {
        self.free.get(&size).map_or(0, |v| v.len() as u64)
    }
}

/// Buddy-system shadow allocator: 16 KB minimum block, power-of-two
/// splitting with coalescing on free.
///
/// Superpage requests are powers of 4, but internal blocks may be any
/// power of two ≥ 16 KB, so a freed 64 KB region can later serve four
/// 16 KB requests and vice versa.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: ShadowAddr,
    /// log2(managed bytes / MIN_BLOCK).
    max_order: u32,
    /// Free block offsets (from base) per order; BTreeSet for
    /// deterministic low-address-first allocation.
    free: Vec<BTreeSet<u64>>,
    allocated: BTreeMap<u64, u32>,
}

/// Smallest buddy block: one 16 KB superpage.
const MIN_BLOCK: u64 = 16 * 1024;

impl BuddyAllocator {
    /// Manages the whole of `range` (whose size must be a power of two
    /// multiple of 16 KB).
    ///
    /// # Panics
    ///
    /// Panics when the range size is not a power of two ≥ 16 KB or the
    /// base is not aligned to the range size.
    #[must_use]
    pub fn new(range: ShadowRange) -> Self {
        let size = range.size_bytes();
        assert!(
            size.is_power_of_two() && size >= MIN_BLOCK,
            "buddy-managed range must be a power of two of at least 16 KB"
        );
        assert!(
            range.base().is_aligned(size),
            "buddy base must be aligned to the managed size for natural alignment"
        );
        let max_order = (size / MIN_BLOCK).trailing_zeros();
        let mut free = vec![BTreeSet::new(); max_order as usize + 1];
        free[max_order as usize].insert(0);
        BuddyAllocator {
            base: range.shadow_base(),
            max_order,
            free,
            allocated: BTreeMap::new(),
        }
    }

    fn order_of(size: PageSize) -> u32 {
        (size.bytes() / MIN_BLOCK).trailing_zeros()
    }

    fn block_bytes(order: u32) -> u64 {
        MIN_BLOCK << order
    }
}

impl ShadowAllocator for BuddyAllocator {
    fn alloc(&mut self, size: PageSize) -> Option<ShadowAddr> {
        let want = Self::order_of(size);
        if want > self.max_order {
            return None;
        }
        // Find the smallest order with a free block.
        let from = (want..=self.max_order).find(|o| !self.free[*o as usize].is_empty())?;
        let offset = *self.free[from as usize].iter().next()?;
        self.free[from as usize].remove(&offset);
        // Split down to the wanted order, freeing the upper halves.
        let mut order = from;
        while order > want {
            order -= 1;
            let buddy = offset + Self::block_bytes(order);
            self.free[order as usize].insert(buddy);
        }
        self.allocated.insert(offset, want);
        // offset stays aligned to its block size by construction.
        Some(self.base + offset)
    }

    fn free(&mut self, addr: ShadowAddr, size: PageSize) {
        let mut offset = addr.offset_from(self.base);
        let want = Self::order_of(size);
        match self.allocated.remove(&offset) {
            Some(order) if order == want => {}
            Some(order) => {
                panic!("region at {addr} was allocated at order {order}, freed at {want}")
            }
            None => panic!("free of unallocated shadow region {addr}"),
        }
        // Coalesce with free buddies.
        let mut order = want;
        while order < self.max_order {
            let buddy = offset ^ Self::block_bytes(order);
            if !self.free[order as usize].remove(&buddy) {
                break;
            }
            offset = offset.min(buddy);
            order += 1;
        }
        self.free[order as usize].insert(offset);
    }

    fn available(&self, size: PageSize) -> u64 {
        let want = Self::order_of(size);
        if want > self.max_order {
            return 0;
        }
        (want..=self.max_order)
            .map(|o| self.free[o as usize].len() as u64 * (1 << (o - want)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::{PhysAddr, PAGE_SIZE};

    #[test]
    fn figure2_partition_counts_and_extents() {
        let p = BucketPartition::paper_default();
        // Figure 2's exact rows.
        assert_eq!(p.extent_of(PageSize::Size16K), 16 << 20);
        assert_eq!(p.extent_of(PageSize::Size64K), 16 << 20);
        assert_eq!(p.extent_of(PageSize::Size256K), 32 << 20);
        assert_eq!(p.extent_of(PageSize::Size1M), 64 << 20);
        assert_eq!(p.extent_of(PageSize::Size4M), 128 << 20);
        assert_eq!(p.extent_of(PageSize::Size16M), 256 << 20);
        assert_eq!(p.total_bytes(), 512 << 20);
    }

    #[test]
    fn bucket_allocations_are_aligned_and_disjoint() {
        let mut a = BucketAllocator::paper_default();
        let mut seen = Vec::new();
        for size in PageSize::SUPERPAGES {
            for _ in 0..3 {
                let addr = a.alloc(size).expect("plenty available");
                assert!(addr.is_aligned(size.bytes()), "{addr} unaligned for {size}");
                seen.push((addr.get(), addr.get() + size.bytes()));
            }
        }
        seen.sort_unstable();
        for w in seen.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping regions {w:?}");
        }
    }

    #[test]
    fn bucket_exhaustion_returns_none() {
        let small = BucketPartition::new(vec![(PageSize::Size16K, 2)]);
        let range = ShadowRange::paper_default();
        let mut a = BucketAllocator::new(range, &small);
        assert_eq!(a.available(PageSize::Size16K), 2);
        assert!(a.alloc(PageSize::Size16K).is_some());
        assert!(a.alloc(PageSize::Size16K).is_some());
        assert!(a.alloc(PageSize::Size16K).is_none());
        assert!(
            a.alloc(PageSize::Size64K).is_none(),
            "no 64 KB class at all"
        );
    }

    #[test]
    fn bucket_free_recycles() {
        let mut a = BucketAllocator::paper_default();
        let x = a.alloc(PageSize::Size1M).unwrap();
        let before = a.available(PageSize::Size1M);
        a.free(x, PageSize::Size1M);
        assert_eq!(a.available(PageSize::Size1M), before + 1);
        assert_eq!(a.alloc(PageSize::Size1M), Some(x), "LIFO reuse");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn bucket_double_free_panics() {
        let mut a = BucketAllocator::paper_default();
        let x = a.alloc(PageSize::Size16K).unwrap();
        a.free(x, PageSize::Size16K);
        a.free(x, PageSize::Size16K);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn bucket_free_wrong_class_panics() {
        let mut a = BucketAllocator::paper_default();
        let x = a.alloc(PageSize::Size16K).unwrap();
        a.free(x, PageSize::Size64K);
    }

    #[test]
    fn first_bucket_allocation_is_range_base() {
        let mut a = BucketAllocator::paper_default();
        assert_eq!(
            a.alloc(PageSize::Size16K).unwrap().bus(),
            PhysAddr::new(0x8000_0000)
        );
    }

    fn buddy() -> BuddyAllocator {
        BuddyAllocator::new(ShadowRange::paper_default())
    }

    #[test]
    fn buddy_allocates_aligned_regions() {
        let mut b = buddy();
        for size in PageSize::SUPERPAGES {
            let addr = b.alloc(size).expect("space available");
            assert!(addr.is_aligned(size.bytes()));
        }
    }

    #[test]
    fn buddy_splits_and_recombines() {
        let mut b = buddy();
        let a1 = b.alloc(PageSize::Size16K).unwrap();
        let a2 = b.alloc(PageSize::Size16K).unwrap();
        assert_ne!(a1, a2);
        b.free(a1, PageSize::Size16K);
        b.free(a2, PageSize::Size16K);
        // Everything coalesced: one maximal block again.
        assert_eq!(
            b.available(PageSize::Size16M),
            (512 << 20) / (16 << 20),
            "full recombination"
        );
    }

    #[test]
    fn buddy_flexes_between_size_classes() {
        // Unlike buckets, a buddy can turn freed small regions back into
        // large ones.
        let range = ShadowRange::new(PhysAddr::new(0x8000_0000), 16 << 20);
        let mut b = BuddyAllocator::new(range);
        // Consume everything as 16 KB regions.
        let mut regions = Vec::new();
        while let Some(a) = b.alloc(PageSize::Size16K) {
            regions.push(a);
        }
        assert_eq!(regions.len(), 1024);
        assert_eq!(b.available(PageSize::Size16M), 0);
        for a in regions {
            b.free(a, PageSize::Size16K);
        }
        assert_eq!(b.available(PageSize::Size16M), 1);
        assert!(b.alloc(PageSize::Size16M).is_some());
    }

    #[test]
    fn buddy_counts_carvable_blocks() {
        let range = ShadowRange::new(PhysAddr::new(0x8000_0000), 16 << 20);
        let b = BuddyAllocator::new(range);
        assert_eq!(b.available(PageSize::Size16K), 1024);
        assert_eq!(b.available(PageSize::Size4M), 4);
        assert_eq!(b.available(PageSize::Size16M), 1);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn buddy_foreign_free_panics() {
        let mut b = buddy();
        b.free(
            ShadowAddr::from_bus(PhysAddr::new(0x8000_0000)),
            PageSize::Size16K,
        );
    }

    #[test]
    #[should_panic(expected = "order")]
    fn buddy_wrong_size_free_panics() {
        let mut b = buddy();
        let a = b.alloc(PageSize::Size64K).unwrap();
        b.free(a, PageSize::Size16K);
    }

    #[test]
    fn buddy_requests_larger_than_space_fail() {
        let range = ShadowRange::new(PhysAddr::new(0x8000_0000), MIN_BLOCK);
        let mut b = BuddyAllocator::new(range);
        assert!(b.alloc(PageSize::Size64K).is_none());
        assert!(b.alloc(PageSize::Size16K).is_some());
    }

    #[test]
    fn page_size_constants_consistent() {
        // MIN_BLOCK must equal the smallest superpage.
        assert_eq!(MIN_BLOCK, PageSize::Size16K.bytes());
        assert_eq!(MIN_BLOCK, 4 * PAGE_SIZE);
    }
}
