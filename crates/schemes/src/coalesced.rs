//! A coalesced TLB: contiguous VPN→PFN runs detected at fill time and
//! stored as ranged entries (Ban et al., arXiv:1908.08774).
//!
//! Where the paper's MTLB buys reach by *manufacturing* contiguity in
//! shadow space, a coalescing TLB *harvests* whatever contiguity the
//! frame allocator produced by accident: at fill time the kernel hands
//! over the run of physically contiguous, uniformly protected base
//! pages around the faulting page (see
//! [`TranslationScheme::wants_contiguity`]), and the TLB stores the
//! whole run in one entry of up to [`MAX_COALESCE`] pages. Reach per
//! entry grows only as far as the allocator happens to cooperate —
//! which is exactly the design point fig5 compares against shadow
//! superpages.

use core::any::Any;

use mtlb_tlb::{ContigInfo, LookupOutcome, TlbEntry, TlbStats, TranslationScheme};
use mtlb_types::{
    AccessKind, Fault, PageSize, Ppn, PrivilegeLevel, Prot, VirtAddr, Vpn, PAGE_SIZE,
};

/// Maximum base pages one coalesced entry may span — the PTE-cache-line
/// neighbourhood a hardware coalescing TLB can inspect during one walk
/// (matches the kernel's contiguity scan window).
pub const MAX_COALESCE: u64 = 8;

/// One ranged entry: `pages` base pages starting at `base_vpn`, backed
/// by the contiguous frames starting at `base_pfn`.
#[derive(Clone, Copy, Debug)]
struct Range {
    base_vpn: u64,
    base_pfn: u64,
    pages: u64,
    prot: Prot,
    used: bool,
}

impl Range {
    fn covers(&self, vpn: u64) -> bool {
        vpn.wrapping_sub(self.base_vpn) < self.pages
    }

    fn overlaps(&self, vpn: u64, pages: u64) -> bool {
        self.base_vpn < vpn.saturating_add(pages) && vpn < self.base_vpn + self.pages
    }

    /// Synthesizes the per-page view of this range at `vpn` (which must
    /// be covered): a plain 4 KB [`TlbEntry`].
    fn entry_at(&self, vpn: u64) -> Option<TlbEntry> {
        let delta = vpn.wrapping_sub(self.base_vpn);
        TlbEntry::new(
            Vpn::new(vpn),
            Ppn::new(self.base_pfn + delta),
            PageSize::Base4K,
            self.prot,
        )
    }
}

/// Extra counters specific to the coalesced scheme.
///
/// Invariant (checked by `Machine::audit`): `single_fills +
/// coalesced_fills` equals the shared [`TlbStats::fills`] counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalescedStats {
    /// Fills that produced a one-page entry (no usable contiguity).
    pub single_fills: u64,
    /// Fills that produced or extended a multi-page entry.
    pub coalesced_fills: u64,
    /// Fills absorbed by extending an adjacent resident range.
    pub merges: u64,
    /// Longest run (in base pages) any entry ever held.
    pub max_run_pages: u64,
}

/// The coalesced TLB. Fixed number of ranged entries, NRU replacement
/// (use bit per entry, rotating hand, generation reset — mirroring the
/// paper TLB's policy so the comparison isolates *reach*, not
/// replacement). Locked kernel block entries live in a side list and
/// are never replaced or purged.
#[derive(Debug)]
pub struct CoalescedTlb {
    capacity: usize,
    slots: Vec<Option<Range>>,
    locked: Vec<TlbEntry>,
    hand: usize,
    /// Slot token of the most recent hit; `capacity + i` addresses
    /// locked entry `i`.
    mru: usize,
    generation: u64,
    stats: TlbStats,
    extra: CoalescedStats,
}

impl CoalescedTlb {
    /// Creates an empty coalesced TLB with `capacity` ranged entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB must have at least one entry");
        CoalescedTlb {
            capacity,
            slots: vec![None; capacity],
            locked: Vec::new(),
            hand: 0,
            mru: 0,
            generation: 0,
            stats: TlbStats::default(),
            extra: CoalescedStats::default(),
        }
    }

    /// The scheme-specific counters (reconciled by `Machine::audit`).
    #[must_use]
    pub fn scheme_stats(&self) -> CoalescedStats {
        self.extra
    }

    fn find_covering(&self, vpn: u64) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|r| r.covers(vpn)))
    }

    fn pick_victim(&mut self) -> usize {
        for round in 0..2 {
            let mut idx = self.hand;
            for _ in 0..self.capacity {
                if let Some(r) = &self.slots[idx] {
                    if !r.used {
                        return idx;
                    }
                }
                idx += 1;
                if idx == self.capacity {
                    idx = 0;
                }
            }
            if round == 0 {
                self.stats.nru_resets = self.stats.nru_resets.saturating_add(1);
                for r in self.slots.iter_mut().flatten() {
                    r.used = false;
                }
            }
        }
        // Unreachable in practice: after the reset every occupied slot
        // has a clear use bit. Fall back to the hand position.
        self.hand
    }

    fn note_run(&mut self, pages: u64) {
        if pages > 1 {
            self.extra.coalesced_fills = self.extra.coalesced_fills.saturating_add(1);
        } else {
            self.extra.single_fills = self.extra.single_fills.saturating_add(1);
        }
        self.extra.max_run_pages = self.extra.max_run_pages.max(pages);
    }
}

impl TranslationScheme for CoalescedTlb {
    fn name(&self) -> &'static str {
        "coalesced"
    }

    fn translate(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        level: PrivilegeLevel,
    ) -> LookupOutcome {
        for (i, e) in self.locked.iter().enumerate() {
            if let Some(pa) = e.translate(va) {
                self.stats.hits = self.stats.hits.saturating_add(1);
                if !e.prot().permits(kind, level) {
                    return LookupOutcome::Fault(Fault::Protection { va, kind });
                }
                self.mru = self.capacity + i;
                return LookupOutcome::Hit(pa);
            }
        }
        let vpn = va.vpn().index();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(r) = slot {
                if r.covers(vpn) {
                    self.stats.hits = self.stats.hits.saturating_add(1);
                    if !r.prot.permits(kind, level) {
                        return LookupOutcome::Fault(Fault::Protection { va, kind });
                    }
                    r.used = true;
                    self.mru = i;
                    let delta = vpn.wrapping_sub(r.base_vpn);
                    let pa = Ppn::new(r.base_pfn + delta).base_addr() + va.page_offset();
                    return LookupOutcome::Hit(pa);
                }
            }
        }
        self.stats.misses = self.stats.misses.saturating_add(1);
        LookupOutcome::Miss
    }

    fn entry_for(&self, vpn: Vpn) -> Option<TlbEntry> {
        let v = vpn.index();
        for e in &self.locked {
            if e.covers(vpn) {
                return Some(*e);
            }
        }
        self.find_covering(v)
            .and_then(|i| self.slots[i].as_ref().and_then(|r| r.entry_at(v)))
    }

    fn slot_for(&self, vpn: Vpn) -> Option<(usize, TlbEntry)> {
        let v = vpn.index();
        for (i, e) in self.locked.iter().enumerate() {
            if e.covers(vpn) {
                return Some((self.capacity + i, *e));
            }
        }
        let i = self.find_covering(v)?;
        let entry = self.slots[i].as_ref().and_then(|r| r.entry_at(v))?;
        Some((i, entry))
    }

    fn last_hit_slot(&self) -> usize {
        self.mru
    }

    fn note_fast_hits(&mut self, slot: usize, n: u64) {
        if let Some(r) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) {
            r.used = true;
        }
        self.mru = slot;
        self.stats.hits = self.stats.hits.saturating_add(n);
    }

    fn wants_contiguity(&self) -> bool {
        true
    }

    fn fill(&mut self, entry: TlbEntry, contig: &ContigInfo) {
        self.generation = self.generation.wrapping_add(1);
        self.stats.fills = self.stats.fills.saturating_add(1);
        let anchor = entry.vpn_base().index();
        let (base_vpn, base_pfn, pages) = if entry.size() == PageSize::Base4K {
            let run_base = contig.base.index();
            let run_pfn = contig.pfn.index();
            let run_pages = contig.pages.min(MAX_COALESCE);
            // The run must still contain the filled page after the cap;
            // if not (malformed metadata), coalesce nothing.
            if anchor.wrapping_sub(run_base) < run_pages {
                debug_assert_eq!(
                    run_pfn + (anchor - run_base),
                    entry.pfn_base().index(),
                    "contiguity run disagrees with the filled PTE"
                );
                (run_base, run_pfn, run_pages)
            } else {
                (anchor, entry.pfn_base().index(), 1)
            }
        } else {
            // A (shadow) superpage is one contiguous run by construction.
            (anchor, entry.pfn_base().index(), entry.size().base_pages())
        };
        // Discard overlapping unlocked ranges (a TLB never holds two
        // entries for one virtual address) — uncounted, like the paper
        // TLB's insert-time discard.
        for slot in self.slots.iter_mut() {
            if slot.as_ref().is_some_and(|r| r.overlaps(base_vpn, pages)) {
                *slot = None;
            }
        }
        // Extend an adjacent resident range instead of spending a slot,
        // when the combined run stays within the coalescing limit.
        let prot = entry.prot();
        if pages < MAX_COALESCE {
            for r in self.slots.iter_mut().flatten() {
                if r.prot != prot || r.pages + pages > MAX_COALESCE {
                    continue;
                }
                if r.base_vpn + r.pages == base_vpn && r.base_pfn + r.pages == base_pfn {
                    r.pages += pages;
                    r.used = true;
                    let run = r.pages;
                    self.extra.merges = self.extra.merges.saturating_add(1);
                    self.note_run(run);
                    return;
                }
                if base_vpn + pages == r.base_vpn && base_pfn + pages == r.base_pfn {
                    r.base_vpn = base_vpn;
                    r.base_pfn = base_pfn;
                    r.pages += pages;
                    r.used = true;
                    let run = r.pages;
                    self.extra.merges = self.extra.merges.saturating_add(1);
                    self.note_run(run);
                    return;
                }
            }
        }
        let new = Range {
            base_vpn,
            base_pfn,
            pages,
            prot,
            used: true,
        };
        self.note_run(pages);
        if let Some(i) = self.slots.iter().position(|s| s.is_none()) {
            self.slots[i] = Some(new);
            return;
        }
        let victim = self.pick_victim();
        self.stats.replacements = self.stats.replacements.saturating_add(1);
        self.slots[victim] = Some(new);
        self.hand = victim + 1;
        if self.hand == self.capacity {
            self.hand = 0;
        }
    }

    fn insert_locked(&mut self, entry: TlbEntry) {
        self.generation = self.generation.wrapping_add(1);
        self.locked.push(entry);
    }

    fn purge_range(&mut self, vpn: Vpn, pages: u64) -> usize {
        self.generation = self.generation.wrapping_add(1);
        let v = vpn.index();
        let mut removed = 0;
        for slot in self.slots.iter_mut() {
            if slot.as_ref().is_some_and(|r| r.overlaps(v, pages)) {
                *slot = None;
                removed += 1;
            }
        }
        self.stats.purges = self.stats.purges.saturating_add(removed as u64);
        removed
    }

    fn purge_all(&mut self) -> usize {
        self.generation = self.generation.wrapping_add(1);
        let mut removed = 0;
        for slot in self.slots.iter_mut() {
            if slot.is_some() {
                *slot = None;
                removed += 1;
            }
        }
        self.stats.purges = self.stats.purges.saturating_add(removed as u64);
        removed
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.extra = CoalescedStats::default();
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn occupancy(&self) -> usize {
        self.slots.iter().flatten().count() + self.locked.len()
    }

    fn reach_bytes(&self) -> u64 {
        let ranged: u64 = self
            .slots
            .iter()
            .flatten()
            .map(|r| r.pages * PAGE_SIZE)
            .sum();
        let locked: u64 = self.locked.iter().map(|e| e.size().bytes()).sum();
        ranged + locked
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::PhysAddr;

    fn fill4k(tlb: &mut CoalescedTlb, vpn: u64, pfn: u64, run_base: u64, run_pfn: u64, run: u64) {
        let e = TlbEntry::new(Vpn::new(vpn), Ppn::new(pfn), PageSize::Base4K, Prot::RW)
            .expect("base pages are always aligned");
        let contig = ContigInfo {
            base: Vpn::new(run_base),
            pfn: Ppn::new(run_pfn),
            pages: run,
        };
        tlb.fill(e, &contig);
    }

    fn read(tlb: &mut CoalescedTlb, va: u64) -> LookupOutcome {
        tlb.translate(VirtAddr::new(va), AccessKind::Read, PrivilegeLevel::User)
    }

    #[test]
    fn a_contiguous_run_occupies_one_entry_and_covers_all_pages() {
        let mut tlb = CoalescedTlb::new(4);
        // Pages 0x10..0x18 backed by frames 0x80..0x88.
        fill4k(&mut tlb, 0x12, 0x82, 0x10, 0x80, 8);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(
            read(&mut tlb, 0x10_000),
            LookupOutcome::Hit(PhysAddr::new(0x80_000))
        );
        assert_eq!(
            read(&mut tlb, 0x17_abc),
            LookupOutcome::Hit(PhysAddr::new(0x87_abc))
        );
        assert_eq!(read(&mut tlb, 0x18_000), LookupOutcome::Miss);
        assert_eq!(tlb.scheme_stats().coalesced_fills, 1);
        assert_eq!(tlb.scheme_stats().max_run_pages, 8);
        assert_eq!(tlb.reach_bytes(), 8 * 4096);
    }

    #[test]
    fn no_contiguity_falls_back_to_single_pages() {
        let mut tlb = CoalescedTlb::new(4);
        fill4k(&mut tlb, 1, 0x10, 1, 0x10, 1);
        fill4k(&mut tlb, 2, 0x30, 2, 0x30, 1);
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(tlb.scheme_stats().single_fills, 2);
        assert_eq!(tlb.scheme_stats().coalesced_fills, 0);
    }

    #[test]
    fn adjacent_fill_merges_into_the_resident_range() {
        let mut tlb = CoalescedTlb::new(4);
        fill4k(&mut tlb, 4, 0x40, 4, 0x40, 2); // pages 4..6 -> frames 0x40..0x42
        fill4k(&mut tlb, 6, 0x42, 6, 0x42, 1); // exactly adjacent
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.scheme_stats().merges, 1);
        assert_eq!(
            read(&mut tlb, 0x6010),
            LookupOutcome::Hit(PhysAddr::new(0x42_010))
        );
        // Fills still count one per fill() call.
        assert_eq!(tlb.stats().fills, 2);
        let s = tlb.scheme_stats();
        assert_eq!(s.single_fills + s.coalesced_fills, tlb.stats().fills);
    }

    #[test]
    fn purge_drops_whole_overlapping_ranges() {
        let mut tlb = CoalescedTlb::new(4);
        fill4k(&mut tlb, 0x10, 0x80, 0x10, 0x80, 8);
        assert_eq!(tlb.purge_range(Vpn::new(0x14), 1), 1);
        assert_eq!(read(&mut tlb, 0x10_000), LookupOutcome::Miss);
        assert_eq!(tlb.stats().purges, 1);
    }

    #[test]
    fn locked_entries_survive_purge_all_and_hit_first() {
        let mut tlb = CoalescedTlb::new(2);
        let block = TlbEntry::new(
            Vpn::new(0),
            Ppn::new(0),
            PageSize::Size16M,
            Prot::RW | Prot::SUPERVISOR_ONLY,
        )
        .expect("aligned");
        tlb.insert_locked(block);
        fill4k(&mut tlb, 0x9000, 0x100, 0x9000, 0x100, 1);
        assert_eq!(tlb.purge_all(), 1);
        assert_eq!(tlb.occupancy(), 1);
        let out = tlb.translate(
            VirtAddr::new(0x1000),
            AccessKind::Read,
            PrivilegeLevel::Supervisor,
        );
        assert_eq!(out, LookupOutcome::Hit(PhysAddr::new(0x1000)));
        assert_eq!(tlb.last_hit_slot(), 2, "locked slots sit above capacity");
    }

    #[test]
    fn overfill_replaces_via_nru() {
        let mut tlb = CoalescedTlb::new(2);
        fill4k(&mut tlb, 1, 0x10, 1, 0x10, 1);
        fill4k(&mut tlb, 2, 0x20, 2, 0x20, 1);
        fill4k(&mut tlb, 9, 0x90, 9, 0x90, 1);
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(tlb.stats().replacements, 1);
        assert!(tlb.entry_for(Vpn::new(9)).is_some());
    }

    #[test]
    fn synthesized_entries_translate_per_page() {
        let mut tlb = CoalescedTlb::new(4);
        fill4k(&mut tlb, 0x10, 0x80, 0x10, 0x80, 4);
        let e = tlb.entry_for(Vpn::new(0x12)).expect("covered");
        assert_eq!(e.size(), PageSize::Base4K);
        assert_eq!(
            e.translate(VirtAddr::new(0x12_345)),
            Some(PhysAddr::new(0x82_345))
        );
        let (slot, e2) = tlb.slot_for(Vpn::new(0x12)).expect("covered");
        assert_eq!(e2, e);
        assert!(slot < tlb.capacity());
    }
}
