//! Rival TLB-reach designs behind the [`TranslationScheme`] trait.
//!
//! The paper's machine always translates through the fully-associative
//! NRU [`CpuTlb`] (`mtlb-tlb`); this crate supplies the competitors the
//! fig5 experiment pits against it on identical recorded address
//! streams:
//!
//! * [`CoalescedTlb`] — detects contiguous VPN→PFN runs at fill time
//!   and stores them as ranged entries (Ban et al., arXiv:1908.08774).
//!   Earns reach from whatever physical contiguity the frame allocator
//!   produces naturally.
//! * [`SplitTlb`] — a multi-page-size split TLB with fixed cpuid-style
//!   per-size-class arrays (64×4-way @ 4 KB, 32×4-way mid, 8 FA
//!   large). Earns reach only when the OS actually maps superpages.
//!
//! [`SchemeConfig`] is the serializable selector the machine
//! configuration carries; its [`build`](SchemeConfig::build) factory
//! constructs the chosen front end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalesced;
mod split;

pub use coalesced::{CoalescedStats, CoalescedTlb, MAX_COALESCE};
pub use split::{SplitStats, SplitTlb};

use mtlb_tlb::{CpuTlb, TranslationScheme};

/// Which translation front end a machine uses.
///
/// `Cpu` (the default) is the paper's TLB and is bit-identical to the
/// machine before this selector existed; the rivals are the fig5
/// competitors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchemeConfig {
    /// The paper's fully-associative NRU TLB ([`CpuTlb`]).
    #[default]
    Cpu,
    /// Contiguity-coalescing TLB ([`CoalescedTlb`]).
    Coalesced,
    /// Multi-page-size split TLB ([`SplitTlb`]; fixed geometry — the
    /// configured entry count does not apply).
    Split,
}

impl SchemeConfig {
    /// Short stable identifier (matches
    /// [`TranslationScheme::name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SchemeConfig::Cpu => "cpu",
            SchemeConfig::Coalesced => "coalesced",
            SchemeConfig::Split => "split",
        }
    }

    /// Builds the selected front end. `entries` sizes the schemes with
    /// a configurable capacity (`Cpu`, `Coalesced`); the split TLB's
    /// geometry is fixed by design.
    #[must_use]
    pub fn build(&self, entries: usize) -> Box<dyn TranslationScheme> {
        match self {
            SchemeConfig::Cpu => Box::new(CpuTlb::new(entries)),
            SchemeConfig::Coalesced => Box::new(CoalescedTlb::new(entries)),
            SchemeConfig::Split => Box::new(SplitTlb::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_the_named_scheme() {
        for (cfg, name) in [
            (SchemeConfig::Cpu, "cpu"),
            (SchemeConfig::Coalesced, "coalesced"),
            (SchemeConfig::Split, "split"),
        ] {
            let scheme = cfg.build(96);
            assert_eq!(scheme.name(), name);
            assert_eq!(cfg.name(), name);
            assert_eq!(scheme.occupancy(), 0);
        }
        assert_eq!(SchemeConfig::default(), SchemeConfig::Cpu);
        assert_eq!(SchemeConfig::Cpu.build(64).capacity(), 64);
        assert_eq!(SchemeConfig::Split.build(64).capacity(), 104);
    }
}
