//! A multi-page-size split TLB with fixed per-size-class structures,
//! modelled on real cpuid-reported geometries (a 4 KB set-associative
//! array, a mid-size superpage array, and a small fully-associative
//! array for the largest pages), scaled to this simulator's PA-RISC
//! page-size ladder:
//!
//! * 64 entries, 4-way set-associative, 4 KB pages only;
//! * 32 entries, 4-way set-associative, mid superpages (16 KB – 256 KB);
//! * 8 entries, fully associative, large superpages (1 MB – 16 MB).
//!
//! Unlike the paper's unified fully-associative TLB, an entry here can
//! only live in the array matching its page size — big reach *if* the
//! OS produces superpages, but the 4 KB working set is stuck with the
//! 64-entry array no matter what. Locked kernel block entries live in
//! a side list (PA-RISC block-TLB style) and survive every purge.

use core::any::Any;

use mtlb_tlb::{ContigInfo, LookupOutcome, TlbEntry, TlbStats, TranslationScheme};
use mtlb_types::{AccessKind, Fault, PageSize, PrivilegeLevel, VirtAddr, Vpn};

/// 4 KB array: 64 entries, 4-way (16 sets).
const BASE_WAYS: usize = 4;
/// Sets in the 4 KB array.
const BASE_SETS: usize = 16;
/// Mid array (16 KB – 256 KB): 32 entries, 4-way (8 sets).
const MID_WAYS: usize = 4;
/// Sets in the mid array.
const MID_SETS: usize = 8;
/// Large array (1 MB – 16 MB): fully associative.
const LARGE_ENTRIES: usize = 8;
/// Total replaceable entries across the three arrays.
const TOTAL_ENTRIES: usize = BASE_SETS * BASE_WAYS + MID_SETS * MID_WAYS + LARGE_ENTRIES;
/// Flat slot-token base of the mid array.
const MID_BASE: usize = BASE_SETS * BASE_WAYS;
/// Flat slot-token base of the large array.
const LARGE_BASE: usize = MID_BASE + MID_SETS * MID_WAYS;

/// Which array a page size maps to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Base,
    Mid,
    Large,
}

fn class_of(size: PageSize) -> Class {
    match size {
        PageSize::Base4K => Class::Base,
        PageSize::Size16K | PageSize::Size64K | PageSize::Size256K => Class::Mid,
        PageSize::Size1M | PageSize::Size4M | PageSize::Size16M => Class::Large,
    }
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    entry: TlbEntry,
    used: bool,
}

/// Per-array fill counters for the split scheme.
///
/// Invariant (checked by `Machine::audit`): the three fields sum to the
/// shared [`TlbStats::fills`] counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Fills into the 4 KB array.
    pub fills_base: u64,
    /// Fills into the mid (16 KB – 256 KB) array.
    pub fills_mid: u64,
    /// Fills into the large (1 MB – 16 MB) array.
    pub fills_large: u64,
}

/// The split multi-page-size TLB. Geometry is fixed (the point of the
/// scheme); the `entries` knob other schemes sweep does not apply.
#[derive(Debug)]
pub struct SplitTlb {
    /// All replaceable entries, flat: 4 KB sets, then mid sets, then
    /// the large array. Slot tokens index this vector; locked entries
    /// use tokens `>= TOTAL_ENTRIES`.
    slots: Vec<Option<Slot>>,
    locked: Vec<TlbEntry>,
    mru: usize,
    generation: u64,
    stats: TlbStats,
    extra: SplitStats,
}

impl Default for SplitTlb {
    fn default() -> Self {
        SplitTlb::new()
    }
}

impl SplitTlb {
    /// Creates an empty split TLB with the fixed 64/32/8 geometry.
    #[must_use]
    pub fn new() -> Self {
        SplitTlb {
            slots: vec![None; TOTAL_ENTRIES],
            locked: Vec::new(),
            mru: 0,
            generation: 0,
            stats: TlbStats::default(),
            extra: SplitStats::default(),
        }
    }

    /// The scheme-specific counters (reconciled by `Machine::audit`).
    #[must_use]
    pub fn scheme_stats(&self) -> SplitStats {
        self.extra
    }

    /// Flat slot range `[start, start + ways)` an entry of this size
    /// and base VPN may occupy.
    fn set_range(size: PageSize, vpn_base: Vpn) -> (usize, usize) {
        let frame = vpn_base.index() / size.base_pages();
        match class_of(size) {
            Class::Base => {
                let set = (frame as usize) % BASE_SETS;
                (set * BASE_WAYS, BASE_WAYS)
            }
            Class::Mid => {
                let set = (frame as usize) % MID_SETS;
                (MID_BASE + set * MID_WAYS, MID_WAYS)
            }
            Class::Large => (LARGE_BASE, LARGE_ENTRIES),
        }
    }

    /// The slot holding an entry of exactly `size` covering `vpn`.
    fn find_sized(&self, size: PageSize, vpn: Vpn) -> Option<usize> {
        let base = vpn.align_down_to(size);
        let (start, ways) = Self::set_range(size, base);
        (start..start + ways).find(|&i| {
            self.slots[i]
                .as_ref()
                .is_some_and(|s| s.entry.size() == size && s.entry.vpn_base() == base)
        })
    }

    fn find_covering(&self, vpn: Vpn) -> Option<usize> {
        PageSize::ALL
            .iter()
            .find_map(|&size| self.find_sized(size, vpn))
    }

    /// Victim way within `[start, start + ways)`: first free, else first
    /// not-recently-used, else reset the set's use bits and take the
    /// first way.
    fn pick_way(&mut self, start: usize, ways: usize) -> usize {
        for i in start..start + ways {
            if self.slots[i].is_none() {
                return i;
            }
        }
        for i in start..start + ways {
            if self.slots[i].as_ref().is_some_and(|s| !s.used) {
                self.stats.replacements = self.stats.replacements.saturating_add(1);
                return i;
            }
        }
        self.stats.nru_resets = self.stats.nru_resets.saturating_add(1);
        for i in start + 1..start + ways {
            if let Some(s) = self.slots[i].as_mut() {
                s.used = false;
            }
        }
        self.stats.replacements = self.stats.replacements.saturating_add(1);
        start
    }
}

impl TranslationScheme for SplitTlb {
    fn name(&self) -> &'static str {
        "split"
    }

    fn translate(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        level: PrivilegeLevel,
    ) -> LookupOutcome {
        for (i, e) in self.locked.iter().enumerate() {
            if let Some(pa) = e.translate(va) {
                self.stats.hits = self.stats.hits.saturating_add(1);
                if !e.prot().permits(kind, level) {
                    return LookupOutcome::Fault(Fault::Protection { va, kind });
                }
                self.mru = TOTAL_ENTRIES + i;
                return LookupOutcome::Hit(pa);
            }
        }
        if let Some(i) = self.find_covering(va.vpn()) {
            if let Some(s) = self.slots[i].as_mut() {
                self.stats.hits = self.stats.hits.saturating_add(1);
                if !s.entry.prot().permits(kind, level) {
                    return LookupOutcome::Fault(Fault::Protection { va, kind });
                }
                if let Some(pa) = s.entry.translate(va) {
                    s.used = true;
                    self.mru = i;
                    return LookupOutcome::Hit(pa);
                }
            }
        }
        self.stats.misses = self.stats.misses.saturating_add(1);
        LookupOutcome::Miss
    }

    fn entry_for(&self, vpn: Vpn) -> Option<TlbEntry> {
        for e in &self.locked {
            if e.covers(vpn) {
                return Some(*e);
            }
        }
        self.find_covering(vpn)
            .and_then(|i| self.slots[i].as_ref().map(|s| s.entry))
    }

    fn slot_for(&self, vpn: Vpn) -> Option<(usize, TlbEntry)> {
        for (i, e) in self.locked.iter().enumerate() {
            if e.covers(vpn) {
                return Some((TOTAL_ENTRIES + i, *e));
            }
        }
        let i = self.find_covering(vpn)?;
        self.slots[i].as_ref().map(|s| (i, s.entry))
    }

    fn last_hit_slot(&self) -> usize {
        self.mru
    }

    fn note_fast_hits(&mut self, slot: usize, n: u64) {
        if let Some(s) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) {
            s.used = true;
        }
        self.mru = slot;
        self.stats.hits = self.stats.hits.saturating_add(n);
    }

    fn fill(&mut self, entry: TlbEntry, _contig: &ContigInfo) {
        self.generation = self.generation.wrapping_add(1);
        self.stats.fills = self.stats.fills.saturating_add(1);
        // Discard overlapping unlocked entries across every array.
        let pages = entry.size().base_pages();
        for slot in self.slots.iter_mut() {
            if slot
                .as_ref()
                .is_some_and(|s| s.entry.overlaps(entry.vpn_base(), pages))
            {
                *slot = None;
            }
        }
        match class_of(entry.size()) {
            Class::Base => self.extra.fills_base = self.extra.fills_base.saturating_add(1),
            Class::Mid => self.extra.fills_mid = self.extra.fills_mid.saturating_add(1),
            Class::Large => self.extra.fills_large = self.extra.fills_large.saturating_add(1),
        }
        let (start, ways) = Self::set_range(entry.size(), entry.vpn_base());
        let way = self.pick_way(start, ways);
        self.slots[way] = Some(Slot { entry, used: true });
    }

    fn insert_locked(&mut self, entry: TlbEntry) {
        self.generation = self.generation.wrapping_add(1);
        self.locked.push(entry);
    }

    fn purge_range(&mut self, vpn: Vpn, pages: u64) -> usize {
        self.generation = self.generation.wrapping_add(1);
        let mut removed = 0;
        for slot in self.slots.iter_mut() {
            if slot.as_ref().is_some_and(|s| s.entry.overlaps(vpn, pages)) {
                *slot = None;
                removed += 1;
            }
        }
        self.stats.purges = self.stats.purges.saturating_add(removed as u64);
        removed
    }

    fn purge_all(&mut self) -> usize {
        self.generation = self.generation.wrapping_add(1);
        let mut removed = 0;
        for slot in self.slots.iter_mut() {
            if slot.is_some() {
                *slot = None;
                removed += 1;
            }
        }
        self.stats.purges = self.stats.purges.saturating_add(removed as u64);
        removed
    }

    fn stats(&self) -> TlbStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.extra = SplitStats::default();
    }

    fn capacity(&self) -> usize {
        TOTAL_ENTRIES
    }

    fn occupancy(&self) -> usize {
        self.slots.iter().flatten().count() + self.locked.len()
    }

    fn reach_bytes(&self) -> u64 {
        let unlocked: u64 = self
            .slots
            .iter()
            .flatten()
            .map(|s| s.entry.size().bytes())
            .sum();
        let locked: u64 = self.locked.iter().map(|e| e.size().bytes()).sum();
        unlocked + locked
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::{PhysAddr, Ppn, Prot};

    fn fill(tlb: &mut SplitTlb, vpn: u64, ppn: u64, size: PageSize) {
        let e =
            TlbEntry::new(Vpn::new(vpn), Ppn::new(ppn), size, Prot::RW).expect("aligned in tests");
        tlb.fill(e, &ContigInfo::for_entry(&e));
    }

    fn read(tlb: &mut SplitTlb, va: u64) -> LookupOutcome {
        tlb.translate(VirtAddr::new(va), AccessKind::Read, PrivilegeLevel::User)
    }

    #[test]
    fn each_size_class_lands_in_its_own_array() {
        let mut tlb = SplitTlb::new();
        fill(&mut tlb, 1, 0x10, PageSize::Base4K);
        fill(&mut tlb, 4, 0x80240, PageSize::Size16K);
        fill(&mut tlb, 0x400, 0x400, PageSize::Size1M);
        let s = tlb.scheme_stats();
        assert_eq!((s.fills_base, s.fills_mid, s.fills_large), (1, 1, 1));
        assert_eq!(
            s.fills_base + s.fills_mid + s.fills_large,
            tlb.stats().fills
        );
        assert_eq!(
            read(&mut tlb, 0x1080),
            LookupOutcome::Hit(PhysAddr::new(0x10_080))
        );
        assert_eq!(
            read(&mut tlb, 0x5040),
            LookupOutcome::Hit(PhysAddr::new(0x8024_1040))
        );
        assert_eq!(
            read(&mut tlb, 0x400_123),
            LookupOutcome::Hit(PhysAddr::new(0x400_123))
        );
        assert_eq!(tlb.occupancy(), 3);
        assert_eq!(
            tlb.reach_bytes(),
            4096 + PageSize::Size16K.bytes() + PageSize::Size1M.bytes()
        );
    }

    #[test]
    fn base_array_conflicts_within_one_set() {
        let mut tlb = SplitTlb::new();
        // Five 4 KB pages mapping to the same set (stride = BASE_SETS
        // pages) overflow the 4 ways; the NRU victim is evicted.
        for i in 0..5u64 {
            fill(
                &mut tlb,
                0x100 + i * BASE_SETS as u64,
                0x500 + i,
                PageSize::Base4K,
            );
        }
        assert_eq!(tlb.stats().replacements, 1);
        let resident = (0..5u64)
            .filter(|i| {
                tlb.entry_for(Vpn::new(0x100 + i * BASE_SETS as u64))
                    .is_some()
            })
            .count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn capacity_is_the_fixed_geometry() {
        let tlb = SplitTlb::new();
        assert_eq!(tlb.capacity(), 104);
    }

    #[test]
    fn superpage_fill_discards_covered_base_entries() {
        let mut tlb = SplitTlb::new();
        fill(&mut tlb, 4, 0x80240, PageSize::Base4K);
        fill(&mut tlb, 5, 0x80241, PageSize::Base4K);
        fill(&mut tlb, 4, 0x80240, PageSize::Size16K);
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(
            read(&mut tlb, 0x7fff),
            LookupOutcome::Hit(PhysAddr::new(0x8024_3fff))
        );
    }

    #[test]
    fn purge_and_locked_semantics() {
        let mut tlb = SplitTlb::new();
        let block = TlbEntry::new(
            Vpn::new(0),
            Ppn::new(0),
            PageSize::Size16M,
            Prot::RW | Prot::SUPERVISOR_ONLY,
        )
        .expect("aligned");
        tlb.insert_locked(block);
        fill(&mut tlb, 0x9000, 0x100, PageSize::Base4K);
        fill(&mut tlb, 0x400, 0x400, PageSize::Size1M);
        assert_eq!(tlb.purge_range(Vpn::new(0x400), 1), 1);
        assert_eq!(tlb.purge_all(), 1);
        assert_eq!(tlb.occupancy(), 1);
        let out = tlb.translate(
            VirtAddr::new(0x2000),
            AccessKind::Read,
            PrivilegeLevel::Supervisor,
        );
        assert_eq!(out, LookupOutcome::Hit(PhysAddr::new(0x2000)));
        assert_eq!(tlb.last_hit_slot(), TOTAL_ENTRIES);
    }

    #[test]
    fn fast_hit_replay_matches_translate_side_effects() {
        let mut tlb = SplitTlb::new();
        fill(&mut tlb, 7, 0x70, PageSize::Base4K);
        let _ = read(&mut tlb, 0x7000);
        let slot = tlb.last_hit_slot();
        let hits_before = tlb.stats().hits;
        let gen = tlb.generation();
        tlb.note_fast_hits(slot, 5);
        assert_eq!(tlb.stats().hits, hits_before + 5);
        assert_eq!(tlb.generation(), gen, "replay must not bump the generation");
    }
}
