//! Scheme-conformance suite: every [`TranslationScheme`] implementation
//! reachable through the [`SchemeConfig`] factory must honour the same
//! behavioural contract the machine and kernel rely on:
//!
//! * fill-then-lookup round trips (translate hits with the right
//!   physical address; `entry_for`/`slot_for` agree with the hit);
//! * `purge_range`/`purge_all` invalidate mappings while locked kernel
//!   block entries survive;
//! * statistics reconcile with the operations performed (fills count
//!   `fill` calls, misses count `Miss` outcomes, `note_fast_hits`
//!   advances the hit counter like real lookups);
//! * the generation counter bumps on every content change and *only*
//!   on content changes — the soundness basis for the machine's
//!   access-memo and fast-forward layers.
//!
//! Each test runs against all three schemes through the factory, so a
//! new scheme added to [`SchemeConfig`] is conformance-checked for
//! free.

use mtlb_schemes::{CoalescedStats, CoalescedTlb, SchemeConfig, SplitStats, SplitTlb};
use mtlb_tlb::{ContigInfo, LookupOutcome, TlbEntry, TlbStats, TranslationScheme};
use mtlb_types::{AccessKind, PageSize, PhysAddr, Ppn, PrivilegeLevel, Prot, VirtAddr, Vpn};

/// Every scheme the factory can build, with a capacity small enough to
/// exercise replacement but large enough for the test working sets.
fn all_schemes() -> Vec<Box<dyn TranslationScheme>> {
    [
        SchemeConfig::Cpu,
        SchemeConfig::Coalesced,
        SchemeConfig::Split,
    ]
    .iter()
    .map(|cfg| cfg.build(8))
    .collect()
}

fn entry4k(vpn: u64, ppn: u64) -> TlbEntry {
    TlbEntry::new(Vpn::new(vpn), Ppn::new(ppn), PageSize::Base4K, Prot::RW)
        .expect("base pages are always aligned")
}

/// Fills a 4 KB mapping with the trivial (single-page) contiguity run,
/// so coalescing schemes behave like the others.
fn fill4k(scheme: &mut dyn TranslationScheme, vpn: u64, ppn: u64) {
    let e = entry4k(vpn, ppn);
    scheme.fill(e, &ContigInfo::for_entry(&e));
}

fn read(scheme: &mut dyn TranslationScheme, va: u64) -> LookupOutcome {
    scheme.translate(VirtAddr::new(va), AccessKind::Read, PrivilegeLevel::User)
}

/// Deliberately non-adjacent (VPN and PFN) mappings: no scheme may
/// merge them, so occupancy and reach are comparable across designs.
const MAPPINGS: [(u64, u64); 3] = [(0x11, 0x210), (0x23, 0x450), (0x35, 0x690)];

#[test]
fn fill_then_lookup_round_trips() {
    for scheme in &mut all_schemes() {
        for (vpn, ppn) in MAPPINGS {
            fill4k(scheme.as_mut(), vpn, ppn);
        }
        for (vpn, ppn) in MAPPINGS {
            let va = vpn * 4096 + 0x123;
            let pa = PhysAddr::new(ppn * 4096 + 0x123);
            assert_eq!(
                read(scheme.as_mut(), va),
                LookupOutcome::Hit(pa),
                "{}: filled mapping must translate",
                scheme.name()
            );
            let e = scheme
                .entry_for(Vpn::new(vpn))
                .unwrap_or_else(|| panic!("{}: entry_for after fill", scheme.name()));
            assert_eq!(e.translate(VirtAddr::new(va)), Some(pa));
            let (_, e2) = scheme
                .slot_for(Vpn::new(vpn))
                .unwrap_or_else(|| panic!("{}: slot_for after fill", scheme.name()));
            assert_eq!(e2, e, "{}: slot_for and entry_for agree", scheme.name());
        }
        assert_eq!(
            read(scheme.as_mut(), 0x77770123),
            LookupOutcome::Miss,
            "{}: unmapped page must miss",
            scheme.name()
        );
        assert!(scheme.entry_for(Vpn::new(0x77770)).is_none());
        assert!(scheme.slot_for(Vpn::new(0x77770)).is_none());
        assert_eq!(scheme.occupancy(), MAPPINGS.len(), "{}", scheme.name());
        assert!(scheme.occupancy() <= scheme.capacity());
        assert_eq!(
            scheme.reach_bytes(),
            MAPPINGS.len() as u64 * 4096,
            "{}: three distinct 4 KB mappings reach 12 KB",
            scheme.name()
        );
    }
}

#[test]
fn purge_range_invalidates_exactly_the_overlap() {
    for scheme in &mut all_schemes() {
        for (vpn, ppn) in MAPPINGS {
            fill4k(scheme.as_mut(), vpn, ppn);
        }
        let (gone_vpn, _) = MAPPINGS[1];
        let removed = scheme.purge_range(Vpn::new(gone_vpn), 1);
        assert_eq!(removed, 1, "{}: one mapping overlaps", scheme.name());
        assert_eq!(
            read(scheme.as_mut(), gone_vpn * 4096),
            LookupOutcome::Miss,
            "{}: purged mapping must miss",
            scheme.name()
        );
        for (vpn, _) in [MAPPINGS[0], MAPPINGS[2]] {
            assert!(
                matches!(read(scheme.as_mut(), vpn * 4096), LookupOutcome::Hit(_)),
                "{}: non-overlapping mappings survive purge_range",
                scheme.name()
            );
        }
        assert_eq!(scheme.stats().purges, 1, "{}", scheme.name());
    }
}

#[test]
fn purge_all_removes_everything_but_locked_entries() {
    for scheme in &mut all_schemes() {
        // A PA-RISC style locked kernel block mapping at VA 0.
        let block = TlbEntry::new(
            Vpn::new(0),
            Ppn::new(0),
            PageSize::Size16M,
            Prot::RW | Prot::SUPERVISOR_ONLY,
        )
        .expect("16M at zero is aligned");
        scheme.insert_locked(block);
        for (vpn, ppn) in MAPPINGS {
            fill4k(scheme.as_mut(), vpn * 0x1000, ppn);
        }
        let removed = scheme.purge_all();
        assert_eq!(removed, MAPPINGS.len(), "{}", scheme.name());
        assert_eq!(
            scheme.occupancy(),
            1,
            "{}: locked entry remains",
            scheme.name()
        );
        for (vpn, _) in MAPPINGS {
            assert_eq!(
                read(scheme.as_mut(), vpn * 0x1000 * 4096),
                LookupOutcome::Miss,
                "{}: unlocked mappings gone after purge_all",
                scheme.name()
            );
        }
        let out = scheme.translate(
            VirtAddr::new(0x4321),
            AccessKind::Read,
            PrivilegeLevel::Supervisor,
        );
        assert_eq!(
            out,
            LookupOutcome::Hit(PhysAddr::new(0x4321)),
            "{}: locked block entry survives and still translates",
            scheme.name()
        );
        assert!(
            scheme.entry_for(Vpn::new(3)).is_some(),
            "{}: entry_for sees the locked block",
            scheme.name()
        );
    }
}

#[test]
fn stats_reconcile_with_the_operations_performed() {
    for scheme in &mut all_schemes() {
        for (vpn, ppn) in MAPPINGS {
            fill4k(scheme.as_mut(), vpn, ppn);
        }
        // 3 hits, 2 misses, then 5 replayed fast hits.
        for (vpn, _) in MAPPINGS {
            assert!(matches!(
                read(scheme.as_mut(), vpn * 4096),
                LookupOutcome::Hit(_)
            ));
        }
        for va in [0x5555_0000u64, 0x6666_0000] {
            assert_eq!(read(scheme.as_mut(), va), LookupOutcome::Miss);
        }
        let (vpn, _) = MAPPINGS[0];
        assert!(matches!(
            read(scheme.as_mut(), vpn * 4096),
            LookupOutcome::Hit(_)
        ));
        let slot = scheme.last_hit_slot();
        scheme.note_fast_hits(slot, 5);
        let s = scheme.stats();
        assert_eq!(
            s.fills,
            MAPPINGS.len() as u64,
            "{}: one fill per fill() call",
            scheme.name()
        );
        assert_eq!(s.misses, 2, "{}: one miss per Miss outcome", scheme.name());
        assert_eq!(
            s.hits,
            4 + 5,
            "{}: note_fast_hits counts like real lookups",
            scheme.name()
        );
        assert_eq!(s.lookups(), s.hits + s.misses, "{}", scheme.name());
        scheme.reset_stats();
        assert_eq!(
            scheme.stats(),
            TlbStats::default(),
            "{}: reset zeroes",
            scheme.name()
        );
        // Scheme-specific extras reset with the shared counters.
        if let Some(co) = scheme.as_any().downcast_ref::<CoalescedTlb>() {
            assert_eq!(co.scheme_stats(), CoalescedStats::default());
        }
        if let Some(sp) = scheme.as_any().downcast_ref::<SplitTlb>() {
            assert_eq!(sp.scheme_stats(), SplitStats::default());
        }
        // Contents survive a stats reset.
        assert!(
            matches!(read(scheme.as_mut(), vpn * 4096), LookupOutcome::Hit(_)),
            "{}: reset_stats must not drop entries",
            scheme.name()
        );
    }
}

#[test]
fn generation_bumps_on_content_changes_and_only_those() {
    for scheme in &mut all_schemes() {
        let g0 = scheme.generation();
        fill4k(scheme.as_mut(), 0x11, 0x210);
        let g1 = scheme.generation();
        assert_ne!(g0, g1, "{}: fill bumps the generation", scheme.name());

        // Lookups (hit and miss) and fast-hit replays must not bump it.
        assert!(matches!(
            read(scheme.as_mut(), 0x11_000),
            LookupOutcome::Hit(_)
        ));
        assert_eq!(read(scheme.as_mut(), 0x9999_0000), LookupOutcome::Miss);
        let slot = scheme.last_hit_slot();
        scheme.note_fast_hits(slot, 3);
        scheme.reset_stats();
        assert_eq!(
            scheme.generation(),
            g1,
            "{}: lookups, replays, and stats resets leave the generation alone",
            scheme.name()
        );

        // Every content mutation bumps it, even a purge that removes
        // nothing — the memo layer treats any purge as invalidating.
        let block = TlbEntry::new(
            Vpn::new(0x4000),
            Ppn::new(0x4000),
            PageSize::Size16M,
            Prot::RW | Prot::SUPERVISOR_ONLY,
        )
        .expect("aligned");
        scheme.insert_locked(block);
        let g2 = scheme.generation();
        assert_ne!(g2, g1, "{}: insert_locked bumps", scheme.name());
        assert_eq!(scheme.purge_range(Vpn::new(0x77770), 1), 0);
        let g3 = scheme.generation();
        assert_ne!(
            g3,
            g2,
            "{}: purge_range bumps even when empty",
            scheme.name()
        );
        scheme.purge_all();
        assert_ne!(
            scheme.generation(),
            g3,
            "{}: purge_all bumps",
            scheme.name()
        );
    }
}

#[test]
fn note_fast_hits_preserves_a_subsequent_lookup() {
    for scheme in &mut all_schemes() {
        fill4k(scheme.as_mut(), 0x42, 0x84);
        let first = read(scheme.as_mut(), 0x42_010);
        assert_eq!(first, LookupOutcome::Hit(PhysAddr::new(0x84_010)));
        let slot = scheme.last_hit_slot();
        let (probe_slot, _) = scheme.slot_for(Vpn::new(0x42)).expect("resident");
        assert_eq!(
            probe_slot,
            slot,
            "{}: last_hit_slot identifies the hit entry",
            scheme.name()
        );
        scheme.note_fast_hits(slot, 7);
        assert_eq!(scheme.last_hit_slot(), slot, "{}", scheme.name());
        assert_eq!(
            read(scheme.as_mut(), 0x42_fff),
            LookupOutcome::Hit(PhysAddr::new(0x84_fff)),
            "{}: entry still resident and translating after replay",
            scheme.name()
        );
    }
}
