//! Whole-machine configuration presets.

use mtlb_cache::CacheConfig;
use mtlb_mmc::MmcConfig;
use mtlb_os::KernelConfig;
use mtlb_schemes::SchemeConfig;
use mtlb_types::{ClockRatio, Cycles};

/// Default installed DRAM for experiments (256 MB — comfortably holding
/// every benchmark while leaving the shadow range far above it).
pub(crate) const DEFAULT_DRAM: u64 = 256 << 20;

/// Configuration of a complete simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// CPU TLB entries (the paper sweeps 64 / 96 / 128 / 256).
    pub cpu_tlb_entries: usize,
    /// Translation front end: the paper's TLB (`Cpu`, the default —
    /// bit-identical to the machine before schemes existed) or a rival
    /// design from `mtlb-schemes` (fig5).
    pub scheme: SchemeConfig,
    /// Data cache geometry (512 KB direct-mapped by default).
    pub cache: CacheConfig,
    /// Memory controller (installed DRAM, shadow range, optional MTLB,
    /// latencies).
    pub mmc: MmcConfig,
    /// Kernel policy (superpage use, allocators, paging, costs).
    pub kernel: KernelConfig,
    /// CPU-per-bus clock ratio (2 = the paper's 240/120 MHz).
    pub ratio: ClockRatio,
    /// CPU cores sharing the bus, MMC, and MTLB. Each core has a
    /// private CPU TLB, micro-ITLB, and L1 data cache; `1` (the
    /// default, and the paper's setup) is bit-identical to the machine
    /// before cores existed.
    pub cores: usize,
    /// Bus-arbitration penalty charged (as a memory stall) when a bus
    /// transaction comes from a different core than the previous one —
    /// the multi-core contention model. Irrelevant at `cores == 1`.
    pub bus_arbitration: Cycles,
}

impl MachineConfig {
    /// The paper's MTLB-equipped system: `tlb_entries`-entry CPU TLB, a
    /// 128-entry 2-way MTLB, and a kernel that promotes `remap()`ed
    /// regions to shadow superpages.
    #[must_use]
    pub fn paper_mtlb(tlb_entries: usize) -> Self {
        MachineConfig {
            cpu_tlb_entries: tlb_entries,
            scheme: SchemeConfig::Cpu,
            cache: CacheConfig::paper_default(),
            mmc: MmcConfig::paper_default(DEFAULT_DRAM),
            kernel: KernelConfig::default(),
            ratio: ClockRatio::paper_default(),
            cores: 1,
            bus_arbitration: Cycles::new(8),
        }
    }

    /// The baseline system: same CPU TLB, conventional MMC (no MTLB), and
    /// a kernel whose `remap()` is a no-op so identical workload binaries
    /// run on 4 KB pages throughout.
    #[must_use]
    pub fn paper_base(tlb_entries: usize) -> Self {
        MachineConfig {
            cpu_tlb_entries: tlb_entries,
            scheme: SchemeConfig::Cpu,
            cache: CacheConfig::paper_default(),
            mmc: MmcConfig::no_mtlb(DEFAULT_DRAM),
            kernel: KernelConfig {
                use_superpages: false,
                ..KernelConfig::default()
            },
            ratio: ClockRatio::paper_default(),
            cores: 1,
            bus_arbitration: Cycles::new(8),
        }
    }

    /// The paper's normalisation base: 96-entry CPU TLB, no MTLB (§3.4).
    #[must_use]
    pub fn normalization_base() -> Self {
        MachineConfig::paper_base(96)
    }

    /// Same machine with a different MTLB geometry (§3.5 sensitivity
    /// sweeps). Panics if this configuration has no MTLB.
    #[must_use]
    pub fn with_mtlb_geometry(mut self, entries: usize, assoc: usize) -> Self {
        let mtlb = self
            .mmc
            .mtlb
            .as_mut()
            .expect("machine has no MTLB to resize");
        mtlb.entries = entries;
        mtlb.assoc = assoc;
        self
    }

    /// Same machine with a different installed-DRAM size (paging
    /// experiments shrink it to force eviction).
    #[must_use]
    pub fn with_dram(mut self, bytes: u64) -> Self {
        self.mmc.installed_dram = bytes;
        self
    }

    /// Same machine with a different translation front end (fig5's
    /// rival-scheme sweeps).
    #[must_use]
    pub fn with_scheme(mut self, scheme: SchemeConfig) -> Self {
        self.scheme = scheme;
        self
    }

    /// Same machine with `cores` CPU front ends over the shared
    /// bus/MMC/MTLB. The shared hashed page table scales with the core
    /// count (rounded up to a power of two) so N co-resident working
    /// sets fit; at `cores == 1` the paper geometry is untouched.
    ///
    /// # Panics
    ///
    /// Panics when `cores` is zero.
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        self.cores = cores;
        self.kernel.hpt_scale = self
            .kernel
            .hpt_scale
            .max((cores as u64).next_power_of_two());
        self
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper_mtlb(96)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_mtlb_and_superpages() {
        let mtlb = MachineConfig::paper_mtlb(64);
        assert!(mtlb.mmc.mtlb.is_some());
        assert!(mtlb.kernel.use_superpages);
        let base = MachineConfig::paper_base(64);
        assert!(base.mmc.mtlb.is_none());
        assert!(!base.kernel.use_superpages);
        assert_eq!(MachineConfig::normalization_base().cpu_tlb_entries, 96);
    }

    #[test]
    fn geometry_override() {
        let m = MachineConfig::paper_mtlb(128).with_mtlb_geometry(512, 4);
        let g = m.mmc.mtlb.unwrap();
        assert_eq!((g.entries, g.assoc), (512, 4));
    }

    #[test]
    #[should_panic(expected = "no MTLB")]
    fn resizing_absent_mtlb_panics() {
        let _ = MachineConfig::paper_base(128).with_mtlb_geometry(512, 4);
    }

    #[test]
    fn default_mtlb_geometry_matches_paper() {
        let g = MachineConfig::default().mmc.mtlb.unwrap();
        assert_eq!((g.entries, g.assoc), (128, 2));
    }
}
