//! The execution-driven machine model.
//!
//! [`Machine`] assembles the full simulated system of the paper's §3.2 —
//! single-issue 240 MHz CPU, unified software-filled TLB with micro-ITLB
//! and a locked kernel block entry, 512 KB direct-mapped VIPT write-back
//! data cache (perfect I-cache), 120 MHz Runway-style bus, HP-style MMC
//! with an optional **memory-controller TLB**, and a microkernel VM layer —
//! and exposes an execution-driven programming interface: workloads
//! allocate memory through kernel services and perform genuine loads,
//! stores and instruction fetches, every one of which is routed through
//! the simulated translation and memory hierarchy with cycle-accurate
//! accounting.
//!
//! Timing is attributed to buckets (user compute, TLB miss handling,
//! memory stalls, kernel services, fault handling), which is exactly the
//! decomposition the paper's Figure 3 plots.
//!
//! # Example
//!
//! ```
//! use mtlb_sim::{Machine, MachineConfig};
//! use mtlb_types::{Prot, VirtAddr};
//!
//! // The paper's MTLB system with a 64-entry CPU TLB.
//! let mut m = Machine::new(MachineConfig::paper_mtlb(64));
//! let base = VirtAddr::new(0x1000_0000);
//! m.map_region(base, 64 * 1024, Prot::RW);
//! m.remap(base, 64 * 1024); // promote to a shadow superpage
//!
//! m.try_write_u32(base + 0x2468, 42).unwrap();
//! assert_eq!(m.try_read_u32(base + 0x2468).unwrap(), 42);
//! m.try_execute(1_000).unwrap(); // burn some instructions
//!
//! let report = m.report();
//! assert!(report.total_cycles.get() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod machine;
pub mod ops;
mod report;
pub mod trace;

pub use config::MachineConfig;
pub use machine::Machine;
pub use ops::{MachineOp, OpSink, VecOpSink};
pub use report::{CoreStats, RunReport, TimeBuckets};
pub use trace::{Bucket, RingTrace, TraceEvent, TraceRecord, TraceSink};
