//! The assembled machine and its execution-driven access paths.

use mtlb_cache::{AccessResult, CacheIndexing, DataCache, FillKind};
use mtlb_mem::GuestMemory;
use mtlb_mmc::{BusOp, Mmc};
use mtlb_os::{
    Kernel, KernelCtx, KernelStats, RemapReport, ShootdownRequest, SwapOutReport, UserLayout,
};
#[cfg(debug_assertions)]
use mtlb_schemes::{CoalescedStats, CoalescedTlb, SplitStats, SplitTlb};
use mtlb_tlb::{LookupOutcome, MicroItlb, TranslationScheme};
use mtlb_types::{
    AccessKind, Cycles, Fault, Histogram, PhysAddr, PrivilegeLevel, Prot, VirtAddr, Vpn,
    CACHE_LINE_SHIFT, CACHE_LINE_SIZE, PAGE_SIZE,
};

use crate::ops::{MachineOp, OpSink};
use crate::report::{CoreStats, RunReport, TimeBuckets};
use crate::trace::{Bucket, TraceEvent, TraceRecord, TraceSink};
use crate::MachineConfig;

/// Builds a [`KernelCtx`] from the machine's fields without borrowing
/// `self.kernel`, so kernel services can be invoked in one expression.
macro_rules! kctx {
    ($self:ident) => {
        KernelCtx {
            tlb: &mut *$self.tlb,
            itlb: &mut $self.itlb,
            cache: &mut $self.cache,
            mmc: &mut $self.mmc,
            mem: &mut $self.mem,
            ratio: $self.cfg.ratio,
        }
    };
}

/// The complete simulated machine. See the [crate docs](crate) for the
/// modelled system and the timing rules.
///
/// # Access API
///
/// Workloads use the typed accessors ([`try_read_u32`](Machine::try_read_u32),
/// [`try_write_u64`](Machine::try_write_u64), …) for data, [`try_execute`]
/// to account instruction execution (with instruction-fetch translation
/// through the micro-ITLB), the batch accessors
/// ([`try_read_block`](Machine::try_read_block),
/// [`try_stream_write_u32`](Machine::try_stream_write_u32), …) for dense
/// loops, and the syscall wrappers ([`map_region`], [`remap`], [`sbrk`],
/// …) for memory management. Accessors return the typed [`Fault`] on
/// unmapped or protection-violating accesses; the `mtlb-workloads` crate
/// provides an infallible `AccessExt` convenience layer that panics
/// instead.
///
/// Naturally-aligned scalar accesses never straddle a cache line and
/// cost one access. Misaligned scalars are legal but are modelled as the
/// classic pair of aligned accesses over the two straddled windows (MIPS
/// `lwl`/`lwr` style): two loads or stores, two cache accesses.
///
/// # Host-side fast paths
///
/// Three layers accelerate the host simulation without changing a
/// single simulated cycle or counter (the property the differential
/// tests pin): a per-access-kind **translation memo** that replays the
/// last translate hit for same-page runs, a **page-resident
/// fast-forward** that extends each memo with a per-line residency
/// bitmap so a provably-hitting access reduces to counter updates plus
/// one deferred user cycle (drained in bulk as a single
/// [`TraceEvent::FastForward`] charge), and a **batch engine** behind
/// the `try_*_block`/`try_stream_*` APIs that fast-forwards whole
/// cache-resident runs, charging the identical cycles in bulk through
/// the same internal `charge` funnel. All are guarded by a generation
/// counter bumped on every TLB fill, purge, remap, paging operation
/// and context switch; residency bits are additionally cleared exactly
/// on every conflicting cache fill.
/// [`set_fast_paths`](Machine::set_fast_paths) turns everything off to
/// recover the pure slow-path reference machine;
/// [`set_page_fast_forward`](Machine::set_page_fast_forward) toggles
/// the page-resident layer alone.
///
/// # Operation recording
///
/// An [`OpSink`] attached via [`set_op_sink`](Machine::set_op_sink)
/// records every public-API operation as a [`MachineOp`] at the call
/// boundary — the basis of the `mtlb-trace` record/replay format.
///
/// [`try_execute`]: Machine::try_execute
/// [`map_region`]: Machine::map_region
/// [`remap`]: Machine::remap
/// [`sbrk`]: Machine::sbrk
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    /// Translation front end (the paper's [`CpuTlb`](mtlb_tlb::CpuTlb)
    /// by default; fig5 swaps in rival designs behind the same trait).
    tlb: Box<dyn TranslationScheme>,
    itlb: MicroItlb,
    cache: DataCache,
    mmc: Mmc,
    mem: GuestMemory,
    kernel: Kernel,
    buckets: TimeBuckets,
    loads: u64,
    stores: u64,
    instructions: u64,
    code_base: VirtAddr,
    code_len: u64,
    pc_offset: u64,
    /// Optional structured event trace; `None` costs one branch per
    /// cycle charge.
    trace: Option<Box<dyn TraceSink>>,
    /// Kernel counters at construction / last [`reset_stats`]
    /// (`Machine::reset_stats`), so the attribution auditor can compare
    /// bucket deltas even though kernel stats are never reset.
    kernel_base: KernelStats,
    /// CPU-cycle intervals between consecutive CPU TLB misses.
    miss_intervals: Histogram,
    last_miss_at: Option<Cycles>,
    /// Generation counter guarding the translation memos: bumped by
    /// [`invalidate_memos`](Machine::invalidate_memos) on every event
    /// that can change a translation, TLB slot contents or page
    /// residency. A memo is valid only while its recorded generation
    /// matches.
    memo_gen: u64,
    /// Recently translated data pages for loads, direct-mapped by the
    /// low VPN bits so page-alternating loops (key + table, source +
    /// histogram) keep all their hot pages memoized at once.
    read_memos: Box<[Option<AccessMemo>; MEMO_WAYS]>,
    /// Recently translated data pages for stores.
    write_memos: Box<[Option<AccessMemo>; MEMO_WAYS]>,
    /// Host-side fast paths enabled (memos + batch fast-forwarding).
    /// Disabled by the differential tests to produce a pure slow-path
    /// reference machine.
    fast_paths: bool,
    /// Page-resident fast-forward enabled (the per-line residency
    /// bitmaps in the access memos, and the single-window `try_execute`
    /// shortcut). Effective only while `fast_paths` is also on;
    /// independently togglable so the differential tests can pin all
    /// mode combinations.
    page_ff: bool,
    /// `num_lines - 1` when the cache geometry admits exact per-fill
    /// residency-bit invalidation: virtually indexed, a power-of-two
    /// line count, and at least [`MEMO_WAYS`] pages per cache span —
    /// then every VIPT index slot maps into the page window of exactly
    /// one memo way, so a fill can clear the one stale bit in O(1).
    /// `None` disables the residency bitmaps entirely (bits are never
    /// set, so the fast path never fires).
    ff_line_mask: Option<u64>,
    /// Deferred user-bucket cycles from page-resident fast-forwarded
    /// accesses: each is a provable single-cycle hit, so only the
    /// charge is deferred (all counters advance immediately). Drained
    /// as one summed [`TraceEvent::FastForward`] charge by
    /// [`flush_fast_forward`](Machine::flush_fast_forward) before
    /// anything reads or charges the buckets.
    ff_accesses: u64,
    /// Deferred user-bucket cycles from fast-forwarded instruction
    /// batches (see `ff_accesses`).
    ff_instructions: u64,
    /// Loop-body repetitions committed by
    /// [`loop_fast_forward`](Machine::loop_fast_forward) — a host-side
    /// diagnostic (never part of [`RunReport`]), so tests can assert
    /// the batched replay engine actually engaged.
    loop_ff_reps: u64,
    /// Optional operation recorder for trace record/replay; `None`
    /// costs one branch per public API call.
    op_sink: Option<Box<dyn OpSink>>,
    /// Parked per-core front-end state, bank-switched: one slot per
    /// configured core, with `None` at the active core's index — the
    /// active core's front end lives in the machine's own fields, so
    /// every hot path is textually identical to the single-core
    /// machine (the 1-core bit-identity guarantee by construction).
    /// [`set_active_core`](Machine::set_active_core) swaps a parked
    /// state in.
    cores: Vec<Option<CoreState>>,
    /// Index of the active core in `cores`.
    active: usize,
    /// Core that issued the previous user bus transaction. A different
    /// core taking the bus pays [`MachineConfig::bus_arbitration`] —
    /// the shared-bus contention model (irrelevant at one core).
    last_bus_core: Option<usize>,
    /// Bus-arbitration stalls charged so far.
    contention_events: u64,
    /// CPU cycles those stalls cost (inside the mem-stall bucket).
    contention_cycles: Cycles,
}

/// One parked CPU front end: everything private to a core — its
/// translation and cache state, program-counter state, retired-op
/// counters, the translation memos keyed to its own TLB slots, and the
/// process it is running. Swapped wholesale with the machine's live
/// fields by [`Machine::set_active_core`].
#[derive(Debug)]
struct CoreState {
    tlb: Box<dyn TranslationScheme>,
    itlb: MicroItlb,
    cache: DataCache,
    code_base: VirtAddr,
    code_len: u64,
    pc_offset: u64,
    loads: u64,
    stores: u64,
    instructions: u64,
    read_memos: Box<[Option<AccessMemo>; MEMO_WAYS]>,
    write_memos: Box<[Option<AccessMemo>; MEMO_WAYS]>,
    /// The process this core is running (restored into the kernel's
    /// notion of the current process when the core becomes active).
    pid: usize,
}

/// Direct-mapped translation-memo table size per access kind (a power
/// of two; indexed by the low bits of the VPN).
const MEMO_WAYS: usize = 64;

/// Cache lines per 4 KB page — the width of a memo's residency bitmap.
const LINES_PER_PAGE: u64 = PAGE_SIZE / CACHE_LINE_SIZE;

/// `u64` words in a residency bitmap.
const LINE_WORDS: usize = (LINES_PER_PAGE as usize).div_ceil(64);

/// log2([`LINES_PER_PAGE`]): shifts a VIPT line index down to the page
/// slot that the index's page-window position belongs to.
const PAGE_LINE_SHIFT: u32 = LINES_PER_PAGE.trailing_zeros();

/// One-line translation memo: the last successfully translated data
/// page for one access kind. Valid while `gen` matches the machine's
/// `memo_gen` — any TLB fill/purge/remap/paging/context-switch bumps
/// the generation, so a valid memo proves the TLB slot, the bus
/// translation and the real (DRAM) backing are all unchanged since the
/// recorded access.
#[derive(Clone, Copy, Debug)]
struct AccessMemo {
    /// `Machine::memo_gen` at establishment.
    gen: u64,
    /// [`TranslationScheme::generation`] at establishment: the memo's
    /// validity (`gen` unchanged) implies no fill/purge/shootdown has
    /// touched the front end since, so its content generation must
    /// still match — debug-asserted on every replay.
    tlb_gen: u64,
    /// 4 KB virtual page index this memo covers.
    vpn: u64,
    /// Unified-TLB slot that served the translation (for crediting
    /// replayed hits to the right entry).
    slot: usize,
    /// Bus (possibly shadow) address of the page's first byte.
    bus_page: PhysAddr,
    /// Real DRAM address of the page's first byte.
    real_page: PhysAddr,
    /// Per-line cache-residency bitmap for this page, valid for the
    /// memo's generation. Read-memo bit `i` set: line `i` is resident
    /// (so a load is a pure hit). Write-memo bit `i` set: line `i` is
    /// resident *and dirty* (so a store is a pure hit with no state
    /// change). Bits are set only by completed slow-path accesses and
    /// cleared exactly on every conflicting cache fill (see
    /// `Machine::ff_line_mask`); all paths that invalidate lines
    /// without a fill (page flushes, paging, remaps) bump the
    /// generation and kill the whole memo.
    resident: [u64; LINE_WORDS],
}

/// One access stream of a batched operation: item `j` accesses
/// `base + j * size` (naturally aligned, `size` a power of two ≤ 8).
#[derive(Clone, Copy, Debug)]
struct Lane {
    base: VirtAddr,
    size: u64,
    write: bool,
}

/// Maximum lanes a batched operation may drive.
const MAX_LANES: usize = 2;

/// Deferred state of an in-progress pure-hit run inside
/// [`Machine::replay_scalar_span`]: counters and fast-hit notes
/// accumulate here while every op is a provable pure hit, and
/// [`Machine::commit_span_agg`] lands them — in op order, exactly as
/// the per-op engine would have — before any slow-path op runs.
#[derive(Default)]
struct SpanAgg {
    loads: u64,
    stores: u64,
    instr_total: u64,
    exec_notes: u64,
    read_hits: u64,
    write_hits: u64,
    last_read: Option<(VirtAddr, PhysAddr)>,
    last_write: Option<(VirtAddr, PhysAddr)>,
    /// TLB notes flush per consecutive same-slot group, in op order,
    /// so the final MRU slot matches per-op replay.
    slot_run: Option<(usize, u64)>,
    /// Pure hits never bump the memo generation, so a memo validated
    /// once stays valid until the next slow-path op: the last
    /// validated memo per direction settles same-page runs (the
    /// overwhelmingly common shape) on a vpn compare alone.
    hot: [Option<AccessMemo>; 2],
}

impl Machine {
    /// Commits an aggregated pure-hit run and resets the aggregate:
    /// the remaining TLB slot group, one cache fast-hit note per
    /// direction, the micro-ITLB note, and the deferred counters. Also
    /// drops the hot memos — the caller is about to run a slow-path op
    /// that may invalidate them.
    fn commit_span_agg(&mut self, agg: &mut SpanAgg) {
        if let Some((slot, hits)) = agg.slot_run.take() {
            self.tlb.note_fast_hits(slot, hits);
        }
        if let Some((va, pa)) = agg.last_read.take() {
            self.cache.note_fast_hits(va, pa, agg.read_hits, false);
        }
        if let Some((va, pa)) = agg.last_write.take() {
            self.cache.note_fast_hits(va, pa, agg.write_hits, true);
        }
        if agg.exec_notes > 0 {
            self.itlb.note_fast_hits(agg.exec_notes);
        }
        self.loads = self.loads.saturating_add(agg.loads);
        self.stores = self.stores.saturating_add(agg.stores);
        self.instructions = self.instructions.saturating_add(agg.instr_total);
        self.ff_instructions = self.ff_instructions.saturating_add(agg.instr_total);
        self.ff_accesses = self
            .ff_accesses
            .saturating_add(agg.read_hits + agg.write_hits);
        *agg = SpanAgg::default();
    }

    /// Builds and boots a machine.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (shadow range overlapping
    /// DRAM, kernel tables not fitting, bad MTLB geometry).
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.cores > 0, "a machine needs at least one core");
        let lines = cfg.cache.num_lines();
        let ff_line_mask = (matches!(cfg.cache.indexing(), CacheIndexing::Virtual)
            && lines.is_power_of_two()
            && lines / LINES_PER_PAGE >= MEMO_WAYS as u64)
            .then(|| lines - 1);
        let mut m = Machine {
            tlb: cfg.scheme.build(cfg.cpu_tlb_entries),
            itlb: MicroItlb::new(),
            cache: DataCache::new(cfg.cache),
            mmc: Mmc::new(cfg.mmc),
            mem: GuestMemory::new(cfg.mmc.installed_dram),
            kernel: Kernel::new(cfg.mmc, cfg.kernel.clone()),
            cfg,
            buckets: TimeBuckets::default(),
            loads: 0,
            stores: 0,
            instructions: 0,
            code_base: UserLayout::TEXT_BASE,
            code_len: PAGE_SIZE,
            pc_offset: 0,
            trace: None,
            kernel_base: KernelStats::default(),
            miss_intervals: Histogram::new(),
            last_miss_at: None,
            memo_gen: 0,
            read_memos: Box::new([None; MEMO_WAYS]),
            write_memos: Box::new([None; MEMO_WAYS]),
            fast_paths: true,
            page_ff: true,
            ff_line_mask,
            ff_accesses: 0,
            ff_instructions: 0,
            loop_ff_reps: 0,
            op_sink: None,
            cores: Vec::new(),
            active: 0,
            last_bus_core: None,
            contention_events: 0,
            contention_cycles: Cycles::ZERO,
        };
        let boot = m.kernel.boot(&mut kctx!(m));
        m.charge(Bucket::Kernel, boot, || TraceEvent::Boot);
        // A minimal text page so `try_execute` works before
        // `load_program`.
        let c = m
            .kernel
            .map_region(&mut kctx!(m), UserLayout::TEXT_BASE, PAGE_SIZE, Prot::RX);
        m.charge(Bucket::Kernel, c, || TraceEvent::MapRegion {
            start: UserLayout::TEXT_BASE,
            len: PAGE_SIZE,
        });
        // Secondary front ends: fresh TLB (pinning the same locked
        // kernel block entry boot installed on core 0), micro-ITLB and
        // L1 cache, all starting on process 0. Boot is charged once —
        // the model brings secondary cores up during the same boot
        // window. At one core this vector is just `[None]`.
        m.cores.push(None);
        for _ in 1..m.cfg.cores {
            let mut tlb = m.cfg.scheme.build(m.cfg.cpu_tlb_entries);
            if let Some(entry) = m.kernel.kernel_block_entry() {
                tlb.insert_locked(entry);
            }
            m.cores.push(Some(CoreState {
                tlb,
                itlb: MicroItlb::new(),
                cache: DataCache::new(m.cfg.cache),
                code_base: UserLayout::TEXT_BASE,
                code_len: PAGE_SIZE,
                pc_offset: 0,
                loads: 0,
                stores: 0,
                instructions: 0,
                read_memos: Box::new([None; MEMO_WAYS]),
                write_memos: Box::new([None; MEMO_WAYS]),
                pid: 0,
            }));
        }
        m
    }

    /// Short name of the active translation front end (fig5 labels).
    #[must_use]
    pub fn scheme_name(&self) -> &'static str {
        self.tlb.name()
    }

    /// Bytes of virtual address space the active core's translation
    /// front end can currently translate without a miss — the "TLB
    /// reach" figure the paper's rivals compete on.
    #[must_use]
    pub fn tlb_reach_bytes(&self) -> u64 {
        self.tlb.reach_bytes()
    }

    /// Number of CPU cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Index of the core the machine is currently executing as.
    #[must_use]
    pub fn active_core(&self) -> usize {
        self.active
    }

    /// Banks the active core's front-end state out and `core`'s in,
    /// re-pointing the kernel at the process that core is running.
    /// This is the deterministic round-robin scheduler's primitive: a
    /// host-level operation (not a recorded [`MachineOp`], like
    /// [`set_fast_paths`](Machine::set_fast_paths)) costing no
    /// simulated cycles — each core is already running; only the
    /// simulator's attention moves. No-op when `core` is active.
    ///
    /// # Panics
    ///
    /// Panics when `core` is out of range.
    pub fn set_active_core(&mut self, core: usize) {
        assert!(core < self.cores.len(), "no such core {core}");
        if core == self.active {
            return;
        }
        // Deferred fast-forward cycles were earned by the outgoing
        // core's run; drain them before its state is banked out.
        self.flush_fast_forward();
        if let Some(mut incoming) = self.cores[core].take() {
            self.swap_core(&mut incoming);
            self.cores[self.active] = Some(incoming);
            self.active = core;
        }
    }

    /// Exchanges the machine's live front-end fields with a parked
    /// [`CoreState`], including the kernel's current-process pointer.
    fn swap_core(&mut self, parked: &mut CoreState) {
        core::mem::swap(&mut self.tlb, &mut parked.tlb);
        core::mem::swap(&mut self.itlb, &mut parked.itlb);
        core::mem::swap(&mut self.cache, &mut parked.cache);
        core::mem::swap(&mut self.code_base, &mut parked.code_base);
        core::mem::swap(&mut self.code_len, &mut parked.code_len);
        core::mem::swap(&mut self.pc_offset, &mut parked.pc_offset);
        core::mem::swap(&mut self.loads, &mut parked.loads);
        core::mem::swap(&mut self.stores, &mut parked.stores);
        core::mem::swap(&mut self.instructions, &mut parked.instructions);
        core::mem::swap(&mut self.read_memos, &mut parked.read_memos);
        core::mem::swap(&mut self.write_memos, &mut parked.write_memos);
        let outgoing_pid = self.kernel.current_process();
        self.kernel.set_current_process(parked.pid);
        parked.pid = outgoing_pid;
    }

    /// Drains the kernel's queued TLB shootdowns, applying each to
    /// every remote core's CPU TLB and micro-ITLB and charging the
    /// delivery cost. Called after every kernel entry that can queue
    /// one. On a single core the queue drains at zero cost — remote
    /// purges, stats, and charges are all structurally skipped, which
    /// is what keeps the 1-core machine bit-identical.
    fn service_shootdowns(&mut self) {
        if !self.kernel.has_pending_shootdowns() {
            return;
        }
        let requests = self.kernel.take_shootdowns();
        let remote_cores = (self.cores.len() - 1) as u64;
        if remote_cores == 0 {
            return;
        }
        for request in &requests {
            for core in self.cores.iter_mut().flatten() {
                let _purged = match *request {
                    ShootdownRequest::All => core.tlb.purge_all(),
                    ShootdownRequest::Range { vpn, pages } => core.tlb.purge_range(vpn, pages),
                };
                core.itlb.purge();
            }
        }
        // Remote translation memos key off the shared generation
        // counter, so one bump invalidates them all (the active core's
        // memos were already killed by the service that queued these).
        self.invalidate_memos();
        let n = requests.len() as u64;
        let c = self.kernel.note_shootdown(n, remote_cores);
        self.charge(Bucket::Kernel, c, || TraceEvent::Shootdown {
            requests: n,
            remote_cores,
        });
    }

    /// Charges the bus-arbitration penalty when a user-path bus
    /// transaction comes from a different core than the previous one —
    /// the shared-bus/MTLB contention model. Kernel-internal bus
    /// traffic (page-table walks, flush writebacks inside services) is
    /// not arbitrated per-core; its cost is already folded into the
    /// service cycles. Free at one core.
    fn arbitrate_bus(&mut self) {
        if self.cores.len() <= 1 {
            return;
        }
        let core = self.active;
        let prev = self.last_bus_core.replace(core);
        if prev.is_none() || prev == Some(core) {
            return;
        }
        self.contention_events = self.contention_events.saturating_add(1);
        self.contention_cycles += self.cfg.bus_arbitration;
        self.charge(Bucket::MemStall, self.cfg.bus_arbitration, || {
            TraceEvent::MtlbContention { core: core as u64 }
        });
    }

    /// Routes every simulated-cycle charge into its bucket, mirroring
    /// the charge to the attached trace sink (if any). This is the only
    /// place `buckets` is mutated after construction, which is what
    /// makes trace-reconstructed totals exact. The event is a closure so
    /// that with no sink attached — the overwhelmingly common case —
    /// constructing the event costs nothing.
    fn charge(&mut self, bucket: Bucket, cycles: Cycles, event: impl FnOnce() -> TraceEvent) {
        // Any deferred fast-forward cycles were earned before this
        // charge; drain them first so bucket totals and trace
        // timestamps stay in program order.
        self.flush_fast_forward();
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record(&TraceRecord {
                at: self.buckets.total(),
                cycles,
                bucket,
                event: event(),
            });
        }
        match bucket {
            Bucket::User => self.buckets.user += cycles,
            Bucket::TlbMiss => self.buckets.tlb_miss += cycles,
            Bucket::MemStall => self.buckets.mem_stall += cycles,
            Bucket::Kernel => self.buckets.kernel += cycles,
            Bucket::Fault => self.buckets.fault += cycles,
        }
    }

    /// Drains the deferred page-resident fast-forward accumulator as
    /// one summed [`TraceEvent::FastForward`] user-bucket charge.
    /// Called at the top of [`charge`](Machine::charge) and before
    /// anything reads the buckets. Zeroes the accumulator *before*
    /// charging, so the nested `charge` → `flush_fast_forward` call
    /// terminates immediately.
    fn flush_fast_forward(&mut self) {
        let accesses = self.ff_accesses;
        let instructions = self.ff_instructions;
        if accesses == 0 && instructions == 0 {
            return;
        }
        self.ff_accesses = 0;
        self.ff_instructions = 0;
        self.charge(Bucket::User, Cycles::new(accesses + instructions), || {
            TraceEvent::FastForward {
                accesses,
                instructions,
            }
        });
    }

    /// Attaches a trace sink; subsequent charges are recorded into it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.flush_fast_forward();
        self.trace = Some(sink);
    }

    /// Detaches and returns the trace sink, if one was attached.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.flush_fast_forward();
        self.trace.take()
    }

    /// Mirrors one public-API operation to the attached op sink (if
    /// any), at the API boundary before the machine acts on it. The op
    /// is a closure so that with no sink attached — the overwhelmingly
    /// common case — constructing it costs nothing.
    fn record_op(&mut self, op: impl FnOnce() -> MachineOp) {
        if let Some(sink) = self.op_sink.as_deref_mut() {
            sink.record(&op());
        }
    }

    /// Attaches an operation recorder; every subsequent public-API
    /// call is recorded into it (see [`MachineOp`] for the vocabulary
    /// and the record/replay contract).
    pub fn set_op_sink(&mut self, sink: Box<dyn OpSink>) {
        self.op_sink = Some(sink);
    }

    /// Detaches and returns the operation recorder, if one was
    /// attached.
    pub fn take_op_sink(&mut self) -> Option<Box<dyn OpSink>> {
        self.op_sink.take()
    }

    /// Notes a CPU TLB miss for the miss-interval histogram.
    fn note_tlb_miss(&mut self) {
        self.flush_fast_forward();
        let now = self.buckets.total();
        if let Some(prev) = self.last_miss_at {
            self.miss_intervals.record((now - prev).get());
        }
        self.last_miss_at = Some(now);
    }

    /// Invalidates every outstanding translation memo by bumping the
    /// generation counter. Called whenever TLB contents, mappings or
    /// page residency may have changed: after every software miss-handler
    /// run, every shadow-fault service, and every kernel service wrapper.
    #[inline]
    fn invalidate_memos(&mut self) {
        self.memo_gen = self.memo_gen.wrapping_add(1);
    }

    /// Enables or disables the host-side fast paths (translation memos
    /// and batched fast-forwarding). On by default. Simulated cycles and
    /// every statistic are identical either way — that is the property
    /// the differential tests pin; disabling recovers the pure slow-path
    /// reference machine they compare against.
    pub fn set_fast_paths(&mut self, on: bool) {
        self.flush_fast_forward();
        self.fast_paths = on;
    }

    /// Enables or disables the page-resident fast-forward layer
    /// specifically (on by default, effective only while the fast
    /// paths as a whole are on). Simulated cycles and every statistic
    /// are identical either way; the differential tests pin all four
    /// [`set_fast_paths`](Machine::set_fast_paths) ×
    /// `set_page_fast_forward` combinations.
    pub fn set_page_fast_forward(&mut self, on: bool) {
        self.flush_fast_forward();
        self.page_ff = on;
    }

    /// The guest DRAM store, for diagnostics (e.g. content digests in
    /// the differential tests).
    #[must_use]
    pub fn guest_memory(&self) -> &GuestMemory {
        &self.mem
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The kernel (for stats, swap inspection, paging experiments).
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Total simulated cycles so far, including deferred fast-forward
    /// cycles not yet drained into their bucket.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        let pending = self.ff_accesses + self.ff_instructions;
        self.buckets.total() + Cycles::new(pending)
    }

    /// Snapshot of all statistics. Drains any deferred fast-forward
    /// charges first, which is why it takes `&mut self`.
    ///
    /// In debug builds this also runs the cycle-attribution audit,
    /// panicking if the time buckets have drifted from the
    /// per-component counters (every charge goes through the single
    /// `Machine::charge` funnel, which is what makes the audit exact).
    #[must_use]
    pub fn report(&mut self) -> RunReport {
        self.flush_fast_forward();
        // Merge every parked core's private counters into the active
        // core's — the report describes the whole machine. At one core
        // the loop body never runs and the merge is the identity.
        let mut tlb = self.tlb.stats();
        let mut cache = self.cache.stats();
        let mut itlb_hits = self.itlb.hits();
        let mut itlb_misses = self.itlb.misses();
        let mut loads = self.loads;
        let mut stores = self.stores;
        let mut instructions = self.instructions;
        for core in self.cores.iter().flatten() {
            Self::merge_tlb_stats(&mut tlb, core.tlb.stats());
            Self::merge_cache_stats(&mut cache, core.cache.stats());
            itlb_hits += core.itlb.hits();
            itlb_misses += core.itlb.misses();
            loads += core.loads;
            stores += core.stores;
            instructions += core.instructions;
        }
        let report = RunReport {
            total_cycles: self.buckets.total(),
            buckets: self.buckets,
            tlb,
            itlb_hits,
            itlb_misses,
            cache,
            mmc: self.mmc.stats(),
            kernel: self.kernel.stats(),
            loads,
            stores,
            instructions,
            tlb_miss_intervals: self.miss_intervals,
            mtlb_contention_events: self.contention_events,
            mtlb_contention_cycles: self.contention_cycles,
        };
        #[cfg(debug_assertions)]
        self.audit(&report);
        report
    }

    /// Per-core front-end counters, in core-index order (the active
    /// core's live values included). The across-core sums equal the
    /// merged figures in [`report`](Machine::report) — the debug audit
    /// asserts it.
    #[must_use]
    pub fn per_core_stats(&self) -> Vec<CoreStats> {
        (0..self.cores.len())
            .map(|i| match &self.cores[i] {
                Some(c) => CoreStats {
                    tlb: c.tlb.stats(),
                    cache: c.cache.stats(),
                    itlb_hits: c.itlb.hits(),
                    itlb_misses: c.itlb.misses(),
                    loads: c.loads,
                    stores: c.stores,
                    instructions: c.instructions,
                },
                // The `None` slot is the active core: its state lives
                // in the machine's own fields.
                None => CoreStats {
                    tlb: self.tlb.stats(),
                    cache: self.cache.stats(),
                    itlb_hits: self.itlb.hits(),
                    itlb_misses: self.itlb.misses(),
                    loads: self.loads,
                    stores: self.stores,
                    instructions: self.instructions,
                },
            })
            .collect()
    }

    /// Field-by-field sum of two [`TlbStats`](mtlb_tlb::TlbStats) —
    /// exhaustive destructure, so a new counter field is a compile
    /// error until the merge handles it.
    fn merge_tlb_stats(into: &mut mtlb_tlb::TlbStats, from: mtlb_tlb::TlbStats) {
        let mtlb_tlb::TlbStats {
            hits,
            misses,
            replacements,
            purges,
            nru_resets,
            fills,
        } = from;
        into.hits = into.hits.saturating_add(hits);
        into.misses = into.misses.saturating_add(misses);
        into.replacements = into.replacements.saturating_add(replacements);
        into.purges = into.purges.saturating_add(purges);
        into.nru_resets = into.nru_resets.saturating_add(nru_resets);
        into.fills = into.fills.saturating_add(fills);
    }

    /// Field-by-field sum of two [`CacheStats`](mtlb_cache::CacheStats)
    /// (exhaustive destructure, like
    /// [`merge_tlb_stats`](Machine::merge_tlb_stats)).
    fn merge_cache_stats(into: &mut mtlb_cache::CacheStats, from: mtlb_cache::CacheStats) {
        let mtlb_cache::CacheStats {
            hits,
            misses,
            replacement_writebacks,
            flush_writebacks,
            lines_flushed,
            flush_walks,
        } = from;
        into.hits = into.hits.saturating_add(hits);
        into.misses = into.misses.saturating_add(misses);
        into.replacement_writebacks = into
            .replacement_writebacks
            .saturating_add(replacement_writebacks);
        into.flush_writebacks = into.flush_writebacks.saturating_add(flush_writebacks);
        into.lines_flushed = into.lines_flushed.saturating_add(lines_flushed);
        into.flush_walks = into.flush_walks.saturating_add(flush_walks);
    }

    // ----- program text ---------------------------------------------------

    /// Maps a text segment of `len` bytes at the conventional text base
    /// and points the simulated PC at it. `remap_text` additionally
    /// promotes it to shadow superpages (the paper simulates loader
    /// support via explicit remaps, §2.3).
    pub fn load_program(&mut self, len: u64, remap_text: bool) {
        self.record_op(|| MachineOp::LoadProgram { len, remap_text });
        assert!(len > 0, "program text cannot be empty");
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        // Clear of the boot stub page and 64 KB-aligned so modest text
        // segments promote to a single superpage. Text lands inside the
        // current process's private virtual window (process 0 — the
        // boot process — keeps the historical base), so co-scheduled
        // processes each load their own text without colliding in the
        // shared hashed page table.
        let window = Self::process_heap_base(self.kernel.current_process())
            .offset_from(UserLayout::HEAP_BASE);
        let base = UserLayout::TEXT_BASE + 64 * 1024 + window;
        let c = self
            .kernel
            .map_region(&mut kctx!(self), base, len, Prot::RX);
        self.charge(Bucket::Kernel, c, || TraceEvent::MapRegion {
            start: base,
            len,
        });
        if remap_text {
            let rep = self.kernel.remap(&mut kctx!(self), base, len);
            self.charge(Bucket::Kernel, rep.total_cycles(), || TraceEvent::Remap {
                start: base,
                len,
                superpages: rep.superpages.len() as u64,
            });
        }
        self.invalidate_memos();
        self.service_shootdowns();
        self.code_base = base;
        self.code_len = len;
        self.pc_offset = 0;
    }

    /// Executes `n` single-cycle instructions, advancing the simulated PC
    /// cyclically through the text segment and translating instruction
    /// fetches through the micro-ITLB (then the unified TLB, then the
    /// software miss handler).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] when an instruction fetch hits unmapped or
    /// non-executable memory; the batch's user-cycle charge has already
    /// been made at that point.
    pub fn try_execute(&mut self, n: u64) -> Result<(), Fault> {
        self.record_op(|| MachineOp::Execute { n });
        self.execute_inner(n)
    }

    /// [`try_execute`](Machine::try_execute) without the op recording,
    /// for internal callers (the batch engine), so a recorded stream
    /// operation replays as one op rather than one op per item.
    fn execute_inner(&mut self, n: u64) -> Result<(), Fault> {
        if self.fast_paths && self.page_ff && n > 0 {
            // Single-window shortcut: when the whole batch provably
            // stays inside the current micro-ITLB'd text page without
            // wrapping, it is exactly one translate hit plus `n` user
            // cycles. Counters advance now; the charge is deferred.
            let va = self.code_base + self.pc_offset;
            let bytes = n.saturating_mul(4);
            let window = (PAGE_SIZE - va.page_offset()).min(self.code_len - self.pc_offset);
            if bytes <= window && self.itlb.covers(va) {
                self.instructions = self.instructions.saturating_add(n);
                self.ff_instructions = self.ff_instructions.saturating_add(n);
                self.itlb.note_fast_hits(1);
                self.pc_offset = (self.pc_offset + bytes) % self.code_len;
                return Ok(());
            }
        }
        self.instructions = self.instructions.saturating_add(n);
        self.charge(Bucket::User, Cycles::new(n), || TraceEvent::Execute {
            instructions: n,
        });
        let mut remaining = n.saturating_mul(4); // 4-byte instructions
        while remaining > 0 {
            let va = self.code_base + self.pc_offset;
            self.ifetch_translate(va)?;
            let to_page_end = PAGE_SIZE - va.page_offset();
            let to_wrap = self.code_len - self.pc_offset;
            let step = remaining.min(to_page_end).min(to_wrap);
            self.pc_offset = (self.pc_offset + step) % self.code_len;
            remaining -= step;
        }
        Ok(())
    }

    fn ifetch_translate(&mut self, va: VirtAddr) -> Result<(), Fault> {
        if self.itlb.translate(va).is_some() {
            return Ok(());
        }
        match self
            .tlb
            .translate(va, AccessKind::IFetch, PrivilegeLevel::User)
        {
            LookupOutcome::Hit(_) => {
                let entry = self
                    .tlb
                    .entry_for(va.vpn())
                    .expect("entry present after a hit");
                self.itlb.refill(entry);
                Ok(())
            }
            LookupOutcome::Miss => {
                self.note_tlb_miss();
                let handled = self.kernel.handle_tlb_miss(&mut kctx!(self), va);
                // The handler may have filled a TLB slot even when the
                // walk ultimately faulted; either way memos are stale.
                self.invalidate_memos();
                let (entry, c) = handled?;
                self.charge(Bucket::TlbMiss, c, || TraceEvent::ItlbMiss { va });
                // The handler may have auto-promoted a region, shooting
                // down the remapped range on the other cores.
                self.service_shootdowns();
                self.itlb.refill(entry);
                Ok(())
            }
            LookupOutcome::Fault(f) => Err(f),
        }
    }

    // ----- data accesses --------------------------------------------------

    fn translate_data(&mut self, va: VirtAddr, kind: AccessKind) -> Result<PhysAddr, Fault> {
        loop {
            match self.tlb.translate(va, kind, PrivilegeLevel::User) {
                LookupOutcome::Hit(pa) => return Ok(pa),
                LookupOutcome::Miss => {
                    self.note_tlb_miss();
                    let handled = self.kernel.handle_tlb_miss(&mut kctx!(self), va);
                    self.invalidate_memos();
                    let (_, c) = handled?;
                    self.charge(Bucket::TlbMiss, c, || TraceEvent::TlbMiss { va });
                    // Auto-promotion inside the handler shoots down the
                    // remapped range on the other cores.
                    self.service_shootdowns();
                }
                LookupOutcome::Fault(f) => return Err(f),
            }
        }
    }

    /// Runs the cache + bus + MMC timing for one access, servicing shadow
    /// page faults transparently (swap-in and retry, §4).
    fn cached_access(&mut self, va: VirtAddr, pa: PhysAddr, write: bool) {
        let result = if write {
            self.cache.access_write(va, pa)
        } else {
            self.cache.access_read(va, pa)
        };
        // Single-cycle cache pipeline, hit or miss.
        self.charge(Bucket::User, Cycles::new(1), || TraceEvent::CacheAccess {
            va,
            write,
        });
        let AccessResult::Miss { fill, writeback } = result else {
            return;
        };
        // The miss goes to the shared bus: pay arbitration if another
        // core owned it (free at one core).
        self.arbitrate_bus();
        // The fill replaces whatever line occupies this VIPT index, so
        // any residency bit a memo holds for the index's page-window
        // slot is stale. The `ff_line_mask` geometry gate guarantees
        // the index lands in exactly one way per memo table; clear
        // that one bit in both tables (a cleared bit only forces the
        // slow path, so clearing is always safe).
        if let Some(mask) = self.ff_line_mask {
            let raw = va.get();
            let idx = (raw >> CACHE_LINE_SHIFT) & mask;
            let mway = ((idx >> PAGE_LINE_SHIFT) as usize) & (MEMO_WAYS - 1);
            let word = ((idx & (LINES_PER_PAGE - 1)) >> 6) as usize;
            let bit = 1u64 << (idx & 63);
            if let Some(m) = self.read_memos[mway].as_mut() {
                m.resident[word] &= !bit;
            }
            if let Some(m) = self.write_memos[mway].as_mut() {
                m.resident[word] &= !bit;
            }
        }
        if let Some(victim) = writeback {
            let resp = self
                .mmc
                .bus_access(victim, BusOp::Writeback, &mut self.mem)
                .expect(
                    "a dirty victim's page cannot be swapped out: the OS flushes before swapping",
                );
            self.charge(
                Bucket::MemStall,
                self.cfg.ratio.device_to_cpu(resp.mmc_cycles),
                || TraceEvent::CacheWriteback { pa: victim },
            );
        }
        let op = match fill {
            FillKind::Shared => BusOp::FillShared,
            FillKind::Exclusive => BusOp::FillExclusive,
        };
        loop {
            match self.mmc.bus_access(pa, op, &mut self.mem) {
                Ok(resp) => {
                    self.charge(
                        Bucket::MemStall,
                        self.cfg.ratio.device_to_cpu(resp.mmc_cycles),
                        || TraceEvent::CacheFill { pa },
                    );
                    return;
                }
                Err(Fault::ShadowPageFault { shadow }) => {
                    // Precise fault: the OS pages the base page back in
                    // and the access retries. Servicing may page other
                    // frames out and purge TLB state, so memos die here.
                    match self.kernel.handle_shadow_fault(&mut kctx!(self), shadow) {
                        Ok(c) => {
                            self.invalidate_memos();
                            self.charge(Bucket::Fault, c, || TraceEvent::ShadowFault { shadow });
                            // Per-base-page pageout needs no shootdown
                            // (residency is checked at the shared MMC),
                            // but drain anything the service queued.
                            self.service_shootdowns();
                        }
                        Err(f) => panic!("unserviceable shadow fault: {f}"),
                    }
                }
                Err(f) => panic!("bus error during access to {va}: {f}"),
            }
        }
    }

    /// Bus → real resolution after a completed access. A real bus
    /// address is its own translation; shadow addresses take the
    /// functional table walk.
    fn functional_addr(&self, pa: PhysAddr) -> PhysAddr {
        if !self.mmc.is_shadow(pa) {
            debug_assert_eq!(self.mmc.translate_functional(pa, &self.mem).ok(), Some(pa));
            return pa;
        }
        self.mmc
            .translate_functional(pa, &self.mem)
            .expect("page is resident after the access completed")
    }

    /// The aligned data-access path: counts the access, translates, runs
    /// the cache/bus timing, and returns `(bus, real)` addresses. A
    /// valid access memo replays the translation without consulting the
    /// TLB lookup machinery at all.
    fn data_access(
        &mut self,
        va: VirtAddr,
        size: u64,
        write: bool,
    ) -> Result<(PhysAddr, PhysAddr), Fault> {
        debug_assert!(
            va.is_aligned(size),
            "data_access is the aligned path; misaligned scalars go through misaligned_rw"
        );
        let vpn = va.vpn().index();
        let way = (vpn as usize) & (MEMO_WAYS - 1);
        if self.fast_paths {
            let memo = if write {
                self.write_memos[way]
            } else {
                self.read_memos[way]
            };
            if let Some(mo) = memo {
                if mo.gen == self.memo_gen && mo.vpn == vpn {
                    return Ok(self.memo_access(va, way, mo, write));
                }
            }
        }
        if write {
            self.stores = self.stores.saturating_add(1);
        } else {
            self.loads = self.loads.saturating_add(1);
        }
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let pa = self.translate_data(va, kind)?;
        // Both translate hit paths leave the hit slot as the TLB's MRU,
        // so this names the entry that served (and will keep serving)
        // this page.
        let slot = self.tlb.last_hit_slot();
        let gen = self.memo_gen;
        let tlb_gen = self.tlb.generation();
        self.cached_access(va, pa, write);
        let real = self.functional_addr(pa);
        if self.fast_paths && gen == self.memo_gen {
            // Nothing invalidated during the access, so the slot, the
            // bus mapping and the real backing are all current: memoize.
            let off = va.page_offset();
            let mut resident = [0u64; LINE_WORDS];
            if self.ff_line_mask.is_some() {
                // The line this access just touched is resident (and
                // dirty, for the write memo) — seed its bit.
                let line = (off >> CACHE_LINE_SHIFT) as usize;
                resident[line >> 6] = 1u64 << (line & 63);
            }
            let mo = AccessMemo {
                gen,
                tlb_gen,
                vpn,
                slot,
                bus_page: pa - off,
                real_page: real - off,
                resident,
            };
            if write {
                self.write_memos[way] = Some(mo);
            } else {
                self.read_memos[way] = Some(mo);
            }
        }
        Ok((pa, real))
    }

    /// Replays a memo-validated access: identical counters, TLB side
    /// effects, cache/bus timing and returned addresses, with the
    /// translation lookup skipped. When the page-resident fast-forward
    /// layer proves the touched line resident (and dirty, for stores),
    /// the whole access reduces to counter updates plus one deferred
    /// user cycle; otherwise the cache/bus timing runs as usual and a
    /// cleanly completed access earns the line its residency bit.
    fn memo_access(
        &mut self,
        va: VirtAddr,
        way: usize,
        mo: AccessMemo,
        write: bool,
    ) -> (PhysAddr, PhysAddr) {
        // A valid memo proves nothing invalidated translations since it
        // was recorded, which in turn means the TLB content generation
        // cannot have moved (fills, purges and shootdowns all bump
        // `memo_gen` too). The trait's generation hook makes the
        // implication checkable.
        debug_assert_eq!(
            self.tlb.generation(),
            mo.tlb_gen,
            "access memo outlived its TLB generation"
        );
        let off = va.page_offset();
        let line = (off >> CACHE_LINE_SHIFT) as usize;
        let (word, bit) = (line >> 6, 1u64 << (line & 63));
        if self.page_ff && mo.resident[word] & bit != 0 {
            // Provable pure hit: the line is resident (and already
            // dirty if this is a store), so the slow path would charge
            // exactly one user cycle and change no other state. Every
            // counter advances now; only the charge is deferred.
            if write {
                self.stores = self.stores.saturating_add(1);
            } else {
                self.loads = self.loads.saturating_add(1);
            }
            self.tlb.note_fast_hits(mo.slot, 1);
            let pa = mo.bus_page + off;
            self.cache.note_fast_hits(va, pa, 1, write);
            self.ff_accesses = self.ff_accesses.saturating_add(1);
            return (pa, mo.real_page + off);
        }
        if write {
            self.stores = self.stores.saturating_add(1);
        } else {
            self.loads = self.loads.saturating_add(1);
        }
        // Exactly the side effects of the translate hit the slow path
        // would have made (hit counter, NRU used bit, MRU pointer).
        self.tlb.note_fast_hits(mo.slot, 1);
        let pa = mo.bus_page + off;
        debug_assert!(
            self.tlb
                .entry_for(va.vpn())
                .is_some_and(|e| e.translate(va) == Some(pa)),
            "access memo diverged from the TLB"
        );
        self.cached_access(va, pa, write);
        if mo.gen == self.memo_gen {
            if self.ff_line_mask.is_some() {
                // Completed with nothing invalidated: the touched line
                // is now resident (and dirty, for a store) — earn its
                // residency bit in the memo this access replayed.
                let memos = if write {
                    &mut self.write_memos
                } else {
                    &mut self.read_memos
                };
                if let Some(m) = memos[way].as_mut() {
                    debug_assert_eq!(m.vpn, mo.vpn);
                    m.resident[word] |= bit;
                }
            }
            return (pa, mo.real_page + off);
        }
        // A shadow fault was serviced inside the access: the page was
        // just paged back in, possibly into a different real frame.
        // The memo is already dead (generation moved); re-derive.
        (pa, self.functional_addr(pa))
    }

    /// Bulk-commits up to `max_reps` further repetitions of an
    /// already-applied loop-body `window` of operations, where
    /// repetition `r` of window op `j` accesses `va_j + r * shifts[j]`
    /// bytes (executes re-run unchanged). This is the machine half of
    /// the batched replay engine's steady-state loop fast-forward (see
    /// `mtlb-trace`): the trace layer proves the decoded op stream
    /// repeats the window with per-op constant address strides, and
    /// this call proves every repeated access would take the
    /// page-resident pure-hit path before committing the aggregate.
    ///
    /// Validation fails closed to `0` (the caller then replays per-op)
    /// unless, for every repetition up to the returned count:
    ///
    /// - the window contains only `Execute { n > 0 }`, `Read` and
    ///   `Write` ops — kernel services, paging and stats ops have side
    ///   effects a pure hit cannot have, and a zero-length execute
    ///   drains deferred fast-forward state on the live path;
    /// - every memory op is naturally aligned, stays inside its
    ///   memoized page at every repetition, holds a live memo
    ///   (generation and vpn both current), and every line it touches
    ///   has its residency bit — resident, and dirty for stores, by
    ///   the write-memo bit invariant;
    /// - every execute batch satisfies the single-window micro-ITLB
    ///   shortcut at its own repetition's program counter.
    ///
    /// On success the counters, TLB/cache fast-hit notes, deferred
    /// [`TraceEvent::FastForward`] cycles and the program counter
    /// advance exactly as `k` per-op pure-hit repetitions would have
    /// advanced them (pure hits touch no other state, so aggregating
    /// per op in window order is order-equivalent), and `k` is
    /// returned. Repeated stores land zero bytes in guest memory,
    /// matching the per-op replay engine (this call's only caller —
    /// recorded traces carry no data). The same two-layer invalidation
    /// as the per-access fast paths applies: any fill, purge,
    /// shootdown, remap, paging operation or context switch since the
    /// window ran has bumped `memo_gen`, and validation fails closed.
    /// An attached op recorder also fails the call closed: bulk
    /// commits bypass the public-API recording hooks.
    pub fn loop_fast_forward(
        &mut self,
        window: &[MachineOp],
        shifts: &[i64],
        max_reps: u64,
    ) -> u64 {
        /// Per-op commit plan recorded during validation so the commit
        /// loop needs no second memo lookup (and no can't-fail memo
        /// unwrap).
        #[derive(Clone, Copy)]
        enum Commit {
            Exec {
                n: u64,
            },
            Mem {
                slot: usize,
                va: VirtAddr,
                pa: PhysAddr,
                write: bool,
                size: u64,
                shift: i64,
                real_page: PhysAddr,
                off0: u64,
            },
        }
        /// Longest accepted window, sizing the stack-allocated commit
        /// plan — bulk commits must not pay a heap allocation per
        /// attempt, and loop bodies beyond this are no longer loops
        /// the detector should chase.
        const MAX_LOOP_WINDOW: usize = 64;
        if window.is_empty()
            || window.len() > MAX_LOOP_WINDOW
            || window.len() != shifts.len()
            || max_reps == 0
            || !self.fast_paths
            || !self.page_ff
            || self.ff_line_mask.is_none()
            || self.op_sink.is_some()
        {
            return 0;
        }
        let mut k = max_reps;
        let mut plan = [Commit::Exec { n: 0 }; MAX_LOOP_WINDOW];
        let mut plan_len = 0usize;
        for (op, &shift) in window.iter().zip(shifts) {
            let (va, size, write) = match *op {
                MachineOp::Execute { n } => {
                    // `execute(0)` charges zero cycles on the live path,
                    // which still drains deferred fast-forward state;
                    // a pure-hit repetition cannot reproduce that.
                    if n == 0 {
                        return 0;
                    }
                    plan[plan_len] = Commit::Exec { n };
                    plan_len += 1;
                    continue;
                }
                MachineOp::Read { va, size } => (va, size, false),
                MachineOp::Write { va, size } => (va, size, true),
                _ => return 0,
            };
            // Replay dispatches any size other than 1/2/4 as a 64-bit
            // access; mirror that normalization here.
            let size = match size {
                1 | 2 | 4 => u64::from(size),
                _ => 8,
            };
            if !va.is_aligned(size) {
                // Misaligned scalars split into two accesses.
                return 0;
            }
            if shift != 0 && shift.unsigned_abs() % size != 0 {
                return 0;
            }
            let off0 = va.page_offset();
            // Bound the repetition count so every repetition's access
            // stays inside the one memoized page.
            if shift > 0 {
                k = k.min((PAGE_SIZE - size - off0) / shift.unsigned_abs());
            } else if shift < 0 {
                k = k.min(off0 / shift.unsigned_abs());
            }
            if k == 0 {
                return 0;
            }
            let vpn = va.vpn().index();
            let way = (vpn as usize) & (MEMO_WAYS - 1);
            let memo = if write {
                self.write_memos[way]
            } else {
                self.read_memos[way]
            };
            let Some(mo) = memo else { return 0 };
            if mo.gen != self.memo_gen || mo.vpn != vpn {
                return 0;
            }
            debug_assert_eq!(
                self.tlb.generation(),
                mo.tlb_gen,
                "access memo outlived its TLB generation"
            );
            // Largest prefix of repetitions whose touched line holds
            // its residency bit (aligned scalars never straddle a
            // line). Earlier ops validated against a possibly larger
            // `k` checked a superset of repetitions — still sound.
            let mut good = 0;
            let mut prev_line = usize::MAX;
            let mut r = 1u64;
            while r <= k {
                let off = (off0 as i64 + shift.wrapping_mul(r as i64)) as u64;
                let line = (off >> CACHE_LINE_SHIFT) as usize;
                if line != prev_line {
                    if mo.resident[line >> 6] & (1u64 << (line & 63)) == 0 {
                        break;
                    }
                    prev_line = line;
                }
                good = r;
                r += 1;
            }
            k = k.min(good);
            if k == 0 {
                return 0;
            }
            // Repetition 1's addresses, for the aggregated cache note;
            // the residency bits guarantee the probed line is present
            // for every repetition.
            let raw = va.get().wrapping_add(shift as u64);
            let va1 = VirtAddr::new(raw);
            let pa1 = mo.bus_page + va1.page_offset();
            plan[plan_len] = Commit::Mem {
                slot: mo.slot,
                va: va1,
                pa: pa1,
                write,
                size,
                shift,
                real_page: mo.real_page,
                off0,
            };
            plan_len += 1;
        }
        // Instruction batches: keep only the prefix of repetitions in
        // which every execute takes the micro-ITLB single-window
        // shortcut — the slow path charges cycles immediately and walks
        // translations, which a bulk commit must never paper over.
        let plan = &plan[..plan_len];
        let mut pc_final = self.pc_offset;
        if plan.iter().any(|c| matches!(c, Commit::Exec { .. })) {
            let mut pc = self.pc_offset;
            let mut reps = 0u64;
            'reps: while reps < k {
                for c in plan {
                    let Commit::Exec { n } = *c else { continue };
                    let va = self.code_base + pc;
                    let bytes = n.saturating_mul(4);
                    let fetch_window = (PAGE_SIZE - va.page_offset()).min(self.code_len - pc);
                    if bytes > fetch_window || !self.itlb.covers(va) {
                        break 'reps;
                    }
                    pc = (pc + bytes) % self.code_len;
                }
                pc_final = pc;
                reps += 1;
            }
            k = reps;
            if k == 0 {
                return 0;
            }
        }
        // Commit the aggregate of `k` pure-hit repetitions, per op in
        // window order.
        for c in plan {
            match *c {
                Commit::Exec { n } => {
                    let total = k.saturating_mul(n);
                    self.instructions = self.instructions.saturating_add(total);
                    self.ff_instructions = self.ff_instructions.saturating_add(total);
                    self.itlb.note_fast_hits(k);
                }
                Commit::Mem {
                    slot,
                    va,
                    pa,
                    write,
                    size,
                    shift,
                    real_page,
                    off0,
                } => {
                    if write {
                        self.stores = self.stores.saturating_add(k);
                        // Per-op replay stores zeros; land the same
                        // bytes so batched and per-op replay agree on
                        // guest memory, not just simulated state.
                        for r in 1..=k {
                            let off = (off0 as i64 + shift.wrapping_mul(r as i64)) as u64;
                            let real = real_page + off;
                            match size {
                                1 => self.mem.write_u8(real, 0),
                                2 => self.mem.write_u16(real, 0),
                                4 => self.mem.write_u32(real, 0),
                                _ => self.mem.write_u64(real, 0),
                            }
                        }
                    } else {
                        self.loads = self.loads.saturating_add(k);
                    }
                    self.tlb.note_fast_hits(slot, k);
                    self.cache.note_fast_hits(va, pa, k, write);
                    self.ff_accesses = self.ff_accesses.saturating_add(k);
                }
            }
        }
        self.pc_offset = pc_final;
        self.loop_ff_reps = self.loop_ff_reps.saturating_add(k);
        k
    }

    /// Total loop-body repetitions committed by
    /// [`loop_fast_forward`](Machine::loop_fast_forward) — a host-side
    /// diagnostic (not part of [`RunReport`]) for asserting the batched
    /// replay engine engaged.
    pub fn loop_ff_reps(&self) -> u64 {
        self.loop_ff_reps
    }

    /// Whether [`loop_fast_forward`](Machine::loop_fast_forward) can
    /// currently commit anything at all: both host fast-path layers
    /// enabled, the cache geometry supporting residency tracking, and
    /// no op recorder attached (bulk commits bypass the recording
    /// hooks). Replay engines use this to skip periodicity detection
    /// entirely on machines where validation would always fail closed.
    pub fn loop_ff_capable(&self) -> bool {
        self.fast_paths && self.page_ff && self.ff_line_mask.is_some() && self.op_sink.is_none()
    }

    /// Replays a decoded run of scalar ops, handed in as the parallel
    /// structure-of-arrays slices the batch decoder produces
    /// (`kinds[i]` is op `i`'s MTR1 wire tag, `vas[i]`/`args[i]` its
    /// address and size/count). Returns how many leading ops were
    /// consumed, and the fault (if any) that stopped the run — the op
    /// at the returned index did **not** commit.
    ///
    /// This is the second, weaker-precondition half of the batched
    /// replay engine: where
    /// [`loop_fast_forward`](Machine::loop_fast_forward) needs a
    /// periodic window, this consumes *any* run of scalar reads,
    /// writes and execute batches (wire tags 0–2) — no pattern
    /// required. Ops that individually take the live engine's
    /// page-resident pure-hit path — naturally aligned with a live
    /// access memo (generation and vpn current) and the touched line's
    /// residency bit set, or an execute batch inside its single
    /// micro-ITLB window — aggregate without touching the dispatch
    /// machinery; every other scalar op (memo miss, cold line,
    /// misalignment, window break, `Execute { 0 }`) runs through the
    /// same public per-op calls the per-op engine uses, after the
    /// pending aggregate commits. Only a wire tag above 2 (kernel
    /// services, block/stream ops) or a fault returns control.
    ///
    /// Aggregation is order-exact: pure hits touch no shared state, so
    /// notes land per consecutive same-slot group for the TLB
    /// (preserving the final MRU), in one count per direction for the
    /// cache (a store's line is already dirty by the write-memo bit
    /// invariant), and in one count for the micro-ITLB; stores land
    /// the same zero bytes the per-op engine would, and the aggregate
    /// always commits before a slow-path op so every slow path sees
    /// exactly the per-op engine's state. Fails closed to `(0, None)`
    /// whenever the fast-path layers are off or an op recorder is
    /// attached (aggregated commits bypass the recording hooks).
    pub fn replay_scalar_span(
        &mut self,
        kinds: &[u8],
        vas: &[u64],
        args: &[u64],
    ) -> (usize, Option<Fault>) {
        if !self.fast_paths || !self.page_ff || self.op_sink.is_some() {
            return (0, None);
        }
        let len = kinds.len().min(vas.len()).min(args.len());
        let mut agg = SpanAgg::default();
        // Refreshed after every slow-path op: slow paths may bump the
        // generation (invalidating every memo, hot copies included).
        let mut memo_gen = self.memo_gen;
        let mut pc = self.pc_offset;
        let mut i = 0usize;
        while i < len {
            match kinds[i] {
                0 => {
                    let n = args[i];
                    let va = self.code_base + pc;
                    let bytes = n.saturating_mul(4);
                    let window = (PAGE_SIZE - va.page_offset()).min(self.code_len - pc);
                    if n > 0 && bytes <= window && self.itlb.covers(va) {
                        pc = (pc + bytes) % self.code_len;
                        agg.instr_total = agg.instr_total.saturating_add(n);
                        agg.exec_notes += 1;
                    } else {
                        self.pc_offset = pc;
                        self.commit_span_agg(&mut agg);
                        if let Err(fault) = self.try_execute(n) {
                            return (i, Some(fault));
                        }
                        pc = self.pc_offset;
                        memo_gen = self.memo_gen;
                    }
                }
                kind @ (1 | 2) => {
                    let write = kind == 2;
                    // Replay dispatches any recorded size other than
                    // 1/2/4 as a 64-bit access; mirror it.
                    let size = match args[i] as u8 {
                        s @ (1 | 2 | 4) => u64::from(s),
                        _ => 8,
                    };
                    let va = VirtAddr::new(vas[i]);
                    let pure = 'pure: {
                        if !va.is_aligned(size) {
                            break 'pure None;
                        }
                        let vpn = va.vpn().index();
                        let mo = match agg.hot[usize::from(write)] {
                            Some(m) if m.vpn == vpn => m,
                            _ => {
                                let way = (vpn as usize) & (MEMO_WAYS - 1);
                                let memo = if write {
                                    self.write_memos[way]
                                } else {
                                    self.read_memos[way]
                                };
                                let Some(m) = memo else { break 'pure None };
                                if m.gen != memo_gen || m.vpn != vpn {
                                    break 'pure None;
                                }
                                agg.hot[usize::from(write)] = Some(m);
                                m
                            }
                        };
                        let off = va.page_offset();
                        let line = (off >> CACHE_LINE_SHIFT) as usize;
                        if mo.resident[line >> 6] & (1u64 << (line & 63)) == 0 {
                            break 'pure None;
                        }
                        Some((mo, off))
                    };
                    if let Some((mo, off)) = pure {
                        debug_assert_eq!(
                            self.tlb.generation(),
                            mo.tlb_gen,
                            "access memo outlived its TLB generation"
                        );
                        let pa = mo.bus_page + off;
                        match &mut agg.slot_run {
                            Some((slot, hits)) if *slot == mo.slot => *hits += 1,
                            run => {
                                if let Some((slot, hits)) = run.take() {
                                    self.tlb.note_fast_hits(slot, hits);
                                }
                                *run = Some((mo.slot, 1));
                            }
                        }
                        if write {
                            agg.stores = agg.stores.saturating_add(1);
                            agg.write_hits += 1;
                            agg.last_write = Some((va, pa));
                            let real = mo.real_page + off;
                            match size {
                                1 => self.mem.write_u8(real, 0),
                                2 => self.mem.write_u16(real, 0),
                                4 => self.mem.write_u32(real, 0),
                                _ => self.mem.write_u64(real, 0),
                            }
                        } else {
                            agg.loads = agg.loads.saturating_add(1);
                            agg.read_hits += 1;
                            agg.last_read = Some((va, pa));
                        }
                    } else {
                        self.pc_offset = pc;
                        self.commit_span_agg(&mut agg);
                        let result = if write {
                            match size {
                                1 => self.try_write_u8(va, 0),
                                2 => self.try_write_u16(va, 0),
                                4 => self.try_write_u32(va, 0),
                                _ => self.try_write_u64(va, 0),
                            }
                        } else {
                            match size {
                                1 => self.try_read_u8(va).map(drop),
                                2 => self.try_read_u16(va).map(drop),
                                4 => self.try_read_u32(va).map(drop),
                                _ => self.try_read_u64(va).map(drop),
                            }
                        };
                        if let Err(fault) = result {
                            return (i, Some(fault));
                        }
                        memo_gen = self.memo_gen;
                    }
                }
                _ => break,
            }
            i += 1;
        }
        self.pc_offset = pc;
        self.commit_span_agg(&mut agg);
        (i, None)
    }

    /// Scalar access at an address that is *not* naturally aligned for
    /// `bytes.len()`: modelled as the classic pair of aligned accesses
    /// covering the two straddled windows (MIPS `lwl`/`lwr` style), so a
    /// misaligned scalar counts as two loads (or stores) and makes two
    /// cache accesses. Data still moves byte-exact.
    ///
    /// Each half's bytes move immediately after its own aligned access,
    /// before the other half's access runs. Ordering is what defines the
    /// fault semantics when the windows straddle a page boundary: the
    /// second access may shadow-fault, and servicing it can page the
    /// *first* window's frame out (CLOCK eviction under memory
    /// pressure), so a translation obtained for the first window is
    /// stale by the time the second access completes. Committing
    /// per-half keeps the first half exactly-once — never re-run
    /// (double-charged) and never applied to a recycled frame
    /// (half-committed).
    fn misaligned_rw(&mut self, va: VirtAddr, bytes: &mut [u8], write: bool) -> Result<(), Fault> {
        let n = bytes.len() as u64;
        debug_assert!(!va.is_aligned(n), "aligned scalars take the fast path");
        let lo = va.align_down(n);
        let hi = lo + n;
        // Bytes of the scalar that live in the low window.
        let split = hi.offset_from(va) as usize;
        let (_, real_lo) = self.data_access(lo, n, write)?;
        for (i, b) in bytes[..split].iter_mut().enumerate() {
            let real = real_lo + va.offset_from(lo) + i as u64;
            if write {
                self.mem.write_u8(real, *b);
            } else {
                *b = self.mem.read_u8(real);
            }
        }
        let (_, real_hi) = self.data_access(hi, n, write)?;
        for (i, b) in bytes[split..].iter_mut().enumerate() {
            let real = real_hi + i as u64;
            if write {
                self.mem.write_u8(real, *b);
            } else {
                *b = self.mem.read_u8(real);
            }
        }
        Ok(())
    }

    /// Loads a byte.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses (all `try_read_*`/`try_write_*` accessors do).
    pub fn try_read_u8(&mut self, va: VirtAddr) -> Result<u8, Fault> {
        self.record_op(|| MachineOp::Read { va, size: 1 });
        let (_, real) = self.data_access(va, 1, false)?;
        Ok(self.mem.read_u8(real))
    }

    /// Stores a byte.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_write_u8(&mut self, va: VirtAddr, v: u8) -> Result<(), Fault> {
        self.record_op(|| MachineOp::Write { va, size: 1 });
        let (_, real) = self.data_access(va, 1, true)?;
        self.mem.write_u8(real, v);
        Ok(())
    }

    /// Loads a little-endian `u16`. Misaligned addresses work but cost a
    /// second access (see [`Machine`] docs).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_read_u16(&mut self, va: VirtAddr) -> Result<u16, Fault> {
        self.record_op(|| MachineOp::Read { va, size: 2 });
        if va.is_aligned(2) {
            let (_, real) = self.data_access(va, 2, false)?;
            Ok(self.mem.read_u16(real))
        } else {
            let mut b = [0u8; 2];
            self.misaligned_rw(va, &mut b, false)?;
            Ok(u16::from_le_bytes(b))
        }
    }

    /// Stores a little-endian `u16` (misaligned addresses supported).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_write_u16(&mut self, va: VirtAddr, v: u16) -> Result<(), Fault> {
        self.record_op(|| MachineOp::Write { va, size: 2 });
        if va.is_aligned(2) {
            let (_, real) = self.data_access(va, 2, true)?;
            self.mem.write_u16(real, v);
            Ok(())
        } else {
            self.misaligned_rw(va, &mut v.to_le_bytes(), true)
        }
    }

    /// Loads a little-endian `u32` (misaligned addresses supported).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_read_u32(&mut self, va: VirtAddr) -> Result<u32, Fault> {
        self.record_op(|| MachineOp::Read { va, size: 4 });
        if va.is_aligned(4) {
            let (_, real) = self.data_access(va, 4, false)?;
            Ok(self.mem.read_u32(real))
        } else {
            let mut b = [0u8; 4];
            self.misaligned_rw(va, &mut b, false)?;
            Ok(u32::from_le_bytes(b))
        }
    }

    /// Stores a little-endian `u32` (misaligned addresses supported).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_write_u32(&mut self, va: VirtAddr, v: u32) -> Result<(), Fault> {
        self.record_op(|| MachineOp::Write { va, size: 4 });
        if va.is_aligned(4) {
            let (_, real) = self.data_access(va, 4, true)?;
            self.mem.write_u32(real, v);
            Ok(())
        } else {
            self.misaligned_rw(va, &mut v.to_le_bytes(), true)
        }
    }

    /// Loads a little-endian `u64` (misaligned addresses supported).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_read_u64(&mut self, va: VirtAddr) -> Result<u64, Fault> {
        self.record_op(|| MachineOp::Read { va, size: 8 });
        if va.is_aligned(8) {
            let (_, real) = self.data_access(va, 8, false)?;
            Ok(self.mem.read_u64(real))
        } else {
            let mut b = [0u8; 8];
            self.misaligned_rw(va, &mut b, false)?;
            Ok(u64::from_le_bytes(b))
        }
    }

    /// Stores a little-endian `u64` (misaligned addresses supported).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_write_u64(&mut self, va: VirtAddr, v: u64) -> Result<(), Fault> {
        self.record_op(|| MachineOp::Write { va, size: 8 });
        if va.is_aligned(8) {
            let (_, real) = self.data_access(va, 8, true)?;
            self.mem.write_u64(real, v);
            Ok(())
        } else {
            self.misaligned_rw(va, &mut v.to_le_bytes(), true)
        }
    }

    /// Loads an aligned `f64` (stored as its bit pattern).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_read_f64(&mut self, va: VirtAddr) -> Result<f64, Fault> {
        Ok(f64::from_bits(self.try_read_u64(va)?))
    }

    /// Stores an aligned `f64`.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_write_f64(&mut self, va: VirtAddr, v: f64) -> Result<(), Fault> {
        self.try_write_u64(va, v.to_bits())
    }

    // ----- batched accesses -----------------------------------------------

    /// The batched-access engine. Runs `count` items; item `j` performs
    /// one aligned access per lane (in lane order) at `base + j * size`,
    /// then `instr` single-cycle instructions — exactly the sequence the
    /// caller's scalar loop would have issued, and cycle-identical to it.
    ///
    /// Per item it executes the slow scalar path once, then plans the
    /// longest run of following items that provably behave identically —
    /// every lane stays on its current 4 KB page with permission intact,
    /// every touched cache line is resident (so no bus traffic, no
    /// faults), and the fetch stream stays inside the micro-ITLB'd text
    /// page without wrapping — and replays that run in bulk: data moves
    /// through the real-address anchors, hit counters and NRU/MRU bits
    /// advance exactly as `k` slow iterations would have advanced them,
    /// and one summed [`TraceEvent::BatchedRun`] charge lands in the
    /// user bucket where the slow path would have made `k × (lanes +
    /// instr)` single-cycle charges.
    ///
    /// `io` is invoked once per item per lane (item-major, lane-minor,
    /// matching the scalar order) with the guest memory, the lane index
    /// and the access's real address.
    fn stream<IO>(
        &mut self,
        lanes: &[Lane],
        count: u64,
        instr: u64,
        mut io: IO,
    ) -> Result<(), Fault>
    where
        IO: FnMut(&mut GuestMemory, usize, PhysAddr, u64),
    {
        assert!(
            !lanes.is_empty() && lanes.len() <= MAX_LANES,
            "batched operations drive 1..={MAX_LANES} lanes"
        );
        for lane in lanes {
            assert!(
                lane.size.is_power_of_two() && lane.size <= 8,
                "batched lane accesses are power-of-two scalars"
            );
            assert!(
                lane.base.is_aligned(lane.size),
                "batched lane bases must be naturally aligned"
            );
        }
        let mut anchors = [(PhysAddr::new(0), PhysAddr::new(0)); MAX_LANES];
        let mut slots = [0usize; MAX_LANES];
        let mut i = 0u64;
        while i < count {
            // One reference (slow-path) item: per-lane scalar access
            // plus the instruction batch.
            for (l, lane) in lanes.iter().enumerate() {
                let va = lane.base + i * lane.size;
                let (bus, real) = self.data_access(va, lane.size, lane.write)?;
                io(&mut self.mem, l, real, i);
                anchors[l] = (bus, real);
            }
            if instr > 0 {
                self.execute_inner(instr)?;
            }
            i += 1;
            if !self.fast_paths || i >= count {
                continue;
            }

            // Plan the longest provably-identical run starting at `i`.
            // Bound 1: every lane stays on the page item `i-1` proved.
            let mut k = count - i;
            for lane in lanes {
                let prev = lane.base + (i - 1) * lane.size;
                let next = lane.base + i * lane.size;
                if next.vpn() != prev.vpn() {
                    k = 0;
                    break;
                }
                k = k.min((PAGE_SIZE - next.page_offset()) / lane.size);
            }
            // Bound 2: the fetch stream stays inside the current text
            // page (micro-ITLB hit per item) and does not wrap.
            if k > 0 && instr > 0 {
                let text_va = self.code_base + self.pc_offset;
                if self.itlb.covers(text_va) {
                    let window =
                        (PAGE_SIZE - text_va.page_offset()).min(self.code_len - self.pc_offset);
                    k = k.min(window / instr.saturating_mul(4));
                } else {
                    k = 0;
                }
            }
            // Bound 3: the TLB still holds a permitting entry per lane
            // (the item's own ifetch may have evicted one).
            if k > 0 {
                for (l, lane) in lanes.iter().enumerate() {
                    let page_va = lane.base + i * lane.size;
                    let kind = if lane.write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    match self.tlb.slot_for(page_va.vpn()) {
                        Some((slot, entry)) if entry.prot().permits(kind, PrivilegeLevel::User) => {
                            // Mappings cannot change mid-loop (no
                            // syscalls), so any covering entry agrees
                            // with the anchor translation.
                            debug_assert_eq!(
                                entry.translate(page_va),
                                Some(anchors[l].0 + lane.size)
                            );
                            slots[l] = slot;
                        }
                        _ => {
                            k = 0;
                            break;
                        }
                    }
                }
            }
            // Bound 4: every cache line the run touches is resident, so
            // no access reaches the bus (no stalls, no shadow faults).
            for (l, lane) in lanes.iter().enumerate() {
                if k == 0 {
                    break;
                }
                let mut resident = 0u64;
                let mut va = lane.base + i * lane.size;
                let mut bus = anchors[l].0 + lane.size;
                while resident < k {
                    if !self.cache.probe(va, bus) {
                        break;
                    }
                    let line_off = {
                        let raw = bus.get();
                        raw % CACHE_LINE_SIZE
                    };
                    let in_line = ((CACHE_LINE_SIZE - line_off) / lane.size).min(k - resident);
                    resident += in_line;
                    va += in_line * lane.size;
                    bus += in_line * lane.size;
                }
                k = k.min(resident);
            }
            if k == 0 {
                continue;
            }

            // Commit: replay `k` items in bulk. Data still moves
            // per-item (item-major, lane-minor, like the slow path).
            for j in 0..k {
                for (l, lane) in lanes.iter().enumerate() {
                    let real = anchors[l].1 + (j + 1) * lane.size;
                    io(&mut self.mem, l, real, i + j);
                }
            }
            for (l, lane) in lanes.iter().enumerate() {
                if lane.write {
                    self.stores = self.stores.saturating_add(k);
                } else {
                    self.loads = self.loads.saturating_add(k);
                }
                self.tlb.note_fast_hits(slots[l], k);
                // Per-line hit accounting, mirroring the residency walk.
                let mut done = 0u64;
                let mut va = lane.base + i * lane.size;
                let mut bus = anchors[l].0 + lane.size;
                while done < k {
                    let line_off = {
                        let raw = bus.get();
                        raw % CACHE_LINE_SIZE
                    };
                    let in_line = ((CACHE_LINE_SIZE - line_off) / lane.size).min(k - done);
                    self.cache.note_fast_hits(va, bus, in_line, lane.write);
                    done += in_line;
                    va += in_line * lane.size;
                    bus += in_line * lane.size;
                }
            }
            if instr > 0 {
                self.instructions = self.instructions.saturating_add(k * instr);
                self.itlb.note_fast_hits(k);
                self.pc_offset = (self.pc_offset + k * instr * 4) % self.code_len;
            }
            let accesses = k * lanes.len() as u64;
            let instructions = k * instr;
            self.charge(Bucket::User, Cycles::new(accesses + instructions), || {
                TraceEvent::BatchedRun {
                    items: k,
                    accesses,
                    instructions,
                }
            });
            i += k;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `va` — one byte load plus
    /// `instr` instructions per byte, cycle-identical to the equivalent
    /// [`try_read_u8`](Machine::try_read_u8) + [`try_execute`] loop but
    /// fast-forwarding cache-resident same-page runs.
    ///
    /// [`try_execute`]: Machine::try_execute
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_read_block(
        &mut self,
        va: VirtAddr,
        buf: &mut [u8],
        instr: u64,
    ) -> Result<(), Fault> {
        self.record_op(|| MachineOp::ReadBlock {
            va,
            len: buf.len() as u64,
            instr,
        });
        let lanes = [Lane {
            base: va,
            size: 1,
            write: false,
        }];
        self.stream(&lanes, buf.len() as u64, instr, |mem, _, real, item| {
            buf[item as usize] = mem.read_u8(real);
        })
    }

    /// Writes `data` starting at `va` — one byte store plus `instr`
    /// instructions per byte. See [`try_read_block`](Machine::try_read_block).
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_write_block(&mut self, va: VirtAddr, data: &[u8], instr: u64) -> Result<(), Fault> {
        self.record_op(|| MachineOp::WriteBlock {
            va,
            len: data.len() as u64,
            instr,
        });
        let lanes = [Lane {
            base: va,
            size: 1,
            write: true,
        }];
        self.stream(&lanes, data.len() as u64, instr, |mem, _, real, item| {
            mem.write_u8(real, data[item as usize]);
        })
    }

    /// Streams `count` aligned `u32` loads from `base`, `instr`
    /// instructions after each, handing each `(item, value)` to `f`.
    /// Cycle-identical to the equivalent scalar loop.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_stream_read_u32(
        &mut self,
        base: VirtAddr,
        count: u64,
        instr: u64,
        mut f: impl FnMut(u64, u32),
    ) -> Result<(), Fault> {
        self.record_op(|| MachineOp::StreamReadU32 { base, count, instr });
        let lanes = [Lane {
            base,
            size: 4,
            write: false,
        }];
        self.stream(&lanes, count, instr, |mem, _, real, item| {
            f(item, mem.read_u32(real));
        })
    }

    /// Streams `count` aligned `u32` stores to `base`, `instr`
    /// instructions after each, with `f(item)` producing each value.
    /// Cycle-identical to the equivalent scalar loop.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_stream_write_u32(
        &mut self,
        base: VirtAddr,
        count: u64,
        instr: u64,
        mut f: impl FnMut(u64) -> u32,
    ) -> Result<(), Fault> {
        self.record_op(|| MachineOp::StreamWriteU32 { base, count, instr });
        let lanes = [Lane {
            base,
            size: 4,
            write: true,
        }];
        self.stream(&lanes, count, instr, |mem, _, real, item| {
            let v = f(item);
            mem.write_u32(real, v);
        })
    }

    /// Streams paired aligned `u32` stores: item `j` writes
    /// `f(j).0` to `a + j*4` then `f(j).1` to `b + j*4`, then runs
    /// `instr` instructions. The two destination ranges must not
    /// overlap. Cycle-identical to the equivalent scalar loop.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_stream_write_u32_pair(
        &mut self,
        a: VirtAddr,
        b: VirtAddr,
        count: u64,
        instr: u64,
        mut f: impl FnMut(u64) -> (u32, u32),
    ) -> Result<(), Fault> {
        self.record_op(|| MachineOp::StreamWritePairU32 { a, b, count, instr });
        debug_assert!(
            a + count * 4 <= b || b + count * 4 <= a,
            "paired stream lanes must not overlap"
        );
        let lanes = [
            Lane {
                base: a,
                size: 4,
                write: true,
            },
            Lane {
                base: b,
                size: 4,
                write: true,
            },
        ];
        let mut pending = 0u32;
        self.stream(&lanes, count, instr, |mem, lane, real, item| {
            if lane == 0 {
                let (va, vb) = f(item);
                pending = vb;
                mem.write_u32(real, va);
            } else {
                mem.write_u32(real, pending);
            }
        })
    }

    /// Streams paired stores of an aligned `u32` (at `a + j*4`) and an
    /// aligned `f64` (at `b + j*8`) per item, then `instr` instructions.
    /// The two destination ranges must not overlap. Cycle-identical to
    /// the equivalent scalar loop.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] for unmapped or protection-violating
    /// accesses.
    pub fn try_stream_write_u32_f64(
        &mut self,
        a: VirtAddr,
        b: VirtAddr,
        count: u64,
        instr: u64,
        mut f: impl FnMut(u64) -> (u32, f64),
    ) -> Result<(), Fault> {
        self.record_op(|| MachineOp::StreamWriteU32F64 { a, b, count, instr });
        debug_assert!(
            a + count * 4 <= b || b + count * 8 <= a,
            "paired stream lanes must not overlap"
        );
        let lanes = [
            Lane {
                base: a,
                size: 4,
                write: true,
            },
            Lane {
                base: b,
                size: 8,
                write: true,
            },
        ];
        let mut pending = 0f64;
        self.stream(&lanes, count, instr, |mem, lane, real, item| {
            if lane == 0 {
                let (va, vb) = f(item);
                pending = vb;
                mem.write_u32(real, va);
            } else {
                mem.write_u64(real, pending.to_bits());
            }
        })
    }

    // ----- syscalls ---------------------------------------------------------

    /// Maps fresh zeroed pages over `[start, start+len)`.
    pub fn map_region(&mut self, start: VirtAddr, len: u64, prot: Prot) {
        self.record_op(|| MachineOp::MapRegion { start, len, prot });
        let c = self.kernel.map_region(&mut kctx!(self), start, len, prot);
        self.invalidate_memos();
        self.charge(Bucket::Kernel, c, || TraceEvent::MapRegion { start, len });
        self.service_shootdowns();
    }

    /// The `remap()` syscall: promotes the region to shadow-backed
    /// superpages (no-op on baseline machines).
    pub fn remap(&mut self, start: VirtAddr, len: u64) -> RemapReport {
        self.record_op(|| MachineOp::Remap { start, len });
        let rep = self.kernel.remap(&mut kctx!(self), start, len);
        self.invalidate_memos();
        self.charge(Bucket::Kernel, rep.total_cycles(), || TraceEvent::Remap {
            start,
            len,
            superpages: rep.superpages.len() as u64,
        });
        self.service_shootdowns();
        rep
    }

    /// The (modified) `sbrk()` syscall. Returns the previous break.
    pub fn sbrk(&mut self, increment: u64) -> VirtAddr {
        self.record_op(|| MachineOp::Sbrk { increment });
        let (old, c) = self.kernel.sbrk(&mut kctx!(self), increment);
        self.invalidate_memos();
        self.charge(Bucket::Kernel, c, || TraceEvent::Sbrk { increment });
        self.service_shootdowns();
        old
    }

    /// Explicitly swaps out the superpage containing `vpn` under the
    /// configured paging policy (§2.5 experiments).
    pub fn swap_out_superpage(&mut self, vpn: Vpn) -> SwapOutReport {
        self.record_op(|| MachineOp::SwapOutSuperpage { vpn });
        let rep = self.kernel.swap_out_superpage(&mut kctx!(self), vpn);
        self.invalidate_memos();
        self.charge(Bucket::Kernel, rep.cycles, || {
            TraceEvent::SwapOutSuperpage {
                pages_written: rep.pages_written,
            }
        });
        self.service_shootdowns();
        rep
    }

    /// Demotes the superpage containing `vpn` back to 4 KB pages.
    pub fn demote_superpage(&mut self, vpn: Vpn) {
        self.record_op(|| MachineOp::DemoteSuperpage { vpn });
        let c = self.kernel.demote_superpage(&mut kctx!(self), vpn);
        self.invalidate_memos();
        self.charge(Bucket::Kernel, c, || TraceEvent::Demote);
        self.service_shootdowns();
    }

    /// Reads the per-base-page referenced/dirty bits of the superpage
    /// containing `vpn`.
    pub fn page_bits(&mut self, vpn: Vpn) -> Vec<(Vpn, bool, bool)> {
        self.record_op(|| MachineOp::PageBits { vpn });
        let bits = self.kernel.page_bits(&mut kctx!(self), vpn);
        // Harvesting referenced bits may consult/adjust TLB state.
        self.invalidate_memos();
        bits
    }

    /// Creates a new process (fresh address space in its own virtual
    /// window); switch to it with
    /// [`try_switch_process`](Machine::try_switch_process).
    pub fn spawn_process(&mut self) -> usize {
        self.record_op(|| MachineOp::SpawnProcess);
        self.kernel.spawn_process()
    }

    /// Context-switches to `pid`, purging replaceable TLB state on this
    /// core, shooting down the other cores' TLBs, and charging the
    /// scheduler cost.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::NoSuchProcess`] when `pid` was never spawned;
    /// the machine is unchanged (and nothing is charged) in that case.
    pub fn try_switch_process(&mut self, pid: usize) -> Result<(), Fault> {
        self.record_op(|| MachineOp::SwitchProcess { pid: pid as u64 });
        let c = self.kernel.switch_process(&mut kctx!(self), pid)?;
        self.invalidate_memos();
        self.charge(Bucket::Kernel, c, || TraceEvent::ContextSwitch {
            pid: pid as u64,
        });
        self.service_shootdowns();
        Ok(())
    }

    /// The private heap-window base of a process (for mapping regions
    /// that do not collide across processes).
    #[must_use]
    pub fn process_heap_base(pid: usize) -> VirtAddr {
        Kernel::heap_base(pid)
    }

    /// Stream-buffer statistics from the memory controller (zeroes when
    /// no buffers are fitted).
    #[must_use]
    pub fn mmc_stream_stats(&self) -> mtlb_mmc::StreamStats {
        self.mmc.stream_stats()
    }

    /// The cache color of the bus address backing a mapped page
    /// (meaningful on physically-indexed caches).
    ///
    /// # Panics
    ///
    /// Panics when `vpn` is unmapped.
    #[must_use]
    pub fn page_color(&self, vpn: Vpn) -> u64 {
        let info = self
            .kernel
            .aspace()
            .page(vpn)
            .unwrap_or_else(|| panic!("page_color of unmapped vpn {vpn}"));
        let ppn = match info.backing {
            mtlb_os::Backing::Real(f) => f,
            mtlb_os::Backing::Shadow { shadow_spn } => shadow_spn.bus(),
        };
        self.cfg.cache.color_of(ppn.base_addr())
    }

    /// No-copy page recoloring via shadow memory (§6 extension): moves
    /// the page to a shadow bus address of the requested cache color.
    pub fn recolor_page(&mut self, vpn: Vpn, color: u64) {
        self.record_op(|| MachineOp::RecolorPage { vpn, color });
        let c = self.kernel.recolor_page(&mut kctx!(self), vpn, color);
        self.invalidate_memos();
        self.charge(Bucket::Kernel, c, || TraceEvent::Recolor);
        self.service_shootdowns();
    }

    /// Resets all statistics and timing buckets (e.g. after warmup),
    /// preserving machine state.
    pub fn reset_stats(&mut self) {
        self.record_op(|| MachineOp::ResetStats);
        // Pending fast-forward cycles were earned pre-reset; drain them
        // so the trace sink (if any) sees them, then zero everything.
        self.flush_fast_forward();
        self.buckets = TimeBuckets::default();
        self.loads = 0;
        self.stores = 0;
        self.instructions = 0;
        self.tlb.reset_stats();
        self.cache.reset_stats();
        self.mmc.reset_stats();
        // Parked cores' front-end counters are part of the merged
        // report; reset them the same way as the active core's (the
        // micro-ITLB counters are cumulative on every core, matching
        // the single-core machine).
        for core in self.cores.iter_mut().flatten() {
            core.tlb.reset_stats();
            core.cache.reset_stats();
            core.loads = 0;
            core.stores = 0;
            core.instructions = 0;
        }
        self.contention_events = 0;
        self.contention_cycles = Cycles::ZERO;
        self.last_bus_core = None;
        // Kernel counters are cumulative; snapshot them so the auditor
        // reconciles post-reset deltas only.
        self.kernel_base = self.kernel.stats();
        self.miss_intervals = Histogram::new();
        self.last_miss_at = None;
    }

    /// Debug-build cycle-attribution audit: reconciles the time buckets
    /// against the independently-maintained per-component counters and
    /// panics on any drift. Each check pairs a bucket (mutated only via
    /// [`charge`](Machine::charge)) with counters accumulated inside
    /// the component that earned the cycles, so a charge routed to the
    /// wrong bucket, double-counted, or dropped shows up immediately.
    #[cfg(debug_assertions)]
    fn audit(&self, r: &RunReport) {
        let base = &self.kernel_base;
        // Exhaustive, `..`-free destructures: every counter field of every
        // stats struct in the report must be named here, so adding a field
        // without deciding how the auditor reconciles it is a compile
        // error. `mtlb-analysis` checks this symmetry statically; fields
        // bound to `_` are reconciled implicitly (they feed a derived
        // figure or are informational-only).
        let TimeBuckets {
            user,
            tlb_miss,
            mem_stall,
            kernel,
            fault,
        } = r.buckets;
        let mtlb_tlb::TlbStats {
            hits: _,
            misses: tlb_misses,
            replacements: _,
            purges: _,
            nru_resets: _,
            fills: tlb_fills,
        } = r.tlb;
        let mtlb_cache::CacheStats {
            hits: _,
            misses: cache_misses,
            replacement_writebacks,
            flush_writebacks,
            lines_flushed: _,
            flush_walks: _,
        } = r.cache;
        let mtlb_mmc::MmcStats {
            fills_shared,
            fills_exclusive,
            writebacks: mmc_writebacks,
            shadow_ops: _,
            real_ops: _,
            mtlb_hits: _,
            mtlb_misses: _,
            shadow_faults,
            bus_errors: _,
            fill_mmc_cycles: _,
            control_ops: _,
            ref fill_hist,
        } = r.mmc;
        let KernelStats {
            tlb_miss_handler_calls,
            remaps: _,
            superpages_created: _,
            pages_remapped: _,
            sbrk_calls: _,
            shadow_faults_serviced,
            pages_swapped_out: _,
            pages_swapped_in: _,
            clock_sweeps: _,
            pages_recolored: _,
            auto_promotions: _,
            processes_spawned: _,
            context_switches: _,
            tlb_miss_cycles,
            fault_cycles,
            service_cycles,
            shootdowns: _,
            shootdown_cycles,
        } = r.kernel;
        let mmc_fills = fills_shared + fills_exclusive;
        assert_eq!(
            r.total_cycles,
            user + tlb_miss + mem_stall + kernel + fault,
            "attribution audit: total_cycles != bucket sum"
        );
        assert_eq!(
            user.get(),
            r.instructions + r.loads + r.stores,
            "attribution audit: user bucket != instructions + single-cycle accesses"
        );
        assert_eq!(
            tlb_miss,
            tlb_miss_cycles - base.tlb_miss_cycles,
            "attribution audit: tlb_miss bucket != kernel handler cycles"
        );
        assert_eq!(
            fault,
            fault_cycles - base.fault_cycles,
            "attribution audit: fault bucket != kernel shadow-fault cycles"
        );
        assert_eq!(
            kernel,
            (service_cycles - base.service_cycles) + (shootdown_cycles - base.shootdown_cycles),
            "attribution audit: kernel bucket != kernel service + shootdown cycles"
        );
        assert_eq!(
            tlb_misses,
            tlb_miss_handler_calls - base.tlb_miss_handler_calls,
            "attribution audit: TLB misses != miss-handler invocations"
        );
        assert_eq!(
            tlb_fills,
            tlb_miss_handler_calls - base.tlb_miss_handler_calls,
            "attribution audit: TLB refills != miss-handler invocations"
        );
        assert_eq!(
            mmc_fills, cache_misses,
            "attribution audit: MMC fills != cache misses"
        );
        assert_eq!(
            mmc_writebacks,
            replacement_writebacks + flush_writebacks,
            "attribution audit: MMC writebacks != cache writebacks"
        );
        assert_eq!(
            shadow_faults,
            shadow_faults_serviced - base.shadow_faults_serviced,
            "attribution audit: MMC shadow faults != kernel services"
        );
        assert_eq!(
            fill_hist.count(),
            mmc_fills,
            "attribution audit: fill histogram count != fill count"
        );
        // Histogram saturation check: the report's aggregate figures are
        // only trustworthy while no bucket or sum has clamped at
        // `u64::MAX` (the release-build histograms saturate rather than
        // wrap, see `Histogram::sum`).
        assert!(
            fill_hist.checked_sum().is_some(),
            "attribution audit: MMC fill histogram saturated"
        );
        assert!(
            r.tlb_miss_intervals.checked_sum().is_some(),
            "attribution audit: TLB miss-interval histogram saturated"
        );
        // Rival-scheme extras (fig5): each front-end instance's private
        // counters must reconcile with its shared `TlbStats` — every
        // fill was classified exactly once.
        for scheme in std::iter::once(&self.tlb).chain(self.cores.iter().flatten().map(|c| &c.tlb))
        {
            if let Some(co) = scheme.as_any().downcast_ref::<CoalescedTlb>() {
                let CoalescedStats {
                    single_fills,
                    coalesced_fills,
                    merges: _,
                    max_run_pages: _,
                } = co.scheme_stats();
                assert_eq!(
                    single_fills.saturating_add(coalesced_fills),
                    scheme.stats().fills,
                    "attribution audit: coalesced fill classes != fills"
                );
            }
            if let Some(sp) = scheme.as_any().downcast_ref::<SplitTlb>() {
                let SplitStats {
                    fills_base,
                    fills_mid,
                    fills_large,
                } = sp.scheme_stats();
                assert_eq!(
                    fills_base
                        .saturating_add(fills_mid)
                        .saturating_add(fills_large),
                    scheme.stats().fills,
                    "attribution audit: split fill classes != fills"
                );
            }
        }
        // Per-core symmetry: the merged report figures must equal the
        // field-by-field sum over `per_core_stats()`, with every
        // `CoreStats` field named (adding a per-core counter without
        // deciding how it merges is a compile error here).
        let mut sum = CoreStats::default();
        for core in self.per_core_stats() {
            let CoreStats {
                tlb,
                cache,
                itlb_hits,
                itlb_misses,
                loads,
                stores,
                instructions,
            } = core;
            Self::merge_tlb_stats(&mut sum.tlb, tlb);
            Self::merge_cache_stats(&mut sum.cache, cache);
            sum.itlb_hits = sum.itlb_hits.saturating_add(itlb_hits);
            sum.itlb_misses = sum.itlb_misses.saturating_add(itlb_misses);
            sum.loads = sum.loads.saturating_add(loads);
            sum.stores = sum.stores.saturating_add(stores);
            sum.instructions = sum.instructions.saturating_add(instructions);
        }
        assert_eq!(
            sum.tlb, r.tlb,
            "attribution audit: per-core TLB stats drift"
        );
        assert_eq!(
            sum.cache, r.cache,
            "attribution audit: per-core cache stats drift"
        );
        assert_eq!(
            (sum.itlb_hits, sum.itlb_misses),
            (r.itlb_hits, r.itlb_misses),
            "attribution audit: per-core micro-ITLB stats drift"
        );
        assert_eq!(
            (sum.loads, sum.stores, sum.instructions),
            (r.loads, r.stores, r.instructions),
            "attribution audit: per-core access counters drift"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::PageSize;

    fn mtlb_machine() -> Machine {
        Machine::new(MachineConfig::paper_mtlb(64))
    }

    fn base_machine() -> Machine {
        Machine::new(MachineConfig::paper_base(64))
    }

    const DATA: VirtAddr = UserLayout::DATA_BASE;

    #[test]
    fn scalar_round_trips_through_full_hierarchy() {
        for mut m in [mtlb_machine(), base_machine()] {
            m.map_region(DATA, 64 * 1024, Prot::RW);
            m.remap(DATA, 64 * 1024);
            m.try_write_u8(DATA + 1, 0xaa).unwrap();
            m.try_write_u16(DATA + 2, 0xbbcc).unwrap();
            m.try_write_u32(DATA + 4, 0xdead_beef).unwrap();
            m.try_write_u64(DATA + 8, 0x0123_4567_89ab_cdef).unwrap();
            m.try_write_f64(DATA + 16, 2.5).unwrap();
            assert_eq!(m.try_read_u8(DATA + 1).unwrap(), 0xaa);
            assert_eq!(m.try_read_u16(DATA + 2).unwrap(), 0xbbcc);
            assert_eq!(m.try_read_u32(DATA + 4).unwrap(), 0xdead_beef);
            assert_eq!(m.try_read_u64(DATA + 8).unwrap(), 0x0123_4567_89ab_cdef);
            assert_eq!(m.try_read_f64(DATA + 16).unwrap(), 2.5);
        }
    }

    #[test]
    fn data_survives_remap() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 64 * 1024, Prot::RW);
        for i in 0..16u64 {
            m.try_write_u64(DATA + i * PAGE_SIZE + 8, i + 100).unwrap();
        }
        let rep = m.remap(DATA, 64 * 1024);
        assert_eq!(rep.superpages.len(), 1);
        for i in 0..16u64 {
            assert_eq!(m.try_read_u64(DATA + i * PAGE_SIZE + 8).unwrap(), i + 100);
        }
    }

    #[test]
    fn remapped_region_uses_one_tlb_entry() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 256 * 1024, Prot::RW);
        m.remap(DATA, 256 * 1024);
        m.reset_stats();
        // Touch all 64 pages: one miss fills a 256 KB superpage entry,
        // everything else hits.
        for i in 0..64u64 {
            m.try_read_u32(DATA + i * PAGE_SIZE).unwrap();
        }
        let r = m.report();
        assert_eq!(r.tlb.misses, 1, "one superpage entry covers the region");
        // Baseline machine: one miss per page.
        let mut b = base_machine();
        b.map_region(DATA, 256 * 1024, Prot::RW);
        b.remap(DATA, 256 * 1024);
        b.reset_stats();
        for i in 0..64u64 {
            b.try_read_u32(DATA + i * PAGE_SIZE).unwrap();
        }
        assert_eq!(b.report().tlb.misses, 64);
    }

    #[test]
    fn mtlb_reach_extension_headline() {
        // The abstract's claim in miniature: a small CPU TLB plus the
        // MTLB reaches a working set that thrashes the same TLB without
        // superpages. 8 TLB entries, 32 pages of data.
        let len = 32 * PAGE_SIZE;
        let run = |mut m: Machine| {
            m.map_region(DATA, len, Prot::RW);
            m.remap(DATA, len);
            m.reset_stats();
            for round in 0..8u64 {
                for i in 0..32u64 {
                    m.try_read_u32(DATA + i * PAGE_SIZE + round * 64).unwrap();
                }
            }
            m.report()
        };
        let with = run(Machine::new(MachineConfig::paper_mtlb(8)));
        let without = run(Machine::new(MachineConfig::paper_base(8)));
        assert!(with.tlb.misses < 4, "superpages fit easily: {:?}", with.tlb);
        assert_eq!(without.tlb.misses, 8 * 32, "every touch misses");
        assert!(with.total_cycles < without.total_cycles);
    }

    #[test]
    fn execute_accounts_instructions_and_ifetches() {
        let mut m = mtlb_machine();
        m.load_program(8 * PAGE_SIZE, false);
        m.reset_stats();
        m.try_execute(10_000).unwrap();
        let r = m.report();
        assert_eq!(r.instructions, 10_000);
        assert!(r.buckets.user >= Cycles::new(10_000));
        // 10k instructions * 4 B = 40 KB of fetches over an 8-page loop:
        // ~10 page crossings; the first 8 miss the ITLB.
        assert!(r.itlb_misses >= 8);
        assert!(r.itlb_hits > 0 || r.itlb_misses < 11);
    }

    #[test]
    fn text_superpage_eliminates_itlb_pressure_on_main_tlb() {
        let mut m = mtlb_machine();
        m.load_program(64 * 1024, true); // 16 pages, remapped
        m.reset_stats();
        m.try_execute(100_000).unwrap();
        let r = m.report();
        assert!(
            r.tlb.misses <= 1,
            "one 64 KB text superpage serves all fetch translations: {:?}",
            r.tlb
        );
    }

    #[test]
    fn swapped_page_faults_and_recovers_transparently() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 16 * 1024, Prot::RW);
        m.remap(DATA, 16 * 1024);
        m.try_write_u64(DATA + 2 * PAGE_SIZE, 777).unwrap();
        m.swap_out_superpage(DATA.vpn());
        // The access below faults in the MMC, the OS swaps the page in,
        // and the load completes with the right value.
        assert_eq!(m.try_read_u64(DATA + 2 * PAGE_SIZE).unwrap(), 777);
        let r = m.report();
        assert_eq!(r.kernel.shadow_faults_serviced, 1);
        assert!(r.buckets.fault > Cycles::ZERO);
    }

    #[test]
    fn per_page_dirty_bits_visible_to_os() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 64 * 1024, Prot::RW);
        m.remap(DATA, 64 * 1024);
        // Write pages 2 and 9; read page 5.
        m.try_write_u32(DATA + 2 * PAGE_SIZE, 1).unwrap();
        m.try_write_u32(DATA + 9 * PAGE_SIZE, 1).unwrap();
        m.try_read_u32(DATA + 5 * PAGE_SIZE).unwrap();
        let bits = m.page_bits(DATA.vpn());
        assert_eq!(bits.len(), 16);
        for (i, (_, referenced, dirty)) in bits.iter().enumerate() {
            let expect_dirty = i == 2 || i == 9;
            let expect_ref = expect_dirty || i == 5;
            assert_eq!(*dirty, expect_dirty, "page {i} dirty bit");
            assert_eq!(*referenced, expect_ref, "page {i} referenced bit");
        }
    }

    #[test]
    fn sbrk_heap_is_usable_immediately() {
        let mut m = mtlb_machine();
        let p = m.sbrk(100_000);
        for i in 0..100u64 {
            m.try_write_u32(p + i * 1000 / 4 * 4, i as u32).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(m.try_read_u32(p + i * 1000 / 4 * 4).unwrap(), i as u32);
        }
        assert!(m.kernel().stats().superpages_created > 0);
    }

    #[test]
    fn mtlb_machine_charges_detect_cycle_on_fills() {
        let mut with = mtlb_machine();
        let mut without = base_machine();
        for m in [&mut with, &mut without] {
            m.map_region(DATA, 4096, Prot::RW);
            m.reset_stats();
            m.try_read_u32(DATA).unwrap(); // one cold miss
        }
        // A *real*-address fill never touches the MTLB table, so the only
        // difference is the paper's 1-cycle shadow-detect classification:
        // 29 vs 28 MMC cycles.
        assert_eq!(with.report().mmc.fill_mmc_cycles, 29);
        assert_eq!(without.report().mmc.fill_mmc_cycles, 28);
    }

    #[test]
    fn misaligned_scalars_round_trip() {
        for mut m in [mtlb_machine(), base_machine()] {
            m.map_region(DATA, 16 * 1024, Prot::RW);
            // Offsets straddling every alignment boundary, including a
            // base-page boundary (offset 4094 with a u32).
            m.try_write_u16(DATA + 1, 0xa55a).unwrap();
            m.try_write_u32(DATA + 6, 0xdead_beef).unwrap();
            m.try_write_u32(DATA + 4094, 0x0102_0304).unwrap();
            m.try_write_u64(DATA + 13, 0x1122_3344_5566_7788).unwrap();
            assert_eq!(m.try_read_u16(DATA + 1).unwrap(), 0xa55a);
            assert_eq!(m.try_read_u32(DATA + 6).unwrap(), 0xdead_beef);
            assert_eq!(m.try_read_u32(DATA + 4094).unwrap(), 0x0102_0304);
            assert_eq!(m.try_read_u64(DATA + 13).unwrap(), 0x1122_3344_5566_7788);
        }
    }

    #[test]
    fn misaligned_scalar_bytes_agree_with_aligned_view() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 4096, Prot::RW);
        m.try_write_u64(DATA, 0x8877_6655_4433_2211).unwrap();
        // A misaligned u32 at offset 2 must see bytes 2..6 of the u64.
        assert_eq!(m.try_read_u32(DATA + 2).unwrap(), 0x6655_4433);
        // And a misaligned store must leave its neighbours intact:
        // bytes 3..5 become ef, be in a little-endian u64.
        m.try_write_u16(DATA + 3, 0xbeef).unwrap();
        assert_eq!(m.try_read_u64(DATA).unwrap(), 0x8877_66be_ef33_2211);
    }

    #[test]
    fn misaligned_scalar_costs_two_accesses() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 4096, Prot::RW);
        m.reset_stats();
        m.try_read_u32(DATA + 2).unwrap(); // straddles: lwl/lwr-style pair
        assert_eq!(m.report().loads, 2);
        m.reset_stats();
        m.try_read_u32(DATA + 4).unwrap();
        assert_eq!(m.report().loads, 1, "aligned stays a single access");
        m.reset_stats();
        m.try_write_u64(DATA + 3, 7).unwrap();
        assert_eq!(m.report().stores, 2);
    }

    #[test]
    fn unmapped_access_is_a_typed_fault() {
        let mut m = mtlb_machine();
        let va = VirtAddr::new(0x6666_0000);
        assert!(matches!(
            m.try_read_u32(va),
            Err(Fault::PageNotMapped { va: f }) if f == va
        ));
        // The fault is precise: the machine remains usable.
        m.try_execute(1).unwrap();
    }

    #[test]
    fn write_to_readonly_is_a_protection_fault() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 4096, Prot::READ);
        assert!(matches!(
            m.try_write_u32(DATA, 1),
            Err(Fault::Protection {
                kind: AccessKind::Write,
                ..
            })
        ));
        // The read side of the same page is fine.
        assert_eq!(m.try_read_u32(DATA).unwrap(), 0);
    }

    #[test]
    fn reset_stats_preserves_state() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 4096, Prot::RW);
        m.try_write_u32(DATA, 99).unwrap();
        m.reset_stats();
        assert_eq!(m.cycles(), Cycles::ZERO);
        assert_eq!(m.try_read_u32(DATA).unwrap(), 99);
    }

    #[test]
    fn determinism_same_config_same_cycles() {
        let run = || {
            let mut m = mtlb_machine();
            m.map_region(DATA, 128 * 1024, Prot::RW);
            m.remap(DATA, 128 * 1024);
            for i in 0..1000u64 {
                m.try_write_u32(DATA + (i * 4093 % (128 * 1024)) / 4 * 4, i as u32)
                    .unwrap();
            }
            m.try_execute(5000).unwrap();
            m.cycles()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn superpage_sizes_observed_in_aspace() {
        let mut m = mtlb_machine();
        m.map_region(DATA, (1 << 20) + 64 * 1024, Prot::RW);
        m.remap(DATA, (1 << 20) + 64 * 1024);
        let sizes: Vec<PageSize> = m.kernel().aspace().superpages().map(|sp| sp.size).collect();
        assert_eq!(sizes, vec![PageSize::Size1M, PageSize::Size64K]);
    }

    /// Drives the same logical program through the batch APIs on one
    /// machine and the equivalent scalar loops on another; every cycle
    /// and every counter must agree — the tentpole's bit-identity claim
    /// in one test.
    #[test]
    fn batched_streams_are_cycle_identical_to_scalar_loops() {
        let program = |m: &mut Machine, batch: bool| {
            m.map_region(DATA, 64 * 1024, Prot::RW);
            m.remap(DATA, 64 * 1024);
            m.load_program(8 * PAGE_SIZE, false);
            let n = 3000u64;
            if batch {
                m.try_stream_write_u32(DATA, n, 2, |i| i as u32).unwrap();
                let mut sum = 0u64;
                m.try_stream_read_u32(DATA, n, 1, |_, v| sum += u64::from(v))
                    .unwrap();
                let bytes: Vec<u8> = (0..500).map(|i| i as u8).collect();
                m.try_write_block(DATA + 16 * 1024, &bytes, 3).unwrap();
                let mut back = vec![0u8; 500];
                m.try_read_block(DATA + 16 * 1024, &mut back, 1).unwrap();
                m.try_stream_write_u32_pair(DATA + 32 * 1024, DATA + 40 * 1024, 800, 3, |i| {
                    (i as u32, !i as u32)
                })
                .unwrap();
                m.try_stream_write_u32_f64(DATA + 44 * 1024, DATA + 48 * 1024, 500, 4, |i| {
                    (i as u32, i as f64)
                })
                .unwrap();
                (sum, back)
            } else {
                for i in 0..n {
                    m.try_write_u32(DATA + i * 4, i as u32).unwrap();
                    m.try_execute(2).unwrap();
                }
                let mut sum = 0u64;
                for i in 0..n {
                    sum += u64::from(m.try_read_u32(DATA + i * 4).unwrap());
                    m.try_execute(1).unwrap();
                }
                for i in 0..500u64 {
                    m.try_write_u8(DATA + 16 * 1024 + i, i as u8).unwrap();
                    m.try_execute(3).unwrap();
                }
                let mut back = vec![0u8; 500];
                for (i, b) in back.iter_mut().enumerate() {
                    *b = m.try_read_u8(DATA + 16 * 1024 + i as u64).unwrap();
                    m.try_execute(1).unwrap();
                }
                for i in 0..800u64 {
                    m.try_write_u32(DATA + 32 * 1024 + i * 4, i as u32).unwrap();
                    m.try_write_u32(DATA + 40 * 1024 + i * 4, !i as u32)
                        .unwrap();
                    m.try_execute(3).unwrap();
                }
                for i in 0..500u64 {
                    m.try_write_u32(DATA + 44 * 1024 + i * 4, i as u32).unwrap();
                    m.try_write_f64(DATA + 48 * 1024 + i * 8, i as f64).unwrap();
                    m.try_execute(4).unwrap();
                }
                (sum, back)
            }
        };
        let mut fast = mtlb_machine();
        let mut slow = mtlb_machine();
        slow.set_fast_paths(false);
        let a = program(&mut fast, true);
        let b = program(&mut slow, false);
        assert_eq!(a, b, "computed values must agree");
        assert_eq!(
            fast.report().to_json(),
            slow.report().to_json(),
            "batched and scalar execution must be cycle- and counter-identical"
        );
        assert_eq!(
            fast.guest_memory().content_digest(),
            slow.guest_memory().content_digest()
        );
    }

    /// Regression: translation memos must die on every remap, swap-out,
    /// recoloring and context switch between same-page accesses. Runs
    /// one sequence interleaving all invalidation events with same-page
    /// hits, on a fast machine and a slow-path reference; cycles,
    /// counters and values must agree.
    #[test]
    fn memo_invalidation_on_remap_purge_and_context_switch() {
        let program = |m: &mut Machine| {
            m.map_region(DATA, 64 * 1024, Prot::RW);
            let mut acc = 0u64;
            // Establish hot read+write memos.
            for i in 0..64u64 {
                m.try_write_u32(DATA + i * 4, i as u32).unwrap();
                acc += u64::from(m.try_read_u32(DATA + i * 4).unwrap());
            }
            // Remap to shadow superpages: bus addresses move.
            m.remap(DATA, 64 * 1024);
            acc += u64::from(m.try_read_u32(DATA + 4).unwrap());
            m.try_write_u32(DATA + 8, 1234).unwrap();
            // Swap the superpage out: residency changes, TLB purged;
            // the next same-page access must shadow-fault and recover.
            m.swap_out_superpage(DATA.vpn());
            acc += u64::from(m.try_read_u32(DATA + 8).unwrap());
            // Context switch away and back purges replaceable TLB state.
            let pid = m.spawn_process();
            m.try_switch_process(pid).unwrap();
            m.try_switch_process(0).unwrap();
            acc += u64::from(m.try_read_u32(DATA + 12).unwrap());
            // Demotion rewrites the mapping granularity.
            m.demote_superpage(DATA.vpn());
            m.try_write_u32(DATA + 12, 77).unwrap();
            acc += u64::from(m.try_read_u32(DATA + 12).unwrap());
            acc
        };
        let mut fast = mtlb_machine();
        let mut slow = mtlb_machine();
        slow.set_fast_paths(false);
        assert_eq!(program(&mut fast), program(&mut slow));
        assert_eq!(fast.report().to_json(), slow.report().to_json());
        assert_eq!(
            fast.guest_memory().content_digest(),
            slow.guest_memory().content_digest()
        );
        // And the fast machine really did take the fast path: the test
        // is vacuous unless memos were live between the events.
        assert!(fast.report().tlb.hits > 0);
    }

    // ----- multi-core front ends -------------------------------------------

    fn two_core_machine() -> Machine {
        Machine::new(MachineConfig::paper_mtlb(64).with_cores(2))
    }

    #[test]
    fn one_core_machine_has_no_shootdowns_or_contention() {
        let mut m = mtlb_machine();
        assert_eq!(m.num_cores(), 1);
        m.map_region(DATA, 64 * 1024, Prot::RW);
        m.remap(DATA, 64 * 1024);
        for i in 0..64u64 {
            m.try_write_u32(DATA + i * 256, i as u32).unwrap();
        }
        m.demote_superpage(DATA.vpn());
        let pid = m.spawn_process();
        m.try_switch_process(pid).unwrap();
        m.try_switch_process(0).unwrap();
        let r = m.report();
        assert_eq!(r.kernel.shootdowns, 0);
        assert_eq!(r.kernel.shootdown_cycles, Cycles::ZERO);
        assert_eq!(r.mtlb_contention_events, 0);
        assert_eq!(r.mtlb_contention_cycles, Cycles::ZERO);
        assert_eq!(m.per_core_stats().len(), 1);
    }

    #[test]
    fn core_banking_isolates_front_ends_and_shares_memory() {
        let mut m = two_core_machine();
        assert_eq!(m.num_cores(), 2);
        assert_eq!(m.active_core(), 0);
        m.map_region(DATA, 64 * 1024, Prot::RW);
        m.try_write_u32(DATA + 8, 0xfeed_f00d).unwrap();
        let core0_loads_before = m.report().loads;
        m.set_active_core(1);
        assert_eq!(m.active_core(), 1);
        // Memory is shared: core 1 reads what core 0 wrote, through its
        // own (cold) TLB and cache.
        assert_eq!(m.try_read_u32(DATA + 8).unwrap(), 0xfeed_f00d);
        let per_core = m.per_core_stats();
        assert_eq!(per_core.len(), 2);
        // Core 1 earned exactly the one load; core 0's counters were
        // banked out untouched.
        assert_eq!(per_core[1].loads, 1);
        assert_eq!(per_core[0].loads + 1, m.report().loads);
        assert_eq!(m.report().loads, core0_loads_before + 1);
        // Core 1 paid its own TLB miss for the shared page.
        assert!(per_core[1].tlb.misses > 0);
        m.set_active_core(0);
        assert_eq!(m.active_core(), 0);
        assert_eq!(m.per_core_stats()[0].loads, per_core[0].loads);
    }

    #[test]
    fn remote_cores_get_shot_down_on_demotion() {
        let mut m = two_core_machine();
        m.map_region(DATA, 64 * 1024, Prot::RW);
        m.remap(DATA, 64 * 1024);
        // Warm both cores' TLBs on the superpage.
        m.try_read_u32(DATA + 4).unwrap();
        m.set_active_core(1);
        m.try_read_u32(DATA + 4).unwrap();
        let before = m.report().kernel.shootdowns;
        let purges_before = m.per_core_stats()[0].tlb.purges;
        // Core 1 demotes the superpage: core 0's stale entry must go.
        m.demote_superpage(DATA.vpn());
        let r = m.report();
        assert!(r.kernel.shootdowns > before);
        assert!(r.kernel.shootdown_cycles > Cycles::ZERO);
        assert!(m.per_core_stats()[0].tlb.purges > purges_before);
        // Core 0 re-misses on its next access (entry was shot down) and
        // still reads coherent data.
        m.set_active_core(0);
        let misses_before = m.per_core_stats()[0].tlb.misses;
        m.try_read_u32(DATA + 4).unwrap();
        assert!(m.per_core_stats()[0].tlb.misses > misses_before);
    }

    #[test]
    fn context_switch_shoots_down_remote_cores() {
        let mut m = two_core_machine();
        m.map_region(DATA, 64 * 1024, Prot::RW);
        m.try_read_u32(DATA).unwrap();
        m.set_active_core(1);
        let pid = m.spawn_process();
        let before = m.report().kernel.shootdowns;
        m.try_switch_process(pid).unwrap();
        assert!(m.report().kernel.shootdowns > before);
        assert_eq!(m.kernel().current_process(), pid);
        // The kernel follows the active core's banked process pointer:
        // core 0 is still running process 0 and pays a fresh TLB miss
        // for the entry the switch shot down.
        m.set_active_core(0);
        assert_eq!(m.kernel().current_process(), 0);
        let misses_before = m.per_core_stats()[0].tlb.misses;
        m.try_read_u32(DATA).unwrap();
        assert!(m.per_core_stats()[0].tlb.misses > misses_before);
        m.set_active_core(1);
        assert_eq!(m.kernel().current_process(), pid);
    }

    #[test]
    fn alternating_cores_pay_bus_arbitration() {
        let mut m = two_core_machine();
        m.map_region(DATA, 512 * 1024, Prot::RW);
        // Ping-pong cache-missing accesses between the cores: each
        // switch of bus ownership costs an arbitration stall.
        for i in 0..8u64 {
            m.set_active_core((i % 2) as usize);
            m.try_read_u32(DATA + i * 64 * 1024).unwrap();
        }
        let r = m.report();
        assert!(r.mtlb_contention_events > 0);
        assert_eq!(
            r.mtlb_contention_cycles,
            Cycles::new(r.mtlb_contention_events * 8)
        );
        // Contention cycles land in the mem-stall bucket.
        assert!(r.buckets.mem_stall >= r.mtlb_contention_cycles);
    }

    #[test]
    fn reset_stats_clears_parked_core_counters() {
        let mut m = two_core_machine();
        m.map_region(DATA, 64 * 1024, Prot::RW);
        m.try_read_u32(DATA).unwrap();
        m.set_active_core(1);
        m.try_read_u32(DATA + 4).unwrap();
        m.reset_stats();
        let r = m.report();
        assert_eq!(r.loads, 0);
        assert_eq!(r.mtlb_contention_events, 0);
        for core in m.per_core_stats() {
            assert_eq!(core.loads, 0);
            assert_eq!(core.tlb.misses, 0);
        }
    }

    #[test]
    fn switching_to_unknown_pid_is_a_clean_fault() {
        let mut m = mtlb_machine();
        let cycles_before = m.report().total_cycles;
        assert_eq!(
            m.try_switch_process(42),
            Err(Fault::NoSuchProcess { pid: 42 })
        );
        assert_eq!(m.report().total_cycles, cycles_before);
    }
}
