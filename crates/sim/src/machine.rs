//! The assembled machine and its execution-driven access paths.

use mtlb_cache::{AccessResult, DataCache, FillKind};
use mtlb_mem::GuestMemory;
use mtlb_mmc::{BusOp, Mmc};
use mtlb_os::{Kernel, KernelCtx, KernelStats, RemapReport, SwapOutReport, UserLayout};
use mtlb_tlb::{CpuTlb, LookupOutcome, MicroItlb};
use mtlb_types::{
    AccessKind, Cycles, Fault, Histogram, PhysAddr, PrivilegeLevel, Prot, VirtAddr, Vpn, PAGE_SIZE,
};

use crate::report::{RunReport, TimeBuckets};
use crate::trace::{Bucket, TraceEvent, TraceRecord, TraceSink};
use crate::MachineConfig;

/// Builds a [`KernelCtx`] from the machine's fields without borrowing
/// `self.kernel`, so kernel services can be invoked in one expression.
macro_rules! kctx {
    ($self:ident) => {
        KernelCtx {
            tlb: &mut $self.tlb,
            itlb: &mut $self.itlb,
            cache: &mut $self.cache,
            mmc: &mut $self.mmc,
            mem: &mut $self.mem,
            ratio: $self.cfg.ratio,
        }
    };
}

/// The complete simulated machine. See the [crate docs](crate) for the
/// modelled system and the timing rules.
///
/// # Access API
///
/// Workloads use the typed accessors ([`read_u32`](Machine::read_u32),
/// [`write_u64`](Machine::write_u64), …) for data, [`execute`] to account
/// instruction execution (with instruction-fetch translation through the
/// micro-ITLB), and the syscall wrappers ([`map_region`], [`remap`],
/// [`sbrk`], …) for memory management.
///
/// Naturally-aligned scalar accesses never straddle a cache line and
/// cost one access. Misaligned scalars are legal but are modelled as the
/// classic pair of aligned accesses over the two straddled windows (MIPS
/// `lwl`/`lwr` style): two loads or stores, two cache accesses.
///
/// [`execute`]: Machine::execute
/// [`map_region`]: Machine::map_region
/// [`remap`]: Machine::remap
/// [`sbrk`]: Machine::sbrk
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    tlb: CpuTlb,
    itlb: MicroItlb,
    cache: DataCache,
    mmc: Mmc,
    mem: GuestMemory,
    kernel: Kernel,
    buckets: TimeBuckets,
    loads: u64,
    stores: u64,
    instructions: u64,
    code_base: VirtAddr,
    code_len: u64,
    pc_offset: u64,
    /// Optional structured event trace; `None` costs one branch per
    /// cycle charge.
    trace: Option<Box<dyn TraceSink>>,
    /// Kernel counters at construction / last [`reset_stats`]
    /// (`Machine::reset_stats`), so the attribution auditor can compare
    /// bucket deltas even though kernel stats are never reset.
    kernel_base: KernelStats,
    /// CPU-cycle intervals between consecutive CPU TLB misses.
    miss_intervals: Histogram,
    last_miss_at: Option<Cycles>,
}

impl Machine {
    /// Builds and boots a machine.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (shadow range overlapping
    /// DRAM, kernel tables not fitting, bad MTLB geometry).
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Self {
        let mut m = Machine {
            tlb: CpuTlb::new(cfg.cpu_tlb_entries),
            itlb: MicroItlb::new(),
            cache: DataCache::new(cfg.cache),
            mmc: Mmc::new(cfg.mmc),
            mem: GuestMemory::new(cfg.mmc.installed_dram),
            kernel: Kernel::new(cfg.mmc, cfg.kernel.clone()),
            cfg,
            buckets: TimeBuckets::default(),
            loads: 0,
            stores: 0,
            instructions: 0,
            code_base: UserLayout::TEXT_BASE,
            code_len: PAGE_SIZE,
            pc_offset: 0,
            trace: None,
            kernel_base: KernelStats::default(),
            miss_intervals: Histogram::new(),
            last_miss_at: None,
        };
        let boot = m.kernel.boot(&mut kctx!(m));
        m.charge(Bucket::Kernel, boot, TraceEvent::Boot);
        // A minimal text page so `execute` works before `load_program`.
        let c = m
            .kernel
            .map_region(&mut kctx!(m), UserLayout::TEXT_BASE, PAGE_SIZE, Prot::RX);
        m.charge(
            Bucket::Kernel,
            c,
            TraceEvent::MapRegion {
                start: UserLayout::TEXT_BASE,
                len: PAGE_SIZE,
            },
        );
        m
    }

    /// Routes every simulated-cycle charge into its bucket, mirroring
    /// the charge to the attached trace sink (if any). This is the only
    /// place `buckets` is mutated after construction, which is what
    /// makes trace-reconstructed totals exact.
    fn charge(&mut self, bucket: Bucket, cycles: Cycles, event: TraceEvent) {
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record(&TraceRecord {
                at: self.buckets.total(),
                cycles,
                bucket,
                event,
            });
        }
        match bucket {
            Bucket::User => self.buckets.user += cycles,
            Bucket::TlbMiss => self.buckets.tlb_miss += cycles,
            Bucket::MemStall => self.buckets.mem_stall += cycles,
            Bucket::Kernel => self.buckets.kernel += cycles,
            Bucket::Fault => self.buckets.fault += cycles,
        }
    }

    /// Attaches a trace sink; subsequent charges are recorded into it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detaches and returns the trace sink, if one was attached.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Notes a CPU TLB miss for the miss-interval histogram.
    fn note_tlb_miss(&mut self) {
        let now = self.buckets.total();
        if let Some(prev) = self.last_miss_at {
            self.miss_intervals.record((now - prev).get());
        }
        self.last_miss_at = Some(now);
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The kernel (for stats, swap inspection, paging experiments).
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Total simulated cycles so far.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.buckets.total()
    }

    /// Snapshot of all statistics.
    ///
    /// In debug builds this also runs the cycle-attribution audit,
    /// panicking if the time buckets have drifted from the
    /// per-component counters (every charge goes through the single
    /// `Machine::charge` funnel, which is what makes the audit exact).
    #[must_use]
    pub fn report(&self) -> RunReport {
        let report = RunReport {
            total_cycles: self.buckets.total(),
            buckets: self.buckets,
            tlb: self.tlb.stats(),
            itlb_hits: self.itlb.hits(),
            itlb_misses: self.itlb.misses(),
            cache: self.cache.stats(),
            mmc: self.mmc.stats(),
            kernel: self.kernel.stats(),
            loads: self.loads,
            stores: self.stores,
            instructions: self.instructions,
            tlb_miss_intervals: self.miss_intervals,
        };
        #[cfg(debug_assertions)]
        self.audit(&report);
        report
    }

    // ----- program text ---------------------------------------------------

    /// Maps a text segment of `len` bytes at the conventional text base
    /// and points the simulated PC at it. `remap_text` additionally
    /// promotes it to shadow superpages (the paper simulates loader
    /// support via explicit remaps, §2.3).
    pub fn load_program(&mut self, len: u64, remap_text: bool) {
        assert!(len > 0, "program text cannot be empty");
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        // Clear of the boot stub page and 64 KB-aligned so modest text
        // segments promote to a single superpage.
        let base = UserLayout::TEXT_BASE + 64 * 1024;
        let c = self
            .kernel
            .map_region(&mut kctx!(self), base, len, Prot::RX);
        self.charge(
            Bucket::Kernel,
            c,
            TraceEvent::MapRegion { start: base, len },
        );
        if remap_text {
            let rep = self.kernel.remap(&mut kctx!(self), base, len);
            self.charge(
                Bucket::Kernel,
                rep.total_cycles(),
                TraceEvent::Remap {
                    start: base,
                    len,
                    superpages: rep.superpages.len() as u64,
                },
            );
        }
        self.code_base = base;
        self.code_len = len;
        self.pc_offset = 0;
    }

    /// Executes `n` single-cycle instructions, advancing the simulated PC
    /// cyclically through the text segment and translating instruction
    /// fetches through the micro-ITLB (then the unified TLB, then the
    /// software miss handler).
    pub fn execute(&mut self, n: u64) {
        self.instructions += n;
        self.charge(
            Bucket::User,
            Cycles::new(n),
            TraceEvent::Execute { instructions: n },
        );
        let mut remaining = n.saturating_mul(4); // 4-byte instructions
        while remaining > 0 {
            let va = self.code_base + self.pc_offset;
            self.ifetch_translate(va);
            let to_page_end = PAGE_SIZE - va.page_offset();
            let to_wrap = self.code_len - self.pc_offset;
            let step = remaining.min(to_page_end).min(to_wrap);
            self.pc_offset = (self.pc_offset + step) % self.code_len;
            remaining -= step;
        }
    }

    fn ifetch_translate(&mut self, va: VirtAddr) {
        if self.itlb.translate(va).is_some() {
            return;
        }
        match self
            .tlb
            .translate(va, AccessKind::IFetch, PrivilegeLevel::User)
        {
            LookupOutcome::Hit(_) => {
                let entry = *self.tlb.probe(va.vpn()).expect("entry present after a hit");
                self.itlb.refill(entry);
            }
            LookupOutcome::Miss => {
                self.note_tlb_miss();
                match self.kernel.handle_tlb_miss(&mut kctx!(self), va) {
                    Ok((entry, c)) => {
                        self.charge(Bucket::TlbMiss, c, TraceEvent::ItlbMiss { va });
                        self.itlb.refill(entry);
                    }
                    Err(f) => panic!("instruction fetch from unmapped memory: {f}"),
                }
            }
            LookupOutcome::Fault(f) => panic!("instruction fetch fault: {f}"),
        }
    }

    // ----- data accesses --------------------------------------------------

    fn translate_data(&mut self, va: VirtAddr, kind: AccessKind) -> PhysAddr {
        loop {
            match self.tlb.translate(va, kind, PrivilegeLevel::User) {
                LookupOutcome::Hit(pa) => return pa,
                LookupOutcome::Miss => {
                    self.note_tlb_miss();
                    match self.kernel.handle_tlb_miss(&mut kctx!(self), va) {
                        Ok((_, c)) => self.charge(Bucket::TlbMiss, c, TraceEvent::TlbMiss { va }),
                        Err(f) => panic!("access to unmapped memory: {f}"),
                    }
                }
                LookupOutcome::Fault(f) => panic!("protection fault: {f}"),
            }
        }
    }

    /// Runs the cache + bus + MMC timing for one access, servicing shadow
    /// page faults transparently (swap-in and retry, §4).
    fn cached_access(&mut self, va: VirtAddr, pa: PhysAddr, write: bool) {
        let result = if write {
            self.cache.access_write(va, pa)
        } else {
            self.cache.access_read(va, pa)
        };
        // Single-cycle cache pipeline, hit or miss.
        self.charge(
            Bucket::User,
            Cycles::new(1),
            TraceEvent::CacheAccess { va, write },
        );
        let AccessResult::Miss { fill, writeback } = result else {
            return;
        };
        if let Some(victim) = writeback {
            let resp = self
                .mmc
                .bus_access(victim, BusOp::Writeback, &mut self.mem)
                .expect(
                    "a dirty victim's page cannot be swapped out: the OS flushes before swapping",
                );
            self.charge(
                Bucket::MemStall,
                self.cfg.ratio.device_to_cpu(resp.mmc_cycles),
                TraceEvent::CacheWriteback { pa: victim },
            );
        }
        let op = match fill {
            FillKind::Shared => BusOp::FillShared,
            FillKind::Exclusive => BusOp::FillExclusive,
        };
        loop {
            match self.mmc.bus_access(pa, op, &mut self.mem) {
                Ok(resp) => {
                    self.charge(
                        Bucket::MemStall,
                        self.cfg.ratio.device_to_cpu(resp.mmc_cycles),
                        TraceEvent::CacheFill { pa },
                    );
                    return;
                }
                Err(Fault::ShadowPageFault { shadow }) => {
                    // Precise fault: the OS pages the base page back in
                    // and the access retries.
                    match self.kernel.handle_shadow_fault(&mut kctx!(self), shadow) {
                        Ok(c) => self.charge(Bucket::Fault, c, TraceEvent::ShadowFault { shadow }),
                        Err(f) => panic!("unserviceable shadow fault: {f}"),
                    }
                }
                Err(f) => panic!("bus error during access to {va}: {f}"),
            }
        }
    }

    fn data_access(&mut self, va: VirtAddr, size: u64, write: bool) -> PhysAddr {
        debug_assert!(
            va.is_aligned(size),
            "data_access is the aligned path; misaligned scalars go through misaligned_rw"
        );
        if write {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let pa = self.translate_data(va, kind);
        self.cached_access(va, pa, write);
        if !self.mmc.is_shadow(pa) {
            // A real bus address is its own translation; skip the
            // functional table walk on this (overwhelmingly common) path.
            debug_assert_eq!(self.mmc.translate_functional(pa, &self.mem).ok(), Some(pa));
            return pa;
        }
        self.mmc
            .translate_functional(pa, &self.mem)
            .expect("page is resident after the access completed")
    }

    /// Scalar access at an address that is *not* naturally aligned for
    /// `bytes.len()`: modelled as the classic pair of aligned accesses
    /// covering the two straddled windows (MIPS `lwl`/`lwr` style), so a
    /// misaligned scalar counts as two loads (or stores) and makes two
    /// cache accesses. Data still moves byte-exact.
    ///
    /// Each half's bytes move immediately after its own aligned access,
    /// before the other half's access runs. Ordering is what defines the
    /// fault semantics when the windows straddle a page boundary: the
    /// second access may shadow-fault, and servicing it can page the
    /// *first* window's frame out (CLOCK eviction under memory
    /// pressure), so a translation obtained for the first window is
    /// stale by the time the second access completes. Committing
    /// per-half keeps the first half exactly-once — never re-run
    /// (double-charged) and never applied to a recycled frame
    /// (half-committed).
    fn misaligned_rw(&mut self, va: VirtAddr, bytes: &mut [u8], write: bool) {
        let n = bytes.len() as u64;
        debug_assert!(!va.is_aligned(n), "aligned scalars take the fast path");
        let lo = va.align_down(n);
        let hi = lo + n;
        // Bytes of the scalar that live in the low window.
        let split = hi.offset_from(va) as usize;
        let real_lo = self.data_access(lo, n, write);
        for (i, b) in bytes[..split].iter_mut().enumerate() {
            let real = real_lo + va.offset_from(lo) + i as u64;
            if write {
                self.mem.write_u8(real, *b);
            } else {
                *b = self.mem.read_u8(real);
            }
        }
        let real_hi = self.data_access(hi, n, write);
        for (i, b) in bytes[split..].iter_mut().enumerate() {
            let real = real_hi + i as u64;
            if write {
                self.mem.write_u8(real, *b);
            } else {
                *b = self.mem.read_u8(real);
            }
        }
    }

    /// Loads a byte.
    pub fn read_u8(&mut self, va: VirtAddr) -> u8 {
        let real = self.data_access(va, 1, false);
        self.mem.read_u8(real)
    }

    /// Stores a byte.
    pub fn write_u8(&mut self, va: VirtAddr, v: u8) {
        let real = self.data_access(va, 1, true);
        self.mem.write_u8(real, v);
    }

    /// Loads a little-endian `u16`. Misaligned addresses work but cost a
    /// second access (see [`Machine`] docs).
    pub fn read_u16(&mut self, va: VirtAddr) -> u16 {
        if va.is_aligned(2) {
            let real = self.data_access(va, 2, false);
            self.mem.read_u16(real)
        } else {
            let mut b = [0u8; 2];
            self.misaligned_rw(va, &mut b, false);
            u16::from_le_bytes(b)
        }
    }

    /// Stores a little-endian `u16` (misaligned addresses supported).
    pub fn write_u16(&mut self, va: VirtAddr, v: u16) {
        if va.is_aligned(2) {
            let real = self.data_access(va, 2, true);
            self.mem.write_u16(real, v);
        } else {
            self.misaligned_rw(va, &mut v.to_le_bytes(), true);
        }
    }

    /// Loads a little-endian `u32` (misaligned addresses supported).
    pub fn read_u32(&mut self, va: VirtAddr) -> u32 {
        if va.is_aligned(4) {
            let real = self.data_access(va, 4, false);
            self.mem.read_u32(real)
        } else {
            let mut b = [0u8; 4];
            self.misaligned_rw(va, &mut b, false);
            u32::from_le_bytes(b)
        }
    }

    /// Stores a little-endian `u32` (misaligned addresses supported).
    pub fn write_u32(&mut self, va: VirtAddr, v: u32) {
        if va.is_aligned(4) {
            let real = self.data_access(va, 4, true);
            self.mem.write_u32(real, v);
        } else {
            self.misaligned_rw(va, &mut v.to_le_bytes(), true);
        }
    }

    /// Loads a little-endian `u64` (misaligned addresses supported).
    pub fn read_u64(&mut self, va: VirtAddr) -> u64 {
        if va.is_aligned(8) {
            let real = self.data_access(va, 8, false);
            self.mem.read_u64(real)
        } else {
            let mut b = [0u8; 8];
            self.misaligned_rw(va, &mut b, false);
            u64::from_le_bytes(b)
        }
    }

    /// Stores a little-endian `u64` (misaligned addresses supported).
    pub fn write_u64(&mut self, va: VirtAddr, v: u64) {
        if va.is_aligned(8) {
            let real = self.data_access(va, 8, true);
            self.mem.write_u64(real, v);
        } else {
            self.misaligned_rw(va, &mut v.to_le_bytes(), true);
        }
    }

    /// Loads an aligned `f64` (stored as its bit pattern).
    pub fn read_f64(&mut self, va: VirtAddr) -> f64 {
        f64::from_bits(self.read_u64(va))
    }

    /// Stores an aligned `f64`.
    pub fn write_f64(&mut self, va: VirtAddr, v: f64) {
        self.write_u64(va, v.to_bits());
    }

    // ----- syscalls ---------------------------------------------------------

    /// Maps fresh zeroed pages over `[start, start+len)`.
    pub fn map_region(&mut self, start: VirtAddr, len: u64, prot: Prot) {
        let c = self.kernel.map_region(&mut kctx!(self), start, len, prot);
        self.charge(Bucket::Kernel, c, TraceEvent::MapRegion { start, len });
    }

    /// The `remap()` syscall: promotes the region to shadow-backed
    /// superpages (no-op on baseline machines).
    pub fn remap(&mut self, start: VirtAddr, len: u64) -> RemapReport {
        let rep = self.kernel.remap(&mut kctx!(self), start, len);
        self.charge(
            Bucket::Kernel,
            rep.total_cycles(),
            TraceEvent::Remap {
                start,
                len,
                superpages: rep.superpages.len() as u64,
            },
        );
        rep
    }

    /// The (modified) `sbrk()` syscall. Returns the previous break.
    pub fn sbrk(&mut self, increment: u64) -> VirtAddr {
        let (old, c) = self.kernel.sbrk(&mut kctx!(self), increment);
        self.charge(Bucket::Kernel, c, TraceEvent::Sbrk { increment });
        old
    }

    /// Explicitly swaps out the superpage containing `vpn` under the
    /// configured paging policy (§2.5 experiments).
    pub fn swap_out_superpage(&mut self, vpn: Vpn) -> SwapOutReport {
        let rep = self.kernel.swap_out_superpage(&mut kctx!(self), vpn);
        self.charge(
            Bucket::Kernel,
            rep.cycles,
            TraceEvent::SwapOutSuperpage {
                pages_written: rep.pages_written,
            },
        );
        rep
    }

    /// Demotes the superpage containing `vpn` back to 4 KB pages.
    pub fn demote_superpage(&mut self, vpn: Vpn) {
        let c = self.kernel.demote_superpage(&mut kctx!(self), vpn);
        self.charge(Bucket::Kernel, c, TraceEvent::Demote);
    }

    /// Reads the per-base-page referenced/dirty bits of the superpage
    /// containing `vpn`.
    pub fn page_bits(&mut self, vpn: Vpn) -> Vec<(Vpn, bool, bool)> {
        self.kernel.page_bits(&mut kctx!(self), vpn)
    }

    /// Creates a new process (fresh address space in its own virtual
    /// window); switch to it with [`switch_process`](Machine::switch_process).
    pub fn spawn_process(&mut self) -> usize {
        self.kernel.spawn_process()
    }

    /// Context-switches to `pid`, purging replaceable TLB state and
    /// charging the scheduler cost.
    pub fn switch_process(&mut self, pid: usize) {
        let c = self.kernel.switch_process(&mut kctx!(self), pid);
        self.charge(
            Bucket::Kernel,
            c,
            TraceEvent::ContextSwitch { pid: pid as u64 },
        );
    }

    /// The private heap-window base of a process (for mapping regions
    /// that do not collide across processes).
    #[must_use]
    pub fn process_heap_base(pid: usize) -> VirtAddr {
        Kernel::heap_base(pid)
    }

    /// Stream-buffer statistics from the memory controller (zeroes when
    /// no buffers are fitted).
    #[must_use]
    pub fn mmc_stream_stats(&self) -> mtlb_mmc::StreamStats {
        self.mmc.stream_stats()
    }

    /// The cache color of the bus address backing a mapped page
    /// (meaningful on physically-indexed caches).
    ///
    /// # Panics
    ///
    /// Panics when `vpn` is unmapped.
    #[must_use]
    pub fn page_color(&self, vpn: Vpn) -> u64 {
        let info = self
            .kernel
            .aspace()
            .page(vpn)
            .unwrap_or_else(|| panic!("page_color of unmapped vpn {vpn}"));
        let ppn = match info.backing {
            mtlb_os::Backing::Real(f) => f,
            mtlb_os::Backing::Shadow { shadow_spn } => shadow_spn.bus(),
        };
        self.cfg.cache.color_of(ppn.base_addr())
    }

    /// No-copy page recoloring via shadow memory (§6 extension): moves
    /// the page to a shadow bus address of the requested cache color.
    pub fn recolor_page(&mut self, vpn: Vpn, color: u64) {
        let c = self.kernel.recolor_page(&mut kctx!(self), vpn, color);
        self.charge(Bucket::Kernel, c, TraceEvent::Recolor);
    }

    /// Resets all statistics and timing buckets (e.g. after warmup),
    /// preserving machine state.
    pub fn reset_stats(&mut self) {
        self.buckets = TimeBuckets::default();
        self.loads = 0;
        self.stores = 0;
        self.instructions = 0;
        self.tlb.reset_stats();
        self.cache.reset_stats();
        self.mmc.reset_stats();
        // Kernel counters are cumulative; snapshot them so the auditor
        // reconciles post-reset deltas only.
        self.kernel_base = self.kernel.stats();
        self.miss_intervals = Histogram::new();
        self.last_miss_at = None;
    }

    /// Debug-build cycle-attribution audit: reconciles the time buckets
    /// against the independently-maintained per-component counters and
    /// panics on any drift. Each check pairs a bucket (mutated only via
    /// [`charge`](Machine::charge)) with counters accumulated inside
    /// the component that earned the cycles, so a charge routed to the
    /// wrong bucket, double-counted, or dropped shows up immediately.
    #[cfg(debug_assertions)]
    fn audit(&self, r: &RunReport) {
        let base = &self.kernel_base;
        // Exhaustive, `..`-free destructures: every counter field of every
        // stats struct in the report must be named here, so adding a field
        // without deciding how the auditor reconciles it is a compile
        // error. `mtlb-analysis` checks this symmetry statically; fields
        // bound to `_` are reconciled implicitly (they feed a derived
        // figure or are informational-only).
        let TimeBuckets {
            user,
            tlb_miss,
            mem_stall,
            kernel,
            fault,
        } = r.buckets;
        let mtlb_tlb::TlbStats {
            hits: _,
            misses: tlb_misses,
            replacements: _,
            purges: _,
            nru_resets: _,
            fills: tlb_fills,
        } = r.tlb;
        let mtlb_cache::CacheStats {
            hits: _,
            misses: cache_misses,
            replacement_writebacks,
            flush_writebacks,
            lines_flushed: _,
            flush_walks: _,
        } = r.cache;
        let mtlb_mmc::MmcStats {
            fills_shared,
            fills_exclusive,
            writebacks: mmc_writebacks,
            shadow_ops: _,
            real_ops: _,
            mtlb_hits: _,
            mtlb_misses: _,
            shadow_faults,
            bus_errors: _,
            fill_mmc_cycles: _,
            control_ops: _,
            ref fill_hist,
        } = r.mmc;
        let KernelStats {
            tlb_miss_handler_calls,
            remaps: _,
            superpages_created: _,
            pages_remapped: _,
            sbrk_calls: _,
            shadow_faults_serviced,
            pages_swapped_out: _,
            pages_swapped_in: _,
            clock_sweeps: _,
            pages_recolored: _,
            auto_promotions: _,
            processes_spawned: _,
            context_switches: _,
            tlb_miss_cycles,
            fault_cycles,
            service_cycles,
        } = r.kernel;
        let mmc_fills = fills_shared + fills_exclusive;
        assert_eq!(
            r.total_cycles,
            user + tlb_miss + mem_stall + kernel + fault,
            "attribution audit: total_cycles != bucket sum"
        );
        assert_eq!(
            user.get(),
            r.instructions + r.loads + r.stores,
            "attribution audit: user bucket != instructions + single-cycle accesses"
        );
        assert_eq!(
            tlb_miss,
            tlb_miss_cycles - base.tlb_miss_cycles,
            "attribution audit: tlb_miss bucket != kernel handler cycles"
        );
        assert_eq!(
            fault,
            fault_cycles - base.fault_cycles,
            "attribution audit: fault bucket != kernel shadow-fault cycles"
        );
        assert_eq!(
            kernel,
            service_cycles - base.service_cycles,
            "attribution audit: kernel bucket != kernel service cycles"
        );
        assert_eq!(
            tlb_misses,
            tlb_miss_handler_calls - base.tlb_miss_handler_calls,
            "attribution audit: TLB misses != miss-handler invocations"
        );
        assert_eq!(
            tlb_fills,
            tlb_miss_handler_calls - base.tlb_miss_handler_calls,
            "attribution audit: TLB refills != miss-handler invocations"
        );
        assert_eq!(
            mmc_fills, cache_misses,
            "attribution audit: MMC fills != cache misses"
        );
        assert_eq!(
            mmc_writebacks,
            replacement_writebacks + flush_writebacks,
            "attribution audit: MMC writebacks != cache writebacks"
        );
        assert_eq!(
            shadow_faults,
            shadow_faults_serviced - base.shadow_faults_serviced,
            "attribution audit: MMC shadow faults != kernel services"
        );
        assert_eq!(
            fill_hist.count(),
            mmc_fills,
            "attribution audit: fill histogram count != fill count"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::PageSize;

    fn mtlb_machine() -> Machine {
        Machine::new(MachineConfig::paper_mtlb(64))
    }

    fn base_machine() -> Machine {
        Machine::new(MachineConfig::paper_base(64))
    }

    const DATA: VirtAddr = UserLayout::DATA_BASE;

    #[test]
    fn scalar_round_trips_through_full_hierarchy() {
        for mut m in [mtlb_machine(), base_machine()] {
            m.map_region(DATA, 64 * 1024, Prot::RW);
            m.remap(DATA, 64 * 1024);
            m.write_u8(DATA + 1, 0xaa);
            m.write_u16(DATA + 2, 0xbbcc);
            m.write_u32(DATA + 4, 0xdead_beef);
            m.write_u64(DATA + 8, 0x0123_4567_89ab_cdef);
            m.write_f64(DATA + 16, 2.5);
            assert_eq!(m.read_u8(DATA + 1), 0xaa);
            assert_eq!(m.read_u16(DATA + 2), 0xbbcc);
            assert_eq!(m.read_u32(DATA + 4), 0xdead_beef);
            assert_eq!(m.read_u64(DATA + 8), 0x0123_4567_89ab_cdef);
            assert_eq!(m.read_f64(DATA + 16), 2.5);
        }
    }

    #[test]
    fn data_survives_remap() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 64 * 1024, Prot::RW);
        for i in 0..16u64 {
            m.write_u64(DATA + i * PAGE_SIZE + 8, i + 100);
        }
        let rep = m.remap(DATA, 64 * 1024);
        assert_eq!(rep.superpages.len(), 1);
        for i in 0..16u64 {
            assert_eq!(m.read_u64(DATA + i * PAGE_SIZE + 8), i + 100);
        }
    }

    #[test]
    fn remapped_region_uses_one_tlb_entry() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 256 * 1024, Prot::RW);
        m.remap(DATA, 256 * 1024);
        m.reset_stats();
        // Touch all 64 pages: one miss fills a 256 KB superpage entry,
        // everything else hits.
        for i in 0..64u64 {
            m.read_u32(DATA + i * PAGE_SIZE);
        }
        let r = m.report();
        assert_eq!(r.tlb.misses, 1, "one superpage entry covers the region");
        // Baseline machine: one miss per page.
        let mut b = base_machine();
        b.map_region(DATA, 256 * 1024, Prot::RW);
        b.remap(DATA, 256 * 1024);
        b.reset_stats();
        for i in 0..64u64 {
            b.read_u32(DATA + i * PAGE_SIZE);
        }
        assert_eq!(b.report().tlb.misses, 64);
    }

    #[test]
    fn mtlb_reach_extension_headline() {
        // The abstract's claim in miniature: a small CPU TLB plus the
        // MTLB reaches a working set that thrashes the same TLB without
        // superpages. 8 TLB entries, 32 pages of data.
        let len = 32 * PAGE_SIZE;
        let run = |mut m: Machine| {
            m.map_region(DATA, len, Prot::RW);
            m.remap(DATA, len);
            m.reset_stats();
            for round in 0..8u64 {
                for i in 0..32u64 {
                    m.read_u32(DATA + i * PAGE_SIZE + round * 64);
                }
            }
            m.report()
        };
        let with = run(Machine::new(MachineConfig::paper_mtlb(8)));
        let without = run(Machine::new(MachineConfig::paper_base(8)));
        assert!(with.tlb.misses < 4, "superpages fit easily: {:?}", with.tlb);
        assert_eq!(without.tlb.misses, 8 * 32, "every touch misses");
        assert!(with.total_cycles < without.total_cycles);
    }

    #[test]
    fn execute_accounts_instructions_and_ifetches() {
        let mut m = mtlb_machine();
        m.load_program(8 * PAGE_SIZE, false);
        m.reset_stats();
        m.execute(10_000);
        let r = m.report();
        assert_eq!(r.instructions, 10_000);
        assert!(r.buckets.user >= Cycles::new(10_000));
        // 10k instructions * 4 B = 40 KB of fetches over an 8-page loop:
        // ~10 page crossings; the first 8 miss the ITLB.
        assert!(r.itlb_misses >= 8);
        assert!(r.itlb_hits > 0 || r.itlb_misses < 11);
    }

    #[test]
    fn text_superpage_eliminates_itlb_pressure_on_main_tlb() {
        let mut m = mtlb_machine();
        m.load_program(64 * 1024, true); // 16 pages, remapped
        m.reset_stats();
        m.execute(100_000);
        let r = m.report();
        assert!(
            r.tlb.misses <= 1,
            "one 64 KB text superpage serves all fetch translations: {:?}",
            r.tlb
        );
    }

    #[test]
    fn swapped_page_faults_and_recovers_transparently() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 16 * 1024, Prot::RW);
        m.remap(DATA, 16 * 1024);
        m.write_u64(DATA + 2 * PAGE_SIZE, 777);
        m.swap_out_superpage(DATA.vpn());
        // The access below faults in the MMC, the OS swaps the page in,
        // and the load completes with the right value.
        assert_eq!(m.read_u64(DATA + 2 * PAGE_SIZE), 777);
        let r = m.report();
        assert_eq!(r.kernel.shadow_faults_serviced, 1);
        assert!(r.buckets.fault > Cycles::ZERO);
    }

    #[test]
    fn per_page_dirty_bits_visible_to_os() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 64 * 1024, Prot::RW);
        m.remap(DATA, 64 * 1024);
        // Write pages 2 and 9; read page 5.
        m.write_u32(DATA + 2 * PAGE_SIZE, 1);
        m.write_u32(DATA + 9 * PAGE_SIZE, 1);
        m.read_u32(DATA + 5 * PAGE_SIZE);
        let bits = m.page_bits(DATA.vpn());
        assert_eq!(bits.len(), 16);
        for (i, (_, referenced, dirty)) in bits.iter().enumerate() {
            let expect_dirty = i == 2 || i == 9;
            let expect_ref = expect_dirty || i == 5;
            assert_eq!(*dirty, expect_dirty, "page {i} dirty bit");
            assert_eq!(*referenced, expect_ref, "page {i} referenced bit");
        }
    }

    #[test]
    fn sbrk_heap_is_usable_immediately() {
        let mut m = mtlb_machine();
        let p = m.sbrk(100_000);
        for i in 0..100u64 {
            m.write_u32(p + i * 1000 / 4 * 4, i as u32);
        }
        for i in 0..100u64 {
            assert_eq!(m.read_u32(p + i * 1000 / 4 * 4), i as u32);
        }
        assert!(m.kernel().stats().superpages_created > 0);
    }

    #[test]
    fn mtlb_machine_charges_detect_cycle_on_fills() {
        let mut with = mtlb_machine();
        let mut without = base_machine();
        for m in [&mut with, &mut without] {
            m.map_region(DATA, 4096, Prot::RW);
            m.reset_stats();
            m.read_u32(DATA); // one cold miss
        }
        // A *real*-address fill never touches the MTLB table, so the only
        // difference is the paper's 1-cycle shadow-detect classification:
        // 29 vs 28 MMC cycles.
        assert_eq!(with.report().mmc.fill_mmc_cycles, 29);
        assert_eq!(without.report().mmc.fill_mmc_cycles, 28);
    }

    #[test]
    fn misaligned_scalars_round_trip() {
        for mut m in [mtlb_machine(), base_machine()] {
            m.map_region(DATA, 16 * 1024, Prot::RW);
            // Offsets straddling every alignment boundary, including a
            // base-page boundary (offset 4094 with a u32).
            m.write_u16(DATA + 1, 0xa55a);
            m.write_u32(DATA + 6, 0xdead_beef);
            m.write_u32(DATA + 4094, 0x0102_0304);
            m.write_u64(DATA + 13, 0x1122_3344_5566_7788);
            assert_eq!(m.read_u16(DATA + 1), 0xa55a);
            assert_eq!(m.read_u32(DATA + 6), 0xdead_beef);
            assert_eq!(m.read_u32(DATA + 4094), 0x0102_0304);
            assert_eq!(m.read_u64(DATA + 13), 0x1122_3344_5566_7788);
        }
    }

    #[test]
    fn misaligned_scalar_bytes_agree_with_aligned_view() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 4096, Prot::RW);
        m.write_u64(DATA, 0x8877_6655_4433_2211);
        // A misaligned u32 at offset 2 must see bytes 2..6 of the u64.
        assert_eq!(m.read_u32(DATA + 2), 0x6655_4433);
        // And a misaligned store must leave its neighbours intact:
        // bytes 3..5 become ef, be in a little-endian u64.
        m.write_u16(DATA + 3, 0xbeef);
        assert_eq!(m.read_u64(DATA), 0x8877_66be_ef33_2211);
    }

    #[test]
    fn misaligned_scalar_costs_two_accesses() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 4096, Prot::RW);
        m.reset_stats();
        m.read_u32(DATA + 2); // straddles: lwl/lwr-style pair
        assert_eq!(m.report().loads, 2);
        m.reset_stats();
        m.read_u32(DATA + 4);
        assert_eq!(m.report().loads, 1, "aligned stays a single access");
        m.reset_stats();
        m.write_u64(DATA + 3, 7);
        assert_eq!(m.report().stores, 2);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_access_panics() {
        let mut m = mtlb_machine();
        m.read_u32(VirtAddr::new(0x6666_0000));
    }

    #[test]
    #[should_panic(expected = "protection fault")]
    fn write_to_readonly_panics() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 4096, Prot::READ);
        m.write_u32(DATA, 1);
    }

    #[test]
    fn reset_stats_preserves_state() {
        let mut m = mtlb_machine();
        m.map_region(DATA, 4096, Prot::RW);
        m.write_u32(DATA, 99);
        m.reset_stats();
        assert_eq!(m.cycles(), Cycles::ZERO);
        assert_eq!(m.read_u32(DATA), 99);
    }

    #[test]
    fn determinism_same_config_same_cycles() {
        let run = || {
            let mut m = mtlb_machine();
            m.map_region(DATA, 128 * 1024, Prot::RW);
            m.remap(DATA, 128 * 1024);
            for i in 0..1000u64 {
                m.write_u32(DATA + (i * 4093 % (128 * 1024)) / 4 * 4, i as u32);
            }
            m.execute(5000);
            m.cycles()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn superpage_sizes_observed_in_aspace() {
        let mut m = mtlb_machine();
        m.map_region(DATA, (1 << 20) + 64 * 1024, Prot::RW);
        m.remap(DATA, (1 << 20) + 64 * 1024);
        let sizes: Vec<PageSize> = m.kernel().aspace().superpages().map(|sp| sp.size).collect();
        assert_eq!(sizes, vec![PageSize::Size1M, PageSize::Size64K]);
    }
}
