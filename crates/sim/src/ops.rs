//! The machine's operation vocabulary for trace record/replay.
//!
//! Every *public* [`Machine`](crate::Machine) entry point that can
//! affect simulated state or timing is describable as one [`MachineOp`]
//! value. With an [`OpSink`] attached
//! ([`set_op_sink`](crate::Machine::set_op_sink)), the machine records
//! one op per public call — at the API boundary, before any internal
//! dispatch — so a recorded stream replayed through the same public API
//! reproduces the exact same sequence of internal events, cycle for
//! cycle and counter for counter.
//!
//! Ops deliberately carry *addresses and shapes, not data values*:
//! simulated timing depends only on the address stream (translations,
//! cache placement, residency), never on the bytes moved, so a replay
//! that stores dummy values is cycle-identical to the recorded run.
//! Consequences: guest memory *contents* after a replay differ from the
//! recorded run (so content digests are not comparable), and a
//! workload's computed checksum cannot be regenerated — the
//! `mtlb-trace` format stores the recorded outcome in its header
//! instead.
//!
//! Pure getters (`cycles`, `config`, `guest_memory`, …) are not
//! recorded: they have no simulated side effects. `try_read_f64` /
//! `try_write_f64` record nothing themselves — they forward to the
//! `u64` accessors, whose recorded op replays through the same forward.

use std::any::Any;
use std::fmt;

use mtlb_types::{Prot, VirtAddr, Vpn};

/// One public-API operation on a [`Machine`](crate::Machine).
///
/// Field meanings mirror the corresponding `Machine` method exactly;
/// see each method's documentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variants mirror Machine methods 1:1
pub enum MachineOp {
    /// `try_execute(n)`.
    Execute { n: u64 },
    /// An aligned or misaligned scalar load of `size` bytes
    /// (`try_read_u8`/`u16`/`u32`/`u64`).
    Read { va: VirtAddr, size: u8 },
    /// An aligned or misaligned scalar store of `size` bytes.
    Write { va: VirtAddr, size: u8 },
    /// `try_read_block(va, buf, instr)` with `len = buf.len()`.
    ReadBlock { va: VirtAddr, len: u64, instr: u64 },
    /// `try_write_block(va, data, instr)` with `len = data.len()`.
    WriteBlock { va: VirtAddr, len: u64, instr: u64 },
    /// `try_stream_read_u32(base, count, instr, …)`.
    StreamReadU32 {
        base: VirtAddr,
        count: u64,
        instr: u64,
    },
    /// `try_stream_write_u32(base, count, instr, …)`.
    StreamWriteU32 {
        base: VirtAddr,
        count: u64,
        instr: u64,
    },
    /// `try_stream_write_u32_pair(a, b, count, instr, …)`.
    StreamWritePairU32 {
        a: VirtAddr,
        b: VirtAddr,
        count: u64,
        instr: u64,
    },
    /// `try_stream_write_u32_f64(a, b, count, instr, …)`.
    StreamWriteU32F64 {
        a: VirtAddr,
        b: VirtAddr,
        count: u64,
        instr: u64,
    },
    /// `map_region(start, len, prot)`.
    MapRegion {
        start: VirtAddr,
        len: u64,
        prot: Prot,
    },
    /// `remap(start, len)`.
    Remap { start: VirtAddr, len: u64 },
    /// `sbrk(increment)`.
    Sbrk { increment: u64 },
    /// `swap_out_superpage(vpn)`.
    SwapOutSuperpage { vpn: Vpn },
    /// `demote_superpage(vpn)`.
    DemoteSuperpage { vpn: Vpn },
    /// `page_bits(vpn)` (recorded because harvesting referenced bits
    /// may adjust TLB state).
    PageBits { vpn: Vpn },
    /// `spawn_process()`.
    SpawnProcess,
    /// `switch_process(pid)`.
    SwitchProcess { pid: u64 },
    /// `recolor_page(vpn, color)`.
    RecolorPage { vpn: Vpn, color: u64 },
    /// `load_program(len, remap_text)`.
    LoadProgram { len: u64, remap_text: bool },
    /// `reset_stats()`.
    ResetStats,
}

/// A consumer of recorded [`MachineOp`]s, attachable to a
/// [`Machine`](crate::Machine) via
/// [`set_op_sink`](crate::Machine::set_op_sink).
///
/// `Debug` is a supertrait so an attached sink never breaks the
/// machine's own `Debug`; `into_any` lets callers downcast a sink they
/// take back (e.g. to a `TraceWriter`) without the machine knowing the
/// concrete type.
pub trait OpSink: fmt::Debug {
    /// Called once per public-API operation, before the machine acts on
    /// it.
    fn record(&mut self, op: &MachineOp);
    /// Consuming downcast support for retrieving a concrete sink.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The trivial [`OpSink`]: collects every op into a `Vec` (useful for
/// tests and for in-memory replay without an encoding step).
#[derive(Debug, Default)]
pub struct VecOpSink {
    /// The recorded operations, in call order.
    pub ops: Vec<MachineOp>,
}

impl OpSink for VecOpSink {
    fn record(&mut self, op: &MachineOp) {
        self.ops.push(*op);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecOpSink::default();
        sink.record(&MachineOp::Execute { n: 3 });
        sink.record(&MachineOp::Read {
            va: VirtAddr::new(0x1000),
            size: 4,
        });
        assert_eq!(
            sink.ops,
            vec![
                MachineOp::Execute { n: 3 },
                MachineOp::Read {
                    va: VirtAddr::new(0x1000),
                    size: 4
                }
            ]
        );
        let boxed: Box<dyn OpSink> = Box::new(sink);
        let back = boxed.into_any().downcast::<VecOpSink>().unwrap();
        assert_eq!(back.ops.len(), 2);
    }
}
