//! Run-time attribution and reporting.

use core::fmt;

use mtlb_cache::CacheStats;
use mtlb_mmc::MmcStats;
use mtlb_os::KernelStats;
use mtlb_tlb::TlbStats;
use mtlb_types::Cycles;

/// Where simulated CPU cycles went — the decomposition behind the
/// paper's Figure 3 (total runtime with the TLB-miss fraction broken
/// out).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeBuckets {
    /// Instruction execution plus single-cycle cache accesses.
    pub user: Cycles,
    /// Software TLB miss handling: traps, hashed-page-table probes
    /// (including their memory time) and TLB inserts.
    pub tlb_miss: Cycles,
    /// Memory stalls on user accesses: fills and writebacks.
    pub mem_stall: Cycles,
    /// Kernel services invoked explicitly (map, remap, sbrk, swap
    /// control).
    pub kernel: Cycles,
    /// Shadow page fault service (swap-ins).
    pub fault: Cycles,
}

impl TimeBuckets {
    /// Sum of all buckets — total runtime.
    #[must_use]
    pub fn total(&self) -> Cycles {
        self.user + self.tlb_miss + self.mem_stall + self.kernel + self.fault
    }
}

/// A complete snapshot of a run's statistics.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Total simulated CPU cycles.
    pub total_cycles: Cycles,
    /// Attribution by bucket.
    pub buckets: TimeBuckets,
    /// CPU TLB counters.
    pub tlb: TlbStats,
    /// Micro-ITLB hits/misses.
    pub itlb_hits: u64,
    /// Micro-ITLB misses (consulted the main TLB).
    pub itlb_misses: u64,
    /// Data cache counters.
    pub cache: CacheStats,
    /// Memory controller counters (MTLB hit rates, fill timing).
    pub mmc: MmcStats,
    /// Kernel counters.
    pub kernel: KernelStats,
    /// Data loads executed.
    pub loads: u64,
    /// Data stores executed.
    pub stores: u64,
    /// Instructions executed.
    pub instructions: u64,
}

impl RunReport {
    /// Fraction of total runtime spent handling CPU TLB misses — the
    /// quantity the paper's Figure 3 separates out.
    #[must_use]
    pub fn tlb_miss_fraction(&self) -> f64 {
        self.buckets.tlb_miss.fraction_of(self.total_cycles)
    }

    /// Runtime normalised to a base run (the paper normalises to the
    /// 96-entry-TLB, no-MTLB system).
    #[must_use]
    pub fn normalized_to(&self, base: &RunReport) -> f64 {
        self.total_cycles.get() as f64 / base.total_cycles.get() as f64
    }

    /// Average MMC cycles per demand cache fill (Figure 4B's metric).
    #[must_use]
    pub fn avg_fill_mmc_cycles(&self) -> f64 {
        self.mmc.avg_fill_mmc_cycles()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {} cycles", self.total_cycles.get())?;
        writeln!(
            f,
            "  user {:>12}  tlb-miss {:>12} ({:.2}%)  mem-stall {:>12}  kernel {:>12}  fault {:>12}",
            self.buckets.user.get(),
            self.buckets.tlb_miss.get(),
            self.tlb_miss_fraction() * 100.0,
            self.buckets.mem_stall.get(),
            self.buckets.kernel.get(),
            self.buckets.fault.get(),
        )?;
        writeln!(
            f,
            "  {} instructions, {} loads, {} stores",
            self.instructions, self.loads, self.stores
        )?;
        writeln!(
            f,
            "  tlb: {} lookups, {:.4}% miss | itlb: {} hits, {} misses",
            self.tlb.lookups(),
            self.tlb.miss_rate() * 100.0,
            self.itlb_hits,
            self.itlb_misses
        )?;
        writeln!(f, "  {}", self.cache)?;
        writeln!(f, "  {}", self.mmc)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_total() {
        let b = TimeBuckets {
            user: Cycles::new(100),
            tlb_miss: Cycles::new(25),
            mem_stall: Cycles::new(50),
            kernel: Cycles::new(20),
            fault: Cycles::new(5),
        };
        assert_eq!(b.total(), Cycles::new(200));
    }

    #[test]
    fn fractions_and_normalisation() {
        let r = RunReport {
            total_cycles: Cycles::new(200),
            buckets: TimeBuckets {
                tlb_miss: Cycles::new(50),
                ..TimeBuckets::default()
            },
            ..RunReport::default()
        };
        assert!((r.tlb_miss_fraction() - 0.25).abs() < 1e-12);
        let base = RunReport {
            total_cycles: Cycles::new(400),
            ..RunReport::default()
        };
        assert!((r.normalized_to(&base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_key_lines() {
        let r = RunReport {
            total_cycles: Cycles::new(123),
            ..RunReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("total: 123 cycles"));
        assert!(s.contains("tlb-miss"));
    }
}
