//! Run-time attribution and reporting.

use core::fmt;

use mtlb_cache::CacheStats;
use mtlb_mmc::MmcStats;
use mtlb_os::KernelStats;
use mtlb_tlb::TlbStats;
use mtlb_types::{Cycles, Histogram};

/// Where simulated CPU cycles went — the decomposition behind the
/// paper's Figure 3 (total runtime with the TLB-miss fraction broken
/// out).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeBuckets {
    /// Instruction execution plus single-cycle cache accesses.
    pub user: Cycles,
    /// Software TLB miss handling: traps, hashed-page-table probes
    /// (including their memory time) and TLB inserts.
    pub tlb_miss: Cycles,
    /// Memory stalls on user accesses: fills and writebacks.
    pub mem_stall: Cycles,
    /// Kernel services invoked explicitly (map, remap, sbrk, swap
    /// control).
    pub kernel: Cycles,
    /// Shadow page fault service (swap-ins).
    pub fault: Cycles,
}

impl TimeBuckets {
    /// Sum of all buckets — total runtime.
    #[must_use]
    pub fn total(&self) -> Cycles {
        self.user + self.tlb_miss + self.mem_stall + self.kernel + self.fault
    }
}

/// One CPU front end's private counters (its CPU TLB, micro-ITLB, L1
/// data cache, and retired-operation counts). [`RunReport`] carries the
/// across-core merge of these;
/// [`per_core_stats`](crate::Machine::per_core_stats) exposes the
/// per-core breakdown the `fig6` experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// CPU TLB counters for this core.
    pub tlb: TlbStats,
    /// Data cache counters for this core.
    pub cache: CacheStats,
    /// Micro-ITLB hits on this core.
    pub itlb_hits: u64,
    /// Micro-ITLB misses on this core.
    pub itlb_misses: u64,
    /// Data loads executed on this core.
    pub loads: u64,
    /// Data stores executed on this core.
    pub stores: u64,
    /// Instructions executed on this core.
    pub instructions: u64,
}

/// A complete snapshot of a run's statistics.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Total simulated CPU cycles.
    pub total_cycles: Cycles,
    /// Attribution by bucket.
    pub buckets: TimeBuckets,
    /// CPU TLB counters.
    pub tlb: TlbStats,
    /// Micro-ITLB hits/misses.
    pub itlb_hits: u64,
    /// Micro-ITLB misses (consulted the main TLB).
    pub itlb_misses: u64,
    /// Data cache counters.
    pub cache: CacheStats,
    /// Memory controller counters (MTLB hit rates, fill timing).
    pub mmc: MmcStats,
    /// Kernel counters.
    pub kernel: KernelStats,
    /// Data loads executed.
    pub loads: u64,
    /// Data stores executed.
    pub stores: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Log-bucketed distribution of CPU-cycle intervals between
    /// consecutive CPU TLB misses (miss clustering / locality).
    pub tlb_miss_intervals: Histogram,
    /// Bus-arbitration stalls charged because consecutive bus
    /// transactions came from different cores (zero on one core).
    pub mtlb_contention_events: u64,
    /// CPU cycles those stalls cost (inside the mem-stall bucket).
    pub mtlb_contention_cycles: Cycles,
}

impl RunReport {
    /// Fraction of total runtime spent handling CPU TLB misses — the
    /// quantity the paper's Figure 3 separates out.
    #[must_use]
    pub fn tlb_miss_fraction(&self) -> f64 {
        self.buckets.tlb_miss.fraction_of(self.total_cycles)
    }

    /// Runtime normalised to a base run (the paper normalises to the
    /// 96-entry-TLB, no-MTLB system). Zero when the base run is empty,
    /// mirroring [`Cycles::fraction_of`] rather than returning
    /// `inf`/`NaN`.
    #[must_use]
    pub fn normalized_to(&self, base: &RunReport) -> f64 {
        self.total_cycles.fraction_of(base.total_cycles)
    }

    /// Average MMC cycles per demand cache fill (Figure 4B's metric).
    #[must_use]
    pub fn avg_fill_mmc_cycles(&self) -> f64 {
        self.mmc.avg_fill_mmc_cycles()
    }

    /// Serialises the full report as a deterministic JSON object (no
    /// external dependencies; field order is fixed). Histograms are
    /// emitted as arrays of `{"lo", "hi", "count"}` buckets with
    /// inclusive bounds.
    #[must_use]
    pub fn to_json(&self) -> String {
        let b = &self.buckets;
        let t = &self.tlb;
        let c = &self.cache;
        let m = &self.mmc;
        let k = &self.kernel;
        format!(
            concat!(
                "{{",
                "\"total_cycles\":{},",
                "\"buckets\":{{\"user\":{},\"tlb_miss\":{},\"mem_stall\":{},",
                "\"kernel\":{},\"fault\":{}}},",
                "\"instructions\":{},\"loads\":{},\"stores\":{},",
                "\"tlb\":{{\"hits\":{},\"misses\":{},\"fills\":{},",
                "\"replacements\":{},\"purges\":{},\"nru_resets\":{}}},",
                "\"itlb\":{{\"hits\":{},\"misses\":{}}},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"replacement_writebacks\":{},",
                "\"flush_writebacks\":{},\"lines_flushed\":{},\"flush_walks\":{}}},",
                "\"mmc\":{{\"fills_shared\":{},\"fills_exclusive\":{},\"writebacks\":{},",
                "\"shadow_ops\":{},\"real_ops\":{},\"mtlb_hits\":{},\"mtlb_misses\":{},",
                "\"shadow_faults\":{},\"bus_errors\":{},\"fill_mmc_cycles\":{},",
                "\"control_ops\":{},\"fill_hist\":{}}},",
                "\"kernel\":{{\"tlb_miss_handler_calls\":{},\"remaps\":{},",
                "\"superpages_created\":{},\"pages_remapped\":{},\"sbrk_calls\":{},",
                "\"shadow_faults_serviced\":{},\"pages_swapped_out\":{},",
                "\"pages_swapped_in\":{},\"clock_sweeps\":{},\"pages_recolored\":{},",
                "\"auto_promotions\":{},\"processes_spawned\":{},\"context_switches\":{},",
                "\"tlb_miss_cycles\":{},\"fault_cycles\":{},\"service_cycles\":{},",
                "\"shootdowns\":{},\"shootdown_cycles\":{}}},",
                "\"mtlb_contention\":{{\"events\":{},\"cycles\":{}}},",
                "\"tlb_miss_intervals\":{}",
                "}}"
            ),
            self.total_cycles.get(),
            b.user.get(),
            b.tlb_miss.get(),
            b.mem_stall.get(),
            b.kernel.get(),
            b.fault.get(),
            self.instructions,
            self.loads,
            self.stores,
            t.hits,
            t.misses,
            t.fills,
            t.replacements,
            t.purges,
            t.nru_resets,
            self.itlb_hits,
            self.itlb_misses,
            c.hits,
            c.misses,
            c.replacement_writebacks,
            c.flush_writebacks,
            c.lines_flushed,
            c.flush_walks,
            m.fills_shared,
            m.fills_exclusive,
            m.writebacks,
            m.shadow_ops,
            m.real_ops,
            m.mtlb_hits,
            m.mtlb_misses,
            m.shadow_faults,
            m.bus_errors,
            m.fill_mmc_cycles,
            m.control_ops,
            histogram_json(&m.fill_hist),
            k.tlb_miss_handler_calls,
            k.remaps,
            k.superpages_created,
            k.pages_remapped,
            k.sbrk_calls,
            k.shadow_faults_serviced,
            k.pages_swapped_out,
            k.pages_swapped_in,
            k.clock_sweeps,
            k.pages_recolored,
            k.auto_promotions,
            k.processes_spawned,
            k.context_switches,
            k.tlb_miss_cycles.get(),
            k.fault_cycles.get(),
            k.service_cycles.get(),
            k.shootdowns,
            k.shootdown_cycles.get(),
            self.mtlb_contention_events,
            self.mtlb_contention_cycles.get(),
            histogram_json(&self.tlb_miss_intervals),
        )
    }
}

/// JSON array of a histogram's non-empty buckets (inclusive bounds).
#[must_use]
fn histogram_json(h: &Histogram) -> String {
    let mut out = String::from("[");
    for (i, (lo, hi, count)) in h.nonempty_buckets().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{count}}}"));
    }
    out.push(']');
    out
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {} cycles", self.total_cycles.get())?;
        writeln!(
            f,
            "  user {:>12}  tlb-miss {:>12} ({:.2}%)  mem-stall {:>12}  kernel {:>12}  fault {:>12}",
            self.buckets.user.get(),
            self.buckets.tlb_miss.get(),
            self.tlb_miss_fraction() * 100.0,
            self.buckets.mem_stall.get(),
            self.buckets.kernel.get(),
            self.buckets.fault.get(),
        )?;
        writeln!(
            f,
            "  {} instructions, {} loads, {} stores",
            self.instructions, self.loads, self.stores
        )?;
        writeln!(
            f,
            "  tlb: {} lookups, {:.4}% miss | itlb: {} hits, {} misses",
            self.tlb.lookups(),
            self.tlb.miss_rate() * 100.0,
            self.itlb_hits,
            self.itlb_misses
        )?;
        writeln!(f, "  {}", self.cache)?;
        writeln!(f, "  {}", self.mmc)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_total() {
        let b = TimeBuckets {
            user: Cycles::new(100),
            tlb_miss: Cycles::new(25),
            mem_stall: Cycles::new(50),
            kernel: Cycles::new(20),
            fault: Cycles::new(5),
        };
        assert_eq!(b.total(), Cycles::new(200));
    }

    #[test]
    fn fractions_and_normalisation() {
        let r = RunReport {
            total_cycles: Cycles::new(200),
            buckets: TimeBuckets {
                tlb_miss: Cycles::new(50),
                ..TimeBuckets::default()
            },
            ..RunReport::default()
        };
        assert!((r.tlb_miss_fraction() - 0.25).abs() < 1e-12);
        let base = RunReport {
            total_cycles: Cycles::new(400),
            ..RunReport::default()
        };
        assert!((r.normalized_to(&base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalized_to_empty_base_is_zero_not_nan() {
        let r = RunReport {
            total_cycles: Cycles::new(123),
            ..RunReport::default()
        };
        let empty = RunReport::default();
        // An empty base run (zero cycles) must not poison downstream
        // arithmetic with inf/NaN — guard like `Cycles::fraction_of`.
        assert_eq!(r.normalized_to(&empty), 0.0);
        assert_eq!(empty.normalized_to(&empty), 0.0);
        assert!(r.normalized_to(&empty).is_finite());
    }

    #[test]
    fn json_has_fixed_shape_and_consistent_buckets() {
        let mut h = Histogram::new();
        h.record(29);
        let r = RunReport {
            total_cycles: Cycles::new(200),
            buckets: TimeBuckets {
                user: Cycles::new(100),
                tlb_miss: Cycles::new(25),
                mem_stall: Cycles::new(50),
                kernel: Cycles::new(20),
                fault: Cycles::new(5),
            },
            tlb_miss_intervals: h,
            ..RunReport::default()
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"total_cycles\":200"));
        assert!(json.contains(
            "\"buckets\":{\"user\":100,\"tlb_miss\":25,\"mem_stall\":50,\"kernel\":20,\"fault\":5}"
        ));
        assert!(json.contains("\"tlb_miss_intervals\":[{\"lo\":16,\"hi\":31,\"count\":1}]"));
        assert!(json.contains("\"fill_hist\":[]"));
        // The acceptance property: bucket values sum to total_cycles.
        assert_eq!(r.buckets.total(), r.total_cycles);
    }

    #[test]
    fn display_contains_key_lines() {
        let r = RunReport {
            total_cycles: Cycles::new(123),
            ..RunReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("total: 123 cycles"));
        assert!(s.contains("tlb-miss"));
    }
}
