//! Structured event tracing for cycle attribution.
//!
//! Every simulated-cycle charge the [`Machine`](crate::Machine) makes
//! lands in exactly one [`TimeBuckets`](crate::TimeBuckets) bucket; the
//! trace layer mirrors each of those charges as a typed
//! [`TraceRecord`] — what happened ([`TraceEvent`]), when (the
//! simulated-cycle timestamp *before* the charge), how many cycles it
//! cost and which bucket they went to. A machine with no sink attached
//! pays only an `Option` check per charge, so tracing is free when
//! disabled and the golden cycle fixtures are unaffected either way.
//!
//! The bundled [`RingTrace`] sink keeps the most recent records in a
//! bounded ring *and* never-dropped per-bucket cycle sums, so a full
//! run's attribution can be reconstructed from the sink and reconciled
//! against [`TimeBuckets::total()`](crate::TimeBuckets::total) — the
//! property the `trace_audit` test suite checks with random op streams.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

use mtlb_types::{Cycles, PhysAddr, ShadowAddr, VirtAddr};

/// The attribution bucket a charge landed in — one variant per field
/// of [`TimeBuckets`](crate::TimeBuckets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Instruction execution and single-cycle cache accesses.
    User,
    /// Software TLB miss handling.
    TlbMiss,
    /// Memory stalls (fills and writebacks) on user accesses.
    MemStall,
    /// Explicit kernel services.
    Kernel,
    /// Shadow page fault service.
    Fault,
}

impl Bucket {
    /// All buckets, in `TimeBuckets` field order.
    pub const ALL: [Bucket; 5] = [
        Bucket::User,
        Bucket::TlbMiss,
        Bucket::MemStall,
        Bucket::Kernel,
        Bucket::Fault,
    ];

    /// Stable index of this bucket in [`Bucket::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Bucket::User => 0,
            Bucket::TlbMiss => 1,
            Bucket::MemStall => 2,
            Bucket::Kernel => 3,
            Bucket::Fault => 4,
        }
    }

    /// Short display name (matches the `RunReport` display labels).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Bucket::User => "user",
            Bucket::TlbMiss => "tlb-miss",
            Bucket::MemStall => "mem-stall",
            Bucket::Kernel => "kernel",
            Bucket::Fault => "fault",
        }
    }
}

/// What a traced charge was for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A batch of instructions executed.
    Execute {
        /// Instructions in the batch.
        instructions: u64,
    },
    /// A data or instruction access hit the cache pipeline (the
    /// single-cycle access charge).
    CacheAccess {
        /// Virtual address accessed.
        va: VirtAddr,
        /// True for stores.
        write: bool,
    },
    /// A fast-forwarded run of same-page, cache-resident accesses (and
    /// optionally interleaved instructions), charged in bulk. The cycle
    /// total equals `accesses + instructions`, exactly what the per-item
    /// slow path would have charged to the user bucket one event at a
    /// time.
    BatchedRun {
        /// Items (loop iterations) fast-forwarded in this run.
        items: u64,
        /// Memory accesses replayed (`items × lanes`).
        accesses: u64,
        /// Instructions replayed (`items × instructions-per-item`).
        instructions: u64,
    },
    /// A run of page-resident fast-forwarded work, charged in bulk when
    /// the deferred user-cycle accumulator drains: single-cycle accesses
    /// that provably hit a memoized page's resident lines, plus
    /// instruction batches that provably stayed inside the micro-ITLB'd
    /// text page. The cycle total equals `accesses + instructions`,
    /// exactly what the slow path would have charged one event at a
    /// time.
    FastForward {
        /// Single-cycle cache accesses fast-forwarded.
        accesses: u64,
        /// Instructions fast-forwarded.
        instructions: u64,
    },
    /// The CPU TLB missed and the software handler ran (data side).
    TlbMiss {
        /// Faulting virtual address.
        va: VirtAddr,
    },
    /// The CPU TLB missed on an instruction fetch.
    ItlbMiss {
        /// Faulting fetch address.
        va: VirtAddr,
    },
    /// A cache miss was filled over the bus.
    CacheFill {
        /// Bus-physical line address filled.
        pa: PhysAddr,
    },
    /// A dirty victim line was written back over the bus.
    CacheWriteback {
        /// Bus-physical line address written back.
        pa: PhysAddr,
    },
    /// A shadow page fault was serviced (swap-in path).
    ShadowFault {
        /// Faulting shadow address.
        shadow: ShadowAddr,
    },
    /// Kernel boot.
    Boot,
    /// A `map_region` service.
    MapRegion {
        /// Region start.
        start: VirtAddr,
        /// Region length in bytes.
        len: u64,
    },
    /// A `remap` service (superpage promotion).
    Remap {
        /// Region start.
        start: VirtAddr,
        /// Region length in bytes.
        len: u64,
        /// Superpages created.
        superpages: u64,
    },
    /// An `sbrk` service.
    Sbrk {
        /// Heap increment in bytes.
        increment: u64,
    },
    /// An explicit superpage swap-out.
    SwapOutSuperpage {
        /// Base pages written to swap.
        pages_written: u64,
    },
    /// A superpage demotion back to 4 KB mappings.
    Demote,
    /// A no-copy page recoloring.
    Recolor,
    /// A context switch.
    ContextSwitch {
        /// Pid switched to.
        pid: u64,
    },
    /// Inter-processor TLB shootdowns delivered to the remote cores
    /// after a kernel service invalidated local translations.
    Shootdown {
        /// Shootdown requests in the batch.
        requests: u64,
        /// Remote cores each request was delivered to.
        remote_cores: u64,
    },
    /// A bus-arbitration stall: the bus transaction came from a
    /// different core than the previous one.
    MtlbContention {
        /// Core that won the bus.
        core: u64,
    },
}

/// One traced charge: event, timestamp, cost and attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated-cycle timestamp — the machine's total cycle count at
    /// the moment the charge was made (i.e. *before* adding `cycles`).
    pub at: Cycles,
    /// Cycles charged.
    pub cycles: Cycles,
    /// Bucket the cycles were attributed to.
    pub bucket: Bucket,
    /// What the charge was for.
    pub event: TraceEvent,
}

/// A consumer of [`TraceRecord`]s, attachable to a
/// [`Machine`](crate::Machine).
///
/// `Debug` is a supertrait so an attached sink never breaks the
/// machine's own `Debug`; `as_any` lets callers downcast a sink they
/// take back (e.g. to [`RingTrace`]) without the machine knowing the
/// concrete type.
pub trait TraceSink: fmt::Debug {
    /// Called once per cycle charge.
    fn record(&mut self, rec: &TraceRecord);
    /// Downcast support for retrieving a concrete sink.
    fn as_any(&self) -> &dyn Any;
}

/// A bounded-memory [`TraceSink`]: the most recent records in a ring
/// plus never-dropped per-bucket totals.
///
/// The ring answers "what happened around cycle X" questions for the
/// tail of a run; the totals reconstruct full-run attribution however
/// long the run was, which is what the audit property test compares
/// against [`TimeBuckets::total()`](crate::TimeBuckets::total).
#[derive(Clone, Debug)]
pub struct RingTrace {
    capacity: usize,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
    bucket_cycles: [Cycles; 5],
    events: u64,
}

impl RingTrace {
    /// A ring keeping the last `capacity` records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingTrace {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            bucket_cycles: [Cycles::ZERO; 5],
            events: 0,
        }
    }

    /// The retained (most recent) records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Records evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever seen (retained + dropped).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Never-dropped cycle total attributed to `bucket`.
    #[must_use]
    pub fn bucket_cycles(&self, bucket: Bucket) -> Cycles {
        self.bucket_cycles[bucket.index()]
    }

    /// Never-dropped cycle total across all buckets — reconstructs the
    /// machine's total runtime from the trace alone.
    #[must_use]
    pub fn total_cycles(&self) -> Cycles {
        let mut total = Cycles::ZERO;
        for c in self.bucket_cycles {
            total += c;
        }
        total
    }
}

impl TraceSink for RingTrace {
    fn record(&mut self, rec: &TraceRecord) {
        self.events += 1;
        self.bucket_cycles[rec.bucket.index()] += rec.cycles;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(*rec);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, cycles: u64, bucket: Bucket) -> TraceRecord {
        TraceRecord {
            at: Cycles::new(at),
            cycles: Cycles::new(cycles),
            bucket,
            event: TraceEvent::Execute { instructions: 1 },
        }
    }

    #[test]
    fn ring_bounds_memory_but_sums_everything() {
        let mut t = RingTrace::new(2);
        t.record(&rec(0, 5, Bucket::User));
        t.record(&rec(5, 7, Bucket::Kernel));
        t.record(&rec(12, 3, Bucket::User));
        assert_eq!(t.records().count(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events(), 3);
        assert_eq!(t.bucket_cycles(Bucket::User), Cycles::new(8));
        assert_eq!(t.bucket_cycles(Bucket::Kernel), Cycles::new(7));
        assert_eq!(t.total_cycles(), Cycles::new(15));
        // Oldest retained record is the second one.
        assert_eq!(t.records().next().unwrap().at, Cycles::new(5));
    }

    #[test]
    fn zero_capacity_ring_still_accumulates() {
        let mut t = RingTrace::new(0);
        t.record(&rec(0, 9, Bucket::Fault));
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.total_cycles(), Cycles::new(9));
    }

    #[test]
    fn bucket_index_roundtrips() {
        for (i, b) in Bucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        assert_eq!(Bucket::TlbMiss.name(), "tlb-miss");
    }
}
