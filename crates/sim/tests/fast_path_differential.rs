//! Differential property test for the fast-forward access engine.
//!
//! The tentpole claim of the host-performance layer is that the memoized
//! translation path, the flat guest-memory arena and the batched stream
//! engine are *observably absent*: a machine with fast paths enabled must
//! produce bit-identical simulated state to a machine that takes the
//! slow path on every access. This test drives random operation
//! sequences — mapping, promotion, scalar access (aligned and
//! misaligned), instruction fetch, batched streams, swap-out, context
//! switches and recoloring — through machines in every fast-path mode
//! combination and requires the *entire* serialized run report (every
//! cycle bucket, every counter, every TLB-miss interval) and the final
//! guest memory contents to match.
//!
//! Four live mode combinations are pinned to each other — fast paths
//! on/off × page-resident fast-forward on/off — and the op stream
//! recorded from the reference machine is additionally replayed
//! (`mtlb-trace` round trip) through a fresh machine in a random mode,
//! which must reproduce the same report byte-for-byte — once through
//! the per-op replayer and once through the batched SoA replayer
//! (both from wire bytes and from a pre-decoded trace), so the loop
//! fast-forward and scalar-span engines are pinned to the live slow
//! path too. Replay writes zeros instead of data, so guest-memory
//! digests are compared among the live machines only.

use mtlb_sim::{Machine, MachineConfig, OpSink, VecOpSink};
use mtlb_types::{Prot, VirtAddr};
use proptest::prelude::*;

const BASE: VirtAddr = VirtAddr::new(0x1000_0000);
const REGION: u64 = 128 * 1024;

#[derive(Clone, Debug)]
enum Op {
    Execute(u64),
    Read8(u64),
    Write8(u64, u8),
    /// Arbitrary offsets: about half are misaligned two-access scalars.
    Read32(u64),
    Write32(u64, u32),
    Read64(u64),
    Write64(u64, u64),
    StreamWrite32 {
        off: u64,
        count: u64,
        instr: u64,
    },
    StreamRead32 {
        off: u64,
        count: u64,
        instr: u64,
    },
    WriteBlock {
        off: u64,
        len: u64,
        instr: u64,
        fill: u8,
    },
    ReadBlock {
        off: u64,
        len: u64,
        instr: u64,
    },
    StreamPair {
        off_a: u64,
        count: u64,
        instr: u64,
    },
    StreamMixed {
        off_a: u64,
        count: u64,
        instr: u64,
    },
    Remap,
    SwapOut,
    ContextSwitchAwayAndBack,
    Sbrk(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let off = 0u64..(REGION - 8);
    // Stream lanes stay inside the region: `off` in the first quarter,
    // counts bounded so even the two-lane ops (second lane at +48 KB)
    // fit.
    let soff = 0u64..(REGION / 4);
    prop_oneof![
        2 => (1u64..300).prop_map(Op::Execute),
        1 => off.clone().prop_map(Op::Read8),
        1 => (off.clone(), any::<u8>()).prop_map(|(o, v)| Op::Write8(o, v)),
        2 => off.clone().prop_map(Op::Read32),
        2 => (off.clone(), any::<u32>()).prop_map(|(o, v)| Op::Write32(o, v)),
        1 => off.clone().prop_map(Op::Read64),
        1 => (off.clone(), any::<u64>()).prop_map(|(o, v)| Op::Write64(o, v)),
        2 => (soff.clone(), 1u64..3000, 0u64..4).prop_map(|(off, count, instr)| {
            Op::StreamWrite32 { off: off / 4 * 4, count, instr }
        }),
        2 => (soff.clone(), 1u64..3000, 0u64..4).prop_map(|(off, count, instr)| {
            Op::StreamRead32 { off: off / 4 * 4, count, instr }
        }),
        1 => (soff.clone(), 1u64..5000, 0u64..3, any::<u8>()).prop_map(|(off, len, instr, fill)| {
            Op::WriteBlock { off, len, instr, fill }
        }),
        1 => (soff.clone(), 1u64..5000, 0u64..3).prop_map(|(off, len, instr)| {
            Op::ReadBlock { off, len, instr }
        }),
        1 => (soff.clone(), 1u64..2000, 0u64..4).prop_map(|(off_a, count, instr)| {
            Op::StreamPair { off_a: off_a / 4 * 4, count, instr }
        }),
        1 => (soff, 1u64..2000, 0u64..4).prop_map(|(off_a, count, instr)| {
            Op::StreamMixed { off_a: off_a / 8 * 8, count, instr }
        }),
        1 => Just(Op::Remap),
        1 => Just(Op::SwapOut),
        1 => Just(Op::ContextSwitchAwayAndBack),
        1 => (1u64..3).prop_map(|n| Op::Sbrk(n * 4096)),
    ]
}

fn apply(m: &mut Machine, op: &Op) -> u64 {
    // Every op folds its observable result into a digest so value
    // divergence is caught even where cycle totals happen to agree.
    let mut digest = 0u64;
    match *op {
        Op::Execute(n) => m.try_execute(n).unwrap(),
        Op::Read8(o) => digest = u64::from(m.try_read_u8(BASE + o).unwrap()),
        Op::Write8(o, v) => m.try_write_u8(BASE + o, v).unwrap(),
        Op::Read32(o) => digest = u64::from(m.try_read_u32(BASE + o).unwrap()),
        Op::Write32(o, v) => m.try_write_u32(BASE + o, v).unwrap(),
        Op::Read64(o) => digest = m.try_read_u64(BASE + o).unwrap(),
        Op::Write64(o, v) => m.try_write_u64(BASE + o, v).unwrap(),
        Op::StreamWrite32 { off, count, instr } => m
            .try_stream_write_u32(BASE + off, count.min((REGION / 4 - off) / 4), instr, |i| {
                i as u32 ^ 0x5a5a_5a5a
            })
            .unwrap(),
        Op::StreamRead32 { off, count, instr } => m
            .try_stream_read_u32(
                BASE + off,
                count.min((REGION / 4 - off) / 4),
                instr,
                |i, v| {
                    digest = digest.wrapping_mul(31).wrapping_add(u64::from(v) ^ i);
                },
            )
            .unwrap(),
        Op::WriteBlock {
            off,
            len,
            instr,
            fill,
        } => {
            let len = len.min(REGION / 4 - off) as usize;
            let bytes: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
            m.try_write_block(BASE + off, &bytes, instr).unwrap();
        }
        Op::ReadBlock { off, len, instr } => {
            let len = len.min(REGION / 4 - off) as usize;
            let mut buf = vec![0u8; len];
            m.try_read_block(BASE + off, &mut buf, instr).unwrap();
            digest = buf
                .iter()
                .fold(0u64, |d, &b| d.wrapping_mul(31).wrapping_add(u64::from(b)));
        }
        Op::StreamPair {
            off_a,
            count,
            instr,
        } => {
            let count = count.min((REGION / 4 - off_a) / 4);
            // Second lane in the third quarter of the region: disjoint
            // from lane A's first quarter.
            m.try_stream_write_u32_pair(
                BASE + off_a,
                BASE + REGION / 2 + off_a,
                count,
                instr,
                |i| (i as u32, !i as u32),
            )
            .unwrap();
        }
        Op::StreamMixed {
            off_a,
            count,
            instr,
        } => {
            let count = count.min((REGION / 4 - off_a) / 8);
            m.try_stream_write_u32_f64(
                BASE + off_a,
                BASE + REGION / 2 + off_a,
                count,
                instr,
                |i| (i as u32, i as f64 * 0.5),
            )
            .unwrap();
        }
        Op::Remap => {
            let rep = m.remap(BASE, REGION);
            digest = rep.superpages.len() as u64;
        }
        Op::SwapOut => {
            // Only meaningful once the region is shadow-superpage-backed
            // (never on the baseline kernel, where remap is a no-op);
            // the same deterministic guard runs on both machines.
            if m.kernel().aspace().superpage_of(BASE.vpn()).is_some() {
                digest = m.swap_out_superpage(BASE.vpn()).pages_written;
            }
        }
        Op::ContextSwitchAwayAndBack => {
            let pid = m.spawn_process();
            m.try_switch_process(pid).expect("pid was spawned");
            m.try_switch_process(0).expect("pid 0 always exists");
        }
        Op::Sbrk(n) => digest = m.sbrk(n).get(),
    }
    digest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every fast-path mode combination stays bit-identical — total
    /// cycles, every counter and interval in the serialized report, and
    /// the full guest memory image — across random op sequences on both
    /// the MTLB and baseline configurations; and a trace-replayed
    /// machine in a random mode reproduces the same report.
    #[test]
    fn fast_paths_are_observably_absent(
        mtlb in (0u8..2).prop_map(|b| b == 1),
        replay_fast in (0u8..2).prop_map(|b| b == 1),
        replay_page_ff in (0u8..2).prop_map(|b| b == 1),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let cfg = if mtlb {
            MachineConfig::paper_mtlb(16)
        } else {
            MachineConfig::paper_base(16)
        };
        // The four live mode combinations; index 0 (everything on) is
        // the reference and records the op stream for the replay leg.
        const MODES: [(bool, bool); 4] =
            [(true, true), (true, false), (false, true), (false, false)];
        let mut machines: Vec<Machine> = MODES
            .iter()
            .map(|&(fast, page_ff)| {
                let mut m = Machine::new(cfg.clone());
                m.set_fast_paths(fast);
                m.set_page_fast_forward(page_ff);
                m
            })
            .collect();
        machines[0].set_op_sink(Box::new(mtlb_trace::TraceWriter::new()));
        for m in &mut machines {
            m.map_region(BASE, REGION, Prot::RW);
            m.load_program(16 * 4096, false);
        }
        for (i, op) in ops.iter().enumerate() {
            let reference = apply(&mut machines[0], op);
            for (m, &(fast, page_ff)) in machines.iter_mut().zip(&MODES).skip(1) {
                let got = apply(m, op);
                prop_assert_eq!(
                    got, reference,
                    "op {} value divergence (fast={}, page_ff={}): {:?}",
                    i, fast, page_ff, op
                );
            }
        }
        let reference_json = machines[0].report().to_json();
        let reference_digest = machines[0].guest_memory().content_digest();
        for (m, &(fast, page_ff)) in machines.iter_mut().zip(&MODES).skip(1) {
            prop_assert_eq!(
                &m.report().to_json(), &reference_json,
                "cycle/counter divergence (fast={}, page_ff={})", fast, page_ff
            );
            prop_assert_eq!(
                m.guest_memory().content_digest(), reference_digest,
                "guest memory divergence (fast={}, page_ff={})", fast, page_ff
            );
        }

        // Replay leg: the recorded stream, replayed through a fresh
        // machine in a random mode combination, must reproduce the
        // reference report byte-for-byte (data digests excluded:
        // replay writes zeros).
        let writer = machines[0]
            .take_op_sink()
            .expect("sink still attached")
            .into_any()
            .downcast::<mtlb_trace::TraceWriter>()
            .expect("trace writer");
        let bytes = writer.finish("differential", 0, 0, true);
        let mut replayed = Machine::new(cfg.clone());
        replayed.set_fast_paths(replay_fast);
        replayed.set_page_fast_forward(replay_page_ff);
        mtlb_trace::replay(&mut replayed, &bytes).expect("replay");
        prop_assert_eq!(
            &replayed.report().to_json(), &reference_json,
            "replay divergence (fast={}, page_ff={})", replay_fast, replay_page_ff
        );

        // Batched-replay leg: the SoA batch replayer (periodicity
        // probe, loop fast-forward, scalar span aggregation) must land
        // on the same report as the per-op replayer — both from the
        // wire bytes and from a pre-decoded trace.
        let mut batched = Machine::new(cfg.clone());
        mtlb_trace::replay_batched(&mut batched, &bytes).expect("replay_batched");
        prop_assert_eq!(
            &batched.report().to_json(), &reference_json,
            "batched replay divergence"
        );
        let decoded = mtlb_trace::decode_trace(&bytes).expect("decode_trace");
        let mut from_decoded = Machine::new(cfg);
        mtlb_trace::replay_decoded(&mut from_decoded, &decoded).expect("replay_decoded");
        prop_assert_eq!(
            &from_decoded.report().to_json(), &reference_json,
            "decoded replay divergence"
        );
    }

    /// The in-memory op record (no encoding) also replays to identical
    /// state: guards the recording hooks themselves, independent of the
    /// trace codec.
    #[test]
    fn recorded_ops_replay_identically_in_memory(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let cfg = MachineConfig::paper_mtlb(16);
        let mut recorded = Machine::new(cfg.clone());
        recorded.set_op_sink(Box::new(VecOpSink::default()));
        recorded.map_region(BASE, REGION, Prot::RW);
        recorded.load_program(16 * 4096, false);
        for op in &ops {
            apply(&mut recorded, op);
        }
        let reference_json = recorded.report().to_json();
        let sink = recorded
            .take_op_sink()
            .expect("sink")
            .into_any()
            .downcast::<VecOpSink>()
            .expect("vec sink");

        let mut fresh = Machine::new(cfg);
        let mut w = mtlb_trace::TraceWriter::new();
        for op in &sink.ops {
            w.record(op);
        }
        let bytes = w.finish("mem", 0, 0, true);
        mtlb_trace::replay(&mut fresh, &bytes).expect("replay");
        prop_assert_eq!(fresh.report().to_json(), reference_json);
    }
}
