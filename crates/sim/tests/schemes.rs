//! Machine-level conformance of the rival translation schemes.
//!
//! The scheme-local contract is pinned in `mtlb-schemes`' own
//! conformance suite; these tests drive each rival through the whole
//! machine instead:
//!
//! * a representative run under every scheme passes the debug-build
//!   cycle-attribution audit, which reconciles the scheme-specific fill
//!   counters (`CoalescedStats`, `SplitStats`) against the shared
//!   `TlbStats` on every core;
//! * the host fast paths (access memos, batched streams, page-resident
//!   fast-forward) are observably absent under the rivals too — the
//!   generation-counter contract is what makes the memo layer sound
//!   per scheme, so this differential is the end-to-end proof;
//! * multi-core TLB shootdowns flow through the trait's purge path:
//!   a demotion on one core invalidates the other core's entries
//!   whatever scheme both cores run.

use mtlb_schemes::SchemeConfig;
use mtlb_sim::{Machine, MachineConfig};
use mtlb_types::{Prot, VirtAddr};

const BASE: VirtAddr = VirtAddr::new(0x1000_0000);
const REGION: u64 = 128 * 1024;

const RIVALS: [SchemeConfig; 2] = [SchemeConfig::Coalesced, SchemeConfig::Split];

/// A deterministic mixed workload touching every machine subsystem the
/// schemes interact with: scalar access, instruction fetch, batched
/// streams, superpage remap + demotion, and a context switch round
/// trip.
fn drive(m: &mut Machine) {
    m.map_region(BASE, REGION, Prot::RW);
    m.load_program(16 * 4096, false);
    for i in 0..32u64 {
        m.try_write_u32(BASE + i * 4096, i as u32).expect("mapped");
    }
    m.try_execute(200).expect("program loaded");
    m.try_stream_write_u32(BASE, 4096, 2, |i| i as u32)
        .expect("mapped");
    let mut sum = 0u64;
    m.try_stream_read_u32(BASE, 4096, 2, |_, v| sum += u64::from(v))
        .expect("mapped");
    m.remap(BASE, REGION);
    for i in 0..32u64 {
        // Pages 0..4 were overwritten by the stream; beyond that the
        // scalar writes must read back intact through the superpage.
        let v = m.try_read_u32(BASE + i * 4096).expect("mapped");
        if i >= 4 {
            assert_eq!(v, i as u32);
        }
    }
    m.demote_superpage(BASE.vpn());
    let pid = m.spawn_process();
    m.try_switch_process(pid).expect("spawned");
    m.try_switch_process(0).expect("pid 0 exists");
    m.try_read_u32(BASE + 8)
        .expect("mapped again after switch back");
}

/// Every scheme completes the representative run and produces a report
/// — in debug builds this passes the full cycle-attribution audit,
/// including the per-scheme fill-class reconciliation.
#[test]
fn every_scheme_survives_the_attribution_audit() {
    for scheme in [
        SchemeConfig::Cpu,
        SchemeConfig::Coalesced,
        SchemeConfig::Split,
    ] {
        let mut m = Machine::new(MachineConfig::paper_mtlb(64).with_scheme(scheme));
        assert_eq!(m.scheme_name(), scheme.name());
        drive(&mut m);
        let r = m.report();
        assert!(r.total_cycles.get() > 0, "{}: run happened", scheme.name());
        assert!(r.tlb.fills > 0, "{}: misses were served", scheme.name());
        assert!(
            m.tlb_reach_bytes() > 0,
            "{}: entries resident",
            scheme.name()
        );
    }
}

/// The fast paths must be observably absent under the rivals exactly as
/// they are under the paper TLB: same report, same memory image.
#[test]
fn fast_paths_are_observably_absent_under_rival_schemes() {
    for scheme in RIVALS {
        let cfg = MachineConfig::paper_mtlb(64).with_scheme(scheme);
        let mut fast = Machine::new(cfg.clone());
        fast.set_fast_paths(true);
        fast.set_page_fast_forward(true);
        let mut slow = Machine::new(cfg);
        slow.set_fast_paths(false);
        slow.set_page_fast_forward(false);
        drive(&mut fast);
        drive(&mut slow);
        assert_eq!(
            fast.report().to_json(),
            slow.report().to_json(),
            "{}: fast paths changed observable state",
            scheme.name()
        );
        assert_eq!(
            fast.guest_memory().content_digest(),
            slow.guest_memory().content_digest(),
            "{}: fast paths changed guest memory",
            scheme.name()
        );
        // Non-vacuous: the fast machine really took fast paths.
        assert!(fast.report().tlb.hits > 0);
    }
}

/// Shootdowns reach remote cores through `TranslationScheme::purge_*`
/// whatever the scheme: a demotion on core 1 must invalidate core 0's
/// entry for the superpage.
#[test]
fn shootdowns_invalidate_remote_cores_under_every_scheme() {
    for scheme in [
        SchemeConfig::Cpu,
        SchemeConfig::Coalesced,
        SchemeConfig::Split,
    ] {
        let mut m = Machine::new(
            MachineConfig::paper_mtlb(64)
                .with_cores(2)
                .with_scheme(scheme),
        );
        m.map_region(BASE, 64 * 1024, Prot::RW);
        m.remap(BASE, 64 * 1024);
        // Warm both cores on the superpage.
        m.try_read_u32(BASE + 4).expect("mapped");
        m.set_active_core(1);
        m.try_read_u32(BASE + 4).expect("mapped");
        let shootdowns_before = m.report().kernel.shootdowns;
        let purges_before = m.per_core_stats()[0].tlb.purges;
        m.demote_superpage(BASE.vpn());
        let r = m.report();
        assert!(
            r.kernel.shootdowns > shootdowns_before,
            "{}: demotion from core 1 raises a shootdown",
            scheme.name()
        );
        assert!(
            m.per_core_stats()[0].tlb.purges > purges_before,
            "{}: remote core's entry was purged through the trait",
            scheme.name()
        );
        // The remote core re-misses and still reads coherent data.
        m.set_active_core(0);
        let misses_before = m.per_core_stats()[0].tlb.misses;
        m.try_read_u32(BASE + 4).expect("mapped");
        assert!(
            m.per_core_stats()[0].tlb.misses > misses_before,
            "{}: stale entry is gone",
            scheme.name()
        );
    }
}
