//! Trace/attribution integration tests.
//!
//! Two claims the observability layer makes are checked here end to end:
//!
//! 1. **Trace completeness** (property test): for arbitrary op streams,
//!    the per-bucket cycle sums reconstructed from the event trace alone
//!    equal the machine's `TimeBuckets` — every charged cycle is traced
//!    exactly once. Each `report()` call along the way also runs the
//!    debug-build attribution auditor.
//! 2. **Misaligned fault semantics**: a misaligned scalar straddling a
//!    page boundary commits each aligned half immediately after its own
//!    access, so a shadow fault on the second half that evicts the first
//!    half's frame (CLOCK under memory pressure) neither re-runs nor
//!    half-commits the first access.

use mtlb_sim::{Bucket, Machine, MachineConfig, RingTrace};
use mtlb_types::{Cycles, Prot, VirtAddr};
use proptest::prelude::*;

const REGION: u64 = 64 * 1024;
const BASE: VirtAddr = VirtAddr::new(0x1000_0000);

#[derive(Clone, Debug)]
enum Op {
    Execute(u64),
    Read8(u64),
    Write8(u64, u8),
    Read16(u64),
    Read32(u64),
    Write32(u64, u32),
    Read64(u64),
    Sbrk(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let off = 0u64..(REGION - 8);
    prop_oneof![
        2 => (1u64..200).prop_map(Op::Execute),
        2 => off.clone().prop_map(Op::Read8),
        2 => (off.clone(), any::<u8>()).prop_map(|(o, v)| Op::Write8(o, v)),
        // Arbitrary offsets: roughly half of these are misaligned and
        // take the two-access path.
        1 => off.clone().prop_map(Op::Read16),
        2 => off.clone().prop_map(Op::Read32),
        2 => (off.clone(), any::<u32>()).prop_map(|(o, v)| Op::Write32(o, v)),
        1 => off.prop_map(Op::Read64),
        1 => (1u64..3).prop_map(|n| Op::Sbrk(n * 4096)),
    ]
}

fn apply(m: &mut Machine, op: &Op) {
    match *op {
        Op::Execute(n) => m.try_execute(n).unwrap(),
        Op::Read8(o) => {
            let _ = m.try_read_u8(BASE + o).unwrap();
        }
        Op::Write8(o, v) => m.try_write_u8(BASE + o, v).unwrap(),
        Op::Read16(o) => {
            let _ = m.try_read_u16(BASE + o).unwrap();
        }
        Op::Read32(o) => {
            let _ = m.try_read_u32(BASE + o).unwrap();
        }
        Op::Write32(o, v) => m.try_write_u32(BASE + o, v).unwrap(),
        Op::Read64(o) => {
            let _ = m.try_read_u64(BASE + o).unwrap();
        }
        Op::Sbrk(n) => {
            let _ = m.sbrk(n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `TimeBuckets` reconstructed from the trace equals the machine's
    /// own accounting, bucket by bucket, for random op streams on both
    /// the MTLB and the baseline machine.
    #[test]
    fn trace_reconstructs_time_buckets(
        mtlb in (0u8..2).prop_map(|b| b == 1),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let cfg = if mtlb {
            MachineConfig::paper_mtlb(16)
        } else {
            MachineConfig::paper_base(16)
        };
        let mut m = Machine::new(cfg);
        m.map_region(BASE, REGION, Prot::RW);
        m.remap(BASE, REGION);
        // Attach after setup: the trace must account for exactly the
        // cycles charged while it was attached.
        m.set_trace_sink(Box::new(RingTrace::new(64)));
        let before = m.report(); // debug auditor runs here
        for op in &ops {
            apply(&mut m, op);
        }
        let after = m.report(); // and here
        let sink = m.take_trace_sink().expect("sink attached");
        let ring = sink
            .as_any()
            .downcast_ref::<RingTrace>()
            .expect("RingTrace sink");
        prop_assert_eq!(
            ring.total_cycles(),
            after.total_cycles - before.total_cycles
        );
        prop_assert_eq!(
            ring.bucket_cycles(Bucket::User),
            after.buckets.user - before.buckets.user
        );
        prop_assert_eq!(
            ring.bucket_cycles(Bucket::TlbMiss),
            after.buckets.tlb_miss - before.buckets.tlb_miss
        );
        prop_assert_eq!(
            ring.bucket_cycles(Bucket::MemStall),
            after.buckets.mem_stall - before.buckets.mem_stall
        );
        prop_assert_eq!(
            ring.bucket_cycles(Bucket::Kernel),
            after.buckets.kernel - before.buckets.kernel
        );
        prop_assert_eq!(
            ring.bucket_cycles(Bucket::Fault),
            after.buckets.fault - before.buckets.fault
        );
        // The ring is tiny on purpose: long streams must overflow it
        // without losing the totals.
        prop_assert_eq!(ring.events(), ring.records().count() as u64 + ring.dropped());
    }
}

/// Drives a 16-user-frame machine into the exact corner the misaligned
/// path must survive: a misaligned `u32` whose low half hits a resident
/// base page and whose high half shadow-faults, where servicing the
/// fault CLOCK-evicts the *low half's* frame. Per-half commit means the
/// low bytes were already moved; a stale-translation implementation
/// would read the recycled frame (the high page's contents) instead.
#[test]
fn misaligned_access_survives_eviction_of_first_half() {
    // 16 MB kernel reservation + exactly 16 user frames.
    let cfg = MachineConfig::paper_mtlb(64).with_dram((16 << 20) + 16 * 4096);
    let mut m = Machine::new(cfg); // boot text stub: 1 frame, 15 free
    let data = BASE;
    m.map_region(data, 16 * 1024, Prot::RW); // 4 frames, 11 free
    let rep = m.remap(data, 16 * 1024); // one 16 KB shadow superpage
    assert_eq!(rep.superpages.len(), 1, "promotion happened");
    // Real-backed filler pages are not in the CLOCK ring, so they pin
    // their frames: 0 free.
    m.map_region(data + 0x0010_0000, 11 * 4096, Prot::RW);

    // Populate the straddling bytes, then push both pages to swap.
    m.swap_out_superpage(data.vpn()); // 4 free, resident ring empty
    m.try_write_u32(data + 4092, 0xAABB_CCDD).unwrap(); // faults page 0 in: 3 free
    m.try_write_u32(data + 4096, 0x1122_3344).unwrap(); // faults page 1 in: 2 free
    m.swap_out_superpage(data.vpn()); // 4 free again, ring empty

    // Bring page 0 (only) back, then exhaust the remaining frames.
    assert_eq!(m.try_read_u32(data + 4092).unwrap(), 0xAABB_CCDD); // 3 free
    m.map_region(data + 0x0020_0000, 3 * 4096, Prot::RW); // 0 free

    // Auditor checkpoint. The superpage's 4 pages started resident
    // (mapped, never swapped in); 4 + swapped_in - swapped_out = 1
    // means only page 0 is resident going into the misaligned access.
    let before = m.report();
    assert_eq!(
        4 + before.kernel.pages_swapped_in - before.kernel.pages_swapped_out,
        1,
    );

    // The misaligned read: low half [4092,4096) is resident page 0, high
    // half [4096,4100) shadow-faults, and the only evictable frame is
    // page 0's.
    let got = m.try_read_u32(data + 4094).unwrap();
    assert_eq!(
        got, 0x3344_AABB,
        "low-half bytes must come from page 0's contents, not a recycled frame"
    );

    let after = m.report();
    assert_eq!(
        after.loads - before.loads,
        2,
        "a misaligned scalar is exactly two aligned loads — the first \
         half must not be re-run after the second half's fault"
    );
    assert!(
        after.kernel.pages_swapped_out > before.kernel.pages_swapped_out,
        "the scenario really evicted the low half's frame mid-access"
    );
    assert_eq!(
        after.kernel.shadow_faults_serviced - before.kernel.shadow_faults_serviced,
        1,
        "only the high half faulted"
    );
    // The attribution auditor ran in both report() calls above; as a
    // belt-and-braces check the fault service cost landed in the fault
    // bucket.
    assert!(after.buckets.fault - before.buckets.fault > Cycles::ZERO);
}
