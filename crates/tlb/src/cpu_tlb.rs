//! The fully-associative CPU TLB with NRU replacement.
//!
//! # Host-side lookup acceleration
//!
//! A real fully-associative TLB compares all entries in parallel; the
//! straightforward simulation is a linear scan, which makes *every*
//! simulated memory access O(capacity). This implementation keeps a
//! side index — a hash map from `(size class, size-aligned VPN base)`
//! to slot — so [`CpuTlb::translate`] and [`CpuTlb::probe`] cost O(1)
//! in the TLB size (at most one hash probe per *present* size class,
//! tracked by a per-class entry count). The index is pure acceleration:
//! hit/miss outcomes, NRU use bits, victim choice, and every statistic
//! are identical to the linear scan, which debug builds assert.

use core::fmt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mtlb_types::{AccessKind, FastMap, Fault, PageSize, PhysAddr, PrivilegeLevel, VirtAddr, Vpn};

use crate::TlbEntry;

/// Index key: a page-size class and an entry's size-aligned base VPN.
type SlotKey = (u8, u64);

const fn class_of(size: PageSize) -> u8 {
    size as u8
}

fn key_of(entry: &TlbEntry) -> SlotKey {
    (class_of(entry.size()), entry.vpn_base().index())
}

/// The slots sharing one index key. Almost always one; two (or, in
/// principle, more) when locked and unlocked entries overlap. Inline
/// storage keeps the common insert/remove free of heap traffic.
#[derive(Debug, Clone, Default)]
struct SlotList {
    inline: [u32; 2],
    len: u8,
    spill: Vec<u32>,
}

impl SlotList {
    fn push(&mut self, s: u32) {
        if (self.len as usize) < self.inline.len() {
            self.inline[self.len as usize] = s;
            self.len += 1;
        } else {
            self.spill.push(s);
        }
    }

    fn remove(&mut self, s: u32) {
        if let Some(p) = self.spill.iter().position(|&x| x == s) {
            self.spill.swap_remove(p);
            return;
        }
        for i in 0..self.len as usize {
            if self.inline[i] == s {
                // Backfill from the spill first, else from the inline tail.
                if let Some(last) = self.spill.pop() {
                    self.inline[i] = last;
                } else {
                    self.len -= 1;
                    self.inline[i] = self.inline[self.len as usize];
                }
                return;
            }
        }
        panic!("slot {s} not present in its index list");
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.inline[..self.len as usize]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }
}

/// Result of a TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Translation found and the access is permitted.
    Hit(PhysAddr),
    /// No entry covers the address; the software miss handler must run.
    Miss,
    /// An entry covers the address but forbids the access.
    Fault(Fault),
}

/// TLB event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit (including locked block entries).
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by NRU replacement.
    pub replacements: u64,
    /// Entries removed by explicit purges.
    pub purges: u64,
    /// Times the NRU generation was exhausted and all use bits reset.
    pub nru_resets: u64,
    /// Replaceable entries inserted (miss-handler refills; locked block
    /// entries are not counted). The cycle-attribution auditor checks
    /// this against the kernel's miss-handler invocation count.
    pub fills: u64,
}

impl TlbStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when idle.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    entry: TlbEntry,
    /// NRU use bit: set on every hit, cleared en masse when all are set.
    used: bool,
    /// Locked block entries (kernel mappings) are never replaced or purged
    /// by [`CpuTlb::purge_all`].
    locked: bool,
}

/// The unified instruction/data CPU TLB.
///
/// Fully associative with a **not-recently-used** policy, as in the paper:
/// every hit sets the entry's use bit; a victim is chosen among entries
/// with a clear use bit; when none remain, all (unlocked) use bits are
/// cleared and the scan restarts. A rotating pointer makes victim choice
/// deterministic yet fair.
#[derive(Debug, Clone)]
pub struct CpuTlb {
    capacity: usize,
    slots: Vec<Option<Slot>>,
    /// Rotating scan start for NRU victim selection.
    hand: usize,
    /// Host-side acceleration only: index of the most recently hit slot,
    /// checked first. A real TLB compares all entries in parallel; this
    /// changes nothing observable (hits are hits), it just spares the
    /// simulator the index probes on the common repeat-hit case.
    mru: usize,
    /// Host-side acceleration only: maps `(size class, vpn base)` to the
    /// slots holding such an entry. Almost always one slot per key; two
    /// can share a key when a locked and an unlocked entry overlap (the
    /// overlap discard in [`CpuTlb::insert`] skips locked entries).
    index: FastMap<SlotKey, SlotList>,
    /// Host-side acceleration only: min-heap of the empty slot indices,
    /// so inserts find the same lowest-numbered free slot the reference
    /// linear scan would without walking the slot array.
    free: BinaryHeap<Reverse<u32>>,
    /// Entries per size class, so lookups probe only present classes.
    class_counts: [u32; PageSize::ALL.len()],
    /// Host-side content generation: bumped on every insert and purge.
    /// The machine's memo/fast-forward layers record it when proving a
    /// fast path sound (see the `scheme` module's invalidation
    /// contract). Purely host-side — no simulated state depends on it.
    generation: u64,
    stats: TlbStats,
}

impl CpuTlb {
    /// Creates an empty TLB with room for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB must have at least one entry");
        CpuTlb {
            capacity,
            slots: vec![None; capacity],
            hand: 0,
            mru: 0,
            index: FastMap::default(),
            free: (0..capacity as u32).map(Reverse).collect(),
            class_counts: [0; PageSize::ALL.len()],
            generation: 0,
            stats: TlbStats::default(),
        }
    }

    /// Host-side content generation: changes whenever an insert or
    /// purge may have changed the set of resident entries (and hence
    /// invalidated slot indices and prior lookup results).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Registers the occupied slot `i` in the lookup index.
    fn index_add(&mut self, i: usize) {
        let entry = &self.slots[i].as_ref().expect("occupied slot").entry;
        let key = key_of(entry);
        self.index.entry(key).or_default().push(i as u32);
        self.class_counts[key.0 as usize] += 1;
    }

    /// Unregisters slot `i` (still holding `entry`) from the index.
    fn index_remove(&mut self, i: usize) {
        let entry = &self.slots[i].as_ref().expect("occupied slot").entry;
        let key = key_of(entry);
        let slots = self.index.get_mut(&key).expect("indexed entry");
        slots.remove(i as u32);
        if slots.is_empty() {
            self.index.remove(&key);
        }
        self.class_counts[key.0 as usize] -= 1;
    }

    /// Empties slot `i` (which must be occupied): index bookkeeping plus
    /// the free-slot heap.
    fn clear_slot(&mut self, i: usize) {
        self.index_remove(i);
        self.slots[i] = None;
        self.free.push(Reverse(i as u32));
    }

    /// The covering slot [`translate`](Self::translate) would find — the
    /// lowest-numbered occupied slot whose entry covers `vpn`, exactly as
    /// the reference linear scan would. O(1) in the TLB size: one hash
    /// probe per size class present.
    fn find_covering(&self, vpn: Vpn) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (class, &count) in self.class_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // An entry of this class covering `vpn` can only sit at the
            // class-aligned base (sizes are powers of two base pages).
            let base = vpn.align_down_to(PageSize::ALL[class]).index();
            if let Some(slots) = self.index.get(&(class as u8, base)) {
                for s in slots.iter() {
                    let s = s as usize;
                    debug_assert!(self.slots[s]
                        .as_ref()
                        .is_some_and(|slot| slot.entry.covers(vpn)));
                    if best.is_none_or(|b| s < b) {
                        best = Some(s);
                    }
                }
            }
        }
        debug_assert_eq!(
            best,
            self.slots
                .iter()
                .enumerate()
                .find(|(_, s)| s.as_ref().is_some_and(|s| s.entry.covers(vpn)))
                .map(|(i, _)| i),
            "index must agree with the reference linear scan"
        );
        best
    }

    /// Number of entries the TLB can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently valid entries (including locked ones).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Looks up `va` for an access of `kind` at privilege `level`,
    /// updating hit/miss statistics and NRU state.
    pub fn translate(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        level: PrivilegeLevel,
    ) -> LookupOutcome {
        let vpn = va.vpn();
        // Fast path: the most recently hit entry (host-side optimisation
        // of the parallel CAM compare; no observable difference).
        if let Some(slot) = self.slots.get_mut(self.mru).and_then(|s| s.as_mut()) {
            // `translate` is `Some` exactly when the entry covers the
            // address, so the coverage check and the translation cannot
            // disagree.
            if let Some(pa) = slot.entry.translate(va) {
                if !slot.entry.prot().permits(kind, level) {
                    self.stats.hits = self.stats.hits.saturating_add(1);
                    return LookupOutcome::Fault(Fault::Protection { va, kind });
                }
                slot.used = true;
                self.stats.hits = self.stats.hits.saturating_add(1);
                return LookupOutcome::Hit(pa);
            }
        }
        if let Some(i) = self.find_covering(vpn) {
            let slot = self.slots[i].as_mut().expect("covering slot occupied");
            if !slot.entry.prot().permits(kind, level) {
                // Protection faults still count as "found": the entry
                // is present, the access is simply illegal.
                self.stats.hits = self.stats.hits.saturating_add(1);
                return LookupOutcome::Fault(Fault::Protection { va, kind });
            }
            // `find_covering` guarantees coverage, so this translation is
            // structurally `Some`; a disagreement falls through to a miss
            // rather than fabricating a physical address.
            if let Some(pa) = slot.entry.translate(va) {
                slot.used = true;
                self.mru = i;
                self.stats.hits = self.stats.hits.saturating_add(1);
                return LookupOutcome::Hit(pa);
            }
        }
        self.stats.misses = self.stats.misses.saturating_add(1);
        LookupOutcome::Miss
    }

    /// Looks up without perturbing statistics or NRU bits (for debugging
    /// and assertions).
    #[must_use]
    pub fn probe(&self, vpn: Vpn) -> Option<&TlbEntry> {
        self.find_covering(vpn)
            .map(|i| &self.slots[i].as_ref().expect("covering slot").entry)
    }

    /// Like [`probe`](CpuTlb::probe), but also returns the slot index of
    /// the covering entry, for use with
    /// [`note_fast_hits`](CpuTlb::note_fast_hits).
    #[must_use]
    pub fn probe_slot(&self, vpn: Vpn) -> Option<(usize, &TlbEntry)> {
        let i = self.find_covering(vpn)?;
        match &self.slots[i] {
            Some(s) => Some((i, &s.entry)),
            None => None,
        }
    }

    /// Slot index of the entry that produced the most recent
    /// [`LookupOutcome::Hit`].
    ///
    /// Both `translate` hit paths leave `mru` equal to the hit slot, so
    /// immediately after a `Hit` this identifies the serving entry; the
    /// machine's fast-forward layer records it so replayed hits can be
    /// credited to the same slot.
    #[must_use]
    pub fn last_hit_slot(&self) -> usize {
        self.mru
    }

    /// Replays `n` consecutive translate hits against the entry in
    /// `slot` without re-running the lookup.
    ///
    /// This is the host-side fast-forward path: the caller has already
    /// proven (via an earlier `Hit` on this slot and an unchanged TLB —
    /// no fills or purges since) that each of the `n` accesses would hit
    /// this same entry with permitted protection. The side effects are
    /// exactly those of `n` successful `translate` calls: the NRU used
    /// bit, the MRU pointer and the hit counter.
    pub fn note_fast_hits(&mut self, slot: usize, n: u64) {
        debug_assert!(
            self.slots[slot].is_some(),
            "fast hits against an empty slot"
        );
        if let Some(s) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) {
            s.used = true;
        }
        self.mru = slot;
        self.stats.hits = self.stats.hits.saturating_add(n);
    }

    /// Inserts a replaceable entry, evicting an NRU victim if full.
    ///
    /// Any existing (unlocked) entries overlapping the new entry's virtual
    /// range are discarded first — the "automatically discard pre-existing
    /// mappings" TLB behaviour the paper mentions in §2.3.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.insert_inner(entry, false);
    }

    /// Inserts a *locked* block entry (kernel mappings, paper §3.2) that
    /// is never chosen for replacement and survives [`purge_all`].
    ///
    /// [`purge_all`]: CpuTlb::purge_all
    pub fn insert_locked(&mut self, entry: TlbEntry) {
        self.insert_inner(entry, true);
    }

    fn insert_inner(&mut self, entry: TlbEntry, locked: bool) {
        self.generation = self.generation.wrapping_add(1);
        if !locked {
            self.stats.fills = self.stats.fills.saturating_add(1);
        }
        // Discard overlapping unlocked mappings (a TLB never holds two
        // entries for one virtual address). For a base-page insert — the
        // overwhelmingly common miss-handler refill — every overlapping
        // entry must *cover* the one page, so the index finds them with
        // one probe per present size class. Superpage inserts (rare:
        // remaps and promotions) keep the reference linear scan, since
        // they can overlap many smaller entries.
        if entry.size() == PageSize::Base4K {
            let vpn = entry.vpn_base();
            // Non-overlap invariant: at most one unlocked entry covers
            // any vpn, so one doomed slot per size class bounds this.
            let mut doomed = [0u32; PageSize::ALL.len()];
            let mut n = 0;
            for (class, &count) in self.class_counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let base = vpn.align_down_to(PageSize::ALL[class]).index();
                if let Some(slots) = self.index.get(&(class as u8, base)) {
                    for s in slots.iter() {
                        if !self.slots[s as usize]
                            .as_ref()
                            .expect("indexed slot")
                            .locked
                        {
                            doomed[n] = s;
                            n += 1;
                        }
                    }
                }
            }
            for &s in &doomed[..n] {
                self.clear_slot(s as usize);
            }
        } else {
            for i in 0..self.capacity {
                if let Some(s) = &self.slots[i] {
                    if !s.locked
                        && s.entry
                            .overlaps(entry.vpn_base(), entry.size().base_pages())
                    {
                        self.clear_slot(i);
                    }
                }
            }
        }
        let new = Slot {
            entry,
            used: true,
            locked,
        };
        // Free slot if any (heap min = the lowest-numbered empty slot,
        // as the reference first-free scan would find).
        debug_assert_eq!(
            self.free.peek().map(|&Reverse(i)| i as usize),
            self.slots.iter().position(|s| s.is_none()),
            "free-slot heap must agree with the reference scan"
        );
        if let Some(Reverse(i)) = self.free.pop() {
            let i = i as usize;
            self.slots[i] = Some(new);
            self.index_add(i);
            return;
        }
        // NRU victim selection among unlocked entries.
        let victim = self.pick_victim();
        self.stats.replacements = self.stats.replacements.saturating_add(1);
        self.index_remove(victim);
        self.slots[victim] = Some(new);
        self.index_add(victim);
        self.hand = victim + 1;
        if self.hand == self.capacity {
            self.hand = 0;
        }
    }

    fn pick_victim(&mut self) -> usize {
        for round in 0..2 {
            let mut idx = self.hand;
            for _ in 0..self.capacity {
                if let Some(s) = &self.slots[idx] {
                    if !s.locked && !s.used {
                        return idx;
                    }
                }
                idx += 1;
                if idx == self.capacity {
                    idx = 0;
                }
            }
            // Every unlocked entry is recently used: clear the generation
            // and rescan (an NRU reset).
            if round == 0 {
                self.stats.nru_resets = self.stats.nru_resets.saturating_add(1);
                for s in self.slots.iter_mut().flatten() {
                    if !s.locked {
                        s.used = false;
                    }
                }
            }
        }
        panic!(
            "TLB has no unlocked entry to replace (all {} locked)",
            self.capacity
        );
    }

    /// Purges every unlocked entry overlapping `[vpn, vpn + pages)`
    /// (TLB shootdown during remap). Returns the number removed.
    pub fn purge_range(&mut self, vpn: Vpn, pages: u64) -> usize {
        self.generation = self.generation.wrapping_add(1);
        let mut removed = 0;
        for i in 0..self.capacity {
            if let Some(s) = &self.slots[i] {
                if !s.locked && s.entry.overlaps(vpn, pages) {
                    self.clear_slot(i);
                    removed += 1;
                }
            }
        }
        self.stats.purges = self.stats.purges.saturating_add(removed as u64);
        removed
    }

    /// Purges every unlocked entry (process switch). Locked block entries
    /// survive. Returns the number removed.
    pub fn purge_all(&mut self) -> usize {
        self.generation = self.generation.wrapping_add(1);
        let mut removed = 0;
        for i in 0..self.capacity {
            if let Some(s) = &self.slots[i] {
                if !s.locked {
                    self.clear_slot(i);
                    removed += 1;
                }
            }
        }
        self.stats.purges = self.stats.purges.saturating_add(removed as u64);
        removed
    }

    /// Iterates over the current entries (locked and unlocked).
    pub fn iter(&self) -> impl Iterator<Item = &TlbEntry> {
        self.slots.iter().flatten().map(|s| &s.entry)
    }
}

impl fmt::Display for CpuTlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CpuTlb({}/{} entries, {} hits, {} misses)",
            self.occupancy(),
            self.capacity,
            self.stats.hits,
            self.stats.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::{PageSize, Ppn, Prot};

    fn entry(vpn: u64, ppn: u64) -> TlbEntry {
        TlbEntry::new(Vpn::new(vpn), Ppn::new(ppn), PageSize::Base4K, Prot::RW).unwrap()
    }

    fn sp_entry(vpn: u64, ppn: u64, size: PageSize) -> TlbEntry {
        TlbEntry::new(Vpn::new(vpn), Ppn::new(ppn), size, Prot::RW).unwrap()
    }

    fn read(tlb: &mut CpuTlb, va: u64) -> LookupOutcome {
        tlb.translate(VirtAddr::new(va), AccessKind::Read, PrivilegeLevel::User)
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut tlb = CpuTlb::new(4);
        assert_eq!(read(&mut tlb, 0x1234), LookupOutcome::Miss);
        tlb.insert(entry(1, 0x100));
        assert_eq!(
            read(&mut tlb, 0x1234),
            LookupOutcome::Hit(PhysAddr::new(0x100234))
        );
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn superpage_entry_covers_whole_range() {
        let mut tlb = CpuTlb::new(4);
        tlb.insert(sp_entry(4, 0x80240, PageSize::Size16K));
        assert_eq!(
            read(&mut tlb, 0x4080),
            LookupOutcome::Hit(PhysAddr::new(0x8024_0080))
        );
        assert_eq!(
            read(&mut tlb, 0x7ffc),
            LookupOutcome::Hit(PhysAddr::new(0x8024_3ffc))
        );
        assert_eq!(read(&mut tlb, 0x8000), LookupOutcome::Miss);
    }

    #[test]
    fn protection_fault_reported() {
        let mut tlb = CpuTlb::new(4);
        tlb.insert(TlbEntry::new(Vpn::new(1), Ppn::new(1), PageSize::Base4K, Prot::READ).unwrap());
        let out = tlb.translate(
            VirtAddr::new(0x1000),
            AccessKind::Write,
            PrivilegeLevel::User,
        );
        assert!(matches!(
            out,
            LookupOutcome::Fault(Fault::Protection { .. })
        ));
    }

    #[test]
    fn supervisor_only_entries_hide_from_user() {
        let mut tlb = CpuTlb::new(4);
        tlb.insert(
            TlbEntry::new(
                Vpn::new(1),
                Ppn::new(1),
                PageSize::Base4K,
                Prot::RW | Prot::SUPERVISOR_ONLY,
            )
            .unwrap(),
        );
        assert!(matches!(read(&mut tlb, 0x1000), LookupOutcome::Fault(_)));
        let out = tlb.translate(
            VirtAddr::new(0x1000),
            AccessKind::Read,
            PrivilegeLevel::Supervisor,
        );
        assert!(matches!(out, LookupOutcome::Hit(_)));
    }

    #[test]
    fn nru_evicts_not_recently_used_first() {
        let mut tlb = CpuTlb::new(2);
        tlb.insert(entry(1, 1));
        tlb.insert(entry(2, 2));
        // Touch page 1 only; then clear generation by forcing a reset via
        // a third insert: both are used -> reset -> hand picks slot 0...
        // Instead, engineer: hit entry 1 so both used bits set from insert;
        // we need a deterministic check, so re-read entry 2 then entry 1,
        // insert -> victim must be a !used entry after reset.
        read(&mut tlb, 0x1000);
        tlb.insert(entry(3, 3));
        // Capacity 2: one of vpn1/vpn2 was evicted; after the reset the
        // scan starts at the hand (slot 0). What must hold: vpn3 present,
        // exactly one of vpn1/vpn2 present.
        assert!(tlb.probe(Vpn::new(3)).is_some());
        let survivors = [1u64, 2]
            .iter()
            .filter(|v| tlb.probe(Vpn::new(**v)).is_some())
            .count();
        assert_eq!(survivors, 1);
        assert_eq!(tlb.stats().replacements, 1);
        assert_eq!(tlb.stats().nru_resets, 1);
    }

    #[test]
    fn nru_prefers_unused_victims() {
        let mut tlb = CpuTlb::new(3);
        tlb.insert(entry(1, 1));
        tlb.insert(entry(2, 2));
        tlb.insert(entry(3, 3));
        // All used bits set by insertion; a 4th insert resets, then picks
        // the first unlocked slot. Touch 1 and 3 afterwards... simpler:
        // force reset now via insert.
        tlb.insert(entry(4, 4));
        // Now exactly one of {1,2,3} is gone and the others have used=false.
        // Touch the survivors so only the new entry's bit is... verify a
        // targeted scenario instead:
        let mut tlb = CpuTlb::new(3);
        tlb.insert(entry(1, 1));
        tlb.insert(entry(2, 2));
        tlb.insert(entry(3, 3));
        // Reset generation manually by filling: insert triggers reset and
        // evicts slot at hand=0 (vpn 1).
        tlb.insert(entry(4, 4));
        assert!(tlb.probe(Vpn::new(1)).is_none());
        // Touch 2 (used=true). 3 and 4: 3 has used=false (reset), 4 used=true.
        read(&mut tlb, 0x2000);
        tlb.insert(entry(5, 5));
        // Victim must be vpn 3: the only not-recently-used entry.
        assert!(tlb.probe(Vpn::new(3)).is_none());
        assert!(tlb.probe(Vpn::new(2)).is_some());
        assert!(tlb.probe(Vpn::new(4)).is_some());
        assert!(tlb.probe(Vpn::new(5)).is_some());
    }

    #[test]
    fn locked_entries_survive_replacement_and_purge() {
        let mut tlb = CpuTlb::new(2);
        tlb.insert_locked(sp_entry(0x80000 >> 2, 0, PageSize::Size16K));
        tlb.insert(entry(1, 1));
        tlb.insert(entry(2, 2)); // must evict vpn1, not the locked entry
        assert!(tlb.probe(Vpn::new(0x80000 >> 2)).is_some());
        assert!(tlb.probe(Vpn::new(2)).is_some());
        assert_eq!(tlb.purge_all(), 1);
        assert!(tlb.probe(Vpn::new(0x80000 >> 2)).is_some());
    }

    #[test]
    #[should_panic(expected = "no unlocked entry")]
    fn all_locked_tlb_cannot_replace() {
        let mut tlb = CpuTlb::new(1);
        tlb.insert_locked(entry(1, 1));
        tlb.insert(entry(2, 2));
    }

    #[test]
    fn insert_discards_overlapping_mapping() {
        let mut tlb = CpuTlb::new(8);
        tlb.insert(entry(4, 0x10));
        tlb.insert(entry(5, 0x11));
        tlb.insert(entry(9, 0x12));
        // A 16 KB superpage over vpns 4..8 must displace the two base
        // mappings inside it but not vpn 9.
        tlb.insert(sp_entry(4, 0x80240, PageSize::Size16K));
        assert_eq!(tlb.occupancy(), 2);
        assert_eq!(
            read(&mut tlb, 0x5040),
            LookupOutcome::Hit(PhysAddr::new(0x8024_1040))
        );
        assert!(tlb.probe(Vpn::new(9)).is_some());
    }

    #[test]
    fn purge_range_removes_cover() {
        let mut tlb = CpuTlb::new(8);
        tlb.insert(entry(1, 1));
        tlb.insert(entry(2, 2));
        tlb.insert(sp_entry(4, 4, PageSize::Size16K));
        assert_eq!(tlb.purge_range(Vpn::new(2), 3), 2); // vpn2 + superpage
        assert!(tlb.probe(Vpn::new(1)).is_some());
        assert!(tlb.probe(Vpn::new(2)).is_none());
        assert!(tlb.probe(Vpn::new(5)).is_none());
        assert_eq!(tlb.stats().purges, 2);
    }

    #[test]
    fn stats_miss_rate() {
        let mut tlb = CpuTlb::new(2);
        read(&mut tlb, 0x1000);
        tlb.insert(entry(1, 1));
        read(&mut tlb, 0x1000);
        read(&mut tlb, 0x1000);
        assert_eq!(tlb.stats().lookups(), 3);
        assert!((tlb.stats().miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_summarises() {
        let tlb = CpuTlb::new(4);
        assert!(tlb.to_string().contains("0/4"));
    }
}
