//! TLB entry representation.

use core::fmt;

use mtlb_types::{PageSize, PhysAddr, Ppn, Prot, VirtAddr, Vpn};

/// One CPU TLB entry: a virtual (super)page mapped to a bus-physical
/// (super)page frame with uniform protection.
///
/// Both the virtual and the physical base must be aligned to the entry's
/// page size — the classic superpage constraint. The whole point of the
/// paper is that the *physical* side of this pair may be a **shadow**
/// frame, which the OS can always allocate aligned, while the real frames
/// behind it stay discontiguous.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbEntry {
    vpn_base: Vpn,
    pfn_base: Ppn,
    size: PageSize,
    prot: Prot,
}

impl TlbEntry {
    /// Creates an entry mapping the (super)page of `size` whose first
    /// virtual page is `vpn_base` onto the frame range starting at
    /// `pfn_base`.
    ///
    /// Returns `None` unless both bases are size-aligned.
    #[must_use]
    pub fn new(vpn_base: Vpn, pfn_base: Ppn, size: PageSize, prot: Prot) -> Option<Self> {
        if !vpn_base.is_aligned_to(size) || !pfn_base.is_aligned_to(size) {
            return None;
        }
        Some(TlbEntry {
            vpn_base,
            pfn_base,
            size,
            prot,
        })
    }

    /// The first virtual page covered.
    #[must_use]
    pub fn vpn_base(&self) -> Vpn {
        self.vpn_base
    }

    /// The first physical page frame of the mapping.
    #[must_use]
    pub fn pfn_base(&self) -> Ppn {
        self.pfn_base
    }

    /// The (super)page size.
    #[must_use]
    pub fn size(&self) -> PageSize {
        self.size
    }

    /// The protection bits (shared by every base page under the entry).
    #[must_use]
    pub fn prot(&self) -> Prot {
        self.prot
    }

    /// Returns `true` when `vpn` falls inside this entry's virtual range.
    #[must_use]
    pub fn covers(&self, vpn: Vpn) -> bool {
        let delta = vpn.index().wrapping_sub(self.vpn_base.index());
        delta < self.size.base_pages()
    }

    /// Translates a virtual address through this entry, or `None` when
    /// the address falls outside the entry's virtual range.
    ///
    /// The guard is structural rather than a debug assertion: a stale
    /// or mis-probed entry asked to translate a foreign address must
    /// never hand back a plausible-but-wrong physical address in
    /// release builds — with cross-core shootdowns in play, a stale
    /// entry is an ordinary hazard, not a programming error.
    #[must_use]
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        self.covers(va.vpn())
            .then(|| self.pfn_base.base_addr() + va.offset_in(self.size))
    }

    /// Returns `true` when this entry's virtual range overlaps
    /// `[vpn, vpn + pages)`.
    #[must_use]
    pub fn overlaps(&self, vpn: Vpn, pages: u64) -> bool {
        let a0 = self.vpn_base.index();
        let a1 = a0 + self.size.base_pages();
        let b0 = vpn.index();
        let b1 = b0 + pages;
        a0 < b1 && b0 < a1
    }
}

impl fmt::Debug for TlbEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TlbEntry(va {:#x}..+{} -> pa {:#x}, {:?})",
            self.vpn_base.base_addr().get(),
            self.size,
            self.pfn_base.base_addr().get(),
            self.prot
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_enforced() {
        assert!(TlbEntry::new(Vpn::new(4), Ppn::new(8), PageSize::Size16K, Prot::RW).is_some());
        assert!(TlbEntry::new(Vpn::new(5), Ppn::new(8), PageSize::Size16K, Prot::RW).is_none());
        assert!(TlbEntry::new(Vpn::new(4), Ppn::new(9), PageSize::Size16K, Prot::RW).is_none());
        // Base pages are always aligned.
        assert!(TlbEntry::new(Vpn::new(5), Ppn::new(9), PageSize::Base4K, Prot::RW).is_some());
    }

    #[test]
    fn coverage_and_translation() {
        let e = TlbEntry::new(Vpn::new(4), Ppn::new(0x80240), PageSize::Size16K, Prot::RW)
            .expect("aligned");
        assert!(e.covers(Vpn::new(4)));
        assert!(e.covers(Vpn::new(7)));
        assert!(!e.covers(Vpn::new(8)));
        assert!(!e.covers(Vpn::new(3)));
        // Figure 1: VA 0x00004080 -> 0x80240080; VA 0x00005040 (vpn 5, the
        // second base page) -> 0x80241040.
        assert_eq!(
            e.translate(VirtAddr::new(0x4080)),
            Some(PhysAddr::new(0x8024_0080))
        );
        assert_eq!(
            e.translate(VirtAddr::new(0x5040)),
            Some(PhysAddr::new(0x8024_1040))
        );
    }

    /// Regression: translating an address the entry does not cover must
    /// be a structural `None`, never a silently wrong physical address
    /// (the release-build hazard the old debug-only assertion allowed).
    #[test]
    fn translate_outside_entry_is_none() {
        let e = TlbEntry::new(Vpn::new(4), Ppn::new(0x80240), PageSize::Size16K, Prot::RW)
            .expect("aligned");
        assert_eq!(e.translate(VirtAddr::new(0x8000)), None); // one past the end
        assert_eq!(e.translate(VirtAddr::new(0x3fff)), None); // one before the base
        assert_eq!(e.translate(VirtAddr::new(0)), None);
        assert_eq!(e.translate(VirtAddr::new(u64::MAX)), None);
    }

    #[test]
    fn overlap_detection() {
        let e = TlbEntry::new(Vpn::new(8), Ppn::new(8), PageSize::Size16K, Prot::RW).unwrap();
        assert!(e.overlaps(Vpn::new(0), 9));
        assert!(!e.overlaps(Vpn::new(0), 8));
        assert!(e.overlaps(Vpn::new(11), 1));
        assert!(!e.overlaps(Vpn::new(12), 100));
        assert!(e.overlaps(Vpn::new(9), 1));
    }

    #[test]
    fn debug_output_is_informative() {
        let e = TlbEntry::new(Vpn::new(4), Ppn::new(8), PageSize::Size16K, Prot::RX).unwrap();
        let s = format!("{e:?}");
        assert!(s.contains("16KB"));
        assert!(s.contains("0x4000"));
    }
}
