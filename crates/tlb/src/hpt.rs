//! The HP PA-RISC-style hashed page table (HPT).
//!
//! The software TLB miss handler's data structure (paper §3.2): a hashed
//! table of 16-byte PTEs living in **guest physical memory**, with chained
//! overflow. There is one PTE per mapped 4 KB *base* page — a page inside
//! a superpage mapping carries the superpage's size so the miss handler
//! can insert a single superpage TLB entry covering the whole range (the
//! hashed-page-table organisation of Huck & Hays that the paper cites).
//!
//! Every probe the walker performs is issued through the [`PteMemory`]
//! trait, so the machine model can route PTE reads through the simulated
//! cache: the paper's §3.5 point that "page tables needed to service TLB
//! fills can be cached just like other data" falls out naturally.

use core::fmt;

use mtlb_types::{PageSize, PhysAddr, Ppn, Prot, Vpn};

/// Bytes per PTE (paper: "Each entry is 16 bytes in length").
pub const PTE_BYTES: u64 = 16;

/// Abstract access to the physical memory holding the page table.
///
/// Implementations decide what a probe costs: the machine model charges
/// cache/bus/DRAM cycles, plain tests back it with a flat array.
pub trait PteMemory {
    /// Reads a little-endian 64-bit word at a physical address.
    fn read_u64(&mut self, pa: PhysAddr) -> u64;
    /// Writes a little-endian 64-bit word at a physical address.
    fn write_u64(&mut self, pa: PhysAddr, value: u64);
}

/// A decoded page table entry for one 4 KB base page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// The virtual base page this entry translates.
    pub vpn: Vpn,
    /// The bus-physical frame backing it (real or shadow).
    pub pfn: Ppn,
    /// The size of the *mapping* this page belongs to. `Base4K` for an
    /// ordinary page; a superpage size when the page lies inside a
    /// (shadow-backed) superpage, letting the miss handler build one TLB
    /// entry for the whole range.
    pub size: PageSize,
    /// Protection bits for the mapping.
    pub prot: Prot,
}

impl Pte {
    /// The superpage-aligned virtual base of the enclosing mapping.
    #[must_use]
    pub fn mapping_vpn_base(&self) -> Vpn {
        self.vpn.align_down_to(self.size)
    }

    /// The frame corresponding to [`mapping_vpn_base`](Self::mapping_vpn_base),
    /// assuming (as the shadow allocator guarantees) that frames are
    /// contiguous across the mapping.
    #[must_use]
    pub fn mapping_pfn_base(&self) -> Ppn {
        let delta = self.vpn.offset_from(self.mapping_vpn_base());
        self.pfn.offset_back(delta)
    }

    fn encode(&self, chain: u32) -> (u64, u64) {
        let size_code = PageSize::ALL
            .iter()
            .position(|s| *s == self.size)
            .expect("size is a member of PageSize::ALL") as u64;
        debug_assert!(self.vpn.index() < (1 << 48), "vpn exceeds PTE field");
        debug_assert!(self.pfn.index() < (1 << 40), "pfn exceeds PTE field");
        debug_assert!(chain < (1 << 24), "chain index exceeds PTE field");
        let w0 =
            (1u64 << 63) | (size_code << 56) | ((self.prot.bits() as u64) << 48) | self.vpn.index();
        let w1 = ((chain as u64) << 40) | self.pfn.index();
        (w0, w1)
    }

    fn decode(w0: u64, w1: u64) -> Option<(Pte, u32)> {
        if w0 >> 63 == 0 {
            return None;
        }
        // Field masks of the packed words; widths match `encode`'s
        // debug assertions.
        const VPN_MASK: u64 = (1 << 48) - 1;
        const PFN_MASK: u64 = (1 << 40) - 1;
        let size = PageSize::ALL[((w0 >> 56) & 0x7) as usize];
        let prot = Prot::from_bits_truncate(((w0 >> 48) & 0xff) as u8);
        let vpn = Vpn::new(w0 & VPN_MASK);
        let chain = (w1 >> 40) as u32;
        let pfn = Ppn::new(w1 & PFN_MASK);
        Some((
            Pte {
                vpn,
                pfn,
                size,
                prot,
            },
            chain,
        ))
    }
}

/// Geometry and placement of the hashed page table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HptConfig {
    /// Physical base address of the table.
    pub base: PhysAddr,
    /// Number of hash buckets (must be a power of two). The paper uses
    /// 16 K buckets of 16-byte entries.
    pub buckets: u64,
    /// Number of overflow slots for chained collisions, placed directly
    /// after the buckets.
    pub overflow_slots: u64,
}

impl HptConfig {
    /// The paper's configuration: a 16 K-entry table (256 KB) plus an
    /// equal-sized overflow area, at the given base.
    #[must_use]
    pub fn paper_default(base: PhysAddr) -> Self {
        HptConfig {
            base,
            buckets: 16 * 1024,
            overflow_slots: 16 * 1024,
        }
    }

    /// Total bytes of physical memory the table occupies.
    #[must_use]
    pub fn table_bytes(&self) -> u64 {
        (self.buckets + self.overflow_slots) * PTE_BYTES
    }
}

/// Walk/maintenance statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HptStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Total PTE probes across all lookups (≥ lookups; >1 per lookup
    /// means chains were walked).
    pub probes: u64,
    /// Lookups that found no mapping.
    pub not_found: u64,
    /// Entries currently live.
    pub live_entries: u64,
}

impl HptStats {
    /// Mean probes per lookup (1.0 = perfect hashing).
    #[must_use]
    pub fn mean_probes(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.probes as f64 / self.lookups as f64
        }
    }
}

/// Outcome of a hashed-page-table lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HptLookup {
    /// The PTE, when a mapping exists.
    pub pte: Option<Pte>,
    /// Number of 16-byte entries the walk examined.
    pub probes: u32,
}

/// Software state of the hashed page table.
///
/// The *contents* live in guest memory (via [`PteMemory`]); this struct
/// holds only the geometry and the overflow-slot free list, mirroring the
/// bookkeeping a kernel would keep in its own data segment.
#[derive(Debug, Clone)]
pub struct HashedPageTable {
    config: HptConfig,
    free_overflow: Vec<u32>,
    next_unused_overflow: u32,
    stats: HptStats,
}

/// Error returned when the overflow area is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HptFull;

impl fmt::Display for HptFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("hashed page table overflow area exhausted")
    }
}

impl std::error::Error for HptFull {}

impl HashedPageTable {
    /// Creates the software state for a table with the given geometry.
    /// The guest memory backing it is assumed zeroed (all invalid).
    ///
    /// # Panics
    ///
    /// Panics unless `buckets` is a power of two.
    #[must_use]
    pub fn new(config: HptConfig) -> Self {
        assert!(
            config.buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        HashedPageTable {
            config,
            free_overflow: Vec::new(),
            next_unused_overflow: 0,
            stats: HptStats::default(),
        }
    }

    /// The table geometry.
    #[must_use]
    pub fn config(&self) -> HptConfig {
        self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HptStats {
        self.stats
    }

    fn hash(&self, vpn: Vpn) -> u64 {
        // XOR-folded VPN, as in PA-RISC hashed page tables.
        let v = vpn.index();
        (v ^ (v >> 10) ^ (v >> 20)) & (self.config.buckets - 1)
    }

    fn bucket_addr(&self, bucket: u64) -> PhysAddr {
        self.config.base + bucket * PTE_BYTES
    }

    fn overflow_addr(&self, slot: u32) -> PhysAddr {
        self.config.base + (self.config.buckets + slot as u64) * PTE_BYTES
    }

    /// Address of the entry a chain field points at (`chain` is 1-based;
    /// 0 terminates the chain).
    fn chain_addr(&self, chain: u32) -> PhysAddr {
        debug_assert!(chain != 0);
        self.overflow_addr(chain - 1)
    }

    fn read_entry(&self, mem: &mut impl PteMemory, at: PhysAddr) -> Option<(Pte, u32)> {
        let w0 = mem.read_u64(at);
        let w1 = mem.read_u64(at + 8);
        Pte::decode(w0, w1)
    }

    fn write_entry(&self, mem: &mut impl PteMemory, at: PhysAddr, pte: &Pte, chain: u32) {
        let (w0, w1) = pte.encode(chain);
        mem.write_u64(at, w0);
        mem.write_u64(at + 8, w1);
    }

    fn clear_entry(&self, mem: &mut impl PteMemory, at: PhysAddr) {
        mem.write_u64(at, 0);
        mem.write_u64(at + 8, 0);
    }

    /// Looks up the mapping for `vpn`, walking the collision chain.
    ///
    /// Each probe reads one 16-byte PTE through `mem`; the caller can
    /// charge per-probe instruction costs from the returned count.
    pub fn lookup(&mut self, vpn: Vpn, mem: &mut impl PteMemory) -> HptLookup {
        self.stats.lookups = self.stats.lookups.saturating_add(1);
        let mut probes = 0u32;
        let mut at = self.bucket_addr(self.hash(vpn));
        loop {
            probes += 1;
            self.stats.probes = self.stats.probes.saturating_add(1);
            match self.read_entry(mem, at) {
                None => break,
                Some((pte, chain)) => {
                    if pte.vpn == vpn {
                        return HptLookup {
                            pte: Some(pte),
                            probes,
                        };
                    }
                    if chain == 0 {
                        break;
                    }
                    at = self.chain_addr(chain);
                }
            }
        }
        self.stats.not_found = self.stats.not_found.saturating_add(1);
        HptLookup { pte: None, probes }
    }

    /// Inserts or updates the mapping for `pte.vpn`.
    ///
    /// # Errors
    ///
    /// Returns [`HptFull`] when a new chained entry is needed but the
    /// overflow area is exhausted.
    pub fn insert(&mut self, pte: Pte, mem: &mut impl PteMemory) -> Result<(), HptFull> {
        let mut at = self.bucket_addr(self.hash(pte.vpn));
        match self.read_entry(mem, at) {
            None => {
                self.write_entry(mem, at, &pte, 0);
                self.stats.live_entries = self.stats.live_entries.saturating_add(1);
                return Ok(());
            }
            Some((existing, chain)) => {
                if existing.vpn == pte.vpn {
                    self.write_entry(mem, at, &pte, chain);
                    return Ok(());
                }
                let mut chain = chain;
                // Walk to the end of the chain, updating in place if found.
                while chain != 0 {
                    at = self.chain_addr(chain);
                    let (existing, next) = self
                        .read_entry(mem, at)
                        .expect("chained entries are always valid");
                    if existing.vpn == pte.vpn {
                        self.write_entry(mem, at, &pte, next);
                        return Ok(());
                    }
                    chain = next;
                }
            }
        }
        // Append a new overflow entry and link it from the chain tail
        // (which is `at`).
        let slot = match self.free_overflow.pop() {
            Some(s) => s,
            None => {
                if u64::from(self.next_unused_overflow) >= self.config.overflow_slots {
                    return Err(HptFull);
                }
                let s = self.next_unused_overflow;
                self.next_unused_overflow += 1;
                s
            }
        };
        self.write_entry(mem, self.overflow_addr(slot), &pte, 0);
        // Re-link the tail to the new slot, preserving its payload.
        let (tail_pte, _) = self
            .read_entry(mem, at)
            .expect("tail entry exists by construction");
        self.write_entry(mem, at, &tail_pte, slot + 1);
        self.stats.live_entries = self.stats.live_entries.saturating_add(1);
        Ok(())
    }

    /// Removes the mapping for `vpn`. Returns `true` when present.
    pub fn remove(&mut self, vpn: Vpn, mem: &mut impl PteMemory) -> bool {
        let bucket = self.bucket_addr(self.hash(vpn));
        let Some((head, head_chain)) = self.read_entry(mem, bucket) else {
            return false;
        };
        if head.vpn == vpn {
            if head_chain == 0 {
                self.clear_entry(mem, bucket);
            } else {
                // Promote the first overflow entry into the bucket.
                let next_at = self.chain_addr(head_chain);
                let (next_pte, next_chain) = self
                    .read_entry(mem, next_at)
                    .expect("chained entries are always valid");
                self.write_entry(mem, bucket, &next_pte, next_chain);
                self.clear_entry(mem, next_at);
                self.free_overflow.push(head_chain - 1);
            }
            self.stats.live_entries -= 1;
            return true;
        }
        // Walk the chain keeping the predecessor.
        let mut prev_at = bucket;
        let mut prev_pte = head;
        let mut chain = head_chain;
        while chain != 0 {
            let at = self.chain_addr(chain);
            let (pte, next) = self
                .read_entry(mem, at)
                .expect("chained entries are always valid");
            if pte.vpn == vpn {
                self.write_entry(mem, prev_at, &prev_pte, next);
                self.clear_entry(mem, at);
                self.free_overflow.push(chain - 1);
                self.stats.live_entries -= 1;
                return true;
            }
            prev_at = at;
            prev_pte = pte;
            chain = next;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A flat test backing store; counts accesses so probe accounting can
    /// be validated.
    #[derive(Default)]
    struct TestMem {
        words: BTreeMap<u64, u64>,
        reads: u64,
    }

    impl PteMemory for TestMem {
        fn read_u64(&mut self, pa: PhysAddr) -> u64 {
            self.reads += 1;
            *self.words.get(&pa.get()).unwrap_or(&0)
        }

        fn write_u64(&mut self, pa: PhysAddr, value: u64) {
            self.words.insert(pa.get(), value);
        }
    }

    fn table() -> HashedPageTable {
        HashedPageTable::new(HptConfig {
            base: PhysAddr::new(0x10_0000),
            buckets: 64,
            overflow_slots: 32,
        })
    }

    fn pte(vpn: u64, pfn: u64) -> Pte {
        Pte {
            vpn: Vpn::new(vpn),
            pfn: Ppn::new(pfn),
            size: PageSize::Base4K,
            prot: Prot::RW,
        }
    }

    #[test]
    fn insert_then_lookup() {
        let mut hpt = table();
        let mut mem = TestMem::default();
        hpt.insert(pte(0x123, 0x456), &mut mem).unwrap();
        let out = hpt.lookup(Vpn::new(0x123), &mut mem);
        assert_eq!(out.pte, Some(pte(0x123, 0x456)));
        assert_eq!(out.probes, 1);
    }

    #[test]
    fn missing_mapping_reports_not_found() {
        let mut hpt = table();
        let mut mem = TestMem::default();
        let out = hpt.lookup(Vpn::new(7), &mut mem);
        assert_eq!(out.pte, None);
        assert_eq!(hpt.stats().not_found, 1);
    }

    #[test]
    fn colliding_vpns_chain_and_resolve() {
        let mut hpt = table();
        let mut mem = TestMem::default();
        // With 64 buckets and hash = v ^ (v>>10) ^ (v>>20) masked to 6
        // bits, vpns 0x1 and 0x401 collide (0x401 ^ 0x1 = 0x400, which is
        // above the mask and folds to 0x401>>10=1 ... compute directly):
        let a = Vpn::new(0x41);
        let b = Vpn::new(0x41 + 64); // differs only above the 6 mask bits? hash folds >>10 so still collides
        let c = Vpn::new(0x41 + 128);
        hpt.insert(pte(a.index(), 1), &mut mem).unwrap();
        hpt.insert(pte(b.index(), 2), &mut mem).unwrap();
        hpt.insert(pte(c.index(), 3), &mut mem).unwrap();
        assert_eq!(hpt.lookup(a, &mut mem).pte.unwrap().pfn.index(), 1);
        assert_eq!(hpt.lookup(b, &mut mem).pte.unwrap().pfn.index(), 2);
        assert_eq!(hpt.lookup(c, &mut mem).pte.unwrap().pfn.index(), 3);
        // At least one lookup needed more than one probe.
        assert!(hpt.stats().probes > hpt.stats().lookups);
    }

    #[test]
    fn update_in_place_does_not_grow() {
        let mut hpt = table();
        let mut mem = TestMem::default();
        hpt.insert(pte(5, 1), &mut mem).unwrap();
        hpt.insert(pte(5, 9), &mut mem).unwrap();
        assert_eq!(hpt.stats().live_entries, 1);
        assert_eq!(
            hpt.lookup(Vpn::new(5), &mut mem).pte.unwrap().pfn.index(),
            9
        );
    }

    #[test]
    fn remove_head_promotes_chain() {
        let mut hpt = table();
        let mut mem = TestMem::default();
        let (a, b) = (0x41u64, 0x41 + 64);
        hpt.insert(pte(a, 1), &mut mem).unwrap();
        hpt.insert(pte(b, 2), &mut mem).unwrap();
        assert!(hpt.remove(Vpn::new(a), &mut mem));
        assert_eq!(hpt.lookup(Vpn::new(a), &mut mem).pte, None);
        let out = hpt.lookup(Vpn::new(b), &mut mem);
        assert_eq!(out.pte.unwrap().pfn.index(), 2);
        assert_eq!(out.probes, 1, "promoted entry should sit in the bucket");
        assert_eq!(hpt.stats().live_entries, 1);
    }

    #[test]
    fn remove_middle_of_chain_relinks() {
        let mut hpt = table();
        let mut mem = TestMem::default();
        let (a, b, c) = (0x41u64, 0x41 + 64, 0x41 + 128);
        hpt.insert(pte(a, 1), &mut mem).unwrap();
        hpt.insert(pte(b, 2), &mut mem).unwrap();
        hpt.insert(pte(c, 3), &mut mem).unwrap();
        assert!(hpt.remove(Vpn::new(b), &mut mem));
        assert!(hpt.lookup(Vpn::new(a), &mut mem).pte.is_some());
        assert!(hpt.lookup(Vpn::new(b), &mut mem).pte.is_none());
        assert!(hpt.lookup(Vpn::new(c), &mut mem).pte.is_some());
    }

    #[test]
    fn removed_slots_are_reused() {
        let mut hpt = table();
        let mut mem = TestMem::default();
        let (a, b) = (0x41u64, 0x41 + 64);
        hpt.insert(pte(a, 1), &mut mem).unwrap();
        hpt.insert(pte(b, 2), &mut mem).unwrap();
        hpt.remove(Vpn::new(b), &mut mem);
        // Re-insert: must reuse the freed overflow slot, not leak.
        for _ in 0..100 {
            hpt.insert(pte(b, 2), &mut mem).unwrap();
            hpt.remove(Vpn::new(b), &mut mem);
        }
        assert!(hpt.insert(pte(b, 2), &mut mem).is_ok());
    }

    #[test]
    fn overflow_exhaustion_errors() {
        let mut hpt = HashedPageTable::new(HptConfig {
            base: PhysAddr::new(0),
            buckets: 1,
            overflow_slots: 2,
        });
        let mut mem = TestMem::default();
        hpt.insert(pte(1, 1), &mut mem).unwrap(); // bucket
        hpt.insert(pte(2, 2), &mut mem).unwrap(); // overflow 0
        hpt.insert(pte(3, 3), &mut mem).unwrap(); // overflow 1
        assert_eq!(hpt.insert(pte(4, 4), &mut mem), Err(HptFull));
    }

    #[test]
    fn superpage_pte_reconstructs_mapping_base() {
        let p = Pte {
            vpn: Vpn::new(0x7),
            pfn: Ppn::new(0x80243),
            size: PageSize::Size16K,
            prot: Prot::RW,
        };
        assert_eq!(p.mapping_vpn_base().index(), 0x4);
        assert_eq!(p.mapping_pfn_base().index(), 0x80240);
    }

    #[test]
    fn encode_decode_round_trip() {
        for size in PageSize::ALL {
            let p = Pte {
                vpn: Vpn::new(0xdead_beef),
                pfn: Ppn::new(0x12_3456),
                size,
                prot: Prot::RX | Prot::SUPERVISOR_ONLY,
            };
            let (w0, w1) = p.encode(77);
            let (q, chain) = Pte::decode(w0, w1).unwrap();
            assert_eq!(p, q);
            assert_eq!(chain, 77);
        }
        assert_eq!(Pte::decode(0, 0), None);
    }

    #[test]
    fn paper_default_geometry() {
        let cfg = HptConfig::paper_default(PhysAddr::new(0x40000));
        assert_eq!(cfg.buckets, 16 * 1024);
        // 16 K buckets * 16 B = 256 KB + equal overflow = 512 KB total.
        assert_eq!(cfg.table_bytes(), 512 * 1024);
    }
}
