//! CPU-side address translation: the processor TLB and its software fill
//! machinery.
//!
//! Models the paper's processor MMU (§3.2):
//!
//! * [`CpuTlb`] — a unified instruction/data TLB: fully associative,
//!   single-cycle, **not-recently-used (NRU)** replacement, with each entry
//!   independently mapping a 4 KB page or a power-of-4 superpage
//!   (16 KB … 16 MB). Kernel text/data are covered by *locked block
//!   entries* that are never replaced.
//! * [`MicroItlb`] — the single-entry micro-ITLB holding the most recent
//!   instruction translation.
//! * [`HashedPageTable`] — the HP PA-RISC-style hashed page table (16 K
//!   buckets × 16-byte PTEs by default) that the software miss handler
//!   walks. The table lives in **guest physical memory**: every probe is
//!   performed through the [`PteMemory`] trait so the machine model can
//!   route PTE reads through the simulated cache — reproducing the §3.5
//!   observation that CPU TLB refills benefit from cached page tables.
//!
//! Nothing in this crate knows about shadow addresses: the TLB maps
//! virtual pages to *bus* physical pages, which may equally be real DRAM
//! or shadow regions. That opacity is the heart of the paper's design —
//! the CPU MMU is completely unmodified.
//!
//! # Example
//!
//! ```
//! use mtlb_tlb::{CpuTlb, LookupOutcome, TlbEntry};
//! use mtlb_types::{AccessKind, PageSize, PhysAddr, PrivilegeLevel, Ppn, Prot, VirtAddr, Vpn};
//!
//! let mut tlb = CpuTlb::new(64);
//! // Map the 16 KB superpage at VA 0x4000 to shadow frame 0x80240 (Figure 1).
//! tlb.insert(TlbEntry::new(
//!     Vpn::new(0x4),
//!     Ppn::new(0x80240),
//!     PageSize::Size16K,
//!     Prot::RW,
//! ).expect("aligned"));
//!
//! let out = tlb.translate(
//!     VirtAddr::new(0x0000_4080),
//!     AccessKind::Read,
//!     PrivilegeLevel::User,
//! );
//! assert_eq!(out, LookupOutcome::Hit(PhysAddr::new(0x8024_0080)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu_tlb;
mod entry;
mod hpt;
mod micro_itlb;
mod scheme;
mod subblock;

pub use cpu_tlb::{CpuTlb, LookupOutcome, TlbStats};
pub use entry::TlbEntry;
pub use hpt::{HashedPageTable, HptConfig, HptFull, HptLookup, HptStats, Pte, PteMemory};
pub use micro_itlb::MicroItlb;
pub use scheme::{ContigInfo, TranslationScheme};
pub use subblock::{SubblockOutcome, SubblockStats, SubblockTlb, SUBBLOCK_FACTOR};
