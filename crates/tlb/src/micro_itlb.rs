//! The single-entry micro-ITLB.

use mtlb_types::{PhysAddr, VirtAddr};

use crate::TlbEntry;

/// A single-entry instruction micro-TLB holding the most recent
/// instruction translation (paper §3.2).
///
/// Consecutive instruction fetches from the same (super)page hit here and
/// never consult the main unified TLB, so straight-line and loop-local
/// code costs nothing in translation.
#[derive(Debug, Clone, Default)]
pub struct MicroItlb {
    entry: Option<TlbEntry>,
    hits: u64,
    misses: u64,
}

impl MicroItlb {
    /// Creates an empty micro-ITLB.
    #[must_use]
    pub fn new() -> Self {
        MicroItlb::default()
    }

    /// Attempts to translate an instruction fetch. On a miss the caller
    /// consults the main TLB and then [`refill`](Self::refill)s.
    pub fn translate(&mut self, va: VirtAddr) -> Option<PhysAddr> {
        // `TlbEntry::translate` is `Some` exactly when the entry covers
        // `va`, so this folds the coverage check and translation into one
        // structural step.
        match self.entry.as_ref().and_then(|e| e.translate(va)) {
            Some(pa) => {
                self.hits = self.hits.saturating_add(1);
                Some(pa)
            }
            None => {
                self.misses = self.misses.saturating_add(1);
                None
            }
        }
    }

    /// Whether the cached translation covers `va`, without perturbing
    /// statistics (a pure probe for the fast-forward planner).
    #[must_use]
    pub fn covers(&self, va: VirtAddr) -> bool {
        self.entry.as_ref().is_some_and(|e| e.covers(va.vpn()))
    }

    /// Replays `n` translate hits without re-running the lookup. The
    /// caller must have proven via [`covers`](Self::covers) that each of
    /// the `n` fetches would hit the cached entry; a `translate` hit has
    /// no side effect beyond the counter.
    pub fn note_fast_hits(&mut self, n: u64) {
        debug_assert!(self.entry.is_some(), "fast hits on an empty micro-ITLB");
        self.hits = self.hits.saturating_add(n);
    }

    /// Replaces the cached translation after a main-TLB (or software)
    /// fill.
    pub fn refill(&mut self, entry: TlbEntry) {
        self.entry = Some(entry);
    }

    /// Invalidates the cached translation (process switch / shootdown).
    pub fn purge(&mut self) {
        self.entry = None;
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::{PageSize, Ppn, Prot, Vpn};

    fn text_entry() -> TlbEntry {
        TlbEntry::new(Vpn::new(0x10), Ppn::new(0x90), PageSize::Base4K, Prot::RX).unwrap()
    }

    #[test]
    fn cold_miss_then_hits_within_page() {
        let mut itlb = MicroItlb::new();
        assert_eq!(itlb.translate(VirtAddr::new(0x10_000)), None);
        itlb.refill(text_entry());
        assert_eq!(
            itlb.translate(VirtAddr::new(0x10_004)),
            Some(PhysAddr::new(0x90_004))
        );
        assert_eq!(
            itlb.translate(VirtAddr::new(0x10_ffc)),
            Some(PhysAddr::new(0x90_ffc))
        );
        assert_eq!(itlb.hits(), 2);
        assert_eq!(itlb.misses(), 1);
    }

    #[test]
    fn crossing_page_misses() {
        let mut itlb = MicroItlb::new();
        itlb.refill(text_entry());
        assert!(itlb.translate(VirtAddr::new(0x11_000)).is_none());
    }

    #[test]
    fn purge_forgets() {
        let mut itlb = MicroItlb::new();
        itlb.refill(text_entry());
        itlb.purge();
        assert!(itlb.translate(VirtAddr::new(0x10_000)).is_none());
    }

    #[test]
    fn superpage_text_mapping_covers_more() {
        let mut itlb = MicroItlb::new();
        itlb.refill(
            TlbEntry::new(Vpn::new(0), Ppn::new(0x100), PageSize::Size64K, Prot::RX).unwrap(),
        );
        assert!(itlb.translate(VirtAddr::new(0xfffc)).is_some());
        assert!(itlb.translate(VirtAddr::new(0x10000)).is_none());
    }
}
