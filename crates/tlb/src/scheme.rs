//! The pluggable translation-scheme layer.
//!
//! The machine model does not talk to [`CpuTlb`] directly: it holds a
//! `Box<dyn TranslationScheme>` and drives every translation front end —
//! the paper's fully-associative NRU TLB, and rival designs such as a
//! coalesced TLB or a multi-page-size split TLB — through this one
//! trait. The surface is exactly the set of operations the machine and
//! the kernel already performed on `CpuTlb`, plus two additions rivals
//! need:
//!
//! * [`TranslationScheme::fill`] takes a [`ContigInfo`] describing the
//!   mapping-contiguity the kernel observed around the faulting page,
//!   so schemes that coalesce contiguous VPN→PFN runs can build ranged
//!   entries. Schemes that do not care (the default) ignore it, and the
//!   kernel only computes it when
//!   [`wants_contiguity`](TranslationScheme::wants_contiguity) says so —
//!   the default path pays nothing.
//! * [`TranslationScheme::generation`] is a host-side counter bumped on
//!   every content change (fill, locked insert, purge). The machine's
//!   access-memo and fast-forward layers record it when they prove a
//!   fast path sound and assert it unchanged when replaying, making the
//!   "TLB unchanged since the memo was minted" invariant checkable per
//!   scheme rather than implied by the kernel-entry protocol alone.
//!
//! # Invalidation contract
//!
//! Slot numbers returned by [`slot_for`](TranslationScheme::slot_for)
//! and [`last_hit_slot`](TranslationScheme::last_hit_slot) are only
//! meaningful while [`generation`](TranslationScheme::generation) is
//! unchanged; any fill or purge may reuse them. Callers replaying hits
//! via [`note_fast_hits`](TranslationScheme::note_fast_hits) must have
//! proven (hit on that slot, generation unchanged) that each replayed
//! access would hit the same entry with permitted protection.

use core::any::Any;
use core::fmt;

use mtlb_types::{AccessKind, Ppn, PrivilegeLevel, VirtAddr, Vpn};

use crate::{CpuTlb, LookupOutcome, TlbEntry, TlbStats};

/// Mapping-contiguity metadata handed to [`TranslationScheme::fill`].
///
/// Describes a run of `pages` base pages, starting at virtual page
/// `base`, whose backing frames are physically contiguous starting at
/// `pfn` with uniform protection. The run always contains the filled
/// entry. The kernel derives it from the page-table neighbourhood it
/// already walked, so producing it costs no simulated cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContigInfo {
    /// First virtual page of the known-contiguous run.
    pub base: Vpn,
    /// Physical frame backing `base`.
    pub pfn: Ppn,
    /// Length of the run in base pages (at least 1).
    pub pages: u64,
}

impl ContigInfo {
    /// The trivial run: exactly the pages the entry itself maps.
    #[must_use]
    pub fn for_entry(entry: &TlbEntry) -> Self {
        ContigInfo {
            base: entry.vpn_base(),
            pfn: entry.pfn_base(),
            pages: entry.size().base_pages(),
        }
    }
}

/// A complete CPU translation front end.
///
/// Implemented by [`CpuTlb`] (the paper's fully-associative NRU TLB,
/// the default — bit-identical to the pre-trait machine) and by the
/// rival designs in the `mtlb-schemes` crate. See the module
/// documentation for the invalidation contract; see `DESIGN.md` §11
/// for how to add a scheme.
pub trait TranslationScheme: fmt::Debug + Send {
    /// Short stable identifier (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Looks up `va` for an access of `kind` at privilege `level`,
    /// updating hit/miss statistics and replacement state.
    fn translate(&mut self, va: VirtAddr, kind: AccessKind, level: PrivilegeLevel)
        -> LookupOutcome;

    /// The entry that covers `vpn`, if any, without perturbing
    /// statistics or replacement state (for assertions and debugging).
    ///
    /// Schemes with ranged or compressed storage synthesize an
    /// equivalent [`TlbEntry`] view of the covering mapping.
    fn entry_for(&self, vpn: Vpn) -> Option<TlbEntry>;

    /// Like [`entry_for`](Self::entry_for), but also returns the slot
    /// token of the covering entry, for use with
    /// [`note_fast_hits`](Self::note_fast_hits).
    fn slot_for(&self, vpn: Vpn) -> Option<(usize, TlbEntry)>;

    /// Slot token of the entry that produced the most recent
    /// [`LookupOutcome::Hit`].
    fn last_hit_slot(&self) -> usize;

    /// Replays `n` consecutive translate hits against the entry in
    /// `slot` without re-running the lookup. Side effects must equal
    /// those of `n` successful [`translate`](Self::translate) calls
    /// (use/recency state and the hit counter); the generation counter
    /// must NOT change.
    fn note_fast_hits(&mut self, slot: usize, n: u64);

    /// Whether [`fill`](Self::fill) wants real [`ContigInfo`]. When
    /// `false` (the default) the kernel skips the contiguity scan and
    /// passes [`ContigInfo::for_entry`].
    fn wants_contiguity(&self) -> bool {
        false
    }

    /// Installs the miss-handler refill `entry`, evicting as needed.
    /// `contig` describes the known-contiguous mapping run around the
    /// entry (see [`ContigInfo`]); schemes without ranged storage
    /// ignore it. Counts exactly one fill.
    fn fill(&mut self, entry: TlbEntry, contig: &ContigInfo);

    /// Installs a *locked* block entry (kernel mappings) that is never
    /// replaced and survives [`purge_all`](Self::purge_all).
    fn insert_locked(&mut self, entry: TlbEntry);

    /// Purges every unlocked entry overlapping `[vpn, vpn + pages)`
    /// (TLB shootdown). Returns the number of entries removed.
    fn purge_range(&mut self, vpn: Vpn, pages: u64) -> usize;

    /// Purges every unlocked entry (process switch). Locked block
    /// entries survive. Returns the number of entries removed.
    fn purge_all(&mut self) -> usize;

    /// Accumulated hit/miss/replacement counters.
    fn stats(&self) -> TlbStats;

    /// Resets the counters (not the contents).
    fn reset_stats(&mut self);

    /// Number of entries the scheme can hold.
    fn capacity(&self) -> usize;

    /// Number of currently valid entries (including locked ones).
    fn occupancy(&self) -> usize;

    /// Total bytes of virtual address space the resident entries can
    /// translate — the scheme's current *reach*.
    fn reach_bytes(&self) -> u64;

    /// Host-side content generation: bumped on every fill, locked
    /// insert, and purge. See the module docs for the contract with
    /// the machine's memo/fast-forward layers.
    fn generation(&self) -> u64;

    /// Dynamic view for scheme-specific statistics (the machine's
    /// audit downcasts to reconcile per-scheme counters).
    fn as_any(&self) -> &dyn Any;
}

impl TranslationScheme for CpuTlb {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn translate(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        level: PrivilegeLevel,
    ) -> LookupOutcome {
        CpuTlb::translate(self, va, kind, level)
    }

    fn entry_for(&self, vpn: Vpn) -> Option<TlbEntry> {
        self.probe(vpn).copied()
    }

    fn slot_for(&self, vpn: Vpn) -> Option<(usize, TlbEntry)> {
        self.probe_slot(vpn).map(|(slot, entry)| (slot, *entry))
    }

    fn last_hit_slot(&self) -> usize {
        CpuTlb::last_hit_slot(self)
    }

    fn note_fast_hits(&mut self, slot: usize, n: u64) {
        CpuTlb::note_fast_hits(self, slot, n);
    }

    fn fill(&mut self, entry: TlbEntry, _contig: &ContigInfo) {
        self.insert(entry);
    }

    fn insert_locked(&mut self, entry: TlbEntry) {
        CpuTlb::insert_locked(self, entry);
    }

    fn purge_range(&mut self, vpn: Vpn, pages: u64) -> usize {
        CpuTlb::purge_range(self, vpn, pages)
    }

    fn purge_all(&mut self) -> usize {
        CpuTlb::purge_all(self)
    }

    fn stats(&self) -> TlbStats {
        CpuTlb::stats(self)
    }

    fn reset_stats(&mut self) {
        CpuTlb::reset_stats(self);
    }

    fn capacity(&self) -> usize {
        CpuTlb::capacity(self)
    }

    fn occupancy(&self) -> usize {
        CpuTlb::occupancy(self)
    }

    fn reach_bytes(&self) -> u64 {
        self.iter().map(|e| e.size().bytes()).sum()
    }

    fn generation(&self) -> u64 {
        CpuTlb::generation(self)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtlb_types::{PageSize, PhysAddr, Prot};

    fn entry(vpn: u64, ppn: u64) -> TlbEntry {
        TlbEntry::new(Vpn::new(vpn), Ppn::new(ppn), PageSize::Base4K, Prot::RW)
            .expect("base pages are always aligned")
    }

    #[test]
    fn contig_info_for_entry_covers_exactly_the_entry() {
        let e =
            TlbEntry::new(Vpn::new(4), Ppn::new(8), PageSize::Size16K, Prot::RW).expect("aligned");
        let c = ContigInfo::for_entry(&e);
        assert_eq!(c.base, Vpn::new(4));
        assert_eq!(c.pfn, Ppn::new(8));
        assert_eq!(c.pages, 4);
    }

    #[test]
    fn cpu_tlb_behind_the_trait_matches_direct_use() {
        let mut direct = CpuTlb::new(4);
        let mut boxed: Box<dyn TranslationScheme> = Box::new(CpuTlb::new(4));
        for (vpn, ppn) in [(1u64, 0x10u64), (2, 0x11), (3, 0x12)] {
            let e = entry(vpn, ppn);
            direct.insert(e);
            boxed.fill(e, &ContigInfo::for_entry(&e));
        }
        for va in [0x1080u64, 0x2040, 0x3000, 0x9000] {
            let a = direct.translate(VirtAddr::new(va), AccessKind::Read, PrivilegeLevel::User);
            let b = boxed.translate(VirtAddr::new(va), AccessKind::Read, PrivilegeLevel::User);
            assert_eq!(a, b);
        }
        assert_eq!(direct.stats(), boxed.stats());
        assert_eq!(boxed.name(), "cpu");
        assert_eq!(boxed.capacity(), 4);
        assert_eq!(boxed.occupancy(), 3);
        assert_eq!(boxed.reach_bytes(), 3 * 4096);
        assert!(!boxed.wants_contiguity());
    }

    #[test]
    fn generation_bumps_on_content_changes_only() {
        let mut tlb: Box<dyn TranslationScheme> = Box::new(CpuTlb::new(4));
        let g0 = tlb.generation();
        let e = entry(1, 0x10);
        tlb.fill(e, &ContigInfo::for_entry(&e));
        let g1 = tlb.generation();
        assert_ne!(g0, g1, "fill must bump the generation");
        // Lookups and fast-hit replays must not.
        let _ = tlb.translate(
            VirtAddr::new(0x1000),
            AccessKind::Read,
            PrivilegeLevel::User,
        );
        let slot = tlb.last_hit_slot();
        tlb.note_fast_hits(slot, 3);
        assert_eq!(tlb.generation(), g1);
        // Purges must.
        tlb.purge_all();
        assert_ne!(tlb.generation(), g1);
    }

    #[test]
    fn slot_for_and_entry_for_agree() {
        let mut tlb = CpuTlb::new(4);
        tlb.insert(entry(5, 0x20));
        let scheme: &dyn TranslationScheme = &tlb;
        let (slot, e) = scheme.slot_for(Vpn::new(5)).expect("present");
        assert_eq!(scheme.entry_for(Vpn::new(5)), Some(e));
        assert_eq!(
            e.translate(VirtAddr::new(0x5040)),
            Some(PhysAddr::new(0x20040))
        );
        assert!(scheme.entry_for(Vpn::new(6)).is_none());
        assert!(scheme.slot_for(Vpn::new(6)).is_none());
        let _ = slot;
    }
}
