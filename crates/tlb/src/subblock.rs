//! The complete-subblock TLB of Talluri & Hill (ASPLOS 1994) — the
//! related-work alternative the paper compares its design against (§5).
//!
//! Each entry covers a 64 KB-aligned region (16 base pages) with an
//! **independent page frame number and valid bit per subblock**, so, like
//! shadow superpages, it maps discontiguous frames — but the per-subblock
//! frame storage lives *in the processor TLB*, which is what "will
//! severely limit the maximum superpage size for an on-processor TLB"
//! (§5). The paper's design moves those mappings to the memory
//! controller instead.
//!
//! This model is used trace-style (translate / fill / miss counting) by
//! the comparison experiment; it shares the NRU discipline of
//! [`CpuTlb`](crate::CpuTlb).

use mtlb_types::{PhysAddr, Ppn, VirtAddr, Vpn, PAGE_SHIFT};

/// Base pages per subblock entry (Talluri & Hill's complete-subblock
/// design used 64 KB blocks of 4 KB pages).
pub const SUBBLOCK_FACTOR: u64 = 16;

/// Result of a subblock TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubblockOutcome {
    /// Entry present, subblock valid.
    Hit(PhysAddr),
    /// Entry present but this subblock's mapping is absent: the handler
    /// loads one PTE and fills just the subblock (cheaper than a full
    /// miss — no entry allocation).
    SubblockMiss,
    /// No entry covers the region: full miss (allocate + fill one
    /// subblock).
    EntryMiss,
}

#[derive(Clone, Debug)]
struct Entry {
    /// First vpn of the 64 KB-aligned region.
    region_base: u64,
    /// Per-subblock frames (valid where `Some`), each independent — the
    /// "complete" in complete-subblock.
    frames: [Option<Ppn>; SUBBLOCK_FACTOR as usize],
    used: bool,
}

/// Counters for the subblock TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubblockStats {
    /// Valid-subblock hits.
    pub hits: u64,
    /// Entry present, subblock invalid.
    pub subblock_misses: u64,
    /// No covering entry.
    pub entry_misses: u64,
    /// NRU replacements.
    pub replacements: u64,
}

impl SubblockStats {
    /// All misses (either kind).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.subblock_misses + self.entry_misses
    }

    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses()
    }
}

/// A fully-associative complete-subblock TLB with NRU replacement.
#[derive(Debug, Clone)]
pub struct SubblockTlb {
    capacity: usize,
    entries: Vec<Option<Entry>>,
    hand: usize,
    stats: SubblockStats,
}

impl SubblockTlb {
    /// Creates an empty TLB with `capacity` region entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB must have at least one entry");
        SubblockTlb {
            capacity,
            entries: vec![None; capacity],
            hand: 0,
            stats: SubblockStats::default(),
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> SubblockStats {
        self.stats
    }

    /// Reach in bytes when every subblock of every entry is valid.
    #[must_use]
    pub fn max_reach_bytes(&self) -> u64 {
        (self.capacity as u64 * SUBBLOCK_FACTOR) << PAGE_SHIFT
    }

    fn region_of(vpn: Vpn) -> (u64, usize) {
        // Subblock-slot arithmetic on the raw page index, not an address
        // computation: the region base and slot are CAM-tag bookkeeping.
        let index = vpn.index();
        (
            index / SUBBLOCK_FACTOR * SUBBLOCK_FACTOR,
            (index % SUBBLOCK_FACTOR) as usize,
        )
    }

    /// Looks up `va`, updating statistics and NRU state.
    pub fn translate(&mut self, va: VirtAddr) -> SubblockOutcome {
        let (region, sub) = Self::region_of(va.vpn());
        for entry in self.entries.iter_mut().flatten() {
            if entry.region_base == region {
                entry.used = true;
                return match entry.frames[sub] {
                    Some(pfn) => {
                        self.stats.hits = self.stats.hits.saturating_add(1);
                        SubblockOutcome::Hit(pfn.base_addr() + va.page_offset())
                    }
                    None => {
                        self.stats.subblock_misses = self.stats.subblock_misses.saturating_add(1);
                        SubblockOutcome::SubblockMiss
                    }
                };
            }
        }
        self.stats.entry_misses = self.stats.entry_misses.saturating_add(1);
        SubblockOutcome::EntryMiss
    }

    /// Installs the mapping `vpn → pfn`, filling the subblock of an
    /// existing region entry or allocating a new entry (NRU victim) for
    /// it. Frames of sibling pages stay independent — this is what lets
    /// the design map discontiguous memory.
    pub fn fill(&mut self, vpn: Vpn, pfn: Ppn) {
        let (region, sub) = Self::region_of(vpn);
        if let Some(entry) = self
            .entries
            .iter_mut()
            .flatten()
            .find(|e| e.region_base == region)
        {
            entry.frames[sub] = Some(pfn);
            entry.used = true;
            return;
        }
        let mut entry = Entry {
            region_base: region,
            frames: [None; SUBBLOCK_FACTOR as usize],
            used: true,
        };
        entry.frames[sub] = Some(pfn);
        if let Some(slot) = self.entries.iter_mut().find(|e| e.is_none()) {
            *slot = Some(entry);
            return;
        }
        // NRU victim with a rotating hand, as in the conventional TLB.
        let victim = 'found: {
            for round in 0..2 {
                for i in 0..self.capacity {
                    let idx = (self.hand + i) % self.capacity;
                    if let Some(e) = &self.entries[idx] {
                        if !e.used {
                            break 'found idx;
                        }
                    }
                }
                if round == 0 {
                    for e in self.entries.iter_mut().flatten() {
                        e.used = false;
                    }
                }
            }
            unreachable!("after an NRU reset some entry is unused");
        };
        self.stats.replacements = self.stats.replacements.saturating_add(1);
        self.entries[victim] = Some(entry);
        self.hand = (victim + 1) % self.capacity;
    }

    /// Removes all entries (process switch).
    pub fn purge_all(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(page: u64) -> VirtAddr {
        VirtAddr::new(page << PAGE_SHIFT)
    }

    #[test]
    fn one_entry_maps_sixteen_discontiguous_frames() {
        let mut t = SubblockTlb::new(4);
        // Scattered frames for pages 0..16 — contiguity-free like shadow
        // superpages.
        for p in 0..16u64 {
            assert_ne!(t.translate(va(p)), SubblockOutcome::Hit(PhysAddr::new(0)));
            t.fill(Vpn::new(p), Ppn::new(1000 + p * 37));
        }
        for p in 0..16u64 {
            assert_eq!(
                t.translate(va(p)),
                SubblockOutcome::Hit(PhysAddr::new((1000 + p * 37) << PAGE_SHIFT))
            );
        }
        // One entry consumed, not sixteen.
        assert_eq!(t.stats().entry_misses, 1);
        assert_eq!(t.stats().subblock_misses, 15);
    }

    #[test]
    fn subblock_miss_vs_entry_miss_distinction() {
        let mut t = SubblockTlb::new(4);
        t.fill(Vpn::new(0), Ppn::new(5));
        assert_eq!(t.translate(va(1)), SubblockOutcome::SubblockMiss);
        assert_eq!(t.translate(va(16)), SubblockOutcome::EntryMiss);
    }

    #[test]
    fn replacement_evicts_whole_region() {
        let mut t = SubblockTlb::new(2);
        t.fill(Vpn::new(0), Ppn::new(1));
        t.fill(Vpn::new(16), Ppn::new(2));
        t.fill(Vpn::new(32), Ppn::new(3)); // evicts one region wholesale
        let present = [0u64, 16, 32]
            .iter()
            .filter(|p| matches!(t.translate(va(**p)), SubblockOutcome::Hit(_)))
            .count();
        assert_eq!(present, 2);
        assert_eq!(t.stats().replacements, 1);
    }

    #[test]
    fn reach_is_sixteen_times_a_conventional_tlb() {
        let t = SubblockTlb::new(64);
        assert_eq!(t.max_reach_bytes(), 64 * 64 * 1024);
    }

    #[test]
    fn purge_empties() {
        let mut t = SubblockTlb::new(2);
        t.fill(Vpn::new(0), Ppn::new(1));
        t.purge_all();
        assert_eq!(t.translate(va(0)), SubblockOutcome::EntryMiss);
    }
}
