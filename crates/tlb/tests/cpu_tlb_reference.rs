//! Property test pinning the indexed [`CpuTlb`] to a reference
//! linear-scan implementation of the same NRU policy.
//!
//! The production TLB accelerates lookups with a hash index over
//! `(size class, aligned base)` plus an MRU fast path; this test replays
//! random operation streams — inserts of base pages and superpages,
//! locked block entries, translates at mixed access kinds and privilege
//! levels, range and full purges — against both implementations and
//! demands identical outcomes, statistics, occupancy, entry order, and
//! NRU victim choice after every single step.

use mtlb_tlb::{CpuTlb, LookupOutcome, TlbEntry};
use mtlb_types::{AccessKind, Fault, PageSize, PrivilegeLevel, Prot, VirtAddr, Vpn};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Reference model: the original pre-index algorithm, linear scans only.
// ---------------------------------------------------------------------

struct RefSlot {
    entry: TlbEntry,
    used: bool,
    locked: bool,
}

#[derive(Default, Clone, Copy, PartialEq, Eq, Debug)]
struct RefStats {
    hits: u64,
    misses: u64,
    replacements: u64,
    purges: u64,
    nru_resets: u64,
}

struct RefTlb {
    capacity: usize,
    slots: Vec<Option<RefSlot>>,
    hand: usize,
    mru: usize,
    stats: RefStats,
}

impl RefTlb {
    fn new(capacity: usize) -> Self {
        RefTlb {
            capacity,
            slots: (0..capacity).map(|_| None).collect(),
            hand: 0,
            mru: 0,
            stats: RefStats::default(),
        }
    }

    fn translate(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        level: PrivilegeLevel,
    ) -> LookupOutcome {
        let vpn = va.vpn();
        // Same MRU fast path as the production TLB.
        if let Some(slot) = self.slots.get_mut(self.mru).and_then(|s| s.as_mut()) {
            if slot.entry.covers(vpn) {
                if !slot.entry.prot().permits(kind, level) {
                    self.stats.hits += 1;
                    return LookupOutcome::Fault(Fault::Protection { va, kind });
                }
                slot.used = true;
                self.stats.hits += 1;
                return LookupOutcome::Hit(slot.entry.translate(va).expect("entry covers va"));
            }
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let Some(slot) = slot else { continue };
            if slot.entry.covers(vpn) {
                if !slot.entry.prot().permits(kind, level) {
                    self.stats.hits += 1;
                    return LookupOutcome::Fault(Fault::Protection { va, kind });
                }
                slot.used = true;
                self.mru = i;
                self.stats.hits += 1;
                return LookupOutcome::Hit(slot.entry.translate(va).expect("entry covers va"));
            }
        }
        self.stats.misses += 1;
        LookupOutcome::Miss
    }

    fn probe(&self, vpn: Vpn) -> Option<&TlbEntry> {
        self.slots
            .iter()
            .flatten()
            .find(|s| s.entry.covers(vpn))
            .map(|s| &s.entry)
    }

    fn insert(&mut self, entry: TlbEntry, locked: bool) {
        for slot in &mut self.slots {
            if let Some(s) = slot {
                if !s.locked
                    && s.entry
                        .overlaps(entry.vpn_base(), entry.size().base_pages())
                {
                    *slot = None;
                }
            }
        }
        let new = RefSlot {
            entry,
            used: true,
            locked,
        };
        if let Some(slot) = self.slots.iter_mut().find(|s| s.is_none()) {
            *slot = Some(new);
            return;
        }
        let victim = self.pick_victim();
        self.stats.replacements += 1;
        self.slots[victim] = Some(new);
        self.hand = (victim + 1) % self.capacity;
    }

    fn pick_victim(&mut self) -> usize {
        for round in 0..2 {
            for i in 0..self.capacity {
                let idx = (self.hand + i) % self.capacity;
                if let Some(s) = &self.slots[idx] {
                    if !s.locked && !s.used {
                        return idx;
                    }
                }
            }
            if round == 0 {
                self.stats.nru_resets += 1;
                for s in self.slots.iter_mut().flatten() {
                    if !s.locked {
                        s.used = false;
                    }
                }
            }
        }
        panic!("reference TLB has no unlocked entry to replace");
    }

    fn purge_range(&mut self, vpn: Vpn, pages: u64) -> usize {
        let mut removed = 0;
        for slot in &mut self.slots {
            if let Some(s) = slot {
                if !s.locked && s.entry.overlaps(vpn, pages) {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        self.stats.purges += removed as u64;
        removed
    }

    fn purge_all(&mut self) -> usize {
        let mut removed = 0;
        for slot in &mut self.slots {
            if let Some(s) = slot {
                if !s.locked {
                    *slot = None;
                    removed += 1;
                }
            }
        }
        self.stats.purges += removed as u64;
        removed
    }
}

// ---------------------------------------------------------------------
// Operation stream
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Op {
    Translate {
        va: u64,
        kind: u8,
        level: u8,
    },
    Insert {
        vpn: u64,
        ppn: u64,
        size: u8,
        prot: u8,
        locked: bool,
    },
    PurgeRange {
        vpn: u64,
        pages: u64,
    },
    PurgeAll,
}

/// Virtual page space kept tiny so inserts collide and overlap often.
const VPN_SPACE: u64 = 512;

fn kind_of(k: u8) -> AccessKind {
    match k % 3 {
        0 => AccessKind::Read,
        1 => AccessKind::Write,
        _ => AccessKind::IFetch,
    }
}

fn prot_of(p: u8) -> Prot {
    match p % 4 {
        0 => Prot::RW,
        1 => Prot::READ,
        2 => Prot::RX,
        _ => Prot::RW | Prot::SUPERVISOR_ONLY,
    }
}

fn entry_of(vpn: u64, ppn: u64, size: u8, prot: u8) -> TlbEntry {
    let size = PageSize::ALL[(size as usize) % PageSize::ALL.len()];
    let mask = !(size.base_pages() - 1);
    TlbEntry::new(
        Vpn::new((vpn % VPN_SPACE) & mask),
        mtlb_types::Ppn::new((ppn % (1 << 20)) & mask),
        size,
        prot_of(prot),
    )
    .expect("both bases are size-aligned")
}

fn check_equal(tlb: &CpuTlb, model: &RefTlb) {
    let stats = tlb.stats();
    let model_stats = RefStats {
        hits: stats.hits,
        misses: stats.misses,
        replacements: stats.replacements,
        purges: stats.purges,
        nru_resets: stats.nru_resets,
    };
    assert_eq!(model.stats, model_stats, "statistics diverged");
    assert_eq!(
        tlb.occupancy(),
        model.slots.iter().flatten().count(),
        "occupancy diverged"
    );
    // Entry-level equality in slot order (victim choice shows up here).
    let real: Vec<&TlbEntry> = tlb.iter().collect();
    let want: Vec<&TlbEntry> = model.slots.iter().flatten().map(|s| &s.entry).collect();
    assert_eq!(real, want, "entries or their slot order diverged");
    // Probe parity over the whole (small) VPN space.
    for vpn in 0..VPN_SPACE {
        assert_eq!(
            tlb.probe(Vpn::new(vpn)),
            model.probe(Vpn::new(vpn)),
            "probe({vpn}) diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_tlb_matches_linear_scan_reference(
        capacity in 1usize..24,
        ops in proptest::collection::vec(prop_oneof![
            6 => (proptest::arbitrary::any::<u64>(), proptest::arbitrary::any::<u8>(), proptest::arbitrary::any::<u8>())
                .prop_map(|(va, kind, level)| Op::Translate { va, kind, level }),
            4 => (proptest::arbitrary::any::<u64>(), proptest::arbitrary::any::<u64>(), proptest::arbitrary::any::<u8>(), proptest::arbitrary::any::<u8>())
                .prop_map(|(vpn, ppn, size_prot, locked)| Op::Insert {
                    vpn,
                    ppn,
                    size: size_prot & 0x0f,
                    prot: size_prot >> 4,
                    locked: locked % 8 == 0,
                }),
            1 => (proptest::arbitrary::any::<u64>(), 1u64..64)
                .prop_map(|(vpn, pages)| Op::PurgeRange { vpn, pages }),
            1 => proptest::strategy::Just(PurgeAllMarker).prop_map(|_| Op::PurgeAll),
        ], 1..200),
    ) {
        let mut tlb = CpuTlb::new(capacity);
        let mut model = RefTlb::new(capacity);
        let mut locked_count = 0usize;
        for op in ops {
            match op {
                Op::Translate { va, kind, level } => {
                    // Keep addresses inside the modelled VPN space.
                    let va = VirtAddr::new((va % (VPN_SPACE * 4096)) & !0x3);
                    let kind = kind_of(kind);
                    let level = if level % 4 == 0 {
                        PrivilegeLevel::Supervisor
                    } else {
                        PrivilegeLevel::User
                    };
                    prop_assert_eq!(
                        tlb.translate(va, kind, level),
                        model.translate(va, kind, level)
                    );
                }
                Op::Insert { vpn, ppn, size, prot, locked } => {
                    // Never let locked entries fill the TLB: a replaceable
                    // insert into an all-locked TLB panics (identically in
                    // both implementations, but it would abort the case).
                    let locked = locked && locked_count + 1 < capacity;
                    let entry = entry_of(vpn, ppn, size, prot);
                    if locked {
                        // Locked entries overlapping an existing locked one
                        // would grow past capacity; the production TLB
                        // allows it, so mirror the count conservatively.
                        locked_count += 1;
                        tlb.insert_locked(entry);
                        model.insert(entry, true);
                    } else {
                        tlb.insert(entry);
                        model.insert(entry, false);
                    }
                }
                Op::PurgeRange { vpn, pages } => {
                    let vpn = Vpn::new(vpn % VPN_SPACE);
                    prop_assert_eq!(tlb.purge_range(vpn, pages), model.purge_range(vpn, pages));
                }
                Op::PurgeAll => {
                    prop_assert_eq!(tlb.purge_all(), model.purge_all());
                }
            }
            check_equal(&tlb, &model);
        }
    }
}

/// Unit marker for the `PurgeAll` branch of the op strategy.
#[derive(Clone, Copy, Debug)]
struct PurgeAllMarker;
