//! Batched SoA decoding and the replay-first execution engine.
//!
//! [`TraceReader::next_batch`] decodes ops into an [`OpBatch`] — flat
//! structure-of-arrays buffers (kinds / VAs / args / instruction
//! counts) — amortizing per-op decode dispatch and giving the replay
//! engine random access to a decoded-ahead window of the stream.
//!
//! [`replay_batched`] consumes those batches through two stacked
//! steady-state engines. At each cursor position a periodicity probe
//! looks for a repeating op window with per-op constant address
//! strides (loop bodies decode to exactly that, because VAs are
//! delta-encoded) and asks
//! [`Machine::loop_fast_forward`](mtlb_sim::Machine::loop_fast_forward)
//! to validate and bulk-commit the *already decoded* repetitions.
//! Where no period exists — pointer chases, short-lived loops,
//! data-dependent strides — the weaker-precondition
//! [`Machine::replay_scalar_span`](mtlb_sim::Machine::replay_scalar_span)
//! coalesces any run of individually pure-hit scalar ops without
//! needing a pattern at all. Both halves prove every skipped access
//! would take the page-resident pure-hit path — memo generation
//! unchanged, every line residency-bitmap-resident, every execute
//! inside its micro-ITLB window — before any aggregate counter lands,
//! so replayed cycles stay bit-identical to the per-op engine.
//! Nothing is ever predicted: only ops that were decoded and
//! validated are skipped, and a validation failure simply falls back
//! to per-op replay.

use mtlb_sim::{Machine, MachineOp};
use mtlb_types::{Prot, VirtAddr, Vpn, PAGE_SIZE};

use crate::{apply_op, TraceError, TraceHeader, TraceReader};

/// Ops decoded per [`TraceReader::next_batch`] call in
/// [`replay_batched`]. Also the horizon of the periodicity detector:
/// loops are only fast-forwarded within one decoded batch.
pub(crate) const BATCH_OPS: usize = 4096;

/// Longest loop-body window (in ops) the periodicity probe will
/// match.
const MAX_PERIOD: usize = 64;

/// Fewest decoded repetitions worth handing to the machine. Short
/// quasi-periodic runs (2–10 repetitions, the bulk of real traces)
/// are already covered by the span coalescer at almost the same
/// per-op cost, so the probe only earns its overhead — window
/// reconstruction plus the machine's validation passes — on runs
/// meaningfully longer than that.
const MIN_REPS: u64 = 8;

/// After an aperiodic probe, how many ops the cursor must advance
/// before probing again — bounds probe cost in pattern-free regions
/// to a fraction of an op's replay cost.
const PROBE_BACKOFF: usize = 64;

/// Most ops one probe will spend *counting* repetitions. The machine
/// often commits fewer repetitions than are decoded (page bounds,
/// residency prefixes), and a successful commit re-probes at the new
/// cursor anyway — so counting far past the cap only makes long
/// stable runs quadratic to re-count after each partial commit.
const PROBE_COUNT_CAP: usize = 1024;

/// A decoded run of ops in structure-of-arrays form: one parallel
/// entry per op across the three dense buffers, with fields an op
/// does not use left zero. The secondary fields only block/stream and
/// kernel ops carry (`b` addresses, instruction counts, protection
/// bits) live in a sparse side table — scalar ops, the bulk of every
/// real stream, cost 17 bytes instead of 33. Reusable across
/// [`TraceReader::next_batch`] calls — buffers are cleared, not
/// reallocated.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct OpBatch {
    /// Wire tag of each op (the MTR1 tag byte).
    kinds: Vec<u8>,
    /// Primary virtual address (va / base / start / `a`), raw bits.
    vas: Vec<u64>,
    /// Primary scalar argument (n / size / len / count / vpn / pid /
    /// increment).
    args: Vec<u64>,
    /// Sparse `(op index, vb, instr)` rows for ops with a nonzero
    /// secondary address (`b` of the pair-stream ops) or secondary
    /// scalar (instr / prot bits / color / remap-text flag), in op
    /// order. Absence reads as `(0, 0)`.
    extras: Vec<(u32, u64, u64)>,
}

impl OpBatch {
    /// Number of decoded ops held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the batch holds no ops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Drops all held ops, keeping the buffers' capacity.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.vas.clear();
        self.args.clear();
        self.extras.clear();
    }

    /// Pre-sizes the dense buffers for `n` ops, so batches built once
    /// and kept (see [`decode_trace`]) allocate exactly once.
    fn reserve(&mut self, n: usize) {
        self.kinds.reserve_exact(n);
        self.vas.reserve_exact(n);
        self.args.reserve_exact(n);
    }

    /// Wire tag of each decoded op, parallel to the other buffers.
    #[must_use]
    pub fn kinds(&self) -> &[u8] {
        &self.kinds
    }

    /// Primary virtual address (raw bits) of each decoded op; zero for
    /// ops without one.
    #[must_use]
    pub fn vas(&self) -> &[u64] {
        &self.vas
    }

    /// Primary scalar argument (n / size / len / count / vpn / pid) of
    /// each decoded op; zero for ops without one.
    #[must_use]
    pub fn args(&self) -> &[u64] {
        &self.args
    }

    pub(crate) fn push_raw(&mut self, kind: u8, va: u64, vb: u64, arg: u64, instr: u64) {
        if vb != 0 || instr != 0 {
            let i = u32::try_from(self.kinds.len()).unwrap_or(u32::MAX);
            self.extras.push((i, vb, instr));
        }
        self.kinds.push(kind);
        self.vas.push(va);
        self.args.push(arg);
    }

    /// The sparse `(vb, instr)` pair of op `i` — `(0, 0)` when the op
    /// carries neither.
    fn extra(&self, i: usize) -> (u64, u64) {
        let key = i as u32;
        match self.extras.binary_search_by_key(&key, |&(at, _, _)| at) {
            Ok(hit) => {
                let (_, vb, instr) = self.extras[hit];
                (vb, instr)
            }
            Err(_) => (0, 0),
        }
    }

    /// Reconstructs op `i` as a [`MachineOp`], exactly as the scalar
    /// [`TraceReader::next_op`] would have decoded it (same size
    /// truncation, same protection-bit and flag normalization) — the
    /// property pinned by the batch-vs-scalar equivalence proptest.
    #[must_use]
    pub fn op(&self, i: usize) -> MachineOp {
        let va = VirtAddr::new(self.vas[i]);
        let arg = self.args[i];
        let (vb, instr) = self.extra(i);
        match self.kinds[i] {
            0 => MachineOp::Execute { n: arg },
            1 => MachineOp::Read {
                va,
                size: arg as u8,
            },
            2 => MachineOp::Write {
                va,
                size: arg as u8,
            },
            3 => MachineOp::ReadBlock {
                va,
                len: arg,
                instr,
            },
            4 => MachineOp::WriteBlock {
                va,
                len: arg,
                instr,
            },
            5 => MachineOp::StreamReadU32 {
                base: va,
                count: arg,
                instr,
            },
            6 => MachineOp::StreamWriteU32 {
                base: va,
                count: arg,
                instr,
            },
            7 => MachineOp::StreamWritePairU32 {
                a: va,
                b: VirtAddr::new(vb),
                count: arg,
                instr,
            },
            8 => MachineOp::StreamWriteU32F64 {
                a: va,
                b: VirtAddr::new(vb),
                count: arg,
                instr,
            },
            9 => MachineOp::MapRegion {
                start: va,
                len: arg,
                prot: Prot::from_bits_truncate(instr as u8),
            },
            10 => MachineOp::Remap {
                start: va,
                len: arg,
            },
            11 => MachineOp::Sbrk { increment: arg },
            12 => MachineOp::SwapOutSuperpage { vpn: Vpn::new(arg) },
            13 => MachineOp::DemoteSuperpage { vpn: Vpn::new(arg) },
            14 => MachineOp::PageBits { vpn: Vpn::new(arg) },
            15 => MachineOp::SpawnProcess,
            16 => MachineOp::SwitchProcess { pid: arg },
            17 => MachineOp::RecolorPage {
                vpn: Vpn::new(arg),
                color: instr,
            },
            18 => MachineOp::LoadProgram {
                len: arg,
                remap_text: instr != 0,
            },
            // `push_raw` only ever sees decoder-validated tags; the
            // fallback keeps `op` total without a reachable panic.
            _ => {
                debug_assert!(self.kinds[i] == 19, "unvalidated tag in batch");
                MachineOp::ResetStats
            }
        }
    }
}

impl TraceReader<'_> {
    /// Decodes up to `max` further ops into `batch` (cleared first),
    /// returning how many were decoded — `0` once the declared op
    /// count is exhausted. The batched twin of
    /// [`next_op`](TraceReader::next_op): one tag dispatch per op
    /// straight into flat buffers, no enum construction, and the same
    /// panic-free handling of corrupt input.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`], [`TraceError::UnknownTag`] or
    /// [`TraceError::TrailingBytes`] on a corrupt body.
    pub fn next_batch(&mut self, batch: &mut OpBatch, max: usize) -> Result<usize, TraceError> {
        batch.clear();
        batch.reserve(max.min(usize::try_from(self.remaining).unwrap_or(max)));
        while batch.len() < max {
            if self.remaining == 0 {
                if self.pos != self.buf.len() {
                    return Err(TraceError::TrailingBytes { at: self.pos });
                }
                break;
            }
            self.remaining -= 1;
            let tag_at = self.pos;
            let tag = *self
                .buf
                .get(self.pos)
                .ok_or(TraceError::Truncated { at: self.pos })?;
            self.pos += 1;
            let (mut va, mut vb, mut arg, mut instr) = (0u64, 0u64, 0u64, 0u64);
            match tag {
                0 | 11 | 12 | 13 | 14 | 16 => arg = self.uvar()?,
                1 | 2 | 10 => {
                    va = self.get_va()?.get();
                    arg = self.uvar()?;
                }
                3..=6 | 9 => {
                    va = self.get_va()?.get();
                    arg = self.uvar()?;
                    instr = self.uvar()?;
                }
                7 | 8 => {
                    va = self.get_va()?.get();
                    vb = self.get_va()?.get();
                    arg = self.uvar()?;
                    instr = self.uvar()?;
                }
                15 | 19 => {}
                17 => {
                    arg = self.uvar()?;
                    instr = self.uvar()?;
                }
                18 => {
                    arg = self.uvar()?;
                    instr = u64::from(
                        *self
                            .buf
                            .get(self.pos)
                            .ok_or(TraceError::Truncated { at: self.pos })?,
                    );
                    self.pos += 1;
                }
                tag => return Err(TraceError::UnknownTag { tag, at: tag_at }),
            }
            batch.push_raw(tag, va, vb, arg, instr);
        }
        Ok(batch.len())
    }
}

/// Reused window/shift buffers for handing detected loops to the
/// machine without per-attempt allocation.
#[derive(Default)]
struct Scratch {
    window: Vec<MachineOp>,
    shifts: Vec<i64>,
}

/// Applies decoded op `i` to the machine: scalar reads/writes and
/// execute batches dispatch straight off the SoA buffers (the hot
/// kinds in every recorded stream); everything else reconstructs the
/// [`MachineOp`] and goes through [`apply_op`].
fn apply_at(
    machine: &mut Machine,
    batch: &OpBatch,
    i: usize,
    op_index: u64,
) -> Result<(), TraceError> {
    let result = match batch.kinds[i] {
        0 => machine.try_execute(batch.args[i]),
        1 => {
            let va = VirtAddr::new(batch.vas[i]);
            match batch.args[i] as u8 {
                1 => machine.try_read_u8(va).map(drop),
                2 => machine.try_read_u16(va).map(drop),
                4 => machine.try_read_u32(va).map(drop),
                _ => machine.try_read_u64(va).map(drop),
            }
        }
        2 => {
            let va = VirtAddr::new(batch.vas[i]);
            match batch.args[i] as u8 {
                1 => machine.try_write_u8(va, 0),
                2 => machine.try_write_u16(va, 0),
                4 => machine.try_write_u32(va, 0),
                _ => machine.try_write_u64(va, 0),
            }
        }
        _ => return apply_op(machine, &batch.op(i), op_index),
    };
    result.map_err(|fault| TraceError::ReplayFault { op_index, fault })
}

/// Probes for a steady-state loop anchored at op `i`: the smallest
/// period `w ≤ MAX_PERIOD` such that the window `[i, i+w)` is pure
/// scalar/compute and the next `w` decoded ops repeat it — same
/// kinds, arguments and instruction counts, VAs advancing by a
/// per-position constant stride. Fills `scratch.shifts` with the
/// per-position strides and returns the period and the number of
/// fully-decoded repetitions after the base window.
/// Adjacent-repetition comparison makes each repetition check O(w)
/// and transitively pins repetition r to `va + r * shift`.
///
/// Only the *first* structurally matching period is counted: in
/// periodic streams every multiple of the base period also matches,
/// and walking them all makes the probe quadratic in `MAX_PERIOD` on
/// exactly the streams that probe most often. A first-match run too
/// short to use (below [`MIN_REPS`]) means the larger multiples share
/// the same short run — give up and let the caller back off.
fn find_period(batch: &OpBatch, i: usize, scratch: &mut Scratch) -> Option<(usize, u64)> {
    let n = batch.len();
    'candidates: for w in 1..=MAX_PERIOD {
        if i + 2 * w > n {
            return None;
        }
        scratch.shifts.clear();
        for j in 0..w {
            let (a, b) = (i + j, i + w + j);
            // A kernel/stream op inside the base window is inside it
            // for every larger candidate period too: no loop here.
            if batch.kinds[a] > 2 {
                return None;
            }
            // Scalar ops carry no secondary fields, so kinds and args
            // pin the whole op; only VAs can differ between windows.
            if batch.kinds[a] != batch.kinds[b] || batch.args[a] != batch.args[b] {
                continue 'candidates;
            }
            scratch.shifts.push(if batch.kinds[a] == 0 {
                0
            } else {
                batch.vas[b].wrapping_sub(batch.vas[a]) as i64
            });
        }
        // The machine clamps committed repetitions so every access
        // stays inside its memoized page; counting decoded matches
        // past that clamp is pure waste (and re-paid after every
        // partial commit on long runs), so derive the same bound from
        // the strides up front.
        let mut cap = (PROBE_COUNT_CAP / w).max(MIN_REPS as usize) as u64;
        for j in 0..w {
            let shift = scratch.shifts[j];
            if batch.kinds[i + j] == 0 || shift == 0 {
                continue;
            }
            let size = match batch.args[i + j] as u8 {
                s @ (1 | 2 | 4) => u64::from(s),
                _ => 8,
            };
            let off0 = batch.vas[i + j] & (PAGE_SIZE - 1);
            cap = cap.min(if shift > 0 {
                (PAGE_SIZE - size).saturating_sub(off0) / shift.unsigned_abs()
            } else {
                off0 / shift.unsigned_abs()
            });
        }
        if cap < MIN_REPS {
            return None;
        }
        let mut reps = 1u64;
        'count: while reps < cap {
            let prev = i + (reps as usize) * w;
            let next = prev + w;
            if next + w > n {
                break;
            }
            for j in 0..w {
                let (a, b) = (prev + j, next + j);
                if batch.kinds[a] != batch.kinds[b]
                    || batch.args[a] != batch.args[b]
                    || (batch.kinds[a] != 0
                        && batch.vas[b].wrapping_sub(batch.vas[a]) as i64 != scratch.shifts[j])
                {
                    break 'count;
                }
            }
            reps += 1;
        }
        return (reps >= MIN_REPS).then_some((w, reps));
    }
    None
}

/// Replays one decoded batch: loop fast-forward where the stream is
/// periodic, pure-hit span coalescing where it is merely steady, and
/// per-op replay everywhere else.
fn replay_batch(
    machine: &mut Machine,
    batch: &OpBatch,
    base_index: u64,
    scratch: &mut Scratch,
) -> Result<(), TraceError> {
    let n = batch.len();
    // On machines whose fast paths, cache geometry or attached
    // recorder cannot support the loop fast-forward, validation would
    // fail closed on every attempt — skip the probes outright. (The
    // span coalescer has its own internal gate.)
    let detect = machine.loop_ff_capable();
    // Probe throttle: the probe re-arms wherever the cursor next
    // stops (a span break, a per-op fallback), backed off after
    // aperiodic probes and escalated after machine rejections so a
    // stream the machine keeps refusing (cold pages, paging churn)
    // degrades to coalesced/per-op replay instead of rescanning the
    // same pattern quadratically.
    let mut probe_at = 0usize;
    let mut rejections = 0u32;
    let mut i = 0usize;
    while i < n {
        if detect && i >= probe_at && batch.kinds[i] <= 2 {
            if let Some((w, reps)) = find_period(batch, i, scratch) {
                // The machine fast-forwards *further* repetitions of
                // an already-run window: apply the base window per-op
                // (also establishing its memos), then bulk-commit the
                // decoded repetitions after it.
                for j in i..i + w {
                    apply_at(machine, batch, j, base_index + j as u64)?;
                }
                scratch.window.clear();
                scratch.window.extend((i..i + w).map(|j| batch.op(j)));
                let k = machine.loop_fast_forward(&scratch.window, &scratch.shifts, reps);
                // The machine committed exactly the decoded ops of `k`
                // repetitions; skip them (op_index advance included).
                i += w + (k as usize) * w;
                if k == 0 {
                    rejections = (rejections + 1).min(8);
                    probe_at = i + ((w * MIN_REPS as usize) << rejections);
                } else {
                    rejections = 0;
                }
                continue;
            }
            probe_at = i + PROBE_BACKOFF;
        }
        // The span consumes scalar ops up to the next probe point (or
        // the batch end), handling slow-path ops inline; it returns
        // early only on a kernel/stream op or a fault.
        let stop = if detect { probe_at.clamp(i + 1, n) } else { n };
        let (consumed, fault) = machine.replay_scalar_span(
            &batch.kinds[i..stop],
            &batch.vas[i..stop],
            &batch.args[i..stop],
        );
        i += consumed;
        if let Some(fault) = fault {
            return Err(TraceError::ReplayFault {
                op_index: base_index + i as u64,
                fault,
            });
        }
        if consumed > 0 {
            continue;
        }
        apply_at(machine, batch, i, base_index + i as u64)?;
        i += 1;
    }
    Ok(())
}

/// Replays a recorded trace through `machine` using batched SoA
/// decoding and the steady-state loop fast-forward — the engine behind
/// the `Runner`'s default replay-first sweeps. Produces exactly the
/// simulated state of the per-op [`replay`](crate::replay) (the
/// fast-path differential proptest and the CI triple-diff pin this),
/// typically several times faster on loop-heavy streams.
///
/// Decoding streams one [`OpBatch`] at a time; to replay the same
/// trace against many machine configurations without re-decoding,
/// [`decode_trace`] once and [`replay_decoded`] per machine.
///
/// # Errors
///
/// Any decode error, or [`TraceError::ReplayFault`] if an op faults —
/// meaning the trace does not match the machine's configuration or
/// initial state.
pub fn replay_batched(machine: &mut Machine, bytes: &[u8]) -> Result<TraceHeader, TraceError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut batch = OpBatch::default();
    let mut scratch = Scratch::default();
    let mut op_index = 0u64;
    loop {
        let n = reader.next_batch(&mut batch, BATCH_OPS)?;
        if n == 0 {
            break;
        }
        replay_batch(machine, &batch, op_index, &mut scratch)?;
        op_index += n as u64;
    }
    Ok(reader.into_header())
}

/// A fully decoded trace: the header plus every op in SoA batches,
/// ready to [`replay_decoded`] against any number of machines without
/// paying the varint decode again. Costs roughly 17 bytes of memory
/// per op — several times the encoded trace — so callers that replay
/// a trace only once should stream through [`replay_batched`]
/// instead.
#[derive(Debug)]
pub struct DecodedTrace {
    header: TraceHeader,
    batches: Vec<OpBatch>,
    ops: u64,
}

impl DecodedTrace {
    /// Assembles a decoded trace from batches built elsewhere — the
    /// recording-side SoA capture
    /// ([`TraceWriter::capturing`](crate::TraceWriter::capturing)),
    /// which produces batch-for-batch what [`decode_trace`] would.
    pub(crate) fn from_parts(header: TraceHeader, batches: Vec<OpBatch>) -> Self {
        let ops = batches.iter().map(|b| b.len() as u64).sum();
        DecodedTrace {
            header,
            batches,
            ops,
        }
    }

    /// The trace's parsed header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Total decoded ops across all batches.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The decoded SoA batches, in stream order. Each holds at most
    /// `BATCH_OPS` ops; every batch except possibly the last is full.
    #[must_use]
    pub fn batches(&self) -> &[OpBatch] {
        &self.batches
    }
}

/// Decodes an entire recorded trace into memory for repeated
/// [`replay_decoded`] runs.
///
/// # Errors
///
/// Any header or body decode error ([`TraceError::BadMagic`],
/// [`TraceError::Truncated`], [`TraceError::UnknownTag`],
/// [`TraceError::TrailingBytes`], [`TraceError::BadName`]).
pub fn decode_trace(bytes: &[u8]) -> Result<DecodedTrace, TraceError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut batches = Vec::new();
    let mut ops = 0u64;
    loop {
        let mut batch = OpBatch::default();
        let n = reader.next_batch(&mut batch, BATCH_OPS)?;
        if n == 0 {
            break;
        }
        ops += n as u64;
        batches.push(batch);
    }
    Ok(DecodedTrace {
        header: reader.into_header(),
        batches,
        ops,
    })
}

/// Replays an already-decoded trace through `machine` — the same
/// engine (and bit-identical simulated state) as [`replay_batched`],
/// minus the decode. This is what makes record-once/replay-many
/// sweeps cheap: the `Runner` decodes each recorded (workload, scale)
/// trace once and replays every further configuration from the
/// decoded batches.
///
/// # Errors
///
/// [`TraceError::ReplayFault`] if an op faults — the trace does not
/// match the machine's configuration or initial state.
pub fn replay_decoded(
    machine: &mut Machine,
    trace: &DecodedTrace,
) -> Result<TraceHeader, TraceError> {
    let mut scratch = Scratch::default();
    let mut op_index = 0u64;
    for batch in &trace.batches {
        replay_batch(machine, batch, op_index, &mut scratch)?;
        op_index += batch.len() as u64;
    }
    Ok(trace.header.clone())
}
