//! Compact record/replay traces of [`Machine`] op
//! streams.
//!
//! A run recorded through an attached [`TraceWriter`] (it implements
//! [`OpSink`]) becomes a self-describing byte buffer: a small header
//! naming the workload, its scale and its recorded outcome, followed by
//! every [`MachineOp`] the workload issued, delta/varint-encoded.
//! [`replay`] drives those ops back through a fresh machine's *public*
//! API, reproducing the exact address stream — and therefore, because
//! simulated timing depends only on addresses and shapes, a
//! byte-identical [`RunReport`](mtlb_sim::RunReport). [`replay_batched`]
//! produces the same state faster: it decodes ops in bulk into
//! structure-of-arrays batches ([`OpBatch`]) and fast-forwards
//! steady-state loops it proves stable, which is what makes
//! record-once/replay-many the sweep `Runner`'s default execution
//! mode.
//!
//! What replay does **not** reproduce is data: stores write zeros, so
//! guest-memory contents and workload checksums differ from the live
//! run. The header carries the live run's checksum and verification
//! flag instead, so sweep drivers can report the recorded outcome.
//!
//! # Format
//!
//! All multi-byte integers are LEB128 varints
//! ([`mtlb_types::varint`]); virtual addresses are ZigZag deltas
//! against a running previous-address register, so the sequential and
//! strided streams real workloads produce cost one or two bytes per
//! access.
//!
//! ```text
//! magic      4 bytes  "MTR1"
//! name       uvarint length + that many UTF-8 bytes
//! scale      1 byte   (0 = test scale, 1 = paper scale)
//! checksum   8 bytes  little-endian u64 (recorded outcome)
//! verified   1 byte   (0 / 1)
//! op count   uvarint
//! ops        op count × (tag byte + tag-specific varint fields)
//! ```
//!
//! Decoding is panic-free: corrupt, truncated or oversized input yields
//! a [`TraceError`], never a panic or an unbounded allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;

pub use batch::{decode_trace, replay_batched, replay_decoded, DecodedTrace, OpBatch};

use std::any::Any;
use std::fmt;

use mtlb_sim::{Machine, MachineOp, OpSink};
use mtlb_types::varint::{get_ivarint, get_uvarint, put_ivarint, put_uvarint};
use mtlb_types::{Fault, Prot, VirtAddr, Vpn};

/// File magic: "MTR1" (MTLB Trace, format 1).
pub const MAGIC: [u8; 4] = *b"MTR1";

/// Caps the single-allocation size replay will perform for one block
/// op, so a corrupt trace cannot request an absurd buffer.
const MAX_BLOCK_LEN: u64 = 1 << 30;

/// Why a trace failed to decode or replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not begin with [`MAGIC`].
    BadMagic,
    /// The buffer ended (or a varint was malformed) at byte `at`.
    Truncated {
        /// Byte offset at which decoding failed.
        at: usize,
    },
    /// The header's workload name is not valid UTF-8.
    BadName,
    /// An op tag byte no decoder exists for.
    UnknownTag {
        /// The unrecognised tag value.
        tag: u8,
        /// Byte offset of the tag.
        at: usize,
    },
    /// Bytes remain after the declared op count was decoded.
    TrailingBytes {
        /// Byte offset of the first excess byte.
        at: usize,
    },
    /// A block op declared a length beyond the replay allocation cap.
    OversizedBlock {
        /// The declared length.
        len: u64,
    },
    /// Replaying op number `op_index` (0-based) faulted on the target
    /// machine — the trace was recorded against an incompatible
    /// machine state or is corrupt.
    ReplayFault {
        /// Index of the faulting op in the stream.
        op_index: u64,
        /// The fault the machine raised.
        fault: Fault,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceError::BadMagic => write!(f, "not an MTR1 trace (bad magic)"),
            TraceError::Truncated { at } => write!(f, "trace truncated at byte {at}"),
            TraceError::BadName => write!(f, "trace workload name is not UTF-8"),
            TraceError::UnknownTag { tag, at } => {
                write!(f, "unknown op tag {tag:#04x} at byte {at}")
            }
            TraceError::TrailingBytes { at } => {
                write!(f, "trailing bytes after final op (byte {at})")
            }
            TraceError::OversizedBlock { len } => {
                write!(f, "block op length {len} exceeds replay cap")
            }
            TraceError::ReplayFault { op_index, fault } => {
                write!(f, "replay faulted at op {op_index}: {fault:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The self-describing prefix of a trace: which run this is and what
/// the live run's outcome was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Workload name (e.g. `"em3d"`).
    pub name: String,
    /// Scale discriminant — `0` for test scale, `1` for paper scale.
    /// Kept as a raw byte so this crate stays independent of the
    /// workloads crate; the bench layer owns the mapping.
    pub scale: u8,
    /// The live run's outcome checksum (replay cannot regenerate it —
    /// replayed stores write zeros).
    pub checksum: u64,
    /// Whether the live run verified its own output.
    pub verified: bool,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// A streaming [`OpSink`] that encodes each recorded op into the MTR1
/// body format; [`finish`](TraceWriter::finish) prepends the header.
///
/// A writer built with [`capturing`](TraceWriter::capturing) also
/// mirrors every op into SoA batches as it encodes — batch-for-batch
/// what [`decode_trace`] would later produce from the bytes — so a
/// record-once/replay-many sweep can seed its decoded-batch cache
/// straight from the recording pass and never run the decoder at all
/// (see [`finish_decoded`](TraceWriter::finish_decoded)).
#[derive(Debug, Default)]
pub struct TraceWriter {
    body: Vec<u8>,
    ops: u64,
    last_va: u64,
    capture: Option<Vec<OpBatch>>,
}

/// The wire-field tuple `(tag, va, vb, arg, instr)` of an op — the
/// single source of truth for how each [`MachineOp`] maps onto the
/// MTR1 field slots, shared by the byte encoder and the SoA capture so
/// the two can never disagree. The values are exactly what
/// [`TraceReader`] hands back: raw address bits, sizes widened to
/// `u64`, protection bits and boolean flags as integers.
fn wire_fields(op: &MachineOp) -> (u8, u64, u64, u64, u64) {
    match *op {
        MachineOp::Execute { n } => (0, 0, 0, n, 0),
        MachineOp::Read { va, size } => (1, va.get(), 0, u64::from(size), 0),
        MachineOp::Write { va, size } => (2, va.get(), 0, u64::from(size), 0),
        MachineOp::ReadBlock { va, len, instr } => (3, va.get(), 0, len, instr),
        MachineOp::WriteBlock { va, len, instr } => (4, va.get(), 0, len, instr),
        MachineOp::StreamReadU32 { base, count, instr } => (5, base.get(), 0, count, instr),
        MachineOp::StreamWriteU32 { base, count, instr } => (6, base.get(), 0, count, instr),
        MachineOp::StreamWritePairU32 { a, b, count, instr } => (7, a.get(), b.get(), count, instr),
        MachineOp::StreamWriteU32F64 { a, b, count, instr } => (8, a.get(), b.get(), count, instr),
        MachineOp::MapRegion { start, len, prot } => {
            (9, start.get(), 0, len, u64::from(prot.bits()))
        }
        MachineOp::Remap { start, len } => (10, start.get(), 0, len, 0),
        MachineOp::Sbrk { increment } => (11, 0, 0, increment, 0),
        MachineOp::SwapOutSuperpage { vpn } => (12, 0, 0, vpn.index(), 0),
        MachineOp::DemoteSuperpage { vpn } => (13, 0, 0, vpn.index(), 0),
        MachineOp::PageBits { vpn } => (14, 0, 0, vpn.index(), 0),
        MachineOp::SpawnProcess => (15, 0, 0, 0, 0),
        MachineOp::SwitchProcess { pid } => (16, 0, 0, pid, 0),
        MachineOp::RecolorPage { vpn, color } => (17, 0, 0, vpn.index(), color),
        MachineOp::LoadProgram { len, remap_text } => (18, 0, 0, len, u64::from(remap_text)),
        MachineOp::ResetStats => (19, 0, 0, 0, 0),
    }
}

impl TraceWriter {
    /// An empty writer, ready to attach via
    /// [`Machine::set_op_sink`](mtlb_sim::Machine::set_op_sink).
    #[must_use]
    pub fn new() -> Self {
        TraceWriter::default()
    }

    /// An empty writer that additionally captures the SoA batches of
    /// the stream it encodes, for
    /// [`finish_decoded`](TraceWriter::finish_decoded). Costs ~17
    /// bytes of memory per recorded op on top of the encoded bytes.
    #[must_use]
    pub fn capturing() -> Self {
        TraceWriter {
            capture: Some(Vec::new()),
            ..TraceWriter::default()
        }
    }

    /// Ops encoded so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Seals the trace: header (with the live run's outcome) followed
    /// by the encoded op stream.
    #[must_use]
    pub fn finish(self, name: &str, scale: u8, checksum: u64, verified: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAGIC.len() + name.len() + 24 + self.body.len());
        out.extend_from_slice(&MAGIC);
        put_uvarint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        out.push(scale);
        out.extend_from_slice(&checksum.to_le_bytes());
        out.push(u8::from(verified));
        put_uvarint(&mut out, self.ops);
        out.extend_from_slice(&self.body);
        out
    }

    /// Seals the trace like [`finish`](TraceWriter::finish) and also
    /// returns the captured SoA batches as a ready-to-replay
    /// [`DecodedTrace`] — `None` for a writer built with
    /// [`new`](TraceWriter::new). The bytes and the decoded trace
    /// describe the same op stream: `decode_trace(&bytes)` would
    /// reproduce the returned batches exactly.
    #[must_use]
    pub fn finish_decoded(
        mut self,
        name: &str,
        scale: u8,
        checksum: u64,
        verified: bool,
    ) -> (Vec<u8>, Option<DecodedTrace>) {
        let decoded = self.capture.take().map(|batches| {
            let header = TraceHeader {
                name: name.to_string(),
                scale,
                checksum,
                verified,
            };
            DecodedTrace::from_parts(header, batches)
        });
        (self.finish(name, scale, checksum, verified), decoded)
    }

    fn put_va(&mut self, raw: u64) {
        put_ivarint(&mut self.body, raw.wrapping_sub(self.last_va) as i64);
        self.last_va = raw;
    }

    fn encode(&mut self, op: &MachineOp) {
        self.ops += 1;
        let (tag, va, vb, arg, instr) = wire_fields(op);
        self.body.push(tag);
        // Field layout per tag group mirrors `TraceReader::next_batch`.
        match tag {
            0 | 11..=14 | 16 => put_uvarint(&mut self.body, arg),
            1 | 2 | 10 => {
                self.put_va(va);
                put_uvarint(&mut self.body, arg);
            }
            3..=6 | 9 => {
                self.put_va(va);
                put_uvarint(&mut self.body, arg);
                put_uvarint(&mut self.body, instr);
            }
            7 | 8 => {
                self.put_va(va);
                self.put_va(vb);
                put_uvarint(&mut self.body, arg);
                put_uvarint(&mut self.body, instr);
            }
            15 | 19 => {}
            17 => {
                put_uvarint(&mut self.body, arg);
                put_uvarint(&mut self.body, instr);
            }
            _ => {
                debug_assert_eq!(tag, 18);
                put_uvarint(&mut self.body, arg);
                self.body.push(instr as u8);
            }
        }
        if let Some(batches) = &mut self.capture {
            if batches.last().is_none_or(|b| b.len() >= batch::BATCH_OPS) {
                batches.push(OpBatch::default());
            }
            if let Some(batch) = batches.last_mut() {
                batch.push_raw(tag, va, vb, arg, instr);
            }
        }
    }
}

impl OpSink for TraceWriter {
    fn record(&mut self, op: &MachineOp) {
        self.encode(op);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A pull decoder over an MTR1 buffer: parses the header eagerly,
/// yields ops one at a time.
#[derive(Debug)]
pub struct TraceReader<'a> {
    buf: &'a [u8],
    pos: usize,
    last_va: u64,
    remaining: u64,
    header: TraceHeader,
}

impl<'a> TraceReader<'a> {
    /// Parses the header; op decoding is deferred to
    /// [`next_op`](TraceReader::next_op).
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`], [`TraceError::Truncated`] or
    /// [`TraceError::BadName`] on a corrupt header.
    pub fn new(buf: &'a [u8]) -> Result<Self, TraceError> {
        let magic = buf.get(..MAGIC.len()).ok_or(TraceError::BadMagic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut pos = MAGIC.len();
        let name_len = get_uvarint(buf, &mut pos).ok_or(TraceError::Truncated { at: pos })?;
        let name_len = usize::try_from(name_len).map_err(|_| TraceError::Truncated { at: pos })?;
        let name_end = pos
            .checked_add(name_len)
            .ok_or(TraceError::Truncated { at: pos })?;
        let name_bytes = buf
            .get(pos..name_end)
            .ok_or(TraceError::Truncated { at: pos })?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| TraceError::BadName)?
            .to_owned();
        pos = name_end;
        let scale = *buf.get(pos).ok_or(TraceError::Truncated { at: pos })?;
        pos += 1;
        let sum_end = pos + 8;
        let sum_bytes = buf
            .get(pos..sum_end)
            .ok_or(TraceError::Truncated { at: pos })?;
        let mut sum = [0u8; 8];
        sum.copy_from_slice(sum_bytes);
        let checksum = u64::from_le_bytes(sum);
        pos = sum_end;
        let verified = *buf.get(pos).ok_or(TraceError::Truncated { at: pos })? != 0;
        pos += 1;
        let remaining = get_uvarint(buf, &mut pos).ok_or(TraceError::Truncated { at: pos })?;
        Ok(TraceReader {
            buf,
            pos,
            last_va: 0,
            remaining,
            header: TraceHeader {
                name,
                scale,
                checksum,
                verified,
            },
        })
    }

    /// The parsed header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Ops not yet decoded.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Consumes the reader, keeping only the header.
    #[must_use]
    pub fn into_header(self) -> TraceHeader {
        self.header
    }

    fn uvar(&mut self) -> Result<u64, TraceError> {
        get_uvarint(self.buf, &mut self.pos).ok_or(TraceError::Truncated { at: self.pos })
    }

    fn get_va(&mut self) -> Result<VirtAddr, TraceError> {
        let delta =
            get_ivarint(self.buf, &mut self.pos).ok_or(TraceError::Truncated { at: self.pos })?;
        self.last_va = self.last_va.wrapping_add(delta as u64);
        Ok(VirtAddr::new(self.last_va))
    }

    fn get_vpn(&mut self) -> Result<Vpn, TraceError> {
        Ok(Vpn::new(self.uvar()?))
    }

    /// Decodes the next op, `Ok(None)` once the declared op count is
    /// exhausted (at which point any trailing bytes are an error).
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`], [`TraceError::UnknownTag`] or
    /// [`TraceError::TrailingBytes`] on a corrupt body.
    pub fn next_op(&mut self) -> Result<Option<MachineOp>, TraceError> {
        if self.remaining == 0 {
            if self.pos != self.buf.len() {
                return Err(TraceError::TrailingBytes { at: self.pos });
            }
            return Ok(None);
        }
        self.remaining -= 1;
        let tag_at = self.pos;
        let tag = *self
            .buf
            .get(self.pos)
            .ok_or(TraceError::Truncated { at: self.pos })?;
        self.pos += 1;
        let op = match tag {
            0 => MachineOp::Execute { n: self.uvar()? },
            1 => {
                let va = self.get_va()?;
                let size = self.uvar()? as u8;
                MachineOp::Read { va, size }
            }
            2 => {
                let va = self.get_va()?;
                let size = self.uvar()? as u8;
                MachineOp::Write { va, size }
            }
            3 => {
                let va = self.get_va()?;
                let len = self.uvar()?;
                let instr = self.uvar()?;
                MachineOp::ReadBlock { va, len, instr }
            }
            4 => {
                let va = self.get_va()?;
                let len = self.uvar()?;
                let instr = self.uvar()?;
                MachineOp::WriteBlock { va, len, instr }
            }
            5 => {
                let base = self.get_va()?;
                let count = self.uvar()?;
                let instr = self.uvar()?;
                MachineOp::StreamReadU32 { base, count, instr }
            }
            6 => {
                let base = self.get_va()?;
                let count = self.uvar()?;
                let instr = self.uvar()?;
                MachineOp::StreamWriteU32 { base, count, instr }
            }
            7 => {
                let a = self.get_va()?;
                let b = self.get_va()?;
                let count = self.uvar()?;
                let instr = self.uvar()?;
                MachineOp::StreamWritePairU32 { a, b, count, instr }
            }
            8 => {
                let a = self.get_va()?;
                let b = self.get_va()?;
                let count = self.uvar()?;
                let instr = self.uvar()?;
                MachineOp::StreamWriteU32F64 { a, b, count, instr }
            }
            9 => {
                let start = self.get_va()?;
                let len = self.uvar()?;
                let prot = Prot::from_bits_truncate(self.uvar()? as u8);
                MachineOp::MapRegion { start, len, prot }
            }
            10 => {
                let start = self.get_va()?;
                let len = self.uvar()?;
                MachineOp::Remap { start, len }
            }
            11 => MachineOp::Sbrk {
                increment: self.uvar()?,
            },
            12 => MachineOp::SwapOutSuperpage {
                vpn: self.get_vpn()?,
            },
            13 => MachineOp::DemoteSuperpage {
                vpn: self.get_vpn()?,
            },
            14 => MachineOp::PageBits {
                vpn: self.get_vpn()?,
            },
            15 => MachineOp::SpawnProcess,
            16 => MachineOp::SwitchProcess { pid: self.uvar()? },
            17 => {
                let vpn = self.get_vpn()?;
                let color = self.uvar()?;
                MachineOp::RecolorPage { vpn, color }
            }
            18 => {
                let len = self.uvar()?;
                let remap_text = *self
                    .buf
                    .get(self.pos)
                    .ok_or(TraceError::Truncated { at: self.pos })?
                    != 0;
                self.pos += 1;
                MachineOp::LoadProgram { len, remap_text }
            }
            19 => MachineOp::ResetStats,
            tag => return Err(TraceError::UnknownTag { tag, at: tag_at }),
        };
        Ok(Some(op))
    }
}

/// Reads just the header of a trace buffer (cheap — no op decoding).
///
/// # Errors
///
/// The header-parsing errors of [`TraceReader::new`].
pub fn read_header(bytes: &[u8]) -> Result<TraceHeader, TraceError> {
    TraceReader::new(bytes).map(TraceReader::into_header)
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Drives every op in `bytes` through `machine`'s public API.
///
/// Data values are not part of the format: replayed stores write
/// zeros. Because simulated timing depends only on the address stream,
/// the machine's [`report`](mtlb_sim::Machine::report) after a replay
/// is byte-identical to the live run's — but guest-memory contents are
/// not, which is why the returned [`TraceHeader`] carries the live
/// run's recorded outcome.
///
/// # Errors
///
/// Any decode error, or [`TraceError::ReplayFault`] if an op faults —
/// which means the trace does not match the machine's configuration
/// or initial state.
pub fn replay(machine: &mut Machine, bytes: &[u8]) -> Result<TraceHeader, TraceError> {
    let mut reader = TraceReader::new(bytes)?;
    let mut op_index = 0u64;
    while let Some(op) = reader.next_op()? {
        apply_op(machine, &op, op_index)?;
        op_index += 1;
    }
    Ok(reader.into_header())
}

/// Drives a single decoded op through `machine`'s public API — the
/// per-op step of [`replay`], exposed so schedulers can interleave ops
/// from several recorded streams across the cores of one machine
/// (e.g. the fig6 co-scheduling experiment). `op_index` only labels
/// the error.
///
/// # Errors
///
/// [`TraceError::ReplayFault`] if the op faults, or
/// [`TraceError::OversizedBlock`] for a block op over the format's
/// length cap.
pub fn apply_op(machine: &mut Machine, op: &MachineOp, op_index: u64) -> Result<(), TraceError> {
    let result: Result<(), Fault> = match *op {
        MachineOp::Execute { n } => machine.try_execute(n),
        MachineOp::Read { va, size } => match size {
            1 => machine.try_read_u8(va).map(drop),
            2 => machine.try_read_u16(va).map(drop),
            4 => machine.try_read_u32(va).map(drop),
            _ => machine.try_read_u64(va).map(drop),
        },
        MachineOp::Write { va, size } => match size {
            1 => machine.try_write_u8(va, 0),
            2 => machine.try_write_u16(va, 0),
            4 => machine.try_write_u32(va, 0),
            _ => machine.try_write_u64(va, 0),
        },
        MachineOp::ReadBlock { va, len, instr } => {
            if len > MAX_BLOCK_LEN {
                return Err(TraceError::OversizedBlock { len });
            }
            let mut buf = vec![0u8; len as usize];
            machine.try_read_block(va, &mut buf, instr)
        }
        MachineOp::WriteBlock { va, len, instr } => {
            if len > MAX_BLOCK_LEN {
                return Err(TraceError::OversizedBlock { len });
            }
            let data = vec![0u8; len as usize];
            machine.try_write_block(va, &data, instr)
        }
        MachineOp::StreamReadU32 { base, count, instr } => {
            machine.try_stream_read_u32(base, count, instr, |_, _| {})
        }
        MachineOp::StreamWriteU32 { base, count, instr } => {
            machine.try_stream_write_u32(base, count, instr, |_| 0)
        }
        MachineOp::StreamWritePairU32 { a, b, count, instr } => {
            machine.try_stream_write_u32_pair(a, b, count, instr, |_| (0, 0))
        }
        MachineOp::StreamWriteU32F64 { a, b, count, instr } => {
            machine.try_stream_write_u32_f64(a, b, count, instr, |_| (0, 0.0))
        }
        MachineOp::MapRegion { start, len, prot } => {
            machine.map_region(start, len, prot);
            Ok(())
        }
        MachineOp::Remap { start, len } => {
            let _ = machine.remap(start, len);
            Ok(())
        }
        MachineOp::Sbrk { increment } => {
            let _ = machine.sbrk(increment);
            Ok(())
        }
        MachineOp::SwapOutSuperpage { vpn } => {
            let _ = machine.swap_out_superpage(vpn);
            Ok(())
        }
        MachineOp::DemoteSuperpage { vpn } => {
            machine.demote_superpage(vpn);
            Ok(())
        }
        MachineOp::PageBits { vpn } => {
            let _ = machine.page_bits(vpn);
            Ok(())
        }
        MachineOp::SpawnProcess => {
            let _ = machine.spawn_process();
            Ok(())
        }
        MachineOp::SwitchProcess { pid } => machine.try_switch_process(pid as usize),
        MachineOp::RecolorPage { vpn, color } => {
            machine.recolor_page(vpn, color);
            Ok(())
        }
        MachineOp::LoadProgram { len, remap_text } => {
            machine.load_program(len, remap_text);
            Ok(())
        }
        MachineOp::ResetStats => {
            machine.reset_stats();
            Ok(())
        }
    };
    result.map_err(|fault| TraceError::ReplayFault { op_index, fault })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<MachineOp> {
        vec![
            MachineOp::LoadProgram {
                len: 4096,
                remap_text: false,
            },
            MachineOp::MapRegion {
                start: VirtAddr::new(0x1000_0000),
                len: 64 * 1024,
                prot: Prot::RW,
            },
            MachineOp::Remap {
                start: VirtAddr::new(0x1000_0000),
                len: 64 * 1024,
            },
            MachineOp::Write {
                va: VirtAddr::new(0x1000_2468),
                size: 4,
            },
            MachineOp::Read {
                va: VirtAddr::new(0x1000_2468),
                size: 4,
            },
            MachineOp::Execute { n: 1000 },
            MachineOp::StreamWriteU32 {
                base: VirtAddr::new(0x1000_0000),
                count: 256,
                instr: 2,
            },
            MachineOp::ResetStats,
        ]
    }

    fn encode(ops: &[MachineOp]) -> Vec<u8> {
        let mut w = TraceWriter::new();
        for op in ops {
            w.record(op);
        }
        w.finish("sample", 0, 0xdead_beef, true)
    }

    #[test]
    fn round_trips_a_sample_stream() {
        let ops = sample_ops();
        let bytes = encode(&ops);
        let mut r = TraceReader::new(&bytes).unwrap();
        assert_eq!(
            r.header(),
            &TraceHeader {
                name: "sample".into(),
                scale: 0,
                checksum: 0xdead_beef,
                verified: true,
            }
        );
        let mut decoded = Vec::new();
        while let Some(op) = r.next_op().unwrap() {
            decoded.push(op);
        }
        assert_eq!(decoded, ops);
    }

    #[test]
    fn captured_batches_match_decoded_batches() {
        // Every tag once, plus enough scalar filler to roll the capture
        // over a batch boundary — the captured SoA batches must be
        // exactly what decode_trace reproduces from the bytes.
        let mut ops: Vec<MachineOp> = vec![
            MachineOp::SpawnProcess,
            MachineOp::SwitchProcess { pid: 1 },
            MachineOp::Sbrk { increment: 4096 },
            MachineOp::SwapOutSuperpage { vpn: Vpn::new(7) },
            MachineOp::DemoteSuperpage { vpn: Vpn::new(8) },
            MachineOp::PageBits { vpn: Vpn::new(9) },
            MachineOp::RecolorPage {
                vpn: Vpn::new(10),
                color: 3,
            },
            MachineOp::ReadBlock {
                va: VirtAddr::new(0x2000_0000),
                len: 128,
                instr: 32,
            },
            MachineOp::WriteBlock {
                va: VirtAddr::new(0x2000_1000),
                len: 128,
                instr: 32,
            },
            MachineOp::StreamReadU32 {
                base: VirtAddr::new(0x2000_2000),
                count: 16,
                instr: 1,
            },
            MachineOp::StreamWritePairU32 {
                a: VirtAddr::new(0x2000_3000),
                b: VirtAddr::new(0x2000_4000),
                count: 16,
                instr: 2,
            },
            MachineOp::StreamWriteU32F64 {
                a: VirtAddr::new(0x2000_5000),
                b: VirtAddr::new(0x2000_6000),
                count: 16,
                instr: 2,
            },
        ];
        ops.extend(sample_ops());
        for i in 0..5000u64 {
            ops.push(MachineOp::Read {
                va: VirtAddr::new(0x3000_0000 + i * 8),
                size: if i % 3 == 0 { 4 } else { 8 },
            });
            ops.push(MachineOp::Execute { n: 2 });
        }
        let mut w = TraceWriter::capturing();
        for op in &ops {
            w.record(op);
        }
        let (bytes, captured) = w.finish_decoded("cap", 1, 42, true);
        let captured = captured.expect("capturing writer yields batches");
        let decoded = decode_trace(&bytes).expect("own bytes decode");
        assert_eq!(captured.header(), decoded.header());
        assert_eq!(captured.ops(), decoded.ops());
        assert_eq!(captured.batches(), decoded.batches());
        // And a plain writer yields no batches.
        let (_, none) = TraceWriter::new().finish_decoded("cap", 1, 42, true);
        assert!(none.is_none());
    }

    #[test]
    fn sequential_addresses_encode_compactly() {
        let mut w = TraceWriter::new();
        for i in 0..1000u64 {
            w.record(&MachineOp::Read {
                va: VirtAddr::new(0x1000_0000 + i * 4),
                size: 4,
            });
        }
        let bytes = w.finish("seq", 1, 0, false);
        // Tag + one-byte delta + one-byte size ≈ 3 bytes/op after the
        // first; a raw fixed-width encoding would cost ≥ 9.
        assert!(bytes.len() < 1000 * 4, "got {} bytes", bytes.len());
    }

    #[test]
    fn rejects_corrupt_input() {
        assert_eq!(TraceReader::new(b"nope").unwrap_err(), TraceError::BadMagic);
        assert_eq!(TraceReader::new(b"MTR").unwrap_err(), TraceError::BadMagic);
        let good = encode(&sample_ops());
        // Truncation anywhere must error, never panic.
        for cut in 0..good.len() {
            let _ =
                TraceReader::new(&good[..cut]).map(|mut r| while let Ok(Some(_)) = r.next_op() {});
        }
        // Trailing garbage is detected.
        let mut padded = good.clone();
        padded.push(0);
        let mut r = TraceReader::new(&padded).unwrap();
        let err = loop {
            match r.next_op() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("trailing byte not detected"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceError::TrailingBytes { .. }));
        // An unknown tag is rejected.
        let mut w = TraceWriter::new();
        w.record(&MachineOp::SpawnProcess);
        let mut bytes = w.finish("x", 0, 0, false);
        let tag_at = bytes.len() - 1;
        bytes[tag_at] = 0xff;
        let mut r = TraceReader::new(&bytes).unwrap();
        assert!(matches!(
            r.next_op().unwrap_err(),
            TraceError::UnknownTag { tag: 0xff, .. }
        ));
    }

    #[test]
    fn replay_reproduces_cycles_not_data() {
        use mtlb_sim::MachineConfig;

        let cfg = MachineConfig::paper_mtlb(64);
        // Live run, recorded.
        let mut live = Machine::new(cfg.clone());
        live.set_op_sink(Box::new(TraceWriter::new()));
        let base = VirtAddr::new(0x1000_0000);
        live.map_region(base, 64 * 1024, Prot::RW);
        let _ = live.remap(base, 64 * 1024);
        for i in 0..2048u64 {
            live.try_write_u32(base + i * 4, i as u32).unwrap();
        }
        for i in 0..2048u64 {
            assert_eq!(live.try_read_u32(base + i * 4).unwrap(), i as u32);
        }
        live.try_execute(10_000).unwrap();
        let live_report = live.report();
        let writer = live
            .take_op_sink()
            .unwrap()
            .into_any()
            .downcast::<TraceWriter>()
            .unwrap();
        let bytes = writer.finish("smoke", 0, 77, true);

        // Replay through a fresh machine.
        let mut fresh = Machine::new(cfg);
        let header = replay(&mut fresh, &bytes).unwrap();
        assert_eq!(header.checksum, 77);
        let replay_report = fresh.report();
        assert_eq!(live_report.to_json(), replay_report.to_json());
        // Data is NOT reproduced: the replayed stores wrote zeros.
        assert_eq!(fresh.try_read_u32(base + 40).unwrap(), 0);
    }

    #[test]
    fn replay_faults_on_incompatible_machine() {
        use mtlb_sim::MachineConfig;

        let mut w = TraceWriter::new();
        w.record(&MachineOp::Read {
            va: VirtAddr::new(0x4000_0000),
            size: 4,
        });
        let bytes = w.finish("bad", 0, 0, false);
        let mut m = Machine::new(MachineConfig::paper_mtlb(64));
        assert!(matches!(
            replay(&mut m, &bytes),
            Err(TraceError::ReplayFault { op_index: 0, .. })
        ));
    }
}
