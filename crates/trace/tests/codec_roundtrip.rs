//! Property test: the MTR1 codec round-trips arbitrary op streams —
//! including misaligned scalar accesses, cross-page block and stream
//! runs, huge forward/backward address jumps and every op kind — and
//! the header survives arbitrary name/outcome values.

use mtlb_sim::{MachineOp, OpSink};
use mtlb_trace::{decode_trace, OpBatch, TraceReader, TraceWriter};
use mtlb_types::{Prot, VirtAddr, Vpn};
use proptest::prelude::*;

/// Addresses across the whole 2^62 practical range, deliberately
/// including misaligned values and page/superpage boundary straddles.
fn va_strategy() -> impl Strategy<Value = VirtAddr> {
    prop_oneof![
        // Anywhere, any alignment.
        (0u64..1 << 62).prop_map(VirtAddr::new),
        // Hugging a page boundary (cross-page scalar/block starts).
        (0u64..1 << 40, 0u64..16).prop_map(|(page, off)| VirtAddr::new((page << 12) + 0xff8 + off)),
    ]
}

fn prot_strategy() -> impl Strategy<Value = Prot> {
    (0u8..8).prop_map(Prot::from_bits_truncate)
}

fn op_strategy() -> impl Strategy<Value = MachineOp> {
    let size = prop_oneof![Just(1u8), Just(2u8), Just(4u8), Just(8u8)];
    let size2 = prop_oneof![Just(1u8), Just(2u8), Just(4u8), Just(8u8)];
    prop_oneof![
        (0u64..1 << 32).prop_map(|n| MachineOp::Execute { n }),
        (va_strategy(), size).prop_map(|(va, size)| MachineOp::Read { va, size }),
        (va_strategy(), size2).prop_map(|(va, size)| MachineOp::Write { va, size }),
        (va_strategy(), 0u64..1 << 20, 0u64..64)
            .prop_map(|(va, len, instr)| MachineOp::ReadBlock { va, len, instr }),
        (va_strategy(), 0u64..1 << 20, 0u64..64)
            .prop_map(|(va, len, instr)| MachineOp::WriteBlock { va, len, instr }),
        (va_strategy(), 0u64..1 << 20, 0u64..64)
            .prop_map(|(base, count, instr)| MachineOp::StreamReadU32 { base, count, instr }),
        (va_strategy(), 0u64..1 << 20, 0u64..64)
            .prop_map(|(base, count, instr)| MachineOp::StreamWriteU32 { base, count, instr }),
        (va_strategy(), va_strategy(), 0u64..1 << 20, 0u64..64)
            .prop_map(|(a, b, count, instr)| MachineOp::StreamWritePairU32 { a, b, count, instr }),
        (va_strategy(), va_strategy(), 0u64..1 << 20, 0u64..64)
            .prop_map(|(a, b, count, instr)| MachineOp::StreamWriteU32F64 { a, b, count, instr }),
        (va_strategy(), 0u64..1 << 30, prot_strategy())
            .prop_map(|(start, len, prot)| MachineOp::MapRegion { start, len, prot }),
        (va_strategy(), 0u64..1 << 30).prop_map(|(start, len)| MachineOp::Remap { start, len }),
        (0u64..1 << 40).prop_map(|increment| MachineOp::Sbrk { increment }),
        (0u64..1 << 50).prop_map(|v| MachineOp::SwapOutSuperpage { vpn: Vpn::new(v) }),
        (0u64..1 << 50).prop_map(|v| MachineOp::DemoteSuperpage { vpn: Vpn::new(v) }),
        (0u64..1 << 50).prop_map(|v| MachineOp::PageBits { vpn: Vpn::new(v) }),
        Just(MachineOp::SpawnProcess),
        (0u64..1 << 16).prop_map(|pid| MachineOp::SwitchProcess { pid }),
        (0u64..1 << 50, 0u64..1 << 16).prop_map(|(v, color)| MachineOp::RecolorPage {
            vpn: Vpn::new(v),
            color
        }),
        (0u64..1 << 30, 0u64..2).prop_map(|(len, rt)| MachineOp::LoadProgram {
            len,
            remap_text: rt == 1
        }),
        Just(MachineOp::ResetStats),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_round_trips_any_stream(
        ops in proptest::collection::vec(op_strategy(), 0..200),
        name_idx in 0usize..4,
        scale in 0u8..2,
        checksum in any::<u64>(),
        verified in 0u64..2,
    ) {
        let mut w = TraceWriter::new();
        for op in &ops {
            w.record(op);
        }
        prop_assert_eq!(w.ops(), ops.len() as u64);
        let name = ["", "em3d", "synth_stride", "compress95"][name_idx];
        let verified = verified == 1;
        let bytes = w.finish(name, scale, checksum, verified);

        let mut r = TraceReader::new(&bytes).unwrap();
        prop_assert_eq!(&r.header().name, name);
        prop_assert_eq!(r.header().scale, scale);
        prop_assert_eq!(r.header().checksum, checksum);
        prop_assert_eq!(r.header().verified, verified);
        prop_assert_eq!(r.remaining(), ops.len() as u64);

        let mut decoded = Vec::with_capacity(ops.len());
        while let Some(op) = r.next_op().unwrap() {
            decoded.push(op);
        }
        prop_assert_eq!(decoded, ops);
    }

    #[test]
    fn decoder_never_panics_on_corrupt_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Whatever the input, decoding must return an error or a
        // finite op stream — never panic or hang.
        if let Ok(mut r) = TraceReader::new(&bytes) {
            for _ in 0..4096 {
                match r.next_op() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn batched_decode_matches_scalar_decode(
        ops in proptest::collection::vec(op_strategy(), 0..300),
        max in 1usize..97,
        checksum in any::<u64>(),
    ) {
        // The SoA batch decoder and the scalar reader are two
        // independent walks over the same wire bytes; they must
        // reconstruct identical op streams regardless of how the
        // batch boundary (`max`) slices the stream. The record-side
        // capture path (`TraceWriter::capturing`) must agree with
        // both without ever touching the decoder.
        let mut w = TraceWriter::capturing();
        for op in &ops {
            w.record(op);
        }
        let (bytes, captured) = w.finish_decoded("synth_stride", 0, checksum, true);

        let mut r = TraceReader::new(&bytes).unwrap();
        let mut batch = OpBatch::default();
        let mut batched = Vec::with_capacity(ops.len());
        loop {
            let n = r.next_batch(&mut batch, max).unwrap();
            if n == 0 {
                break;
            }
            prop_assert_eq!(batch.len(), n);
            for i in 0..n {
                batched.push(batch.op(i));
            }
        }
        prop_assert_eq!(&batched, &ops);

        let decoded = decode_trace(&bytes).unwrap();
        prop_assert_eq!(decoded.ops(), ops.len() as u64);
        let mut from_decoded = Vec::with_capacity(ops.len());
        for b in decoded.batches() {
            for i in 0..b.len() {
                from_decoded.push(b.op(i));
            }
        }
        prop_assert_eq!(&from_decoded, &ops);

        let captured = captured.unwrap();
        prop_assert_eq!(captured.header(), decoded.header());
        prop_assert_eq!(captured.batches(), decoded.batches());
    }

    #[test]
    fn batch_decoder_never_panics_on_corrupt_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        max in 1usize..97,
    ) {
        // The batch path has its own varint walk and SoA writes; it
        // must be as corruption-proof as the scalar reader.
        let _ = decode_trace(&bytes);
        if let Ok(mut r) = TraceReader::new(&bytes) {
            let mut batch = OpBatch::default();
            for _ in 0..4096 {
                match r.next_batch(&mut batch, max) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => continue,
                }
            }
        }
    }
}
